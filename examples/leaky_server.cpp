/**
 * @file
 * A session-based key-value server monitored by SafeMem in production:
 * demonstrates the full §3 pipeline — lifetime learning, SLeak outlier
 * detection, ECC false-positive pruning — on a server with both a real
 * sometimes-leak (the error path forgets its reply buffer) and a
 * keep-alive behaviour that would be a false positive without pruning.
 *
 *   build/examples/leaky_server
 */

#include <cstdio>
#include <deque>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/random.h"
#include "common/shadow_stack.h"
#include "os/machine.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

using namespace safemem;

namespace {

constexpr std::uint64_t kSiteReply = 1;   ///< leaks on the error path
constexpr std::uint64_t kSiteSession = 2; ///< long-lived, later touched

} // namespace

int
main()
{
    Machine machine;
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    backend.installScrubHooks();

    SafeMemConfig config;
    config.warmupTime = 400'000;
    config.checkingPeriod = 20'000;
    config.minStableTime = 200'000;
    config.leakReportThreshold = 1'500'000;
    config.suspectCooldown = 300'000;
    SafeMemTool safemem(machine, allocator, backend, config);

    ShadowStack stack;
    Rng rng(2026);

    // Keep-alive sessions: mostly short, every 12th lives long and is
    // then touched — exactly the behaviour ECC pruning exists for.
    struct Session
    {
        VirtAddr state;
        std::uint64_t closeAt;
        bool keepAlive;
    };
    std::deque<Session> sessions;

    std::printf("serving 4000 requests...\n");
    std::uint64_t leaked = 0;
    for (std::uint64_t request = 0; request < 4000; ++request) {
        // Close sessions whose hold expired (touch keep-alive state).
        while (!sessions.empty() &&
               sessions.front().closeAt <= request) {
            Session session = sessions.front();
            sessions.pop_front();
            if (session.keepAlive)
                machine.load<std::uint64_t>(session.state);
            safemem.toolFree(session.state);
        }

        // Open a session every 4th request.
        if (request % 4 == 0) {
            FrameGuard frame(stack, 0x410000);
            Session session;
            session.keepAlive = (request / 4) % 12 == 11;
            session.state =
                safemem.toolAlloc(96, stack, kSiteSession);
            machine.store<std::uint64_t>(session.state, request);
            session.closeAt =
                request + (session.keepAlive ? 40 : 6);
            sessions.push_back(session);
            // Keep the deque sorted by close time.
            for (auto it = sessions.end() - 1;
                 it != sessions.begin() && (it - 1)->closeAt > it->closeAt;
                 --it)
                std::swap(*(it - 1), *it);
        }

        // Serve a lookup.
        FrameGuard frame(stack, 0x420000);
        VirtAddr reply = safemem.toolAlloc(256, stack, kSiteReply);
        machine.store<std::uint64_t>(reply, request * 31);
        machine.compute(9'000);

        if (rng.chance(0.04)) {
            // Error path: reply never freed — the injected bug.
            machine.compute(2'000);
            ++leaked;
            continue;
        }
        machine.load<std::uint64_t>(reply); // "send"
        safemem.toolFree(reply);
    }
    while (!sessions.empty()) {
        safemem.toolFree(sessions.front().state);
        sessions.pop_front();
    }
    safemem.finish();

    const LeakDetector &detector = safemem.leakDetector();
    std::printf("\nground truth: %llu reply buffers leaked\n",
                static_cast<unsigned long long>(leaked));
    std::printf("suspects watched: %llu, pruned by access: %llu\n",
                static_cast<unsigned long long>(
                    detector.stats().get("suspects_watched")),
                static_cast<unsigned long long>(
                    detector.prunedSuspects()));
    std::printf("leak reports:\n");
    for (const LeakReport &report : detector.reports()) {
        std::printf("  %s-leak of %llu-byte objects at site %llu "
                    "(%llu still live)\n",
                    report.kind == LeakKind::Always ? "always"
                                                    : "sometimes",
                    static_cast<unsigned long long>(report.objectSize),
                    static_cast<unsigned long long>(report.siteTag),
                    static_cast<unsigned long long>(report.liveCount));
    }
    if (detector.reports().empty())
        std::printf("  (none)\n");
    return 0;
}
