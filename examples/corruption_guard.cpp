/**
 * @file
 * Memory-corruption detection walk-through: a packet parser with three
 * classic bugs — a rear overflow from an unchecked length field, an
 * underflow from a negative index, and a use-after-free from an event
 * that outlives its connection — all caught by ECC guard lines and
 * freed-buffer watches, with zero per-access instrumentation.
 *
 *   build/examples/corruption_guard
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/shadow_stack.h"
#include "os/machine.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

using namespace safemem;

int
main()
{
    Machine machine;
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();

    SafeMemConfig config;
    config.detectLeaks = false; // corruption-only, Table 3's "Only MC"
    SafeMemTool safemem(machine, allocator, backend, config);
    ShadowStack stack;

    std::printf("packet parser under SafeMem (MC only)\n\n");

    // Bug 1: unchecked length field overflows the payload buffer.
    {
        FrameGuard frame(stack, 0x501000);
        VirtAddr payload = safemem.toolAlloc(256, stack, 1);
        std::uint32_t wire_length = 272; // attacker-controlled
        std::vector<std::uint8_t> packet(wire_length, 0x41);
        std::printf("copying %u wire bytes into a 256-byte buffer...\n",
                    wire_length);
        machine.write(payload, packet.data(), wire_length);
        safemem.toolFree(payload);
    }

    // Bug 2: off-by-one indexing walks below the buffer.
    {
        FrameGuard frame(stack, 0x502000);
        VirtAddr table = safemem.toolAlloc(128, stack, 2);
        int index = -1; // header parsing underflowed
        std::printf("reading table[%d]...\n", index);
        machine.load<std::uint64_t>(table +
                                    static_cast<std::int64_t>(index * 8));
        safemem.toolFree(table);
    }

    // Bug 3: a timer event fires after its connection was torn down.
    {
        FrameGuard frame(stack, 0x503000);
        VirtAddr conn = safemem.toolAlloc(512, stack, 3);
        machine.store<std::uint64_t>(conn + 16, 0x1dea);
        safemem.toolFree(conn); // connection closed...
        std::printf("timer callback writing into the closed "
                    "connection...\n");
        machine.store<std::uint64_t>(conn + 16, 0xdead); // ...but fires
    }

    safemem.finish();

    std::printf("\n%zu corruption reports:\n",
                safemem.corruptionDetector().reports().size());
    for (const CorruptionReport &report :
         safemem.corruptionDetector().reports()) {
        std::printf("  %-16s buffer=0x%llx size=%-4llu fault=0x%llx "
                    "(site %llu)\n",
                    corruptionKindName(report.kind),
                    static_cast<unsigned long long>(report.userAddr),
                    static_cast<unsigned long long>(report.objectSize),
                    static_cast<unsigned long long>(report.faultAddr),
                    static_cast<unsigned long long>(report.siteTag));
    }

    std::printf("\nmemory overhead of the guards: %llu bytes of "
                "padding for %llu user bytes (%.1f%%)\n",
                static_cast<unsigned long long>(
                    safemem.corruptionDetector().cumulativeWasteBytes()),
                static_cast<unsigned long long>(
                    safemem.corruptionDetector().cumulativeUserBytes()),
                100.0 *
                    static_cast<double>(safemem.corruptionDetector()
                                            .cumulativeWasteBytes()) /
                    static_cast<double>(safemem.corruptionDetector()
                                            .cumulativeUserBytes()));
    return 0;
}
