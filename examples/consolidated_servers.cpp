/**
 * @file
 * Server consolidation: two independent key-value servers run as
 * separate processes on one machine, each monitored by its own SafeMem
 * instance, while the cache, memory controller, and ECC scrubber stay
 * shared. One server has a leaky error path, the other is clean — the
 * point is that the leak report lands on the right process and the
 * clean neighbour stays clean, even though both compete for the same
 * cache lines and the same scrub pass walks both address spaces.
 *
 * The interleaving is explicit here (a context switch every slice of
 * requests) to keep the example single-threaded and deterministic; the
 * `safemem_run --procs N` harness does the same thing driven by kernel
 * ticks.
 *
 *   build/examples/consolidated_servers
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/random.h"
#include "common/shadow_stack.h"
#include "os/machine.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

using namespace safemem;

namespace {

constexpr std::uint64_t kSiteReply = 1; ///< per-request reply buffer

/** One consolidated tenant: a process plus its private tool stack. */
struct Server
{
    const char *name;
    Pid pid = 0;
    double leakChance = 0.0; ///< error-path probability (the bug)
    std::unique_ptr<HeapAllocator> allocator;
    std::unique_ptr<EccWatchManager> backend;
    std::unique_ptr<SafeMemTool> safemem;
    ShadowStack stack;
    Rng rng{0};
    VirtAddr table = 0; ///< resident working set, scanned per request
    std::uint64_t served = 0;
    std::uint64_t leaked = 0;
};

constexpr std::size_t kTableBytes = 48u << 10;

/** Serve @p count requests on the currently-running server. */
void
serveSlice(Machine &machine, Server &server, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        FrameGuard frame(server.stack, 0x500000 + 0x1000 * server.pid);
        VirtAddr reply =
            server.safemem->toolAlloc(192, server.stack, kSiteReply);
        machine.store<std::uint64_t>(reply, server.served * 17);
        // Look up the request in the server's resident table: both
        // tables together exceed the shared cache, so consolidated
        // tenants evict each other's lines.
        for (std::size_t off = 0; off < kTableBytes; off += 1024)
            machine.load<std::uint64_t>(
                server.table + ((off + server.served * 64) % kTableBytes));
        machine.compute(6'000);
        ++server.served;
        if (server.rng.chance(server.leakChance)) {
            ++server.leaked; // error path forgets the reply buffer
            continue;
        }
        machine.load<std::uint64_t>(reply);
        server.safemem->toolFree(reply);
    }
}

} // namespace

int
main()
{
    MachineConfig machine_config;
    machine_config.memoryBytes = 16u << 20;
    machine_config.cache.sets = 64; // small cache: make sharing visible
    Machine machine(machine_config);

    // Background scrubbing, as a Correct-and-Scrub server enables. One
    // scrub pass walks *all* of DRAM, so both tenants' watch sets park
    // and restore around it.
    machine.kernel().enableScrubbing(6'000'000);

    // Boot both tenants. Each stack is assembled while its process is
    // current, so the ECC fault handler and scrub hooks register on
    // *that* process — the kernel routes later ECC interrupts by frame
    // ownership, not by whoever happens to be running.
    Server servers[2];
    servers[0].name = "api-server";
    servers[0].leakChance = 0.05;
    servers[0].rng = Rng(7);
    servers[1].name = "cache-server";
    servers[1].leakChance = 0.0;
    servers[1].rng = Rng(11);

    SafeMemConfig config;
    config.warmupTime = 300'000;
    config.checkingPeriod = 20'000;
    config.minStableTime = 150'000;
    config.leakReportThreshold = 1'200'000;
    config.suspectCooldown = 250'000;

    for (Server &server : servers) {
        server.pid = machine.kernel().createProcess();
        machine.kernel().setCurrentProcess(server.pid);
        server.allocator = std::make_unique<HeapAllocator>(machine);
        server.backend = std::make_unique<EccWatchManager>(machine);
        server.backend->installFaultHandler();
        server.backend->installScrubHooks();
        server.safemem = std::make_unique<SafeMemTool>(
            machine, *server.allocator, *server.backend, config);
        FrameGuard boot(server.stack, 0x400000);
        server.table =
            server.safemem->toolAlloc(kTableBytes, server.stack, 3);
        for (std::size_t off = 0; off < kTableBytes; off += 64)
            machine.store<std::uint64_t>(server.table + off, off);
    }

    // Interleave request slices: switch tenants every 64 requests.
    std::printf("consolidating %s and %s on one machine...\n",
                servers[0].name, servers[1].name);
    for (int round = 0; round < 40; ++round) {
        for (Server &server : servers) {
            machine.contextSwitchTo(server.pid);
            serveSlice(machine, server, 64);
        }
    }
    for (Server &server : servers) {
        machine.contextSwitchTo(server.pid);
        server.safemem->toolFree(server.table);
        server.safemem->finish();
    }

    // Per-process verdicts: the leak must land on the leaky tenant.
    for (const Server &server : servers) {
        const LeakDetector &detector = server.safemem->leakDetector();
        std::printf("\n[pid %u] %s: served %llu, ground truth %llu "
                    "leaked\n",
                    server.pid, server.name,
                    static_cast<unsigned long long>(server.served),
                    static_cast<unsigned long long>(server.leaked));
        for (const LeakReport &report : detector.reports())
            std::printf("  %s-leak of %llu-byte objects at site %llu "
                        "(%llu still live)\n",
                        report.kind == LeakKind::Always ? "always"
                                                        : "sometimes",
                        static_cast<unsigned long long>(
                            report.objectSize),
                        static_cast<unsigned long long>(report.siteTag),
                        static_cast<unsigned long long>(
                            report.liveCount));
        if (detector.reports().empty())
            std::printf("  no leak reports (clean)\n");
    }

    // Shared-resource contention: what consolidation cost the tenants.
    std::printf("\nshared-machine contention:\n");
    std::printf("  cross-process cache evictions: %llu\n",
                static_cast<unsigned long long>(
                    machine.cache().stats().get("cross_proc_evictions")));
    std::printf("  context switches: %llu\n",
                static_cast<unsigned long long>(
                    machine.scheduler().stats().get("context_switches")));
    std::printf("  scrub passes over both address spaces: %llu\n",
                static_cast<unsigned long long>(
                    machine.kernel().stats().get("scrub_passes")));
    return 0;
}
