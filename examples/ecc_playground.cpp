/**
 * @file
 * Tour of the ECC substrate itself: encode/decode words with the
 * (72,64) Hsiao code, inject hardware errors, watch the controller
 * correct and report, and perform the WatchMemory scramble by hand with
 * raw kernel/controller operations.
 *
 *   build/examples/ecc_playground
 */

#include <cstdio>

#include "common/logging.h"
#include "ecc/hamming.h"
#include "ecc/scramble.h"
#include "os/machine.h"

using namespace safemem;

int
main()
{
    const EccCodec &code = defaultCodec();

    std::printf("== the (72,64) Hsiao SEC-DED code ==\n");
    std::uint64_t word = 0x123456789abcdef0ULL;
    std::uint8_t check = code.encode(word);
    std::printf("data 0x%016llx -> check byte 0x%02x\n",
                static_cast<unsigned long long>(word), check);

    EccDecodeResult r = code.decode(word ^ (1ULL << 13), check);
    std::printf("flip bit 13 : %s (corrected bit %d)\n",
                r.status == EccDecodeStatus::CorrectedSingle
                    ? "corrected" : "?",
                r.correctedBit);

    r = code.decode(word ^ 0x3, check);
    std::printf("flip 2 bits : %s\n",
                r.status == EccDecodeStatus::Uncorrectable
                    ? "uncorrectable (detected)" : "?");

    const ScramblePattern &pattern = defaultScramblePattern();
    r = code.decode(pattern.apply(word), check);
    std::printf("scramble (+bits %d,%d,%d): %s\n", pattern.bits[0],
                pattern.bits[1], pattern.bits[2],
                r.status == EccDecodeStatus::Uncorrectable
                    ? "uncorrectable (detected)" : "?");

    std::printf("\n== the controller under hardware errors ==\n");
    Machine machine;
    machine.kernel().setPanicOnHardwareError(false);
    VirtAddr buffer = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(buffer, word);
    machine.cache().flushAll();

    PhysAddr frame = machine.kernel().translate(buffer + kPageSize - 1) -
                     (kPageSize - 1);
    machine.physicalMemory().flipDataBit(frame, 7);
    std::uint64_t readback = machine.load<std::uint64_t>(buffer);
    std::printf("single-bit soft error: read back 0x%016llx, "
                "%llu corrected so far\n",
                static_cast<unsigned long long>(readback),
                static_cast<unsigned long long>(
                    machine.controller().stats().get(
                        "single_bit_corrected")));

    std::printf("\n== WatchMemory by hand ==\n");
    machine.store<std::uint64_t>(buffer, 0x1111222233334444ULL);
    machine.kernel().watchMemory(buffer, kCacheLineSize);
    std::printf("memory now 0x%016llx (scrambled), check byte intact\n",
                static_cast<unsigned long long>(
                    machine.controller().peekWord(frame)));

    machine.kernel().registerEccFaultHandler(
        [&](const UserEccFault &fault) {
            std::printf("fault! vaddr=0x%llx word=%d -> disabling "
                        "watch\n",
                        static_cast<unsigned long long>(fault.vaddr),
                        fault.wordIndex);
            machine.kernel().disableWatchMemory(
                alignDown(fault.vaddr, kCacheLineSize), kCacheLineSize);
            return FaultDecision::Handled;
        });

    std::uint64_t value = machine.load<std::uint64_t>(buffer);
    std::printf("first access returned 0x%016llx after the fault\n",
                static_cast<unsigned long long>(value));

    std::printf("\n== scrubbing ==\n");
    machine.kernel().enableScrubbing(1'000'000);
    machine.physicalMemory().flipDataBit(frame + 8, 3);
    machine.compute(2'000'000);
    machine.kernel().tick();
    std::printf("scrub pass done: %llu single-bit errors healed in "
                "total\n",
                static_cast<unsigned long long>(
                    machine.controller().stats().get(
                        "single_bit_corrected")));
    return 0;
}
