/**
 * @file
 * Production deployment walk-through: SafeMem coexisting with the
 * machine's day job — background ECC scrubbing, real hardware memory
 * errors striking watched lines, and memory pressure swapping watched
 * pages out — while still catching a slow leak.
 *
 *   build/examples/production_monitor
 */

#include <cstdio>
#include <deque>

#include "alloc/heap_allocator.h"
#include "common/random.h"
#include "common/shadow_stack.h"
#include "os/machine.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

using namespace safemem;

int
main()
{
    MachineConfig machine_config;
    machine_config.memoryBytes = 8u << 20;
    machine_config.tickInterval = 64;
    Machine machine(machine_config);
    machine.kernel().setPanicOnHardwareError(false);

    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    backend.installScrubHooks();
    backend.installSwapHooks();

    // Production choice: let watched pages swap (paper §2.2.2's
    // proposed policy) instead of pinning them.
    machine.kernel().setSwapWatchPolicy(SwapWatchPolicy::UnwatchRewatch);

    SafeMemConfig config;
    config.warmupTime = 200'000;
    config.checkingPeriod = 10'000;
    config.minStableTime = 80'000;
    config.leakReportThreshold = 600'000;
    config.suspectCooldown = 100'000;
    SafeMemTool safemem(machine, allocator, backend, config);
    ShadowStack stack;

    // Background scrubbing, as a server with Correct-and-Scrub enables.
    machine.kernel().enableScrubbing(6'000'000);

    std::printf("running a session server with scrubbing, hardware "
                "faults and swapping...\n");

    Rng rng(7);
    std::deque<std::pair<VirtAddr, std::uint64_t>> sessions;
    std::uint64_t hw_errors_injected = 0;
    for (std::uint64_t request = 0; request < 3000; ++request) {
        // Close old sessions.
        while (!sessions.empty() && sessions.front().second <= request) {
            safemem.toolFree(sessions.front().first);
            sessions.pop_front();
        }

        // Open a session; the bug: 3% of sessions are never closed.
        FrameGuard frame(stack, 0x910000);
        VirtAddr session = safemem.toolAlloc(128, stack, 1);
        machine.store<std::uint64_t>(session, request);
        machine.compute(8'000);
        if (rng.chance(0.03))
            continue; // leaked: never queued for closing
        sessions.emplace_back(session, request + rng.range(2, 10));

        // Occasionally a cosmic ray flips a bit somewhere in DRAM —
        // sometimes right under a watched line.
        if (request % 500 == 250) {
            PhysAddr victim =
                alignDown(rng.next() % (8u << 20), kEccGroupSize);
            machine.physicalMemory().flipDataBit(
                victim, static_cast<int>(rng.range(0, 63)));
            ++hw_errors_injected;
        }

        // Memory pressure: the kernel swaps out a cold page now and
        // then; watched pages survive thanks to the swap hooks.
        if (request % 400 == 399 && !sessions.empty())
            machine.kernel().swapOutPage(sessions.front().first);
    }
    while (!sessions.empty()) {
        safemem.toolFree(sessions.front().first);
        sessions.pop_front();
    }
    safemem.finish();

    std::printf("\nafter 3000 requests:\n");
    std::printf("  hardware bit flips injected     %llu\n",
                static_cast<unsigned long long>(hw_errors_injected));
    std::printf("  corrected by the controller     %llu\n",
                static_cast<unsigned long long>(
                    machine.controller().stats().get(
                        "single_bit_corrected")));
    std::printf("  hw errors found under watches   %llu\n",
                static_cast<unsigned long long>(
                    backend.stats().get("hardware_errors_detected")));
    std::printf("  scrub passes                    %llu\n",
                static_cast<unsigned long long>(
                    machine.kernel().stats().get("scrub_passes")));
    std::printf("  pages swapped out / in          %llu / %llu\n",
                static_cast<unsigned long long>(
                    machine.kernel().stats().get("pages_swapped_out")),
                static_cast<unsigned long long>(
                    machine.kernel().stats().get("pages_swapped_in")));
    std::printf("  watches parked across swaps     %llu\n",
                static_cast<unsigned long long>(
                    backend.stats().get("regions_swap_parked")));
    std::printf("  suspects pruned                 %llu\n",
                static_cast<unsigned long long>(
                    safemem.leakDetector().prunedSuspects()));

    std::printf("\nleak reports:\n");
    for (const LeakReport &report : safemem.leakDetector().reports()) {
        std::printf("  %s-leak: %llu-byte session objects, %llu live at "
                    "report time\n",
                    report.kind == LeakKind::Always ? "always"
                                                    : "sometimes",
                    static_cast<unsigned long long>(report.objectSize),
                    static_cast<unsigned long long>(report.liveCount));
    }
    if (safemem.leakDetector().reports().empty())
        std::printf("  (none)\n");

    std::printf("\noverhead: %.2f%% of %llu total cycles\n",
                100.0 *
                    static_cast<double>(machine.clock().overheadCycles()) /
                    static_cast<double>(machine.clock().now()),
                static_cast<unsigned long long>(machine.clock().now()));
    return 0;
}
