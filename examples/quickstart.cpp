/**
 * @file
 * Quickstart: assemble the simulated machine, attach SafeMem, and catch
 * one leak and one buffer overflow — the whole public API in ~80 lines.
 *
 *   build/examples/quickstart
 */

#include <cstdio>

#include "alloc/heap_allocator.h"
#include "common/shadow_stack.h"
#include "os/machine.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

using namespace safemem;

int
main()
{
    // 1. The substrate: a machine with ECC DRAM, a data cache, and a
    //    kernel providing the WatchMemory/DisableWatchMemory syscalls.
    Machine machine;
    HeapAllocator allocator(machine);

    // 2. The ECC watch backend: SafeMem's user-level library half.
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    backend.installScrubHooks();

    // 3. SafeMem itself, interposing on the allocator. Thresholds are
    //    shortened so this tiny demo triggers them quickly.
    SafeMemConfig config;
    config.warmupTime = 10'000;
    config.checkingPeriod = 1'000;
    config.minStableTime = 5'000;
    config.aleakLiveThreshold = 16;
    config.aleakRecentWindow = 500'000;
    config.leakReportThreshold = 200'000;
    SafeMemTool safemem(machine, allocator, backend, config);

    ShadowStack stack;

    // --- A buffer overflow, caught by the guard padding -------------
    {
        FrameGuard frame(stack, 0x401000);
        VirtAddr buffer = safemem.toolAlloc(128, stack, /*site=*/1);
        std::printf("allocated 128-byte buffer at 0x%llx\n",
                    static_cast<unsigned long long>(buffer));

        // Off-by-one loop writes one word past the end.
        for (std::size_t off = 0; off <= 128; off += 8)
            machine.store<std::uint64_t>(buffer + off, off);
        safemem.toolFree(buffer);
    }

    // --- A continuous leak, caught by lifetime analysis -------------
    {
        FrameGuard frame(stack, 0x402000);
        for (int request = 0; request < 64; ++request) {
            VirtAddr response = safemem.toolAlloc(256, stack, /*site=*/2);
            machine.store<std::uint64_t>(response, request);
            machine.compute(20'000); // handle the request
            // Bug: the response buffer is never freed.
            (void)response;
        }
        machine.compute(400'000); // the server keeps running...
        VirtAddr poke = safemem.toolAlloc(16, stack, 3);
        safemem.toolFree(poke); // allocation activity drives detection
    }

    safemem.finish();

    // 4. Read the reports.
    std::printf("\ncorruption reports:\n");
    for (const CorruptionReport &report :
         safemem.corruptionDetector().reports()) {
        std::printf("  %s: buffer 0x%llx (size %llu), illegal access "
                    "at 0x%llx\n",
                    corruptionKindName(report.kind),
                    static_cast<unsigned long long>(report.userAddr),
                    static_cast<unsigned long long>(report.objectSize),
                    static_cast<unsigned long long>(report.faultAddr));
    }

    std::printf("\nleak reports:\n");
    for (const LeakReport &report : safemem.leakDetector().reports()) {
        std::printf("  %s-leak: %llu live objects of %llu bytes "
                    "(call-stack signature 0x%llx)\n",
                    report.kind == LeakKind::Always ? "always"
                                                    : "sometimes",
                    static_cast<unsigned long long>(report.liveCount),
                    static_cast<unsigned long long>(report.objectSize),
                    static_cast<unsigned long long>(report.signature));
    }

    std::printf("\ntotal monitoring overhead: %llu of %llu cycles "
                "(%.2f%%)\n",
                static_cast<unsigned long long>(
                    machine.clock().overheadCycles()),
                static_cast<unsigned long long>(machine.clock().now()),
                100.0 *
                    static_cast<double>(machine.clock().overheadCycles()) /
                    static_cast<double>(machine.clock().now()));
    return 0;
}
