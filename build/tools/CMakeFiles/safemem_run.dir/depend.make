# Empty dependencies file for safemem_run.
# This may be replaced when dependencies are built.
