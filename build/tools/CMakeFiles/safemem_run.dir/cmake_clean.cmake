file(REMOVE_RECURSE
  "CMakeFiles/safemem_run.dir/safemem_run.cc.o"
  "CMakeFiles/safemem_run.dir/safemem_run.cc.o.d"
  "safemem_run"
  "safemem_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
