file(REMOVE_RECURSE
  "CMakeFiles/safemem_ecc.dir/hamming.cc.o"
  "CMakeFiles/safemem_ecc.dir/hamming.cc.o.d"
  "CMakeFiles/safemem_ecc.dir/scramble.cc.o"
  "CMakeFiles/safemem_ecc.dir/scramble.cc.o.d"
  "libsafemem_ecc.a"
  "libsafemem_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
