# Empty dependencies file for safemem_ecc.
# This may be replaced when dependencies are built.
