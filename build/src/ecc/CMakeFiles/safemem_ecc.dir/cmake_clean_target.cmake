file(REMOVE_RECURSE
  "libsafemem_ecc.a"
)
