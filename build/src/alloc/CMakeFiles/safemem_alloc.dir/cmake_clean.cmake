file(REMOVE_RECURSE
  "CMakeFiles/safemem_alloc.dir/heap_allocator.cc.o"
  "CMakeFiles/safemem_alloc.dir/heap_allocator.cc.o.d"
  "libsafemem_alloc.a"
  "libsafemem_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
