# Empty compiler generated dependencies file for safemem_alloc.
# This may be replaced when dependencies are built.
