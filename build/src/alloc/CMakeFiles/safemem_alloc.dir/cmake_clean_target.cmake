file(REMOVE_RECURSE
  "libsafemem_alloc.a"
)
