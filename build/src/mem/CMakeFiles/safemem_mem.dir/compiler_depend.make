# Empty compiler generated dependencies file for safemem_mem.
# This may be replaced when dependencies are built.
