file(REMOVE_RECURSE
  "libsafemem_mem.a"
)
