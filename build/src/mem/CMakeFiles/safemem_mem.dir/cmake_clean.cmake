file(REMOVE_RECURSE
  "CMakeFiles/safemem_mem.dir/memory_controller.cc.o"
  "CMakeFiles/safemem_mem.dir/memory_controller.cc.o.d"
  "CMakeFiles/safemem_mem.dir/physical_memory.cc.o"
  "CMakeFiles/safemem_mem.dir/physical_memory.cc.o.d"
  "libsafemem_mem.a"
  "libsafemem_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
