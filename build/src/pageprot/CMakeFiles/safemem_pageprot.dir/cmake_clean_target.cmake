file(REMOVE_RECURSE
  "libsafemem_pageprot.a"
)
