# Empty compiler generated dependencies file for safemem_pageprot.
# This may be replaced when dependencies are built.
