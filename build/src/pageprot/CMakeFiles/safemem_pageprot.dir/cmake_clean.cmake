file(REMOVE_RECURSE
  "CMakeFiles/safemem_pageprot.dir/page_watch.cc.o"
  "CMakeFiles/safemem_pageprot.dir/page_watch.cc.o.d"
  "libsafemem_pageprot.a"
  "libsafemem_pageprot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_pageprot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
