file(REMOVE_RECURSE
  "CMakeFiles/safemem_cache.dir/cache.cc.o"
  "CMakeFiles/safemem_cache.dir/cache.cc.o.d"
  "libsafemem_cache.a"
  "libsafemem_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
