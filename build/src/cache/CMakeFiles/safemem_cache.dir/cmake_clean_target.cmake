file(REMOVE_RECURSE
  "libsafemem_cache.a"
)
