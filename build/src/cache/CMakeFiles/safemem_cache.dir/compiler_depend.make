# Empty compiler generated dependencies file for safemem_cache.
# This may be replaced when dependencies are built.
