file(REMOVE_RECURSE
  "libsafemem_workloads.a"
)
