
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/app.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/app.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/app.cc.o.d"
  "/root/repo/src/workloads/cli.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/cli.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/cli.cc.o.d"
  "/root/repo/src/workloads/components.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/components.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/components.cc.o.d"
  "/root/repo/src/workloads/driver.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/driver.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/driver.cc.o.d"
  "/root/repo/src/workloads/env.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/env.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/env.cc.o.d"
  "/root/repo/src/workloads/gzip_app.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/gzip_app.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/gzip_app.cc.o.d"
  "/root/repo/src/workloads/proftpd.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/proftpd.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/proftpd.cc.o.d"
  "/root/repo/src/workloads/report_writer.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/report_writer.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/report_writer.cc.o.d"
  "/root/repo/src/workloads/squid.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/squid.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/squid.cc.o.d"
  "/root/repo/src/workloads/tar_app.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/tar_app.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/tar_app.cc.o.d"
  "/root/repo/src/workloads/ypserv.cc" "src/workloads/CMakeFiles/safemem_workloads.dir/ypserv.cc.o" "gcc" "src/workloads/CMakeFiles/safemem_workloads.dir/ypserv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safemem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/safemem_os.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/safemem_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/safemem/CMakeFiles/safemem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pageprot/CMakeFiles/safemem_pageprot.dir/DependInfo.cmake"
  "/root/repo/build/src/purify/CMakeFiles/safemem_purify.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/safemem_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/safemem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/safemem_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
