file(REMOVE_RECURSE
  "CMakeFiles/safemem_workloads.dir/app.cc.o"
  "CMakeFiles/safemem_workloads.dir/app.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/cli.cc.o"
  "CMakeFiles/safemem_workloads.dir/cli.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/components.cc.o"
  "CMakeFiles/safemem_workloads.dir/components.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/driver.cc.o"
  "CMakeFiles/safemem_workloads.dir/driver.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/env.cc.o"
  "CMakeFiles/safemem_workloads.dir/env.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/gzip_app.cc.o"
  "CMakeFiles/safemem_workloads.dir/gzip_app.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/proftpd.cc.o"
  "CMakeFiles/safemem_workloads.dir/proftpd.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/report_writer.cc.o"
  "CMakeFiles/safemem_workloads.dir/report_writer.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/squid.cc.o"
  "CMakeFiles/safemem_workloads.dir/squid.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/tar_app.cc.o"
  "CMakeFiles/safemem_workloads.dir/tar_app.cc.o.d"
  "CMakeFiles/safemem_workloads.dir/ypserv.cc.o"
  "CMakeFiles/safemem_workloads.dir/ypserv.cc.o.d"
  "libsafemem_workloads.a"
  "libsafemem_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
