# Empty compiler generated dependencies file for safemem_workloads.
# This may be replaced when dependencies are built.
