file(REMOVE_RECURSE
  "CMakeFiles/safemem_core.dir/callstack.cc.o"
  "CMakeFiles/safemem_core.dir/callstack.cc.o.d"
  "CMakeFiles/safemem_core.dir/corruption_detector.cc.o"
  "CMakeFiles/safemem_core.dir/corruption_detector.cc.o.d"
  "CMakeFiles/safemem_core.dir/leak_detector.cc.o"
  "CMakeFiles/safemem_core.dir/leak_detector.cc.o.d"
  "CMakeFiles/safemem_core.dir/safemem.cc.o"
  "CMakeFiles/safemem_core.dir/safemem.cc.o.d"
  "CMakeFiles/safemem_core.dir/watch_manager.cc.o"
  "CMakeFiles/safemem_core.dir/watch_manager.cc.o.d"
  "libsafemem_core.a"
  "libsafemem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
