file(REMOVE_RECURSE
  "libsafemem_core.a"
)
