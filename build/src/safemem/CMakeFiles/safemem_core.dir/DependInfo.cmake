
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safemem/callstack.cc" "src/safemem/CMakeFiles/safemem_core.dir/callstack.cc.o" "gcc" "src/safemem/CMakeFiles/safemem_core.dir/callstack.cc.o.d"
  "/root/repo/src/safemem/corruption_detector.cc" "src/safemem/CMakeFiles/safemem_core.dir/corruption_detector.cc.o" "gcc" "src/safemem/CMakeFiles/safemem_core.dir/corruption_detector.cc.o.d"
  "/root/repo/src/safemem/leak_detector.cc" "src/safemem/CMakeFiles/safemem_core.dir/leak_detector.cc.o" "gcc" "src/safemem/CMakeFiles/safemem_core.dir/leak_detector.cc.o.d"
  "/root/repo/src/safemem/safemem.cc" "src/safemem/CMakeFiles/safemem_core.dir/safemem.cc.o" "gcc" "src/safemem/CMakeFiles/safemem_core.dir/safemem.cc.o.d"
  "/root/repo/src/safemem/watch_manager.cc" "src/safemem/CMakeFiles/safemem_core.dir/watch_manager.cc.o" "gcc" "src/safemem/CMakeFiles/safemem_core.dir/watch_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safemem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/safemem_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/safemem_os.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/safemem_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/safemem_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/safemem_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
