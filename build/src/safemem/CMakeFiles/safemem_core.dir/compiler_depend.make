# Empty compiler generated dependencies file for safemem_core.
# This may be replaced when dependencies are built.
