
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/purify/purify.cc" "src/purify/CMakeFiles/safemem_purify.dir/purify.cc.o" "gcc" "src/purify/CMakeFiles/safemem_purify.dir/purify.cc.o.d"
  "/root/repo/src/purify/shadow_memory.cc" "src/purify/CMakeFiles/safemem_purify.dir/shadow_memory.cc.o" "gcc" "src/purify/CMakeFiles/safemem_purify.dir/shadow_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safemem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/safemem_os.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/safemem_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/safemem/CMakeFiles/safemem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/safemem_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/safemem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/safemem_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
