# Empty dependencies file for safemem_purify.
# This may be replaced when dependencies are built.
