file(REMOVE_RECURSE
  "libsafemem_purify.a"
)
