file(REMOVE_RECURSE
  "CMakeFiles/safemem_purify.dir/purify.cc.o"
  "CMakeFiles/safemem_purify.dir/purify.cc.o.d"
  "CMakeFiles/safemem_purify.dir/shadow_memory.cc.o"
  "CMakeFiles/safemem_purify.dir/shadow_memory.cc.o.d"
  "libsafemem_purify.a"
  "libsafemem_purify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_purify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
