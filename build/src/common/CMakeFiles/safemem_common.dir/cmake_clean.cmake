file(REMOVE_RECURSE
  "CMakeFiles/safemem_common.dir/logging.cc.o"
  "CMakeFiles/safemem_common.dir/logging.cc.o.d"
  "libsafemem_common.a"
  "libsafemem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
