file(REMOVE_RECURSE
  "libsafemem_common.a"
)
