# Empty compiler generated dependencies file for safemem_common.
# This may be replaced when dependencies are built.
