# Empty compiler generated dependencies file for safemem_os.
# This may be replaced when dependencies are built.
