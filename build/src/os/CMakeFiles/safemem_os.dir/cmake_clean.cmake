file(REMOVE_RECURSE
  "CMakeFiles/safemem_os.dir/kernel.cc.o"
  "CMakeFiles/safemem_os.dir/kernel.cc.o.d"
  "CMakeFiles/safemem_os.dir/machine.cc.o"
  "CMakeFiles/safemem_os.dir/machine.cc.o.d"
  "CMakeFiles/safemem_os.dir/page_table.cc.o"
  "CMakeFiles/safemem_os.dir/page_table.cc.o.d"
  "libsafemem_os.a"
  "libsafemem_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safemem_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
