file(REMOVE_RECURSE
  "libsafemem_os.a"
)
