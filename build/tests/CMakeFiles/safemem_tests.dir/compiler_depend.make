# Empty compiler generated dependencies file for safemem_tests.
# This may be replaced when dependencies are built.
