
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocator.cc" "tests/CMakeFiles/safemem_tests.dir/test_allocator.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_allocator.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/safemem_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_callstack.cc" "tests/CMakeFiles/safemem_tests.dir/test_callstack.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_callstack.cc.o.d"
  "/root/repo/tests/test_cli.cc" "tests/CMakeFiles/safemem_tests.dir/test_cli.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_cli.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/safemem_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_corruption_detector.cc" "tests/CMakeFiles/safemem_tests.dir/test_corruption_detector.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_corruption_detector.cc.o.d"
  "/root/repo/tests/test_detection_properties.cc" "tests/CMakeFiles/safemem_tests.dir/test_detection_properties.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_detection_properties.cc.o.d"
  "/root/repo/tests/test_env_components.cc" "tests/CMakeFiles/safemem_tests.dir/test_env_components.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_env_components.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/safemem_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fault_injection.cc" "tests/CMakeFiles/safemem_tests.dir/test_fault_injection.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_fault_injection.cc.o.d"
  "/root/repo/tests/test_hamming.cc" "tests/CMakeFiles/safemem_tests.dir/test_hamming.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_hamming.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/safemem_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/safemem_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_leak_detector.cc" "tests/CMakeFiles/safemem_tests.dir/test_leak_detector.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_leak_detector.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/safemem_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_main.cc" "tests/CMakeFiles/safemem_tests.dir/test_main.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_main.cc.o.d"
  "/root/repo/tests/test_memory_controller.cc" "tests/CMakeFiles/safemem_tests.dir/test_memory_controller.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_memory_controller.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/safemem_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_page_watch.cc" "tests/CMakeFiles/safemem_tests.dir/test_page_watch.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_page_watch.cc.o.d"
  "/root/repo/tests/test_purify.cc" "tests/CMakeFiles/safemem_tests.dir/test_purify.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_purify.cc.o.d"
  "/root/repo/tests/test_safemem_tool.cc" "tests/CMakeFiles/safemem_tests.dir/test_safemem_tool.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_safemem_tool.cc.o.d"
  "/root/repo/tests/test_scramble.cc" "tests/CMakeFiles/safemem_tests.dir/test_scramble.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_scramble.cc.o.d"
  "/root/repo/tests/test_stability_metric.cc" "tests/CMakeFiles/safemem_tests.dir/test_stability_metric.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_stability_metric.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/safemem_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_table_regression.cc" "tests/CMakeFiles/safemem_tests.dir/test_table_regression.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_table_regression.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/safemem_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_watch_edge_cases.cc" "tests/CMakeFiles/safemem_tests.dir/test_watch_edge_cases.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_watch_edge_cases.cc.o.d"
  "/root/repo/tests/test_watch_manager.cc" "tests/CMakeFiles/safemem_tests.dir/test_watch_manager.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_watch_manager.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/safemem_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/safemem_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/safemem_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/safemem/CMakeFiles/safemem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pageprot/CMakeFiles/safemem_pageprot.dir/DependInfo.cmake"
  "/root/repo/build/src/purify/CMakeFiles/safemem_purify.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/safemem_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/safemem_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/safemem_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/safemem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/safemem_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/safemem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
