file(REMOVE_RECURSE
  "CMakeFiles/corruption_guard.dir/corruption_guard.cpp.o"
  "CMakeFiles/corruption_guard.dir/corruption_guard.cpp.o.d"
  "corruption_guard"
  "corruption_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruption_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
