# Empty compiler generated dependencies file for corruption_guard.
# This may be replaced when dependencies are built.
