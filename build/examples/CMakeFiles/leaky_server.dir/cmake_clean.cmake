file(REMOVE_RECURSE
  "CMakeFiles/leaky_server.dir/leaky_server.cpp.o"
  "CMakeFiles/leaky_server.dir/leaky_server.cpp.o.d"
  "leaky_server"
  "leaky_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaky_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
