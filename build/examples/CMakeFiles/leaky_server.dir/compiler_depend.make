# Empty compiler generated dependencies file for leaky_server.
# This may be replaced when dependencies are built.
