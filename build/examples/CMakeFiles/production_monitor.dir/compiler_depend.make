# Empty compiler generated dependencies file for production_monitor.
# This may be replaced when dependencies are built.
