file(REMOVE_RECURSE
  "CMakeFiles/production_monitor.dir/production_monitor.cpp.o"
  "CMakeFiles/production_monitor.dir/production_monitor.cpp.o.d"
  "production_monitor"
  "production_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
