file(REMOVE_RECURSE
  "../bench/bench_figure2_watchmem"
  "../bench/bench_figure2_watchmem.pdb"
  "CMakeFiles/bench_figure2_watchmem.dir/bench_figure2_watchmem.cc.o"
  "CMakeFiles/bench_figure2_watchmem.dir/bench_figure2_watchmem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_watchmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
