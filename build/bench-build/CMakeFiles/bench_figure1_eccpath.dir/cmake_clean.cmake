file(REMOVE_RECURSE
  "../bench/bench_figure1_eccpath"
  "../bench/bench_figure1_eccpath.pdb"
  "CMakeFiles/bench_figure1_eccpath.dir/bench_figure1_eccpath.cc.o"
  "CMakeFiles/bench_figure1_eccpath.dir/bench_figure1_eccpath.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_eccpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
