file(REMOVE_RECURSE
  "../bench/bench_table2_syscalls"
  "../bench/bench_table2_syscalls.pdb"
  "CMakeFiles/bench_table2_syscalls.dir/bench_table2_syscalls.cc.o"
  "CMakeFiles/bench_table2_syscalls.dir/bench_table2_syscalls.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
