# Empty dependencies file for bench_table4_memwaste.
# This may be replaced when dependencies are built.
