file(REMOVE_RECURSE
  "../bench/bench_table4_memwaste"
  "../bench/bench_table4_memwaste.pdb"
  "CMakeFiles/bench_table4_memwaste.dir/bench_table4_memwaste.cc.o"
  "CMakeFiles/bench_table4_memwaste.dir/bench_table4_memwaste.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_memwaste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
