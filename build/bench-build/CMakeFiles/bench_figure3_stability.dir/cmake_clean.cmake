file(REMOVE_RECURSE
  "../bench/bench_figure3_stability"
  "../bench/bench_figure3_stability.pdb"
  "CMakeFiles/bench_figure3_stability.dir/bench_figure3_stability.cc.o"
  "CMakeFiles/bench_figure3_stability.dir/bench_figure3_stability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
