# Empty dependencies file for bench_table5_falsepos.
# This may be replaced when dependencies are built.
