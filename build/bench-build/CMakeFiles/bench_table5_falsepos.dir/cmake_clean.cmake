file(REMOVE_RECURSE
  "../bench/bench_table5_falsepos"
  "../bench/bench_table5_falsepos.pdb"
  "CMakeFiles/bench_table5_falsepos.dir/bench_table5_falsepos.cc.o"
  "CMakeFiles/bench_table5_falsepos.dir/bench_table5_falsepos.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_falsepos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
