/**
 * @file
 * Offline analyzer for flight-recorder trace files: reads the binary
 * sections a `--trace FILE` run appended (one per run, labelled) and
 * prints one JSON object per record to stdout — grep/jq-friendly
 * JSON-lines, never parsed back by the simulator itself.
 *
 * usage: trace_dump FILE...
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "trace/trace.h"

using namespace safemem;

namespace {

/** Dump every section of @p path; @return false on a malformed file. */
bool
dumpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "trace_dump: cannot open %s\n", path.c_str());
        return false;
    }

    std::vector<TraceSection> sections;
    try {
        sections = readTraceSections(is);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "trace_dump: %s: %s\n", path.c_str(),
                     err.what());
        return false;
    }

    for (const TraceSection &section : sections) {
        for (std::size_t i = 0; i < section.records.size(); ++i) {
            std::string line = traceRecordJsonLine(section, i);
            std::fwrite(line.data(), 1, line.size(), stdout);
            std::fputc('\n', stdout);
        }
        if (section.emitted > section.records.size())
            std::fprintf(stderr,
                         "trace_dump: %s: section '%s' dropped %llu of "
                         "%llu events to ring wrap\n",
                         path.c_str(), section.label.c_str(),
                         static_cast<unsigned long long>(
                             section.emitted - section.records.size()),
                         static_cast<unsigned long long>(section.emitted));
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
        return 2;
    }

    bool ok = true;
    for (int i = 1; i < argc; ++i)
        ok = dumpFile(argv[i]) && ok;
    return ok ? 0 : 1;
}
