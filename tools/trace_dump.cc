/**
 * @file
 * Offline analyzer for flight-recorder trace files: reads the binary
 * sections a `--trace FILE` run appended (one per run, labelled) and
 * prints one JSON object per record to stdout — grep/jq-friendly
 * JSON-lines, never parsed back by the simulator itself.
 *
 * With --summary, prints one JSON object per *section* instead
 * (per-event counts and the cycle span of the retained records), which
 * makes long multi-process traces skimmable before diving into records.
 *
 * usage: trace_dump [--summary] FILE...
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "trace/trace.h"

using namespace safemem;

namespace {

/** Dump every section of @p path; @return false on a malformed file. */
bool
dumpFile(const std::string &path, bool summary)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "trace_dump: cannot open %s\n", path.c_str());
        return false;
    }

    std::vector<TraceSection> sections;
    try {
        sections = readTraceSections(is);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "trace_dump: %s: %s\n", path.c_str(),
                     err.what());
        return false;
    }

    for (const TraceSection &section : sections) {
        if (summary) {
            std::string line = traceSectionSummaryJson(section);
            std::fwrite(line.data(), 1, line.size(), stdout);
            std::fputc('\n', stdout);
            continue;
        }
        for (std::size_t i = 0; i < section.records.size(); ++i) {
            std::string line = traceRecordJsonLine(section, i);
            std::fwrite(line.data(), 1, line.size(), stdout);
            std::fputc('\n', stdout);
        }
        if (section.emitted > section.records.size())
            std::fprintf(stderr,
                         "trace_dump: %s: section '%s' dropped %llu of "
                         "%llu events to ring wrap\n",
                         path.c_str(), section.label.c_str(),
                         static_cast<unsigned long long>(
                             section.emitted - section.records.size()),
                         static_cast<unsigned long long>(section.emitted));
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool summary = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--summary") == 0)
            summary = true;
        else
            files.push_back(argv[i]);
    }
    if (files.empty()) {
        std::fprintf(stderr, "usage: %s [--summary] FILE...\n", argv[0]);
        return 2;
    }

    bool ok = true;
    for (const std::string &file : files)
        ok = dumpFile(file, summary) && ok;
    return ok ? 0 : 1;
}
