/**
 * @file
 * Command-line harness: run any evaluation workload under any tool
 * configuration and print the monitoring report.
 *
 *   build/tools/safemem_run squid1 --buggy
 *   build/tools/safemem_run gzip --tool purify --overhead
 *   build/tools/safemem_run ypserv1 --buggy --stats=leak
 *   build/tools/safemem_run all --overhead --workers 0   # parallel sweep
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/cli.h"

int
main(int argc, char **argv)
{
    safemem::setLogQuiet(true);
    std::vector<std::string> args(argv + 1, argv + argc);
    safemem::CliParse parse = safemem::parseCliArguments(args);
    if (!parse.options) {
        std::fprintf(stderr, "%s", parse.message.c_str());
        return 1;
    }
    std::string report = safemem::runCli(*parse.options);
    std::fputs(report.c_str(), stdout);
    return 0;
}
