#!/usr/bin/env python3
"""Repo-specific static lint for the SafeMem simulator.

Rules (scoped to ``src/`` unless noted):

  raw-allocation   No raw ``new`` / ``delete`` / libc heap calls outside
                   ``src/alloc/``.  All simulated-heap traffic must go
                   through HeapAllocator, and host-side ownership through
                   smart pointers / containers, so the tools' view of the
                   heap is complete.
  stream-output    No ``std::cout`` outside ``src/workloads/``; simulator
                   layers report through common/logging so output stays
                   structured and silenceable in tests.
  include-hygiene  Every header carries ``#pragma once``, and ``src/common``
                   (the base layer) includes nothing but other ``common/``
                   headers.
  header-docs      Every public header opens with a Doxygen ``@file`` block.
  string-keyed-stats  No string-keyed ``stats_.add("...")`` (or set/maxOf/
                   get) under ``src/cache/`` or ``src/mem/``: those sit on
                   the per-access hot path and must use enum-indexed slots
                   (``stats_.add(CacheStat::Hits)``).
  mutable-globals  No new non-const namespace-scope mutable variables under
                   ``src/``: process-wide state breaks the "a run is a pure
                   function of its RunSpec" contract that the parallel run
                   matrix depends on.  ``const``/``constexpr`` data and
                   ``thread_local`` slots are fine; the deprecated quiet
                   flag is allowlisted.
  string-trace-payload  No string literal inside a ``SAFEMEM_TRACE_EMIT``
                   (or ``...trace->emit(...)``) argument list under
                   ``src/``: flight-recorder payloads are enum IDs and
                   integer words only, so the emit path never formats and
                   the binary record stays fixed-size.
  unguarded-shared-state  A class that owns a host mutex (``Mutex`` /
                   ``std::mutex``) must name the guarding capability of
                   every other mutable data member (``GUARDED_BY(...)`` /
                   ``PT_GUARDED_BY(...)``) or carry an explicit
                   ``// lint: unguarded`` waiver on the member's line.
                   const/constexpr/static members and self-synchronising
                   types (atomics, condition variables, Mutex/Capability
                   themselves) are exempt.  Textual approximation: members
                   whose declaration spells parentheses (e.g.
                   ``std::function`` fields without an annotation) look
                   like method declarations and are not inspected.
  lock-order       Lock acquisitions inside one function must follow the
                   declared hierarchy (outermost first): watch-manager
                   park -> bank lock -> memory-bus lock.  Acquiring a
                   lock at the same or an outer level while an inner one
                   is held (including double acquisition) is flagged;
                   ``// lint: lock-order`` on the acquisition line waives
                   a deliberate exception.  Checked textually per
                   function: explicit pairs (``lockBus``/``unlockBus``,
                   ``parkAllForScrub``/``restoreAfterScrub``) and scoped
                   guards (``BusLockGuard``/``BankLockGuard``), with
                   scope-exit treated as release.
  bank-encapsulation  No direct whole-bus locking outside ``src/mem/``:
                   ``lockBus()``/``unlockBus()`` call sites, the
                   ``BusLockGuard``, and the controller's private
                   ``busLocked_`` flag are the banks' own roll-up
                   machinery.  Code elsewhere locks the banks it spans
                   (``BankLockGuard`` / ``BankSetLockGuard`` over
                   ``bankMaskForSpan``); the read-only ``busLocked()``
                   query stays fine.
  toolkind-plumbing  Every ``ToolKind`` enumerator declared in
                   ``src/workloads/driver.h`` must be named (as
                   ``ToolKind::<Name>``) in the driver's name table and
                   tool-stack factory (``driver.cc``), the CLI parser
                   (``cli.cc``), and the report writer's findings
                   predicates (``report_writer.cc``).  A tool kind that
                   compiles but cannot be selected, named, or summarised
                   is half-plumbed; this rule catches the forgotten
                   mirror before the -Werror switch coverage can (which
                   only guards files that already switch on the enum).
  codeword-arithmetic  No raw ``codewordBytes`` arithmetic (adjacent
                   arithmetic/bit operators, or ``alignUp``/``alignDown``
                   over the field) outside ``src/mem/`` and ``src/ecc/``:
                   codeword framing — what a codeword covers, where its
                   boundaries fall — is the protection-geometry seam's
                   business.  Other layers treat ProtectionGeometry as an
                   opaque run parameter: compare it, name it via
                   ``geometryName()``/``geometryLabel()``, pass it whole.
  single-space-kernel  No legacy single-address-space kernel accessors
                   (``kernel().pageTable()`` / ``kernel().tlb()``) outside
                   ``src/os/``: the kernel is multi-process now, and those
                   delegate to *whichever process is current*.  Code
                   elsewhere must name the process it means via the
                   Process seam (``kernel().currentProcess().tlb()`` or
                   ``kernel().process(pid).pageTable()``).

Usage:
  lint.py [--root DIR]   lint the tree rooted at DIR (default: repo root)
  lint.py --self-test    prove each rule fires on a seeded violation

Exit status is non-zero when violations (or self-test failures) are found.
"""

import argparse
import os
import re
import sys
import tempfile

LINT_DIRS = ["src"]
CC_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")


def strip_comments_and_strings(text):
    """Replace comment/string contents with spaces, preserving line breaks.

    Keeps offsets stable so reported line numbers match the original file.
    String and char literals are blanked so identifiers inside them cannot
    trip rules; escape sequences are honoured.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RAW_ALLOC_PATTERNS = [
    (re.compile(r"(?<!\boperator )\bnew\b(?!\s*\()"), "raw 'new'"),
    (re.compile(r"\bnew\s*\("), "raw placement/'new('"),
    (re.compile(r"(?<![=.\w])\s*\bdelete\b(?!\s*;)"), "raw 'delete'"),
    (re.compile(r"\bmalloc\s*\("), "libc malloc()"),
    (re.compile(r"\bcalloc\s*\("), "libc calloc()"),
    (re.compile(r"\brealloc\s*\("), "libc realloc()"),
    # libc free() is not matched: the simulated allocation wrappers
    # (Env::free and friends) legitimately use the name.
]

DELETED_FN = re.compile(r"=\s*delete\b")


def check_raw_allocation(rel, stripped, violations):
    if not rel.startswith("src/") or rel.startswith("src/alloc/"):
        return
    for lineno, line in enumerate(stripped.splitlines(), 1):
        scrubbed = DELETED_FN.sub("=       ", line)
        for pattern, label in RAW_ALLOC_PATTERNS:
            if pattern.search(scrubbed):
                violations.append(Violation(
                    rel, lineno, "raw-allocation",
                    f"{label}: route heap traffic through HeapAllocator "
                    "or smart pointers"))
                break


def check_stream_output(rel, stripped, violations):
    if not rel.startswith("src/") or rel.startswith("src/workloads/"):
        return
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if re.search(r"\bstd::cout\b", line):
            violations.append(Violation(
                rel, lineno, "stream-output",
                "std::cout in a simulator layer: use common/logging"))


def check_include_hygiene(rel, raw, violations):
    # Include directives are inspected in the raw text: the path lives in
    # a string literal, which the stripper blanks. The leading-# anchor
    # keeps commented-out includes from matching.
    if not rel.startswith("src/"):
        return
    if rel.endswith((".h", ".hpp")) and "#pragma once" not in raw:
        violations.append(Violation(
            rel, 1, "include-hygiene", "header lacks '#pragma once'"))
    if rel.startswith("src/common/"):
        for lineno, line in enumerate(raw.splitlines(), 1):
            match = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if match and not match.group(1).startswith("common/"):
                violations.append(Violation(
                    rel, lineno, "include-hygiene",
                    f"common/ is the base layer; it may not include "
                    f"'{match.group(1)}'"))
    if rel.startswith("src/ecc/"):
        # The codec layer must stay machine-agnostic so one codec
        # instance can serve many machines and campaign workers: only
        # common/ (logging, rng) and sibling ecc/ headers are allowed.
        for lineno, line in enumerate(raw.splitlines(), 1):
            match = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if match and not match.group(1).startswith(("common/",
                                                        "ecc/")):
                violations.append(Violation(
                    rel, lineno, "include-hygiene",
                    f"ecc/ may only include common/ and ecc/ headers, "
                    f"not '{match.group(1)}'"))


STRING_STAT_DIRS = ("src/cache/", "src/mem/")
STRING_STAT = re.compile(r'\bstats_\s*\.\s*(add|set|maxOf|get)\s*\(\s*"')


def check_string_keyed_stats(rel, stripped, violations):
    # The stripper blanks string *contents* but keeps the quote chars, so
    # a literal first argument still shows up as `stats_.add("`.
    if not rel.startswith(STRING_STAT_DIRS):
        return
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if STRING_STAT.search(line):
            violations.append(Violation(
                rel, lineno, "string-keyed-stats",
                "per-access stats in cache/mem must use enum-indexed "
                "slots (stats_.add(CacheStat::...)), not string keys"))


# Existing process-global state, kept deliberately: the setLogQuiet()
# compatibility shim. Everything else must be per-Machine / per-run.
MUTABLE_GLOBAL_ALLOWLIST = {
    ("src/common/logging.cc", "g_defaultQuiet"),
}

# Statement openers that are never variable definitions.
MUTABLE_GLOBAL_SKIP = re.compile(
    r"^\s*(?:[#{}]|$|using\b|typedef\b|namespace\b|class\b|struct\b|"
    r"union\b|enum\b|template\b|static_assert\b|extern\b|friend\b)")

# `type name = ...;` / `type name{...};` / `type name;` with optional
# array brackets. Function declarations never match: '(' cannot appear
# between the type and the terminator.
MUTABLE_GLOBAL_DECL = re.compile(
    r"^\s*(?:static\s+|inline\s+)*"
    r"[A-Za-z_][\w:<>,\*&\s]*?\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*(?:=[^=]|\{|;)")

IMMUTABLE_KEYWORDS = re.compile(
    r"\b(?:const|constexpr|constinit|thread_local)\b")


def namespace_scope_lines(stripped):
    """1-based numbers of lines that *start* at namespace scope.

    Walks the brace structure of the stripped text. A ``{`` whose
    preceding statement fragment contains the ``namespace`` keyword
    keeps namespace scope; any other brace (function body, class,
    initializer) leaves it. Multi-line declarations are judged by their
    first line, which is where the type and name live in this codebase.
    """
    at_scope = set()
    stack = []  # True for namespace braces, False otherwise
    fragment = []  # code since the last ; { or }
    lineno = 1
    if stripped:
        at_scope.add(1)
    for c in stripped:
        if c == "\n":
            lineno += 1
            if not stack or all(stack):
                at_scope.add(lineno)
            fragment.append(" ")
        elif c == "{":
            text = "".join(fragment)
            stack.append(re.search(r"\bnamespace\b", text) is not None)
            fragment = []
        elif c == "}":
            if stack:
                stack.pop()
            fragment = []
        elif c == ";":
            fragment = []
        else:
            fragment.append(c)
    return at_scope


def check_mutable_globals(rel, stripped, violations):
    if not rel.startswith("src/"):
        return
    scope_lines = namespace_scope_lines(stripped)
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if lineno not in scope_lines:
            continue
        if MUTABLE_GLOBAL_SKIP.match(line):
            continue
        if IMMUTABLE_KEYWORDS.search(line):
            continue
        match = MUTABLE_GLOBAL_DECL.match(line)
        if not match:
            continue
        if (rel, match.group("name")) in MUTABLE_GLOBAL_ALLOWLIST:
            continue
        violations.append(Violation(
            rel, lineno, "mutable-globals",
            f"namespace-scope mutable '{match.group('name')}': runs must "
            "be pure functions of their RunSpec — keep state per-Machine "
            "or per-run (const/constexpr/thread_local are fine)"))


# A trace emit site: the SAFEMEM_TRACE_EMIT macro, or a direct emit()
# call on something trace-shaped (`trace_->emit(`, `machine.trace()->emit(`).
TRACE_EMIT_OPEN = re.compile(
    r"\bSAFEMEM_TRACE_EMIT\s*\(|"
    r"(?:\btrace\w*|\btrace\s*\(\s*\))\s*(?:->|\.)\s*emit\s*\(")


def check_string_trace_payload(rel, stripped, violations):
    # The stripper blanks string *contents* but keeps the quote chars, so
    # any literal in the argument list still shows up as a '"'.
    if not rel.startswith("src/"):
        return
    for match in TRACE_EMIT_OPEN.finditer(stripped):
        depth = 0
        end = match.end() - 1  # the opening '('
        while end < len(stripped):
            if stripped[end] == "(":
                depth += 1
            elif stripped[end] == ")":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        if '"' in stripped[match.end():end]:
            lineno = stripped.count("\n", 0, match.start()) + 1
            violations.append(Violation(
                rel, lineno, "string-trace-payload",
                "string literal in a trace emit: flight-recorder payloads "
                "are enum IDs and integer words only"))


# The legacy accessors delegate to the *current* process; outside the
# kernel's own layer that is an accident waiting for a context switch.
# `.process(pid).` / `.currentProcess().` between the kernel and the
# accessor is the sanctioned seam and must not match.
SINGLE_SPACE_KERNEL = re.compile(
    r"\bkernel(?:_|\s*\(\s*\))\s*(?:\.|->)\s*(?P<name>pageTable|tlb)\s*\(")


def check_single_space_kernel(rel, stripped, violations):
    if not rel.startswith("src/") or rel.startswith("src/os/"):
        return
    for lineno, line in enumerate(stripped.splitlines(), 1):
        match = SINGLE_SPACE_KERNEL.search(line)
        if match:
            violations.append(Violation(
                rel, lineno, "single-space-kernel",
                f"legacy kernel().{match.group('name')}() reads whichever "
                "process is current: go through the Process seam "
                "(kernel().currentProcess()/process(pid)) instead"))


# --- codeword-arithmetic ---------------------------------------------------

# ProtectionGeometry::codewordBytes fed into arithmetic — adjacent
# arithmetic/bit operators or an alignUp/alignDown call — outside the
# two layers that own codeword framing (src/mem/, src/ecc/).  Code
# elsewhere treats the geometry as an opaque run parameter: compare it,
# name it (geometryName/geometryLabel), pass it whole.  Equality tests
# against the field stay fine anywhere.
CODEWORD_ARITH_AFTER = re.compile(
    r"^\s*(?:<<|>>|[-+*/%^\[]|&(?!&)|\|(?!\|))")
CODEWORD_ARITH_BEFORE = re.compile(
    r"(?:<<|>>|[-+*/%^\[]|(?<!&)&(?!&)|(?<!\|)\|(?!\|))\s*$")
CODEWORD_ALIGN_CALL = re.compile(
    r"\balign(?:Up|Down)\s*\([^;{}]*\bcodewordBytes\b")


def check_codeword_arithmetic(rel, stripped, violations):
    if not rel.startswith("src/"):
        return
    if rel.startswith(("src/mem/", "src/ecc/")):
        return
    for lineno, line in enumerate(stripped.splitlines(), 1):
        flagged = bool(CODEWORD_ALIGN_CALL.search(line))
        if not flagged:
            for match in re.finditer(r"\bcodewordBytes\b", line):
                after = line[match.end():]
                before = line[:match.start()]
                # Walk back over the object expression the member hangs
                # off (geometry_.codewordBytes, spec->geometry.codewordBytes)
                # to find the operator in front of the whole access.
                expr = re.search(r"[A-Za-z_][\w.]*(?:->[\w.]*)*\s*$", before)
                head = before[:expr.start()] if expr else before
                if (CODEWORD_ARITH_AFTER.search(after)
                        or CODEWORD_ARITH_BEFORE.search(head)):
                    flagged = True
                    break
        if flagged:
            violations.append(Violation(
                rel, lineno, "codeword-arithmetic",
                "raw codeword-size arithmetic belongs to src/mem/ and "
                "src/ecc/; elsewhere treat ProtectionGeometry as opaque "
                "(compare it, geometryName() it, or pass it whole)"))


# --- lock-discipline rules -------------------------------------------------

# Owning one of these makes a class "mutex-owning": every other mutable
# member must say which capability guards it (or carry a waiver).
MUTEX_OWNER_MEMBER = re.compile(
    r"\b(?:safemem::)?(?:Mutex|std::mutex)\s+[A-Za-z_]\w*\s*;")

GUARD_ANNOTATION = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\(")

# Members that synchronise themselves (atomics, condition variables, the
# lock objects) or cannot be written (const/static) need no guard.
UNGUARDED_EXEMPT = re.compile(
    r"^\s*(?:static|const|constexpr|using|typedef|friend|public|private|"
    r"protected)\b|"
    r"\b(?:Mutex|CondVar|Capability|std::mutex|std::condition_variable|"
    r"std::atomic)\b")

UNGUARDED_WAIVER = "lint: unguarded"
LOCK_ORDER_WAIVER = "lint: lock-order"

# The declared lock hierarchy, outermost level first. Acquiring a level
# while holding the same or a deeper (more senior) one is a violation.
# Explicit pairs release by name; RAII guards release at scope exit.
LOCK_HIERARCHY = [
    ("watch-park", "parkAllForScrub", "restoreAfterScrub", ()),
    ("bank-lock", "lockBank", "unlockBank",
     ("BankLockGuard", "BankSetLockGuard")),
    ("bus-lock", "lockBus", "unlockBus", ("BusLockGuard",)),
]


def class_member_line_groups(stripped):
    """1-based line numbers at member scope, one list per class body.

    Walks the brace structure of the stripped text. A ``{`` whose
    preceding statement fragment contains ``class``/``struct``/``union``
    (but not ``enum``) opens a member scope; braces nested inside it
    (method bodies, initializers) leave it. A line belongs to the scope
    that is open where the line starts.
    """
    groups = []
    stack = []  # per open brace: index into groups, or None
    fragment = []
    lineno = 1
    for c in stripped:
        if c == "\n":
            lineno += 1
            if stack and stack[-1] is not None:
                groups[stack[-1]].append(lineno)
            fragment.append(" ")
        elif c == "{":
            text = "".join(fragment)
            if (re.search(r"\b(?:class|struct|union)\b", text)
                    and not re.search(r"\benum\b", text)):
                groups.append([])
                stack.append(len(groups) - 1)
            else:
                stack.append(None)
            fragment = []
        elif c == "}":
            if stack:
                stack.pop()
            fragment = []
        elif c == ";":
            fragment = []
        else:
            fragment.append(c)
    return groups


def check_unguarded_shared_state(rel, stripped, raw, violations):
    if not rel.startswith("src/"):
        return
    stripped_lines = stripped.splitlines()
    raw_lines = raw.splitlines()
    for member_lines in class_member_line_groups(stripped):
        lines = [(n, stripped_lines[n - 1]) for n in member_lines
                 if n - 1 < len(stripped_lines)]
        if not any(MUTEX_OWNER_MEMBER.search(text) for _, text in lines):
            continue
        for lineno, text in lines:
            if GUARD_ANNOTATION.search(text):
                continue
            if UNGUARDED_EXEMPT.search(text):
                continue
            if "(" in text:
                continue  # method declaration / annotated signature
            match = MUTABLE_GLOBAL_DECL.match(text)
            if not match:
                continue
            raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            if UNGUARDED_WAIVER in raw_line:
                continue
            violations.append(Violation(
                rel, lineno, "unguarded-shared-state",
                f"member '{match.group('name')}' of a mutex-owning class "
                "names no guard: add GUARDED_BY(...) or an explicit "
                "'// lint: unguarded' waiver with a reason"))


def _is_lock_call_site(line, pos):
    """True when the match at ``pos`` is a call, not a declaration.

    Declarations carry a return type (``void lockBus()``) or a
    ``Class::`` qualifier immediately before the name; call sites are
    reached through ``.``/``->`` or stand alone at statement start.
    """
    i = pos - 1
    while i >= 0 and line[i] in " \t":
        i -= 1
    if i < 0:
        return True
    return not (line[i].isalnum() or line[i] in "_:~")


def _lock_order_events(line):
    """(pos, kind, level) lock/brace events on a line, in textual order."""
    events = []
    for level, (_, acquire, release, guards) in enumerate(LOCK_HIERARCHY):
        for m in re.finditer(r"\b" + acquire + r"\s*\(", line):
            if _is_lock_call_site(line, m.start()):
                events.append((m.start(), "acquire", level))
        for m in re.finditer(r"\b" + release + r"\s*\(", line):
            if _is_lock_call_site(line, m.start()):
                events.append((m.start(), "release", level))
        for guard in guards:
            for m in re.finditer(r"\b" + guard + r"\s+\w+\s*[({]", line):
                events.append((m.start(), "acquire", level))
    for pos, ch in enumerate(line):
        if ch in "{}":
            events.append((pos, ch, None))
    events.sort(key=lambda e: e[0])
    return events


def check_lock_order(rel, stripped, raw, violations):
    if not rel.startswith("src/"):
        return
    raw_lines = raw.splitlines()
    held = []  # (level, depth at acquisition)
    depth = 0
    for lineno, line in enumerate(stripped.splitlines(), 1):
        for _, kind, level in _lock_order_events(line):
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth = max(0, depth - 1)
                while held and held[-1][1] > depth:
                    held.pop()  # scope exit releases what it acquired
                if depth == 0:
                    held.clear()
            elif kind == "acquire":
                offending = [h for h in held if h[0] >= level]
                raw_line = (raw_lines[lineno - 1]
                            if lineno <= len(raw_lines) else "")
                if offending and LOCK_ORDER_WAIVER not in raw_line:
                    held_name = LOCK_HIERARCHY[offending[-1][0]][0]
                    violations.append(Violation(
                        rel, lineno, "lock-order",
                        f"acquires {LOCK_HIERARCHY[level][0]} while holding "
                        f"{held_name}: the hierarchy is watch-park > "
                        "bank-lock > bus-lock (outermost first), and a held "
                        "level may never be re-acquired"))
                held.append((level, depth))
            else:  # release: drop the most recent hold of that level
                for i in range(len(held) - 1, -1, -1):
                    if held[i][0] == level:
                        del held[i]
                        break


# The whole-bus lock is the banks' own roll-up machinery: lockBus()
# iterates lockBank() over every bank, and busLocked_ no longer exists
# outside MemoryBank. Code outside src/mem/ that wants traffic stopped
# locks exactly the banks it spans.
BANK_ENCAPSULATION = re.compile(
    r"\b(?P<name>lockBus|unlockBus)\s*\(|"
    r"\b(?P<member>busLocked_)\b|"
    r"\b(?P<guard>BusLockGuard)\s+\w+\s*[({]")


def check_bank_encapsulation(rel, stripped, violations):
    if not rel.startswith("src/") or rel.startswith("src/mem/"):
        return
    for lineno, line in enumerate(stripped.splitlines(), 1):
        for m in BANK_ENCAPSULATION.finditer(line):
            if m.group("name") and not _is_lock_call_site(line, m.start()):
                continue  # a declaration, not a call
            what = m.group("name") or m.group("member") or m.group("guard")
            violations.append(Violation(
                rel, lineno, "bank-encapsulation",
                f"direct whole-bus locking ('{what}') outside src/mem/: "
                "lock the banks the access spans instead (BankLockGuard "
                "/ BankSetLockGuard over bankMaskForSpan)"))
            break


def check_header_docs(rel, raw, violations):
    if not rel.startswith("src/") or not rel.endswith((".h", ".hpp")):
        return
    head = "\n".join(raw.splitlines()[:5])
    if "/**" not in head or "@file" not in raw.split("*/", 1)[0]:
        violations.append(Violation(
            rel, 1, "header-docs",
            "public header must open with a '/** @file ... */' block"))


# The ToolKind declaration and the files that must mirror every
# enumerator: the driver (name table + tool-stack factory), the CLI
# parser, and the report writer (findings predicates).
TOOLKIND_HEADER = "src/workloads/driver.h"
TOOLKIND_MIRRORS = (
    "src/workloads/driver.cc",
    "src/workloads/cli.cc",
    "src/workloads/report_writer.cc",
)


def check_toolkind_plumbing(root, violations):
    # Tree-level rule (runs once, not per file): parse the enumerators
    # out of the header, then demand each mirror names every one.
    def read_stripped(rel):
        try:
            with open(os.path.join(root, rel), encoding="utf-8") as fh:
                return strip_comments_and_strings(fh.read())
        except (OSError, UnicodeDecodeError):
            return None

    header = read_stripped(TOOLKIND_HEADER)
    if header is None:
        return  # a tree without the driver layer (e.g. self-test seeds)
    match = re.search(r"enum\s+class\s+ToolKind[^{]*\{([^}]*)\}", header)
    if match is None:
        violations.append(Violation(
            TOOLKIND_HEADER, 1, "toolkind-plumbing",
            "could not find 'enum class ToolKind' to audit"))
        return
    enumerators = []
    for chunk in match.group(1).split(","):
        name = re.match(r"\s*([A-Za-z_]\w*)", chunk)
        if name:
            enumerators.append(name.group(1))

    for rel in TOOLKIND_MIRRORS:
        text = read_stripped(rel)
        if text is None:
            violations.append(Violation(
                rel, 1, "toolkind-plumbing",
                f"mirror of {TOOLKIND_HEADER}'s ToolKind is missing"))
            continue
        for name in enumerators:
            if not re.search(rf"\bToolKind\s*::\s*{name}\b", text):
                violations.append(Violation(
                    rel, 1, "toolkind-plumbing",
                    f"ToolKind::{name} is never named here; every "
                    "enumerator must be plumbed through the driver, "
                    "the CLI parser, and the report writer"))


def lint_file(root, rel, violations):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
    except (OSError, UnicodeDecodeError) as err:
        violations.append(Violation(rel, 1, "io", f"unreadable: {err}"))
        return
    stripped = strip_comments_and_strings(raw)
    check_raw_allocation(rel, stripped, violations)
    check_stream_output(rel, stripped, violations)
    check_include_hygiene(rel, raw, violations)
    check_header_docs(rel, raw, violations)
    check_string_keyed_stats(rel, stripped, violations)
    check_mutable_globals(rel, stripped, violations)
    check_string_trace_payload(rel, stripped, violations)
    check_single_space_kernel(rel, stripped, violations)
    check_codeword_arithmetic(rel, stripped, violations)
    check_bank_encapsulation(rel, stripped, violations)
    check_unguarded_shared_state(rel, stripped, raw, violations)
    check_lock_order(rel, stripped, raw, violations)


def lint_tree(root):
    violations = []
    for lint_dir in LINT_DIRS:
        base = os.path.join(root, lint_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(CC_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                rel = rel.replace(os.sep, "/")
                lint_file(root, rel, violations)
    check_toolkind_plumbing(root, violations)
    return violations


# --- self-test ------------------------------------------------------------

SEEDED_SOURCES = {
    # Each entry seeds exactly the violation named by the expected rule.
    "src/mem/bad_new.cc": (
        "raw-allocation",
        '#include "common/types.h"\nint *leak() { return new int; }\n'),
    "src/mem/bad_delete.cc": (
        "raw-allocation",
        "void drop(int *p) { delete p; }\n"),
    "src/mem/bad_malloc.cc": (
        "raw-allocation",
        "#include <cstdlib>\nvoid *grab() { return malloc(16); }\n"),
    "src/cache/bad_cout.cc": (
        "stream-output",
        "#include <iostream>\nvoid shout() { std::cout << 1; }\n"),
    "src/os/bad_pragma.h": (
        "include-hygiene",
        "/**\n * @file\n * Header missing its include guard.\n */\nint x;\n"),
    "src/common/bad_layering.h": (
        "include-hygiene",
        "/**\n * @file\n * Base layer reaching upward.\n */\n"
        "#pragma once\n#include \"mem/line.h\"\n"),
    "src/ecc/bad_docs.h": (
        "header-docs",
        "#pragma once\nint undocumented;\n"),
    "src/ecc/bad_layering_ecc.h": (
        "include-hygiene",
        "/**\n * @file\n * Codec layer reaching into the machine.\n */\n"
        "#pragma once\n#include \"mem/physical_memory.h\"\n"),
    "src/cache/bad_string_stats.cc": (
        "string-keyed-stats",
        '#include "common/stats.h"\n'
        "struct Hot\n{\n    safemem::StatSet stats_;\n"
        '    void hit() { stats_.add("hits"); }\n};\n'),
    "src/os/bad_global.cc": (
        "mutable-globals",
        '#include "common/types.h"\n'
        "namespace safemem {\nint g_counter = 0;\n}\n"),
    "src/ecc/bad_anon_global.cc": (
        "mutable-globals",
        '#include "common/types.h"\n'
        "namespace safemem {\nnamespace {\n"
        "std::size_t g_calls{0};\n}\n}\n"),
    "src/safemem/bad_trace_macro.cc": (
        "string-trace-payload",
        '#include "trace/trace.h"\n'
        "void oops(safemem::Trace *trace_)\n{\n"
        "    SAFEMEM_TRACE_EMIT(trace_, safemem::TraceEvent::WatchDrop,\n"
        '                       0, sizeof("leaked region"));\n}\n'),
    "src/safemem/bad_trace_emit.cc": (
        "string-trace-payload",
        '#include "trace/trace.h"\n'
        "void oops2(safemem::Trace &trace)\n{\n"
        "    trace.emit(safemem::TraceEvent::WatchDrop, 0,\n"
        '               sizeof("a string payload"));\n}\n'),
    "src/safemem/bad_kernel_tlb.cc": (
        "single-space-kernel",
        '#include "os/machine.h"\n'
        "std::uint64_t hits(safemem::Machine &machine)\n{\n"
        '    return machine.kernel().tlb().stats().get("hits");\n}\n'),
    "src/workloads/bad_kernel_pt.cc": (
        "single-space-kernel",
        '#include "os/machine.h"\n'
        "bool mapped(safemem::Kernel *kernel_, safemem::VirtAddr va)\n{\n"
        "    return kernel_->pageTable().find(va) != nullptr;\n}\n"),
    "src/os/bad_codeword_math.cc": (
        "codeword-arithmetic",
        '#include "ecc/geometry.h"\n'
        "std::size_t lines(const safemem::ProtectionGeometry &g)\n{\n"
        "    return g.codewordBytes / 64;\n}\n"),
    "src/workloads/bad_codeword_align.cc": (
        "codeword-arithmetic",
        '#include "common/types.h"\n#include "ecc/geometry.h"\n'
        "safemem::PhysAddr cwBase(safemem::PhysAddr addr,\n"
        "                         const safemem::ProtectionGeometry &g)\n{\n"
        "    return safemem::alignDown(addr, g.codewordBytes);\n}\n"),
    "src/os/bad_unguarded.cc": (
        "unguarded-shared-state",
        '#include "common/mutex.h"\n'
        "class Racy\n{\n"
        "  public:\n"
        "    void bump();\n"
        "  private:\n"
        "    safemem::Mutex mutex_;\n"
        "    int count_ = 0;\n};\n"),
    "src/os/bad_bus_poke.cc": (
        "bank-encapsulation",
        '#include "mem/memory_controller.h"\n'
        "void stall(safemem::MemoryController &c)\n{\n"
        "    c.lockBus();\n"
        "    c.unlockBus();\n}\n"),
    "src/mem/bad_lock_order.cc": (
        "lock-order",
        '#include "mem/memory_controller.h"\n'
        '#include "safemem/watch_manager.h"\n'
        "void backwards(safemem::MemoryController &c,\n"
        "               safemem::EccWatchManager &w)\n{\n"
        "    c.lockBus();\n"
        "    w.parkAllForScrub();\n"
        "    w.restoreAfterScrub();\n"
        "    c.unlockBus();\n}\n"),
    "src/mem/bad_double_bus.cc": (
        "lock-order",
        '#include "mem/memory_controller.h"\n'
        "void wedge(safemem::MemoryController &c)\n{\n"
        "    c.lockBus();\n"
        "    c.lockBus();\n"
        "    c.unlockBus();\n}\n"),
    # One ToolKind mirror (the report writer) forgets the Purify
    # enumerator declared by the seeded driver.h below; the other
    # mirrors (in CLEAN_SOURCES) name everything and must stay quiet.
    "src/workloads/report_writer.cc": (
        "toolkind-plumbing",
        '#include "workloads/driver.h"\n'
        "bool showsFindings(safemem::ToolKind kind)\n{\n"
        "    return kind != safemem::ToolKind::None;\n}\n"),
}

CLEAN_SOURCES = [
    # The ecc/ allowlist accepts both of its permitted layers.
    ("src/ecc/clean_codec_deps.h",
     "/**\n * @file\n * A codec header on the permitted layers only.\n */\n"
     "#pragma once\n#include \"common/types.h\"\n"
     "#include \"ecc/codec.h\"\n"),
    ("src/common/clean.h",
     "/**\n * @file\n * A well-behaved header: documented, guarded, and\n"
     " * allocation-free (new_size below is an identifier, 'delete' only\n"
     " * appears in a deleted function and this comment).\n */\n"
     "#pragma once\n#include \"common/types.h\"\n"
     "struct Clean\n{\n"
     "    Clean(const Clean &) = delete;\n"
     "    int resize(int new_size);\n"
     "};\n"),
    # Everything the mutable-globals rule must *not* flag: const data,
    # thread-local slots, function-local statics, member fields, and
    # plain function declarations.
    ("src/os/clean_statics.cc",
     '#include "common/types.h"\n'
     "namespace safemem {\n"
     "constexpr int kShift = 3;\n"
     "const int kTable[] = {1, 2, 3};\n"
     "thread_local int t_depth = 0;\n"
     "int countUp(int seed);\n"
     "int\ncountUp(int seed)\n{\n"
     "    static int history = 0;\n"
     "    history += seed;\n"
     "    return history;\n}\n"
     "struct Pod\n{\n    int field = 0;\n};\n"
     "}\n"),
    # Well-formed trace emits: integer payloads only — the macro form
    # (null-guarded) and a direct emit() both stay quiet.
    ("src/safemem/clean_trace.cc",
     '#include "trace/trace.h"\n'
     "void fine(safemem::Trace *trace_)\n{\n"
     "    SAFEMEM_TRACE_EMIT(trace_, safemem::TraceEvent::WatchDrop,\n"
     "                       1, 2, 3);\n"
     "    if (trace_)\n"
     "        trace_->emit(safemem::TraceEvent::WatchDrop, 1);\n}\n"),
    # The Process seam is the sanctioned way to read per-process state
    # outside src/os/ — and src/os/ itself may keep the legacy accessors.
    ("src/workloads/clean_process_seam.cc",
     '#include "os/machine.h"\n'
     "std::uint64_t hits(safemem::Machine &machine, safemem::Pid pid)\n{\n"
     "    return machine.kernel().currentProcess().tlb().stats()\n"
     '               .get("hits") +\n'
     "           machine.kernel().process(pid).tlb().stats()\n"
     '               .get("hits");\n}\n'),
    ("src/os/clean_kernel_internal.cc",
     '#include "os/machine.h"\n'
     "bool selfCheck(safemem::Machine &machine)\n{\n"
     "    return machine.kernel().tlb().size() <=\n"
     "           machine.kernel().pageTable().size();\n}\n"),
    # Disciplined locking the lock-order rule must accept: hierarchy
    # order with a scoped guard, release-then-reacquire of one level,
    # and a deliberate (waived) inversion. Lives in src/mem/ because
    # whole-bus locking is banned everywhere else (bank-encapsulation).
    ("src/mem/clean_lock_discipline.cc",
     '#include "mem/memory_controller.h"\n'
     '#include "safemem/watch_manager.h"\n'
     "void scrubPass(safemem::MemoryController &c,\n"
     "               safemem::EccWatchManager &w)\n{\n"
     "    w.parkAllForScrub();\n"
     "    {\n"
     "        safemem::BusLockGuard bus(c);\n"
     "    }\n"
     "    w.restoreAfterScrub();\n}\n"
     "void relock(safemem::MemoryController &c)\n{\n"
     "    c.lockBus();\n"
     "    c.unlockBus();\n"
     "    c.lockBus();\n"
     "    c.unlockBus();\n}\n"
     "void waived(safemem::MemoryController &c,\n"
     "            safemem::EccWatchManager &w)\n{\n"
     "    c.lockBus();\n"
     "    w.parkAllForScrub(); // lint: lock-order\n"
     "    w.restoreAfterScrub();\n"
     "    c.unlockBus();\n}\n"),
    # The sanctioned banked path outside src/mem/: lock the spanned
    # banks, query (but never flip) the whole-bus view.
    ("src/os/clean_bank_span.cc",
     '#include "mem/memory_controller.h"\n'
     "bool spanStalled(safemem::MemoryController &c, safemem::PhysAddr a)\n"
     "{\n"
     "    safemem::BankSetLockGuard banks(c, c.bankMaskForSpan(a, 4096));\n"
     "    return c.busLocked() || c.anyBankLocked();\n}\n"),
    # The toolkind-plumbing seed tree: a two-enumerator ToolKind whose
    # driver and CLI mirrors name everything (the report-writer mirror
    # in SEEDED_SOURCES drops one and must be flagged).
    ("src/workloads/driver.h",
     "/**\n * @file\n * ToolKind seed for the toolkind-plumbing rule.\n"
     " */\n#pragma once\nnamespace safemem {\n"
     "enum class ToolKind\n{\n    None,\n    Purify\n};\n"
     "const char *toolKindName(ToolKind kind);\n}\n"),
    ("src/workloads/driver.cc",
     '#include "workloads/driver.h"\n'
     "namespace safemem {\n"
     "const char *\ntoolKindName(ToolKind kind)\n{\n"
     "    switch (kind) {\n"
     '      case ToolKind::None: return "none";\n'
     '      case ToolKind::Purify: return "purify";\n'
     "    }\n"
     '    return "?";\n}\n}\n'),
    ("src/workloads/cli.cc",
     '#include "workloads/driver.h"\n'
     "namespace safemem {\n"
     "ToolKind\ntoolKindFromName(int choice)\n{\n"
     "    return choice == 0 ? ToolKind::None : ToolKind::Purify;\n}\n"
     "}\n"),
    # Opaque geometry uses the rule must accept outside mem/ecc:
    # comparisons, isWord(), naming, and passing the struct whole.
    ("src/os/clean_codeword_queries.cc",
     '#include "ecc/geometry.h"\n'
     "const char *describe(const safemem::ProtectionGeometry &g)\n{\n"
     "    if (g.isWord() || g.codewordBytes == 512)\n"
     '        return "small";\n'
     "    return safemem::geometryName(g) == \"block:4096\"\n"
     '               ? "huge" : "medium";\n}\n'),
    # A mutex-owning class the unguarded-shared-state rule must accept:
    # every member is annotated, self-synchronising, or waived.
    ("src/check/clean_guarded_class.cc",
     '#include "common/mutex.h"\n'
     "#include <vector>\n"
     "class Disciplined\n{\n"
     "  public:\n"
     "    void set(int v);\n"
     "  private:\n"
     "    mutable safemem::Mutex mutex_;\n"
     "    safemem::CondVar ready_;\n"
     "    int value_ GUARDED_BY(mutex_) = 0;\n"
     "    /** Written once before any worker thread starts. */\n"
     "    int epoch_ = 0; // lint: unguarded\n};\n"),
]


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as root:
        for rel, (rule, text) in SEEDED_SOURCES.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        for clean_rel, clean_text in CLEAN_SOURCES:
            clean_path = os.path.join(root, clean_rel)
            os.makedirs(os.path.dirname(clean_path), exist_ok=True)
            with open(clean_path, "w", encoding="utf-8") as fh:
                fh.write(clean_text)

        violations = lint_tree(root)
        by_file = {}
        for v in violations:
            by_file.setdefault(v.path, set()).add(v.rule)

        for rel, (rule, _) in SEEDED_SOURCES.items():
            got = by_file.get(rel, set())
            if rule not in got:
                failures.append(
                    f"seeded {rule} violation in {rel} was not flagged "
                    f"(got: {sorted(got) or 'nothing'})")
        for clean_rel, _ in CLEAN_SOURCES:
            if clean_rel in by_file:
                failures.append(
                    f"clean file {clean_rel} was wrongly flagged: "
                    f"{sorted(by_file[clean_rel])}")

    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}")
        return 1
    print(f"self-test passed: {len(SEEDED_SOURCES)} seeded violations "
          "flagged, clean files untouched")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    violations = lint_tree(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint: {len(violations)} violation(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
