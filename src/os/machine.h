/**
 * @file
 * The simulated machine: CPU access path over cache, ECC memory controller,
 * DRAM and kernel — the substrate replacing the paper's Pentium 4 +
 * Intel E7500 testbed.
 *
 * Application code (the workloads and examples) performs loads and stores
 * through Machine::read()/write(). Each access is translated by the
 * kernel, split at cache-line boundaries, and serviced by the cache; an
 * uncorrectable ECC fill fault runs the registered user handler and the
 * access restarts, mirroring instruction-restart semantics.
 *
 * An optional access hook lets a Purify-style tool observe (and charge
 * for) every access — the interception that makes Purify expensive and
 * that SafeMem exists to avoid.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/cache.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/types.h"
#include "mem/memory_controller.h"
#include "mem/physical_memory.h"
#include "os/kernel.h"
#include "os/scheduler.h"

namespace safemem {

class Trace;

/** Construction parameters for a Machine. */
struct MachineConfig
{
    /** DRAM capacity. Frames are handed out from this pool. */
    std::size_t memoryBytes = 64u << 20;
    /** Data-cache geometry. */
    CacheConfig cache{};
    /** Call Kernel::tick() once every this many accesses. */
    std::uint32_t tickInterval = 1024;
    /** Turn on the SimCheck invariant auditor for this process. */
    bool simCheck = false;
    /**
     * ECC codec wired into the memory controller (must outlive the
     * machine). Null: the shared (72,64) Hsiao defaultCodec(). The
     * kernel re-derives its scramble signature from this code at boot
     * and panics if the code cannot host one (see
     * findScramblePositions).
     */
    const EccCodec *codec = nullptr;
    /** Run the deep SimCheck audits every this many kernel ticks. */
    std::uint32_t auditTickInterval = 64;
    /**
     * Per-run log sink for everything this machine emits (must outlive
     * the machine). Null: the process default. The machine itself is
     * single-threaded, so the run harness installs a LogScope with
     * machine.log() on whichever thread drives the machine — see
     * runWorkload()/runMatrix().
     */
    const Log *log = nullptr;
    /**
     * Per-run flight recorder (must outlive the machine). Null: tracing
     * is off and every emit site reduces to one predictable branch.
     * Routed exactly like `log`: one recorder per run, installed on the
     * driving thread via TraceScope by the run harness.
     */
    Trace *trace = nullptr;
    /**
     * Number of independently lockable memory banks, page-interleaved
     * over the DRAM (in [1, kMaxMemoryBanks]; the pool must hold at
     * least one page per bank). One bank is the original single-bus
     * chipset, bit-identical to the pre-bank machine. (Last on purpose:
     * the positional {bytes, cache, tick} initializers predate it.)
     */
    std::uint32_t banks = 1;
    /**
     * Protection geometry of the DIMM + controller datapath: the
     * per-word SEC-DED default, or a large-codeword EDC+ECC split
     * (geometry.h). The default constructs nothing new and is
     * bit-identical to the pre-geometry machine. (Kept after `banks`
     * for the same positional-initializer reason.)
     */
    ProtectionGeometry geometry{};
};

/**
 * Called right after the machine context-switches away from @p from to
 * @p to at a scheduling point. The consolidated run harness uses this to
 * hand control to the thread driving process @p to and block the current
 * one until @p from is scheduled again — cooperative multitasking with
 * one CPU. (AccessHook lives in os/process.h with the other per-process
 * hook types.)
 */
using YieldHook = std::function<void(Pid from, Pid to)>;

class Machine
{
  public:
    explicit Machine(MachineConfig config = {});

    /** @name CPU access path */
    /// @{

    /** Load @p size bytes from virtual address @p addr. */
    void read(VirtAddr addr, void *out, std::size_t size);

    /** Store @p size bytes to virtual address @p addr. */
    void write(VirtAddr addr, const void *in, std::size_t size);

    /** Convenience typed load. */
    template <typename T>
    T
    load(VirtAddr addr)
    {
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    /** Convenience typed store. */
    template <typename T>
    void
    store(VirtAddr addr, T value)
    {
        write(addr, &value, sizeof(T));
    }

    /** Model @p cycles of pure computation (no memory traffic). */
    void compute(Cycles cycles) { clock_.advance(cycles); }
    /// @}

    /**
     * Run the deep SimCheck audits (cache residency, kernel bookkeeping)
     * immediately. No-op while auditing is disabled; the access path also
     * calls this every auditTickInterval kernel ticks.
     */
    void auditNow() const;

    /** Install / clear the current process's per-access tool hook. */
    void
    setAccessHook(AccessHook hook)
    {
        kernel_->setAccessHook(std::move(hook));
    }

    /** @name Scheduling (consolidated runs) */
    /// @{

    /** @return the cooperative round-robin scheduler. Single-process
     *  machines never admit anything, so it stays empty and the access
     *  path never switches. */
    Scheduler &scheduler() { return scheduler_; }
    const Scheduler &scheduler() const { return scheduler_; }

    /**
     * Install the hand-off callback fired after every scheduler-driven
     * context switch (see YieldHook). Scheduling points only fire while
     * a hook is installed.
     */
    void setYieldHook(YieldHook hook) { yieldHook_ = std::move(hook); }

    /**
     * Context-switch to @p to now: charge kContextSwitchCycles, retarget
     * the kernel's current process, count and trace the switch. No-op
     * when @p to is already current. Does not fire the yield hook — the
     * run harness calls this directly for admission and exit hand-offs.
     */
    void contextSwitchTo(Pid to);
    /// @}

    /**
     * @return the configured per-run log sink, or null when this
     * machine reports through the process default. The pointer is
     * stable for the machine's lifetime, so it can back a LogScope on
     * the driving thread.
     */
    const Log *log() const { return config_.log; }

    /**
     * @return the configured per-run flight recorder, or null when
     * tracing is off. Stable for the machine's lifetime, so components
     * and tools may cache it at construction.
     */
    Trace *trace() const { return config_.trace; }

    /** @return the machine's cycle clock. */
    CycleClock &clock() { return clock_; }

    /** @return the kernel. */
    Kernel &kernel() { return *kernel_; }

    /** @return the data cache. */
    Cache &cache() { return *cache_; }

    /** @return the ECC memory controller. */
    MemoryController &controller() { return *controller_; }

    /** @return the DRAM model. */
    PhysicalMemory &physicalMemory() { return *memory_; }

  private:
    /** One page-bounded span of an access: translate once, touch lines. */
    void accessSpan(VirtAddr addr, void *buffer, std::size_t size,
                    bool is_write);

    /** Periodic work folded into the access path: kernel tick + audits
     *  + the scheduling point. */
    void maybeTick();

    /** Scheduling point: round-robin to the next runnable process (when
     *  one exists, a yield hook is installed, and the kernel is not mid
     *  scrub/interrupt), then fire the hook. */
    void schedule();

    MachineConfig config_;
    CycleClock clock_;
    std::unique_ptr<PhysicalMemory> memory_;
    std::unique_ptr<MemoryController> controller_;
    std::unique_ptr<Cache> cache_;
    std::unique_ptr<Kernel> kernel_;
    Scheduler scheduler_;
    YieldHook yieldHook_;
    std::uint32_t accessesSinceTick_ = 0;
    std::uint32_t ticksSinceAudit_ = 0;
};

} // namespace safemem
