/**
 * @file
 * The per-process half of the simulated kernel: everything that belongs
 * to one running program rather than to the machine.
 *
 * A Process owns an AddressSpace (page table, TLB, allocation cursor,
 * swap images), its watched-line set, its registered ECC/SIGSEGV fault
 * handlers and tool access hook, its swap/scrub coordination hooks, and
 * a per-process view of the kernel syscall counters. The Kernel keeps a
 * vector of these plus a current-process pointer; the cache, memory
 * controller, scrubber, bus lock and frame free list stay shared machine
 * resources (consolidation is the point — many watch sets, one scrubber).
 *
 * Everything here is kernel-internal state: only the Kernel mutates a
 * Process. The public const accessors are the inspection seam the run
 * harness and tests use (per-process stats, per-process TLB counters);
 * the repo lint rule `single-space-kernel` pushes code outside src/os/
 * through this seam instead of the legacy single-space kernel accessors.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/bank.h"
#include "mem/fault.h"
#include "os/page_table.h"
#include "os/tlb.h"

namespace safemem {

/** Process identifier. Pid 0 is the init process a machine boots with. */
using Pid = std::uint32_t;

/** ECC fault as delivered to the user-level handler. */
struct UserEccFault
{
    VirtAddr vaddr = 0;       ///< virtual address of the faulting line
    PhysAddr lineAddr = 0;    ///< physical address of the faulting line
    int wordIndex = 0;        ///< faulting ECC group within the line
    EccFaultKind kind = EccFaultKind::MultiBit;
    std::uint64_t rawData = 0;
    /** The faulting instruction was a store (its RFO fill faulted). */
    bool isWrite = false;
    /** Memory bank owning the faulting line (page-interleaved). */
    unsigned bank = 0;
};

/** How the kernel reconciles ECC watches with page swapping. */
enum class SwapWatchPolicy : std::uint8_t
{
    /** Watched pages are pinned; the swap daemon skips them (the
     *  paper's implemented scheme, §2.2.2). */
    PinPages,
    /** Watched pages may swap; registered hooks unwatch on swap-out
     *  and rewatch on swap-in (the paper's proposed "better
     *  solution"). */
    UnwatchRewatch
};

/** What the user-level ECC handler concluded. */
enum class FaultDecision : std::uint8_t
{
    Handled,       ///< access fault consumed; restart the access
    HardwareError  ///< data does not match the scramble signature
};

/** User-level ECC fault handler (RegisterECCFaultHandler). */
using UserEccHandler = std::function<FaultDecision(const UserEccFault &)>;

/** User-level SIGSEGV handler; returns true when the fault was handled. */
using UserSegvHandler = std::function<bool(VirtAddr)>;

/** Observer invoked before every application load/store (Purify). */
using AccessHook =
    std::function<void(VirtAddr addr, std::size_t size, bool is_write)>;

/** Slot indices into a kernel StatSet; order matches kKernelStatNames.
 *  The Kernel keeps one machine-wide aggregate set plus one set per
 *  process, bumped together, so single-process totals are unchanged by
 *  the multi-process refactor while consolidated runs still attribute
 *  syscall traffic to its process. */
enum class KernelStat : std::size_t
{
    PagesMapped,
    PagesUnmapped,
    SegvDelivered,
    MprotectCalls,
    LinesWatched,
    LinesUnwatched,
    MaxWatchedLines,
    EccInterrupts,
    SingleBitReports,
    HardwareErrors,
    AccessFaultsHandled,
    ScrubPasses,
    WatchedPagesSwapped,
    PagesSwappedOut,
    PagesSwappedIn,
};

/** Report/snapshot names for KernelStat, in enumerator order. */
inline constexpr const char *kKernelStatNames[] = {
    "pages_mapped",
    "pages_unmapped",
    "segv_delivered",
    "mprotect_calls",
    "lines_watched",
    "lines_unwatched",
    "max_watched_lines",
    "ecc_interrupts",
    "single_bit_reports",
    "hardware_errors",
    "access_faults_handled",
    "scrub_passes",
    "watched_pages_swapped",
    "pages_swapped_out",
    "pages_swapped_in",
};

/**
 * One process's view of memory. Every process allocates from the same
 * virtual base, so two processes see identical addresses backed by
 * different frames — which is exactly what the per-process TLB exists
 * to keep straight (an ASID-tagged TLB in hardware terms: a context
 * switch changes which TLB answers, so no flush cost is charged and no
 * stale cross-process translation can ever hit).
 */
struct AddressSpace
{
    PageTable pageTable;
    Tlb tlb;
    /** Next fresh mapping address (bump allocation, never reused). */
    VirtAddr nextVirt = 0x10000000;
    /** Swapped-out page images, keyed by vpage. */
    std::unordered_map<VirtAddr, std::vector<std::uint8_t>> swapStore;
};

class Process
{
  public:
    explicit Process(Pid pid) : pid_(pid) {}

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /** @return this process's identifier. */
    Pid pid() const { return pid_; }

    /** @return false once the process has exited (zombie: its address
     *  space and counters remain inspectable until machine teardown). */
    bool alive() const { return alive_; }

    /** @return the address space (page table, TLB, swap images). */
    const AddressSpace &space() const { return space_; }

    /** @return the process's page table. */
    const PageTable &pageTable() const { return space_.pageTable; }

    /** @return the process's TLB (per-process hit/miss counters). */
    const Tlb &tlb() const { return space_.tlb; }

    /** @return this process's share of the kernel syscall counters. */
    const StatSet &stats() const { return stats_; }

    /** @return number of lines this process currently watches. */
    std::size_t watchedLineCount() const { return watched_.size(); }

    /** @return number of resident frames this process holds in @p bank
     *  (maintained incrementally by the kernel's frame allocator). */
    std::uint32_t bankFrameCount(unsigned bank) const
    {
        return bankFrames_[bank];
    }

  private:
    friend class Kernel;

    struct WatchEntry
    {
        VirtAddr vline = 0;
    };

    Pid pid_;
    bool alive_ = true;
    AddressSpace space_;

    /** Watched physical lines owned by this process. */
    std::unordered_map<PhysAddr, WatchEntry> watched_;

    UserEccHandler eccHandler_;
    UserSegvHandler segvHandler_;
    AccessHook accessHook_;

    /** CPU context note: was the in-flight access a store? */
    bool lastAccessWrite_ = false;

    /**
     * The clock's default cost center is set by RAII CostScopes on the
     * driving call stack, so it is process context: a full process
     * switch saves the outgoing process's center here and restores the
     * incoming one's (like CR3), or a switch landing inside one
     * process's tool scope would charge the *other* process's
     * application work to that tool.
     */
    CostCenter costCenter_ = CostCenter::Application;

    SwapWatchPolicy swapPolicy_ = SwapWatchPolicy::PinPages;
    std::function<void(VirtAddr)> preSwapOutHook_;
    std::function<void(VirtAddr)> postSwapInHook_;
    /** Scrub coordination hooks; the argument is the bank being
     *  scrubbed, so a process parks only the watches that bank holds. */
    std::function<void(unsigned)> preScrubHook_;
    std::function<void(unsigned)> postScrubHook_;

    /** Resident frames per memory bank — the process's bank footprint,
     *  kept current by Kernel::allocFrame()/freeFrame() so the
     *  consolidated runner's disjointness test is O(banks). */
    std::array<std::uint32_t, kMaxMemoryBanks> bankFrames_{};

    StatSet stats_{kKernelStatNames};
};

} // namespace safemem
