#include "os/page_table.h"

#include "common/logging.h"

namespace safemem {

void
PageTable::map(VirtAddr vpage, PhysAddr frame)
{
    if (!isAligned(vpage, kPageSize) || !isAligned(frame, kPageSize))
        panic("PageTable::map: unaligned vpage/frame");
    if (entries_.count(vpage))
        panic("PageTable::map: vpage ", vpage, " already mapped");
    entries_[vpage] = PageTableEntry{frame};
    reverse_[frame] = vpage;
}

void
PageTable::unmap(VirtAddr vpage)
{
    auto it = entries_.find(vpage);
    if (it == entries_.end())
        panic("PageTable::unmap: vpage ", vpage, " not mapped");
    if (it->second.present)
        reverse_.erase(it->second.frame);
    entries_.erase(it);
}

PageTableEntry *
PageTable::find(VirtAddr vpage)
{
    auto it = entries_.find(vpage);
    return it == entries_.end() ? nullptr : &it->second;
}

const PageTableEntry *
PageTable::find(VirtAddr vpage) const
{
    auto it = entries_.find(vpage);
    return it == entries_.end() ? nullptr : &it->second;
}

void
PageTable::markSwappedOut(VirtAddr vpage)
{
    PageTableEntry *entry = find(vpage);
    if (!entry || !entry->present)
        panic("PageTable::markSwappedOut: vpage ", vpage, " not resident");
    if (entry->pinCount > 0)
        panic("PageTable::markSwappedOut: vpage ", vpage, " is pinned");
    reverse_.erase(entry->frame);
    entry->present = false;
}

void
PageTable::markSwappedIn(VirtAddr vpage, PhysAddr frame)
{
    PageTableEntry *entry = find(vpage);
    if (!entry || entry->present)
        panic("PageTable::markSwappedIn: vpage ", vpage, " already resident");
    entry->frame = frame;
    entry->present = true;
    reverse_[frame] = vpage;
}

std::optional<VirtAddr>
PageTable::reverse(PhysAddr frame) const
{
    auto it = reverse_.find(frame);
    if (it == reverse_.end())
        return std::nullopt;
    return it->second;
}

} // namespace safemem
