/**
 * @file
 * Cooperative round-robin scheduler for consolidated runs.
 *
 * The scheduler is a run queue plus counters; it decides *who runs next*
 * and nothing else. The Machine consults it on kernel ticks (the access
 * path's periodic work) and performs the actual context switch — charging
 * the switch cost, retargeting the kernel's current process, and firing
 * the yield hook that hands control to the next workload's driving
 * thread. Single-process machines never admit anything, so the scheduler
 * stays empty and the access path is untouched.
 */

#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "os/process.h"

namespace safemem {

/** Slot indices into the scheduler StatSet; order matches
 *  kSchedStatNames. */
enum class SchedStat : std::size_t
{
    ContextSwitches,
    Admitted,
    Exited,
};

/** Report/snapshot names for SchedStat, in enumerator order. */
inline constexpr const char *kSchedStatNames[] = {
    "context_switches",
    "admitted",
    "exited",
};

class Scheduler
{
  public:
    /** Add @p pid to the run queue (admission order is rotation order). */
    void
    admit(Pid pid)
    {
        if (contains(pid))
            panic("Scheduler::admit: pid ", pid, " already runnable");
        runnable_.push_back(pid);
        stats_.add(SchedStat::Admitted);
    }

    /** Remove an exiting @p pid from the run queue. */
    void
    markExited(Pid pid)
    {
        auto it = std::find(runnable_.begin(), runnable_.end(), pid);
        if (it == runnable_.end())
            panic("Scheduler::markExited: pid ", pid, " not runnable");
        runnable_.erase(it);
        stats_.add(SchedStat::Exited);
    }

    /**
     * Round-robin choice: the runnable pid after @p current in admission
     * order (which is @p current itself when it is the only one left).
     * @return nullopt when the run queue is empty; the head of the queue
     * when @p current is not runnable (it already exited).
     */
    std::optional<Pid>
    pickNext(Pid current) const
    {
        if (runnable_.empty())
            return std::nullopt;
        auto it = std::find(runnable_.begin(), runnable_.end(), current);
        if (it == runnable_.end())
            return runnable_.front();
        ++it;
        return it == runnable_.end() ? runnable_.front() : *it;
    }

    /** @return true when @p pid is in the run queue. */
    bool
    contains(Pid pid) const
    {
        return std::find(runnable_.begin(), runnable_.end(), pid) !=
               runnable_.end();
    }

    /** @return number of runnable processes. */
    std::size_t runnableCount() const { return runnable_.size(); }

    /** Count one performed context switch (the Machine's switch path). */
    void noteSwitch() { stats_.add(SchedStat::ContextSwitches); }

    /** @return scheduler statistics. */
    const StatSet &stats() const { return stats_; }

  private:
    std::vector<Pid> runnable_;
    StatSet stats_{kSchedStatNames};
};

} // namespace safemem
