/**
 * @file
 * A small fully-associative TLB with LRU replacement.
 *
 * Translation hits are free (folded into the cache-access latency);
 * misses charge a page-walk. Permission changes (mprotect), unmapping
 * and swap transitions shoot the TLB down — which is precisely why
 * mprotect-based monitoring (the page-protection baseline) perturbs the
 * surrounding code more than its syscall price alone suggests.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace safemem {

/** Slot indices into the TLB StatSet; order matches kTlbStatNames. */
enum class TlbStat : std::size_t
{
    Hits,
    Misses,
    Invalidations,
    Flushes,
};

/** Report/snapshot names for TlbStat, in enumerator order. */
inline constexpr const char *kTlbStatNames[] = {
    "hits", "misses", "invalidations", "flushes",
};

class Tlb
{
  public:
    /** @param entries capacity; 64 models a small first-level TLB. */
    explicit Tlb(std::size_t entries = 64) : capacity_(entries)
    {
        slots_.reserve(entries);
    }

    /**
     * Look up @p vpage, inserting it on a miss.
     * @return true on a hit.
     */
    bool
    access(VirtAddr vpage)
    {
        ++stamp_;
        for (Slot &slot : slots_) {
            if (slot.vpage == vpage) {
                slot.lastUse = stamp_;
                stats_.add(TlbStat::Hits);
                return true;
            }
        }
        stats_.add(TlbStat::Misses);
        if (slots_.size() < capacity_) {
            slots_.push_back(Slot{vpage, stamp_});
        } else {
            Slot *victim = &slots_[0];
            for (Slot &slot : slots_) {
                if (slot.lastUse < victim->lastUse)
                    victim = &slot;
            }
            *victim = Slot{vpage, stamp_};
        }
        return false;
    }

    /** Remove any entry for @p vpage (single-page invalidation). */
    void
    invalidate(VirtAddr vpage)
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].vpage == vpage) {
                slots_[i] = slots_.back();
                slots_.pop_back();
                stats_.add(TlbStat::Invalidations);
                return;
            }
        }
    }

    /** Full shootdown. */
    void
    flush()
    {
        slots_.clear();
        stats_.add(TlbStat::Flushes);
    }

    /** @return TLB statistics. */
    const StatSet &stats() const { return stats_; }

    /** Visit the vpage of every cached translation (SimCheck audits). */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const Slot &slot : slots_)
            fn(slot.vpage);
    }

  private:
    struct Slot
    {
        VirtAddr vpage = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t capacity_;
    std::uint64_t stamp_ = 0;
    std::vector<Slot> slots_;
    StatSet stats_{kTlbStatNames};
};

} // namespace safemem
