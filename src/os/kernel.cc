#include "os/kernel.h"

#include <algorithm>
#include <array>
#include <bitset>
#include <cstring>

#include "check/simcheck.h"
#include "common/costs.h"
#include "common/logging.h"
#include "ecc/edc.h"
#include "trace/trace.h"

namespace safemem {

Kernel::Kernel(MemoryController &controller, Cache &cache, CycleClock &clock,
               Trace *trace)
    : controller_(controller), cache_(cache), clock_(clock), trace_(trace)
{
    // WatchMemory is only sound when a guaranteed-uncorrectable bit
    // triple exists for the machine's codec. This is the one place the
    // no-signature case still panics: a machine that cannot watch
    // memory must not boot (campaign sweeps probe codecs without a
    // machine and report the verdict instead — see runCampaign).
    std::optional<ScramblePattern> pattern =
        findScramblePositions(controller_.code());
    if (!pattern)
        panic("Kernel: ECC codec '", controller_.code().name(),
              "' cannot host a scramble signature; WatchMemory would "
              "never fault");
    scramble_ = *pattern;
    // Under a block geometry the watch trick additionally relies on the
    // scramble leaving the line's EDC fold stale: the fill's EDC fast
    // check must miss so the long-code decode (which raises the fault)
    // actually runs. The folds are linear, so the delta a scramble
    // induces is a data-independent constant — the EDC analogue of the
    // scramble-signature search above, checked once at boot.
    const ProtectionGeometry &geom = controller_.geometry();
    if (!geom.isWord() &&
        edcScrambleFoldDelta(geom.edc, scramble_.mask()) == 0)
        panic("Kernel: scramble signature ", scramble_.mask(),
              " is invisible to the '", geometryName(geom),
              "' EDC fold; WatchMemory would never fault");
    // Build the per-bank frame free lists over all of physical memory.
    std::size_t frames = controller_.memory().size() / kPageSize;
    freeFramesByBank_.resize(controller_.numBanks());
    for (auto &list : freeFramesByBank_)
        list.reserve(frames / controller_.numBanks() + 1);
    // Hand out low frames first so tests see deterministic addresses.
    for (std::size_t i = frames; i-- > 0;) {
        PhysAddr frame = static_cast<PhysAddr>(i) * kPageSize;
        freeFramesByBank_[controller_.bankOf(frame)].push_back(frame);
    }
    nextScrubByBank_.resize(controller_.numBanks(), 0);

    // The init process exists at power-on: free (no cycles, no trace),
    // so a single-process machine boots exactly as it always has.
    processes_.push_back(std::make_unique<Process>(0));
    current_ = processes_.front().get();

    controller_.setInterruptHandler(
        [this](const EccFaultInfo &info) { onEccInterrupt(info); });
}

void
Kernel::switchTo(Process &proc)
{
    current_ = &proc;
    cache_.setCurrentPid(proc.pid());
    if (trace_)
        trace_->setPid(proc.pid());
}

Pid
Kernel::createProcess()
{
    clock_.advance(kSyscallEntryCycles + kProcessCreateCycles,
                   CostCenter::Kernel);
    Pid pid = static_cast<Pid>(processes_.size());
    processes_.push_back(std::make_unique<Process>(pid));
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::SchedProcessCreated, clock_.now(),
                       pid);
    return pid;
}

void
Kernel::exitProcess(Pid pid)
{
    Process &proc = process(pid);
    if (!proc.alive_)
        panic("Kernel::exitProcess: pid ", pid, " already exited");
    proc.alive_ = false;
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::SchedProcessExited, clock_.now(),
                       pid);
}

void
Kernel::setCurrentProcess(Pid pid)
{
    Process &proc = process(pid);
    if (!proc.alive_)
        panic("Kernel::setCurrentProcess: pid ", pid, " has exited");
    // The clock's default cost center belongs to the outgoing call
    // stack's CostScopes: park it with the process and restore the
    // incoming one's, or a switch landing inside a tool scope would
    // bill the next process's application work to this one's tool.
    current_->costCenter_ = clock_.currentCenter();
    clock_.setCurrentCenter(proc.costCenter_);
    switchTo(proc);
}

Process &
Kernel::process(Pid pid)
{
    if (pid >= processes_.size())
        panic("Kernel::process: no such pid ", pid);
    return *processes_[pid];
}

const Process &
Kernel::process(Pid pid) const
{
    if (pid >= processes_.size())
        panic("Kernel::process: no such pid ", pid);
    return *processes_[pid];
}

PhysAddr
Kernel::allocFrame()
{
    // Home-bank affinity with ascending work-stealing: a process's
    // frames come from bank pid % N while it lasts, so multi-tenant
    // runs naturally settle into disjoint banks and the consolidated
    // runner's per-bank hand-off has disjointness to exploit. With one
    // bank this is exactly the old shared free list.
    unsigned banks = controller_.numBanks();
    unsigned home = current_->pid() % banks;
    for (unsigned i = 0; i < banks; ++i) {
        std::vector<PhysAddr> &list = freeFramesByBank_[(home + i) % banks];
        if (list.empty())
            continue;
        PhysAddr frame = list.back();
        list.pop_back();
        ++current_->bankFrames_[controller_.bankOf(frame)];
        return frame;
    }
    fatal("Kernel: out of physical memory");
}

void
Kernel::freeFrame(PhysAddr frame)
{
    unsigned bank = controller_.bankOf(frame);
    if (current_->bankFrames_[bank] == 0)
        panic("Kernel::freeFrame: pid ", current_->pid(),
              " frees frame ", frame, " with no frames in bank ", bank);
    --current_->bankFrames_[bank];
    freeFramesByBank_[bank].push_back(frame);
}

VirtAddr
Kernel::mapRegion(std::size_t bytes)
{
    clock_.advance(kSyscallEntryCycles);
    AddressSpace &space = current_->space_;
    std::size_t pages = alignUp(bytes, kPageSize) / kPageSize;
    if (pages == 0)
        pages = 1;
    VirtAddr base = space.nextVirt;
    space.nextVirt += pages * kPageSize;
    for (std::size_t i = 0; i < pages; ++i)
        space.pageTable.map(base + i * kPageSize, allocFrame());
    bump(KernelStat::PagesMapped, pages);
    return base;
}

void
Kernel::unmapRegion(VirtAddr base, std::size_t bytes)
{
    clock_.advance(kSyscallEntryCycles);
    AddressSpace &space = current_->space_;
    if (!isAligned(base, kPageSize))
        panic("Kernel::unmapRegion: unaligned base ", base);
    std::size_t pages = alignUp(bytes, kPageSize) / kPageSize;
    for (std::size_t i = 0; i < pages; ++i) {
        VirtAddr vpage = base + i * kPageSize;
        PageTableEntry *entry = space.pageTable.find(vpage);
        if (!entry)
            panic("Kernel::unmapRegion: vpage ", vpage, " not mapped");
        if (entry->pinCount > 0)
            panic("Kernel::unmapRegion: vpage ", vpage, " still pinned");
        if (entry->present) {
            // Drop stale cached copies of the departing frame.
            for (std::size_t l = 0; l < kPageSize / kCacheLineSize; ++l)
                cache_.flushLine(entry->frame + l * kCacheLineSize);
            freeFrame(entry->frame);
        } else {
            space.swapStore.erase(vpage);
        }
        space.pageTable.unmap(vpage);
        space.tlb.invalidate(vpage);
    }
    bump(KernelStat::PagesUnmapped, pages);
}

bool
Kernel::pageMapped(VirtAddr vaddr) const
{
    return current_->space_.pageTable.find(alignDown(vaddr, kPageSize)) !=
           nullptr;
}

bool
Kernel::pageResident(VirtAddr vaddr) const
{
    const PageTableEntry *entry =
        current_->space_.pageTable.find(alignDown(vaddr, kPageSize));
    return entry && entry->present;
}

PhysAddr
Kernel::translate(VirtAddr vaddr)
{
    AddressSpace &space = current_->space_;
    VirtAddr vpage = alignDown(vaddr, kPageSize);
    if (!space.tlb.access(vpage))
        clock_.advance(kTlbMissCycles);
    for (int attempt = 0; attempt < 4; ++attempt) {
        PageTableEntry *entry = space.pageTable.find(vpage);
        if (!entry) {
            // Never leave an invalid translation cached: the access above
            // optimistically inserted the vpage before the walk failed.
            space.tlb.invalidate(vpage);
            panic("SIGSEGV: access to unmapped address ", vaddr);
        }
        if (!entry->present)
            pageIn(vpage);
        if (!entry->accessible) {
            // Deliver SIGSEGV to the user handler (page-protection
            // monitoring path); retry the translation if it handled it.
            bump(KernelStat::SegvDelivered);
            clock_.advance(kFaultDeliveryCycles);
            SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelSegvDelivered,
                               clock_.now(), vaddr);
            if (current_->segvHandler_ && current_->segvHandler_(vaddr))
                continue;
            panic("SIGSEGV: access to protected address ", vaddr);
        }
        return entry->frame + (vaddr - vpage);
    }
    panic("Kernel::translate: SEGV handler loop on address ", vaddr);
}

std::optional<PhysAddr>
Kernel::peekTranslate(VirtAddr vaddr) const
{
    VirtAddr vpage = alignDown(vaddr, kPageSize);
    const PageTableEntry *entry = current_->space_.pageTable.find(vpage);
    if (!entry || !entry->present)
        return std::nullopt;
    return entry->frame + (vaddr - vpage);
}

std::uint64_t
Kernel::bankFootprint(Pid pid) const
{
    const Process &proc = process(pid);
    std::uint64_t mask = 0;
    for (unsigned b = 0; b < controller_.numBanks(); ++b)
        if (proc.bankFrames_[b] != 0)
            mask |= std::uint64_t{1} << b;
    return mask;
}

void
Kernel::mprotectRange(VirtAddr base, std::size_t bytes, bool accessible)
{
    clock_.advance(kSyscallEntryCycles);
    AddressSpace &space = current_->space_;
    if (!isAligned(base, kPageSize) || !isAligned(bytes, kPageSize))
        panic("Kernel::mprotectRange: unaligned region");
    for (std::size_t off = 0; off < bytes; off += kPageSize) {
        clock_.advance(kPageTableWalkCycles + kPageProtCycles);
        PageTableEntry *entry = space.pageTable.find(base + off);
        if (!entry)
            panic("Kernel::mprotectRange: unmapped vpage ", base + off);
        entry->accessible = accessible;
    }
    clock_.advance(kTlbFlushCycles);
    space.tlb.flush();
    bump(KernelStat::MprotectCalls);
}

void
Kernel::registerSegvHandler(UserSegvHandler handler)
{
    current_->segvHandler_ = std::move(handler);
}

void
Kernel::pinPage(VirtAddr vpage)
{
    clock_.advance(kPagePinCycles);
    PageTableEntry *entry = current_->space_.pageTable.find(vpage);
    if (!entry)
        panic("Kernel::pinPage: unmapped vpage ", vpage);
    if (!entry->present)
        pageIn(vpage);
    ++entry->pinCount;
}

void
Kernel::unpinPage(VirtAddr vpage)
{
    clock_.advance(kPagePinCycles);
    PageTableEntry *entry = current_->space_.pageTable.find(vpage);
    if (!entry || entry->pinCount == 0)
        panic("Kernel::unpinPage: vpage ", vpage, " not pinned");
    --entry->pinCount;
}

void
Kernel::watchMemory(VirtAddr addr, std::size_t size)
{
    clock_.advance(kSyscallEntryCycles);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelWatchMemory, clock_.now(),
                       addr, size);
    Process &proc = *current_;
    AddressSpace &space = proc.space_;
    if (!isAligned(addr, kCacheLineSize) || !isAligned(size, kCacheLineSize))
        panic("WatchMemory: region must be cache-line aligned (addr=",
              addr, " size=", size, ")");

    // Resolve and pin every page the region touches (one walk + pin per
    // page, not per line).
    for (VirtAddr vpage = alignDown(addr, kPageSize);
         vpage < addr + size; vpage += kPageSize) {
        clock_.advance(kPageTableWalkCycles);
        PageTableEntry *entry = space.pageTable.find(vpage);
        if (!entry)
            panic("WatchMemory: unmapped address ", vpage);
        if (!entry->present)
            pageIn(vpage);
        if (proc.swapPolicy_ == SwapWatchPolicy::PinPages)
            pinPage(vpage);
    }

    // Evict cached copies so memory holds current data and the next
    // access must go to DRAM (paper: cache effects).
    std::vector<PhysAddr> plines;
    plines.reserve(size / kCacheLineSize);
    for (std::size_t off = 0; off < size; off += kCacheLineSize) {
        VirtAddr vline = addr + off;
        VirtAddr vpage = alignDown(vline, kPageSize);
        PhysAddr pline =
            space.pageTable.find(vpage)->frame + (vline - vpage);
        if (proc.watched_.count(pline))
            panic("WatchMemory: line ", vline, " already watched");
        cache_.flushLine(pline); // charges kCacheFlushLineCycles
        plines.push_back(pline);
    }

    // Figure 2, batched: lock the banks the region's frames span (each
    // spanned bank's bus independently; untouched banks keep serving
    // cache traffic), disable ECC, flip the 3 signature bits of every
    // ECC group (check bytes stay stale), restore ECC, unlock.
    std::uint64_t bank_mask = 0;
    for (PhysAddr pline : plines)
        bank_mask |= std::uint64_t{1} << controller_.bankOf(pline);
    Cycles lock_count = std::bitset<64>(bank_mask).count();
    clock_.advance(2 * lock_count * kBusLockCycles +
                   2 * kEccModeSwitchCycles);
    {
        BankSetLockGuard bus(controller_, bank_mask);
        EccMode saved = controller_.mode();
        controller_.setMode(EccMode::Disabled);
        for (PhysAddr pline : plines) {
            clock_.advance(kScrambleLineCycles);
            for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
                PhysAddr word_addr = pline + i * kEccGroupSize;
                std::uint64_t original = controller_.peekWord(word_addr);
                controller_.writeWordDeviceOp(word_addr,
                                              scramble_.apply(original));
            }
        }
        controller_.setMode(saved);
    }

    if (simCheckActive()) {
        // The scramble's whole purpose is to leave every group of the line
        // uncorrectable under the stale check bytes; a clean or merely
        // "corrected" group means the watch would never fire (or worse,
        // silently corrupt data on the next fill).
        const EccCodec &code = controller_.code();
        for (PhysAddr pline : plines) {
            for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
                PhysAddr word_addr = pline + i * kEccGroupSize;
                SIMCHECK_AUDIT(
                    AuditDomain::Kernel, "scramble_uncorrectable",
                    code.decode(controller_.memory().readWord(word_addr),
                                controller_.memory().readCheck(word_addr))
                            .status == EccDecodeStatus::Uncorrectable,
                    "scrambled word at ", word_addr,
                    " does not decode as a multi-bit fault");
            }
        }
        // Under a block geometry the scrambled line must also have gone
        // EDC-stale, or the fill fast path would wave it through and the
        // decode above would never run (boot checked the fold delta is
        // nonzero; this audits the datapath actually left it stale).
        if (!controller_.geometry().isWord()) {
            for (PhysAddr pline : plines) {
                SIMCHECK_AUDIT(AuditDomain::Kernel, "scramble_edc_stale",
                               !controller_.edcConsistent(pline),
                               "scrambled line at ", pline,
                               " still passes the EDC fast check");
            }
        }
    }

    clock_.advance(kWatchInsertCycles);
    for (std::size_t off = 0; off < size; off += kCacheLineSize) {
        proc.watched_[plines[off / kCacheLineSize]] =
            Process::WatchEntry{addr + off};
        bump(KernelStat::LinesWatched);
    }
    stats_.maxOf(KernelStat::MaxWatchedLines, totalWatchedLineCount());
    proc.stats_.maxOf(KernelStat::MaxWatchedLines, proc.watched_.size());
}

void
Kernel::disableWatchMemory(VirtAddr addr, std::size_t size)
{
    clock_.advance(kSyscallEntryCycles);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelDisableWatchMemory,
                       clock_.now(), addr, size);
    Process &proc = *current_;
    AddressSpace &space = proc.space_;
    if (!isAligned(addr, kCacheLineSize) || !isAligned(size, kCacheLineSize))
        panic("DisableWatchMemory: region must be cache-line aligned");

    for (VirtAddr vpage = alignDown(addr, kPageSize);
         vpage < addr + size; vpage += kPageSize) {
        clock_.advance(kPageTableWalkCycles);
        PageTableEntry *entry = space.pageTable.find(vpage);
        if (!entry)
            panic("DisableWatchMemory: unmapped address ", vpage);
        if (!entry->present)
            pageIn(vpage);
    }

    // Resolve the frames up front (uncharged re-walks; the charged
    // walks happened in the page loop above) so the spanned banks are
    // known before their buses are taken.
    std::vector<PhysAddr> plines;
    plines.reserve(size / kCacheLineSize);
    std::uint64_t bank_mask = 0;
    for (std::size_t off = 0; off < size; off += kCacheLineSize) {
        VirtAddr vline = addr + off;
        VirtAddr vpage = alignDown(vline, kPageSize);
        PhysAddr pline =
            space.pageTable.find(vpage)->frame + (vline - vpage);
        plines.push_back(pline);
        bank_mask |= std::uint64_t{1} << controller_.bankOf(pline);
    }

    // The scramble mask is its own inverse, and rewriting with ECC
    // enabled regenerates matching check bytes, clearing the watch.
    // The not-watched panic below unwinds *while the banks are locked*,
    // so the locks must be RAII-held or they stay wedged for the next
    // caller (regression: test_lock_discipline.cc).
    Cycles lock_count = std::bitset<64>(bank_mask).count();
    clock_.advance(2 * lock_count * kBusLockCycles);
    {
        BankSetLockGuard bus(controller_, bank_mask);
        for (std::size_t off = 0; off < size; off += kCacheLineSize) {
            VirtAddr vline = addr + off;
            PhysAddr pline = plines[off / kCacheLineSize];
            auto it = proc.watched_.find(pline);
            if (it == proc.watched_.end())
                panic("DisableWatchMemory: line ", vline, " not watched");

            clock_.advance(kUnscrambleLineCycles);
            for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
                PhysAddr word_addr = pline + i * kEccGroupSize;
                std::uint64_t scrambled = controller_.peekWord(word_addr);
                controller_.writeWordDeviceOp(word_addr,
                                              scramble_.apply(scrambled));
            }
            proc.watched_.erase(it);
            bump(KernelStat::LinesUnwatched);
        }
    }

    clock_.advance(kWatchRemoveCycles);
    if (proc.swapPolicy_ == SwapWatchPolicy::PinPages) {
        for (VirtAddr vpage = alignDown(addr, kPageSize);
             vpage < addr + size; vpage += kPageSize)
            unpinPage(vpage);
    }
}

void
Kernel::registerEccFaultHandler(UserEccHandler handler)
{
    clock_.advance(kSyscallEntryCycles);
    current_->eccHandler_ = std::move(handler);
}

bool
Kernel::isWatched(VirtAddr vaddr) const
{
    const AddressSpace &space = current_->space_;
    VirtAddr vpage = alignDown(vaddr, kPageSize);
    const PageTableEntry *entry = space.pageTable.find(vpage);
    if (!entry || !entry->present)
        return false;
    PhysAddr pline =
        entry->frame + (alignDown(vaddr, kCacheLineSize) - vpage);
    return current_->watched_.count(pline) != 0;
}

std::size_t
Kernel::watchedLineCount() const
{
    return current_->watched_.size();
}

std::size_t
Kernel::totalWatchedLineCount() const
{
    std::size_t total = 0;
    for (const auto &proc : processes_)
        total += proc->watched_.size();
    return total;
}

void
Kernel::onEccInterrupt(const EccFaultInfo &info)
{
    clock_.advance(kFaultDeliveryCycles);
    stats_.add(KernelStat::EccInterrupts);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelEccInterrupt, clock_.now(),
                       info.lineAddr,
                       static_cast<std::uint64_t>(info.wordIndex),
                       static_cast<std::uint64_t>(info.kind));

    // Route to the process owning the faulting frame. A fault in a frame
    // no process maps (an injected error in free memory hit by the
    // scrubber) is delivered to the current process, which triggered the
    // device access — the single-process behaviour, generalised.
    PhysAddr frame = alignDown(info.lineAddr, kPageSize);
    Process *owner = nullptr;
    VirtAddr vaddr = 0;
    for (const auto &proc : processes_) {
        if (auto vpage = proc->space_.pageTable.reverse(frame)) {
            owner = proc.get();
            vaddr = *vpage + (info.lineAddr - frame);
            break;
        }
    }
    Process *target = owner ? owner : current_;
    target->stats_.add(KernelStat::EccInterrupts);

    if (info.kind == EccFaultKind::UnreportedSingle) {
        // Check-Only mode report; log and continue.
        stats_.add(KernelStat::SingleBitReports);
        target->stats_.add(KernelStat::SingleBitReports);
        return;
    }

    if (!target->eccHandler_) {
        // Stock-OS behaviour (paper §2.1): panic / blue screen. Another
        // process's handler is no help — the fault is not its memory.
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelPanicNoHandler,
                           clock_.now(), info.lineAddr, target->pid());
        panic("kernel panic: uncorrectable ECC memory error at phys line ",
              info.lineAddr);
    }

    UserEccFault fault;
    fault.vaddr = vaddr;
    fault.lineAddr = info.lineAddr;
    fault.wordIndex = info.wordIndex;
    fault.kind = info.kind;
    fault.rawData = info.rawData;
    fault.isWrite = current_->lastAccessWrite_;
    fault.bank = info.bank;

    // Dispatch in the owner's context so the handler's repair/unwatch
    // syscalls act on the owner's address space, then restore whoever
    // was running. The inInterrupt_ flag keeps the Machine's scheduling
    // point from switching away mid-handler.
    Process *running = current_;
    inInterrupt_ = true;
    switchTo(*target);
    FaultDecision decision = target->eccHandler_(fault);
    switchTo(*running);
    inInterrupt_ = false;

    if (decision == FaultDecision::HardwareError) {
        stats_.add(KernelStat::HardwareErrors);
        target->stats_.add(KernelStat::HardwareErrors);
        if (panicOnHardwareError_) {
            SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelPanicHardwareError,
                               clock_.now(), info.lineAddr);
            panic("kernel panic: hardware ECC error at phys line ",
                  info.lineAddr);
        }
    } else {
        stats_.add(KernelStat::AccessFaultsHandled);
        target->stats_.add(KernelStat::AccessFaultsHandled);
    }
}

void
Kernel::setPanicOnHardwareError(bool value)
{
    panicOnHardwareError_ = value;
}

void
Kernel::enableScrubbing(Cycles period)
{
    scrubEnabled_ = true;
    scrubPeriod_ = period;
    nextScrubByBank_.assign(controller_.numBanks(), clock_.now() + period);
    nextScrubDue_ = clock_.now() + period;
    controller_.setMode(EccMode::CorrectAndScrub);
}

void
Kernel::disableScrubbing()
{
    scrubEnabled_ = false;
    if (controller_.mode() == EccMode::CorrectAndScrub)
        controller_.setMode(EccMode::CorrectError);
}

void
Kernel::setScrubHooks(std::function<void(unsigned)> pre,
                      std::function<void(unsigned)> post)
{
    current_->preScrubHook_ = std::move(pre);
    current_->postScrubHook_ = std::move(post);
}

void
Kernel::tick()
{
    // The rewatch hook performs memory accesses that re-enter tick();
    // the guard keeps a scrub pass from recursing into itself.
    if (!scrubEnabled_ || inScrub_ || clock_.now() < nextScrubDue_)
        return;
    for (unsigned b = 0; b < controller_.numBanks(); ++b) {
        if (clock_.now() < nextScrubByBank_[b])
            continue;
        inScrub_ = true;
        stats_.add(KernelStat::ScrubPasses);
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelScrubTickBegin,
                           clock_.now(), b);
        // One scrubber per bank, many watch sets: every process's
        // pre-hook parks the watches that bank holds (in its own
        // context), the bank's pass runs, every post-hook restores.
        // Zombies included — a leak left watched by an exited process
        // must still be parked or the scrub would fault on it.
        Process *running = current_;
        for (const auto &proc : processes_) {
            if (!proc->preScrubHook_)
                continue;
            switchTo(*proc);
            proc->preScrubHook_(b);
        }
        switchTo(*running);
        controller_.scrubBank(b);
        for (const auto &proc : processes_) {
            if (!proc->postScrubHook_)
                continue;
            switchTo(*proc);
            proc->postScrubHook_(b);
        }
        switchTo(*running);
        nextScrubByBank_[b] = clock_.now() + scrubPeriod_;
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelScrubTickEnd,
                           clock_.now(), b);
        inScrub_ = false;
    }
    nextScrubDue_ = *std::min_element(nextScrubByBank_.begin(),
                                      nextScrubByBank_.end());
}

void
Kernel::setSwapWatchPolicy(SwapWatchPolicy policy)
{
    if (!current_->watched_.empty())
        panic("Kernel: cannot change the swap/watch policy while lines "
              "are watched");
    current_->swapPolicy_ = policy;
}

void
Kernel::setSwapHooks(std::function<void(VirtAddr)> pre_out,
                     std::function<void(VirtAddr)> post_in)
{
    current_->preSwapOutHook_ = std::move(pre_out);
    current_->postSwapInHook_ = std::move(post_in);
}

bool
Kernel::swapOutPage(VirtAddr vaddr)
{
    Process &proc = *current_;
    AddressSpace &space = proc.space_;
    VirtAddr vpage = alignDown(vaddr, kPageSize);
    PageTableEntry *entry = space.pageTable.find(vpage);
    if (!entry || !entry->present || entry->pinCount > 0)
        return false;

    if (proc.swapPolicy_ == SwapWatchPolicy::UnwatchRewatch) {
        // Lift any watches on this page before the frame leaves; the
        // hook (SafeMem's library) parks them for the swap-in side.
        bool page_watched = false;
        for (std::size_t l = 0; l < kPageSize / kCacheLineSize; ++l) {
            if (proc.watched_.count(entry->frame + l * kCacheLineSize)) {
                page_watched = true;
                break;
            }
        }
        if (page_watched) {
            if (!proc.preSwapOutHook_)
                panic("Kernel: watched page swapping out with no "
                      "pre-swap hook registered");
            proc.preSwapOutHook_(vpage);
            for (std::size_t l = 0; l < kPageSize / kCacheLineSize; ++l) {
                if (proc.watched_.count(entry->frame + l * kCacheLineSize))
                    panic("Kernel: pre-swap hook left line watched on "
                          "vpage ", vpage);
            }
            bump(KernelStat::WatchedPagesSwapped);
        }
    }

    clock_.advance(kSwapPageCycles, CostCenter::Kernel);

    // Writeback any cached lines of this frame, then copy it out.
    for (std::size_t l = 0; l < kPageSize / kCacheLineSize; ++l)
        cache_.flushLine(entry->frame + l * kCacheLineSize);

    std::vector<std::uint8_t> &store = space.swapStore[vpage];
    store.resize(kPageSize);
    for (std::size_t off = 0; off < kPageSize; off += kEccGroupSize) {
        std::uint64_t word = controller_.peekWord(entry->frame + off);
        std::memcpy(store.data() + off, &word, sizeof(word));
    }

    freeFrame(entry->frame);
    space.pageTable.markSwappedOut(vpage);
    space.tlb.invalidate(vpage);
    bump(KernelStat::PagesSwappedOut);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelSwapOut, clock_.now(),
                       vpage);
    return true;
}

void
Kernel::pageIn(VirtAddr vpage)
{
    clock_.advance(kSwapPageCycles, CostCenter::Kernel);
    Process &proc = *current_;
    AddressSpace &space = proc.space_;
    auto it = space.swapStore.find(vpage);
    if (it == space.swapStore.end())
        panic("Kernel::pageIn: no swap copy for vpage ", vpage);

    PhysAddr frame = allocFrame();
    // Restoring through the controller with ECC enabled regenerates fresh
    // check bytes — which is exactly why an unpinned watched page loses
    // its watch across a swap cycle (paper §2.2.2).
    for (std::size_t off = 0; off < kPageSize; off += kEccGroupSize) {
        std::uint64_t word;
        std::memcpy(&word, it->second.data() + off, sizeof(word));
        controller_.writeWordDeviceOp(frame + off, word);
    }
    space.swapStore.erase(it);
    space.pageTable.markSwappedIn(vpage, frame);
    bump(KernelStat::PagesSwappedIn);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::KernelSwapIn, clock_.now(),
                       vpage, frame);

    if (proc.swapPolicy_ == SwapWatchPolicy::UnwatchRewatch &&
        proc.postSwapInHook_)
        proc.postSwapInHook_(vpage);
}

void
Kernel::auditInvariants() const
{
    if (!simCheckActive())
        return;

    // Frames mapped by any process, for exclusivity and free-list checks.
    std::unordered_map<PhysAddr, Pid> owned;

    for (const auto &proc : processes_) {
        const AddressSpace &space = proc->space_;

        // TLB ⊆ page table, per process: every cached translation must
        // refer to a mapped, resident page of *this* space. Unmap,
        // mprotect and swap transitions all shoot the entry down, and
        // failed walks never install one.
        space.tlb.forEachEntry([&](VirtAddr vpage) {
            const PageTableEntry *entry = space.pageTable.find(vpage);
            SIMCHECK_AUDIT(AuditDomain::Kernel, "tlb_entry_mapped",
                           entry != nullptr, "pid ", proc->pid(),
                           " TLB caches unmapped vpage ", vpage);
            SIMCHECK_AUDIT(AuditDomain::Kernel, "tlb_entry_resident",
                           !entry || entry->present, "pid ", proc->pid(),
                           " TLB caches swapped-out vpage ", vpage);
        });

        // A frame backs at most one page of one process — address spaces
        // never share memory. Tally the per-bank residency as we go to
        // reconcile the incremental bankFrames_ counters below.
        std::array<std::uint32_t, kMaxMemoryBanks> per_bank{};
        space.pageTable.forEach([&](VirtAddr vpage,
                                    const PageTableEntry &entry) {
            if (!entry.present)
                return;
            ++per_bank[controller_.bankOf(entry.frame)];
            auto [it, fresh] = owned.emplace(entry.frame, proc->pid());
            SIMCHECK_AUDIT(AuditDomain::Kernel, "frame_exclusive", fresh,
                           "frame ", entry.frame, " mapped by pid ",
                           proc->pid(), " and pid ", it->second,
                           " (vpage ", vpage, ")");
        });

        // The frame allocator's incremental per-bank counts (the O(1)
        // source of the consolidated runner's disjointness test) must
        // agree with a fresh page-table recount.
        for (unsigned b = 0; b < controller_.numBanks(); ++b) {
            SIMCHECK_AUDIT(AuditDomain::Kernel, "bank_frame_accounting",
                           per_bank[b] == proc->bankFrames_[b], "pid ",
                           proc->pid(), " holds ", per_bank[b],
                           " resident frames in bank ", b,
                           " but the incremental counter reads ",
                           proc->bankFrames_[b]);
        }

        // Watch bookkeeping must reconcile with the per-process syscall
        // history: every watched line entered through WatchMemory and
        // left through DisableWatchMemory (or a swap hook, which goes
        // through the same syscall).
        SIMCHECK_AUDIT(
            AuditDomain::Kernel, "watch_count_matches_history",
            proc->watched_.size() ==
                proc->stats_.get(KernelStat::LinesWatched) -
                    proc->stats_.get(KernelStat::LinesUnwatched),
            "pid ", proc->pid(), ": ", proc->watched_.size(),
            " lines watched but history says ",
            proc->stats_.get(KernelStat::LinesWatched), " - ",
            proc->stats_.get(KernelStat::LinesUnwatched));

        for (const auto &[pline, entry] : proc->watched_) {
            PhysAddr frame = alignDown(pline, kPageSize);
            auto vpage = space.pageTable.reverse(frame);
            SIMCHECK_AUDIT(AuditDomain::Kernel, "watched_line_mapped",
                           vpage.has_value(), "watched phys line ", pline,
                           " backs no mapped page of pid ", proc->pid());
            if (!vpage)
                continue;
            const PageTableEntry *pte = space.pageTable.find(*vpage);
            SIMCHECK_AUDIT(AuditDomain::Kernel, "watched_page_resident",
                           pte && pte->present, "watched phys line ", pline,
                           " on a non-resident page");
            if (proc->swapPolicy_ == SwapWatchPolicy::PinPages) {
                SIMCHECK_AUDIT(AuditDomain::Kernel, "watched_page_pinned",
                               pte && pte->pinCount > 0,
                               "watched phys line ", pline,
                               " on an unpinned page under PinPages");
            }
            SIMCHECK_AUDIT(AuditDomain::Kernel, "watch_vline_translates",
                           *vpage + (pline - frame) == entry.vline,
                           "watch entry for phys line ", pline,
                           " recorded vline ", entry.vline,
                           " but the frame maps to vpage ", *vpage);
        }
    }

    // The machine-wide aggregate must reconcile the same way.
    SIMCHECK_AUDIT(AuditDomain::Kernel, "watch_total_matches_history",
                   totalWatchedLineCount() ==
                       stats_.get(KernelStat::LinesWatched) -
                           stats_.get(KernelStat::LinesUnwatched),
                   totalWatchedLineCount(),
                   " lines watched machine-wide but history says ",
                   stats_.get(KernelStat::LinesWatched), " - ",
                   stats_.get(KernelStat::LinesUnwatched));

    // Frame allocator: a frame on a free list must not back any page of
    // any process, and must be filed under the bank that owns it.
    for (unsigned b = 0; b < controller_.numBanks(); ++b) {
        for (PhysAddr frame : freeFramesByBank_[b]) {
            SIMCHECK_AUDIT(AuditDomain::Kernel, "free_frame_unmapped",
                           owned.find(frame) == owned.end(),
                           "free frame ", frame, " still maps a page");
            SIMCHECK_AUDIT(AuditDomain::Kernel, "free_frame_bank_home",
                           controller_.bankOf(frame) == b, "free frame ",
                           frame, " of bank ", controller_.bankOf(frame),
                           " filed under bank ", b);
        }
    }

    // The controller's machine-wide stats must stay the exact roll-up
    // of its per-bank slots.
    controller_.auditBankRollup();
}

} // namespace safemem
