/**
 * @file
 * The simulated kernel, including the paper's three OS extensions
 * (paper §2.2.1):
 *
 *   - WatchMemory(address, size): scramble + watch a line-aligned region;
 *   - DisableWatchMemory(address, size): unscramble + unwatch;
 *   - RegisterECCFaultHandler(function): deliver ECC interrupts to a
 *     user-level handler.
 *
 * Plus the stock facilities the baselines and substrate need: virtual
 * memory with per-process page tables and a shared frame allocator,
 * mprotect and user SIGSEGV delivery (the page-protection baseline),
 * page pinning, a swap daemon (to demonstrate why watched pages are
 * pinned), and scrub coordination hooks (SafeMem unwatches everything
 * around a scrub pass, §2.2.2).
 *
 * The kernel is multi-process: it owns a table of Process objects (see
 * os/process.h) and a current-process pointer that the Machine switches
 * on scheduler decisions. Syscalls act on the current process; ECC
 * interrupts are routed to the process *owning* the faulting frame,
 * whoever is running — an interrupt with no handler registered by the
 * owner panics the kernel, the behaviour of stock Linux/Windows the
 * paper describes in §2.1.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "common/clock.h"
#include "common/stats.h"
#include "common/types.h"
#include "ecc/scramble.h"
#include "mem/memory_controller.h"
#include "os/process.h"

namespace safemem {

class Trace;

class Kernel
{
  public:
    Kernel(MemoryController &controller, Cache &cache, CycleClock &clock,
           Trace *trace = nullptr);

    /** @name Processes */
    /// @{

    /**
     * Create a fresh process with an empty address space.
     * @return its pid. Does not switch to it.
     */
    Pid createProcess();

    /**
     * Mark @p pid exited. The zombie keeps its address space, watches
     * and counters for post-run harvesting (the machine is torn down
     * wholesale after a run, exactly as single-process runs never
     * unmapped either); it only leaves the scheduling universe.
     */
    void exitProcess(Pid pid);

    /**
     * Retarget the CPU context at @p pid (must be alive). Charges no
     * cycles — the Machine's context-switch path prices the switch; this
     * is the raw CR3 write, also used directly by tests.
     */
    void setCurrentProcess(Pid pid);

    /** @return the running process's pid. */
    Pid currentPid() const { return current_->pid(); }

    /** @return the running process. */
    Process &currentProcess() { return *current_; }
    const Process &currentProcess() const { return *current_; }

    /** @return process @p pid (panics when out of range). */
    Process &process(Pid pid);
    const Process &process(Pid pid) const;

    /** @return number of processes ever created (zombies included). */
    std::size_t processCount() const { return processes_.size(); }

    /**
     * @return true when it is safe to context-switch: not inside a scrub
     * pass and not dispatching an interrupt. The Machine's scheduling
     * point checks this so a switch never lands mid-handler on a
     * borrowed process context.
     */
    bool schedulable() const { return !inScrub_ && !inInterrupt_; }
    /// @}

    /** @name Virtual memory (current process) */
    /// @{

    /**
     * Map a fresh region of @p bytes (rounded up to pages) backed by
     * physical frames. @return the region's base virtual address.
     */
    VirtAddr mapRegion(std::size_t bytes);

    /** Unmap a page-aligned region previously returned by mapRegion(). */
    void unmapRegion(VirtAddr base, std::size_t bytes);

    /**
     * Resolve @p vaddr for an access. Pages in swapped pages, delivers
     * SIGSEGV for protected pages (retrying after a handling SEGV
     * handler), and panics on unmapped addresses.
     */
    PhysAddr translate(VirtAddr vaddr);

    /**
     * Pure page-table lookup for the current process: no cycle charge,
     * no TLB traffic, no page-in, no SIGSEGV. The watch manager uses
     * this to compute which banks a watched region's frames span.
     * @return nothing when the page is unmapped or swapped out.
     */
    std::optional<PhysAddr> peekTranslate(VirtAddr vaddr) const;

    /** @return true when the page containing @p vaddr is mapped. */
    bool pageMapped(VirtAddr vaddr) const;

    /** mprotect analog: make a page-aligned region (in)accessible. */
    void mprotectRange(VirtAddr base, std::size_t bytes, bool accessible);

    /** Register the user SIGSEGV handler (page-protection baseline). */
    void registerSegvHandler(UserSegvHandler handler);
    /// @}

    /** @name The paper's three syscalls (current process) */
    /// @{

    /**
     * Monitor a line-aligned region: flush each line, scramble its data
     * under ECC-disable with the bus locked, and pin its page.
     */
    void watchMemory(VirtAddr addr, std::size_t size);

    /** Remove monitoring: unscramble each line and unpin its page. */
    void disableWatchMemory(VirtAddr addr, std::size_t size);

    /** Register the user-level ECC fault handler. */
    void registerEccFaultHandler(UserEccHandler handler);

    /** @return the 3-bit scramble signature WatchMemory applies —
     *  derived at boot from the controller's codec. */
    const ScramblePattern &scramblePattern() const { return scramble_; }
    /// @}

    /**
     * CPU context note: the machine records whether the in-flight
     * access is a store, so fault handlers can tell reads from writes
     * (a real kernel reads this from the faulting instruction).
     */
    void noteAccessType(bool is_write)
    {
        current_->lastAccessWrite_ = is_write;
    }

    /** @return true when the in-flight access is a store. */
    bool lastAccessWasWrite() const { return current_->lastAccessWrite_; }

    /** Install / clear the current process's per-access tool hook. */
    void setAccessHook(AccessHook hook)
    {
        current_->accessHook_ = std::move(hook);
    }

    /** @return the running process's access hook (Machine access path). */
    const AccessHook &currentAccessHook() const
    {
        return current_->accessHook_;
    }

    /** @return true when the line containing @p vaddr is watched by the
     *  current process. */
    bool isWatched(VirtAddr vaddr) const;

    /** @return number of lines watched by the current process. */
    std::size_t watchedLineCount() const;

    /** @return number of watched lines across every process — the load
     *  the one shared scrubber coordinates with. */
    std::size_t totalWatchedLineCount() const;

    /** @name Scrubbing (paper §2.2.2 "Dealing with ECC Memory Scrubbing") */
    /// @{

    /** Enable periodic scrubbing every @p period cycles. */
    void enableScrubbing(Cycles period);

    /** Disable periodic scrubbing. */
    void disableScrubbing();

    /** Hooks run immediately before/after each per-bank scrub pass,
     *  registered by (and dispatched in the context of) the current
     *  process; the argument is the bank being scrubbed. */
    void setScrubHooks(std::function<void(unsigned)> pre,
                       std::function<void(unsigned)> post);

    /** Run the due banks' scrub passes now; called from the machine
     *  loop. Each bank keeps its own deadline, parked and restored
     *  independently (park(b) → scrubBank(b) → restore(b)). */
    void tick();
    /// @}

    /** @name Swap daemon (tests/ablation; current process) */
    /// @{

    /**
     * Try to swap out the page containing @p vaddr.
     * @return false when the page is pinned or not resident.
     */
    bool swapOutPage(VirtAddr vaddr);

    /** @return true when the page containing @p vaddr is resident. */
    bool pageResident(VirtAddr vaddr) const;

    /** Select how ECC watches interact with swapping. */
    void setSwapWatchPolicy(SwapWatchPolicy policy);

    /** @return the active swap/watch policy. */
    SwapWatchPolicy swapWatchPolicy() const
    {
        return current_->swapPolicy_;
    }

    /**
     * Hooks for the UnwatchRewatch policy: @p pre_out runs before a
     * page with watched lines swaps out, @p post_in after any page is
     * swapped back in. Both receive the virtual page address.
     */
    void setSwapHooks(std::function<void(VirtAddr)> pre_out,
                      std::function<void(VirtAddr)> post_in);
    /// @}

    /**
     * Control whether a HardwareError decision from the user handler (or
     * an unhandled hardware fault) panics. Tests flip this to observe the
     * accounting instead of unwinding. Machine-wide.
     */
    void setPanicOnHardwareError(bool value);

    /**
     * SimCheck deep audit: per-process TLB/page-table consistency, watch
     * bookkeeping against syscall history, cross-process frame
     * exclusivity, frame free-list sanity. No-op when auditing is
     * disabled; called periodically by the Machine and by tests.
     */
    void auditInvariants() const;

    /** @return machine-wide kernel statistics (sum over processes plus
     *  machine-global events like scrub passes). */
    const StatSet &stats() const { return stats_; }

    /** @return bit mask of the banks in which process @p pid currently
     *  holds resident frames (O(banks), from incremental counts). */
    std::uint64_t bankFootprint(Pid pid) const;

    /** @return the current process's page table (inspection in tests;
     *  code outside src/os/ goes through the Process seam instead). */
    const PageTable &pageTable() const
    {
        return current_->space_.pageTable;
    }

    /** @return the current process's TLB (stats inspection in tests;
     *  code outside src/os/ goes through the Process seam instead). */
    const Tlb &tlb() const { return current_->space_.tlb; }

  private:
    void onEccInterrupt(const EccFaultInfo &info);
    void pinPage(VirtAddr vpage);
    void unpinPage(VirtAddr vpage);
    PhysAddr allocFrame();
    void freeFrame(PhysAddr frame);
    void pageIn(VirtAddr vpage);

    /** Raw context retarget shared by setCurrentProcess, interrupt
     *  routing and scrub-hook dispatch: current pointer, cache owner
     *  tag, trace pid stamp. No aliveness check, no cycle charge. */
    void switchTo(Process &proc);

    /** Bump @p stat in the machine-wide set and the current process. */
    void
    bump(KernelStat stat, std::uint64_t delta = 1)
    {
        stats_.add(stat, delta);
        current_->stats_.add(stat, delta);
    }

    MemoryController &controller_;
    Cache &cache_;
    CycleClock &clock_;
    Trace *trace_;
    /** The scramble signature for the controller's codec, found at
     *  boot; boot panics when the codec cannot host one. */
    ScramblePattern scramble_;

    /** Process table, indexed by pid. Never shrinks; exited processes
     *  become zombies. */
    std::vector<std::unique_ptr<Process>> processes_;
    Process *current_ = nullptr;

    /** Frame free lists, one per memory bank — frames are a shared
     *  machine resource, handed out with home-bank affinity (pid % N)
     *  and ascending work-stealing when the home bank runs dry. */
    std::vector<std::vector<PhysAddr>> freeFramesByBank_;

    bool scrubEnabled_ = false;
    bool inScrub_ = false;
    bool inInterrupt_ = false;
    Cycles scrubPeriod_ = 0;
    /** Per-bank scrub deadlines plus their cached minimum (the tick()
     *  fast-path check). */
    std::vector<Cycles> nextScrubByBank_;
    Cycles nextScrubDue_ = 0;

    bool panicOnHardwareError_ = true;

    /** Machine-wide aggregate counters (see stats()). */
    StatSet stats_{kKernelStatNames};
};

} // namespace safemem
