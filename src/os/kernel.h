/**
 * @file
 * The simulated kernel, including the paper's three OS extensions
 * (paper §2.2.1):
 *
 *   - WatchMemory(address, size): scramble + watch a line-aligned region;
 *   - DisableWatchMemory(address, size): unscramble + unwatch;
 *   - RegisterECCFaultHandler(function): deliver ECC interrupts to a
 *     user-level handler.
 *
 * Plus the stock facilities the baselines and substrate need: virtual
 * memory with a page table and frame allocator, mprotect and user SIGSEGV
 * delivery (the page-protection baseline), page pinning, a swap daemon
 * (to demonstrate why watched pages are pinned), and scrub coordination
 * hooks (SafeMem unwatches everything around a scrub pass, §2.2.2).
 *
 * An ECC interrupt with no registered user handler panics the kernel —
 * the behaviour of stock Linux/Windows the paper describes in §2.1.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "common/clock.h"
#include "common/stats.h"
#include "common/types.h"
#include "ecc/scramble.h"
#include "mem/memory_controller.h"
#include "os/page_table.h"
#include "os/tlb.h"

namespace safemem {

class Trace;

/** ECC fault as delivered to the user-level handler. */
struct UserEccFault
{
    VirtAddr vaddr = 0;       ///< virtual address of the faulting line
    PhysAddr lineAddr = 0;    ///< physical address of the faulting line
    int wordIndex = 0;        ///< faulting ECC group within the line
    EccFaultKind kind = EccFaultKind::MultiBit;
    std::uint64_t rawData = 0;
    /** The faulting instruction was a store (its RFO fill faulted). */
    bool isWrite = false;
};

/** How the kernel reconciles ECC watches with page swapping. */
enum class SwapWatchPolicy : std::uint8_t
{
    /** Watched pages are pinned; the swap daemon skips them (the
     *  paper's implemented scheme, §2.2.2). */
    PinPages,
    /** Watched pages may swap; registered hooks unwatch on swap-out
     *  and rewatch on swap-in (the paper's proposed "better
     *  solution"). */
    UnwatchRewatch
};

/** What the user-level ECC handler concluded. */
enum class FaultDecision : std::uint8_t
{
    Handled,       ///< access fault consumed; restart the access
    HardwareError  ///< data does not match the scramble signature
};

/** User-level ECC fault handler (RegisterECCFaultHandler). */
using UserEccHandler = std::function<FaultDecision(const UserEccFault &)>;

/** User-level SIGSEGV handler; returns true when the fault was handled. */
using UserSegvHandler = std::function<bool(VirtAddr)>;

/** Slot indices into the kernel StatSet; order matches kKernelStatNames. */
enum class KernelStat : std::size_t
{
    PagesMapped,
    PagesUnmapped,
    SegvDelivered,
    MprotectCalls,
    LinesWatched,
    LinesUnwatched,
    MaxWatchedLines,
    EccInterrupts,
    SingleBitReports,
    HardwareErrors,
    AccessFaultsHandled,
    ScrubPasses,
    WatchedPagesSwapped,
    PagesSwappedOut,
    PagesSwappedIn,
};

/** Report/snapshot names for KernelStat, in enumerator order. */
inline constexpr const char *kKernelStatNames[] = {
    "pages_mapped",
    "pages_unmapped",
    "segv_delivered",
    "mprotect_calls",
    "lines_watched",
    "lines_unwatched",
    "max_watched_lines",
    "ecc_interrupts",
    "single_bit_reports",
    "hardware_errors",
    "access_faults_handled",
    "scrub_passes",
    "watched_pages_swapped",
    "pages_swapped_out",
    "pages_swapped_in",
};

class Kernel
{
  public:
    Kernel(MemoryController &controller, Cache &cache, CycleClock &clock,
           Trace *trace = nullptr);

    /** @name Virtual memory */
    /// @{

    /**
     * Map a fresh region of @p bytes (rounded up to pages) backed by
     * physical frames. @return the region's base virtual address.
     */
    VirtAddr mapRegion(std::size_t bytes);

    /** Unmap a page-aligned region previously returned by mapRegion(). */
    void unmapRegion(VirtAddr base, std::size_t bytes);

    /**
     * Resolve @p vaddr for an access. Pages in swapped pages, delivers
     * SIGSEGV for protected pages (retrying after a handling SEGV
     * handler), and panics on unmapped addresses.
     */
    PhysAddr translate(VirtAddr vaddr);

    /** @return true when the page containing @p vaddr is mapped. */
    bool pageMapped(VirtAddr vaddr) const;

    /** mprotect analog: make a page-aligned region (in)accessible. */
    void mprotectRange(VirtAddr base, std::size_t bytes, bool accessible);

    /** Register the user SIGSEGV handler (page-protection baseline). */
    void registerSegvHandler(UserSegvHandler handler);
    /// @}

    /** @name The paper's three syscalls */
    /// @{

    /**
     * Monitor a line-aligned region: flush each line, scramble its data
     * under ECC-disable with the bus locked, and pin its page.
     */
    void watchMemory(VirtAddr addr, std::size_t size);

    /** Remove monitoring: unscramble each line and unpin its page. */
    void disableWatchMemory(VirtAddr addr, std::size_t size);

    /** Register the user-level ECC fault handler. */
    void registerEccFaultHandler(UserEccHandler handler);
    /// @}

    /**
     * CPU context note: the machine records whether the in-flight
     * access is a store, so fault handlers can tell reads from writes
     * (a real kernel reads this from the faulting instruction).
     */
    void noteAccessType(bool is_write) { lastAccessWrite_ = is_write; }

    /** @return true when the in-flight access is a store. */
    bool lastAccessWasWrite() const { return lastAccessWrite_; }

    /** @return true when the line containing @p vaddr is watched. */
    bool isWatched(VirtAddr vaddr) const;

    /** @return number of currently watched lines. */
    std::size_t watchedLineCount() const;

    /** @name Scrubbing (paper §2.2.2 "Dealing with ECC Memory Scrubbing") */
    /// @{

    /** Enable periodic scrubbing every @p period cycles. */
    void enableScrubbing(Cycles period);

    /** Disable periodic scrubbing. */
    void disableScrubbing();

    /** Hooks run immediately before/after each scrub pass. */
    void setScrubHooks(std::function<void()> pre, std::function<void()> post);

    /** Run a scrub pass now if one is due; called from the machine loop. */
    void tick();
    /// @}

    /** @name Swap daemon (tests/ablation) */
    /// @{

    /**
     * Try to swap out the page containing @p vaddr.
     * @return false when the page is pinned or not resident.
     */
    bool swapOutPage(VirtAddr vaddr);

    /** @return true when the page containing @p vaddr is resident. */
    bool pageResident(VirtAddr vaddr) const;

    /** Select how ECC watches interact with swapping. */
    void setSwapWatchPolicy(SwapWatchPolicy policy);

    /** @return the active swap/watch policy. */
    SwapWatchPolicy swapWatchPolicy() const { return swapPolicy_; }

    /**
     * Hooks for the UnwatchRewatch policy: @p pre_out runs before a
     * page with watched lines swaps out, @p post_in after any page is
     * swapped back in. Both receive the virtual page address.
     */
    void setSwapHooks(std::function<void(VirtAddr)> pre_out,
                      std::function<void(VirtAddr)> post_in);
    /// @}

    /**
     * Control whether a HardwareError decision from the user handler (or
     * an unhandled hardware fault) panics. Tests flip this to observe the
     * accounting instead of unwinding.
     */
    void setPanicOnHardwareError(bool value);

    /**
     * SimCheck deep audit: TLB/page-table consistency, watch bookkeeping
     * against syscall history, frame free-list sanity. No-op when auditing
     * is disabled; called periodically by the Machine and by tests.
     */
    void auditInvariants() const;

    /** @return kernel statistics. */
    const StatSet &stats() const { return stats_; }

    /** @return the page table (inspection in tests). */
    const PageTable &pageTable() const { return pageTable_; }

    /** @return the CPU-side TLB (stats inspection). */
    const Tlb &tlb() const { return tlb_; }

  private:
    struct WatchEntry
    {
        VirtAddr vline = 0;
    };

    void onEccInterrupt(const EccFaultInfo &info);
    void pinPage(VirtAddr vpage);
    void unpinPage(VirtAddr vpage);
    PhysAddr allocFrame();
    void freeFrame(PhysAddr frame);
    void pageIn(VirtAddr vpage);

    MemoryController &controller_;
    Cache &cache_;
    CycleClock &clock_;
    Trace *trace_;
    const ScramblePattern &scramble_;
    PageTable pageTable_;
    Tlb tlb_;

    std::vector<PhysAddr> freeFrames_;
    VirtAddr nextVirt_ = 0x10000000;

    /** Watched physical lines. */
    std::unordered_map<PhysAddr, WatchEntry> watched_;

    UserEccHandler eccHandler_;
    UserSegvHandler segvHandler_;

    bool scrubEnabled_ = false;
    bool inScrub_ = false;
    Cycles scrubPeriod_ = 0;
    Cycles nextScrub_ = 0;
    std::function<void()> preScrubHook_;
    std::function<void()> postScrubHook_;

    bool panicOnHardwareError_ = true;
    bool lastAccessWrite_ = false;

    SwapWatchPolicy swapPolicy_ = SwapWatchPolicy::PinPages;
    std::function<void(VirtAddr)> preSwapOutHook_;
    std::function<void(VirtAddr)> postSwapInHook_;

    /** Swapped-out page contents, keyed by vpage. */
    std::unordered_map<VirtAddr, std::vector<std::uint8_t>> swapStore_;

    StatSet stats_{kKernelStatNames};
};

} // namespace safemem
