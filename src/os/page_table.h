/**
 * @file
 * Per-process page table for the simulated kernel.
 *
 * Maps 4 KiB virtual pages onto physical frames and carries the state the
 * rest of the OS layer needs: an accessibility bit (mprotect/PROT_NONE —
 * the page-protection monitoring baseline), a pin count (ECC watchpoints
 * pin their pages, paper §2.2.2 "Dealing with Page Swapping"), and
 * swap-residency.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.h"

namespace safemem {

/** State of one mapped virtual page. */
struct PageTableEntry
{
    PhysAddr frame = 0;      ///< base physical address of the frame
    bool present = true;     ///< false while swapped out
    bool accessible = true;  ///< false under PROT_NONE
    std::uint32_t pinCount = 0; ///< >0 blocks swapping
};

class PageTable
{
  public:
    /** Install a mapping for the page containing @p vaddr. */
    void map(VirtAddr vpage, PhysAddr frame);

    /** Remove the mapping for @p vpage (must exist). */
    void unmap(VirtAddr vpage);

    /** @return the entry for @p vpage, or nullptr when unmapped. */
    PageTableEntry *find(VirtAddr vpage);
    const PageTableEntry *find(VirtAddr vpage) const;

    /** @return the virtual page owning physical @p frame, if any. */
    std::optional<VirtAddr> reverse(PhysAddr frame) const;

    /** Mark @p vpage swapped out, releasing its frame from the map. */
    void markSwappedOut(VirtAddr vpage);

    /** Re-attach @p vpage to @p frame after a swap-in. */
    void markSwappedIn(VirtAddr vpage, PhysAddr frame);

    /** @return number of mapped pages. */
    std::size_t size() const { return entries_.size(); }

    /** Visit every (vpage, entry) pair. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[vpage, entry] : entries_)
            fn(vpage, entry);
    }

  private:
    std::unordered_map<VirtAddr, PageTableEntry> entries_;
    std::unordered_map<PhysAddr, VirtAddr> reverse_;
};

} // namespace safemem
