#include "os/machine.h"

#include <cstdint>
#include <cstring>

#include "check/simcheck.h"
#include "common/logging.h"

namespace safemem {

Machine::Machine(MachineConfig config)
    : config_(config)
{
    if (config_.simCheck)
        SimCheck::instance().setEnabled(true);
    memory_ = std::make_unique<PhysicalMemory>(config_.memoryBytes);
    controller_ = std::make_unique<MemoryController>(*memory_, clock_);
    cache_ = std::make_unique<Cache>(*controller_, clock_, config_.cache);
    kernel_ = std::make_unique<Kernel>(*controller_, *cache_, clock_);
}

void
Machine::auditNow() const
{
    cache_->auditResidency();
    kernel_->auditInvariants();
}

void
Machine::maybeTick()
{
    if (++accessesSinceTick_ < config_.tickInterval)
        return;
    accessesSinceTick_ = 0;
    kernel_->tick();
    if (simCheckActive() && ++ticksSinceAudit_ >= config_.auditTickInterval) {
        ticksSinceAudit_ = 0;
        auditNow();
    }
}

void
Machine::accessChunk(VirtAddr addr, void *buffer, std::size_t size,
                     bool is_write)
{
    // A faulting fill runs the user ECC handler and we restart the
    // access, as a real CPU restarts the faulting instruction. The bound
    // catches handlers that fail to clear the fault.
    for (int attempt = 0; attempt < 8; ++attempt) {
        PhysAddr paddr = kernel_->translate(addr);
        bool ok = is_write
            ? cache_->write(paddr, buffer, size)
            : cache_->read(paddr, buffer, size);
        if (ok)
            return;
    }
    panic("Machine: access to ", addr,
          " keeps faulting; handler did not clear the watch");
}

void
Machine::read(VirtAddr addr, void *out, std::size_t size)
{
    if (size == 0)
        return;
    kernel_->noteAccessType(false);
    if (accessHook_)
        accessHook_(addr, size, false);
    maybeTick();

    auto *cursor = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        VirtAddr line_end = alignDown(addr, kCacheLineSize) + kCacheLineSize;
        std::size_t chunk = std::min<std::size_t>(size, line_end - addr);
        accessChunk(addr, cursor, chunk, false);
        addr += chunk;
        cursor += chunk;
        size -= chunk;
    }
}

void
Machine::write(VirtAddr addr, const void *in, std::size_t size)
{
    if (size == 0)
        return;
    kernel_->noteAccessType(true);
    if (accessHook_)
        accessHook_(addr, size, true);
    maybeTick();

    auto *cursor = const_cast<std::uint8_t *>(
        static_cast<const std::uint8_t *>(in));
    while (size > 0) {
        VirtAddr line_end = alignDown(addr, kCacheLineSize) + kCacheLineSize;
        std::size_t chunk = std::min<std::size_t>(size, line_end - addr);
        accessChunk(addr, cursor, chunk, true);
        addr += chunk;
        cursor += chunk;
        size -= chunk;
    }
}

} // namespace safemem
