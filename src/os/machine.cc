#include "os/machine.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "check/simcheck.h"
#include "common/costs.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace safemem {

Machine::Machine(MachineConfig config)
    : config_(config)
{
    if (config_.simCheck)
        SimCheck::instance().setEnabled(true);
    memory_ = std::make_unique<PhysicalMemory>(config_.memoryBytes, 8,
                                               config_.geometry);
    controller_ = std::make_unique<MemoryController>(
        *memory_, clock_, config_.trace,
        config_.codec ? *config_.codec : defaultCodec(), config_.banks,
        config_.geometry);
    cache_ = std::make_unique<Cache>(*controller_, clock_, config_.cache,
                                     config_.trace);
    kernel_ = std::make_unique<Kernel>(*controller_, *cache_, clock_,
                                       config_.trace);
}

void
Machine::auditNow() const
{
    cache_->auditResidency();
    kernel_->auditInvariants();
}

void
Machine::maybeTick()
{
    if (++accessesSinceTick_ < config_.tickInterval)
        return;
    accessesSinceTick_ = 0;
    kernel_->tick();
    if (simCheckActive() && ++ticksSinceAudit_ >= config_.auditTickInterval) {
        ticksSinceAudit_ = 0;
        auditNow();
    }
    schedule();
}

void
Machine::schedule()
{
    // Access-count-driven scheduling points keep consolidated runs
    // deterministic: the switch happens after the same access of the
    // same workload no matter how the host schedules the driving
    // threads. schedulable() keeps a switch from landing mid scrub pass
    // or mid interrupt handler, where the kernel runs on a borrowed
    // process context.
    if (!yieldHook_ || !kernel_->schedulable())
        return;
    Pid from = kernel_->currentPid();
    std::optional<Pid> next = scheduler_.pickNext(from);
    if (!next || *next == from)
        return;
    contextSwitchTo(*next);
    yieldHook_(from, *next);
}

void
Machine::contextSwitchTo(Pid to)
{
    Pid from = kernel_->currentPid();
    if (to == from)
        return;
    clock_.advance(kContextSwitchCycles, CostCenter::Kernel);
    kernel_->setCurrentProcess(to);
    scheduler_.noteSwitch();
    SAFEMEM_TRACE_EMIT(config_.trace, TraceEvent::SchedContextSwitch,
                       clock_.now(), from, to);
}

void
Machine::accessSpan(VirtAddr addr, void *buffer, std::size_t size,
                    bool is_write)
{
    // The span never crosses a page, so one translation covers all of it
    // (a physical page is contiguous). A faulting fill runs the user ECC
    // handler and the faulted line restarts with a fresh translation, as
    // a real CPU restarts the faulting instruction; the attempt bound —
    // reset whenever the span makes progress — catches handlers that
    // fail to clear the fault.
    int attempts = 0;
    while (true) {
        PhysAddr paddr = kernel_->translate(addr);
        std::size_t done = is_write
            ? cache_->writeBlock(paddr, buffer, size)
            : cache_->readBlock(paddr, buffer, size);
        if (done == size)
            return;
        if (done > 0)
            attempts = 0;
        if (++attempts >= 8)
            panic("Machine: access to ", addr + done,
                  " keeps faulting; handler did not clear the watch");
        addr += done;
        buffer = static_cast<std::uint8_t *>(buffer) + done;
        size -= done;
    }
}

void
Machine::read(VirtAddr addr, void *out, std::size_t size)
{
    if (size == 0)
        return;
    kernel_->noteAccessType(false);
    if (const AccessHook &hook = kernel_->currentAccessHook())
        hook(addr, size, false);
    maybeTick();

    auto *cursor = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        VirtAddr page_end = alignDown(addr, kPageSize) + kPageSize;
        std::size_t span = std::min<std::size_t>(size, page_end - addr);
        accessSpan(addr, cursor, span, false);
        addr += span;
        cursor += span;
        size -= span;
    }
}

void
Machine::write(VirtAddr addr, const void *in, std::size_t size)
{
    if (size == 0)
        return;
    kernel_->noteAccessType(true);
    if (const AccessHook &hook = kernel_->currentAccessHook())
        hook(addr, size, true);
    maybeTick();

    auto *cursor = const_cast<std::uint8_t *>(
        static_cast<const std::uint8_t *>(in));
    while (size > 0) {
        VirtAddr page_end = alignDown(addr, kPageSize) + kPageSize;
        std::size_t span = std::min<std::size_t>(size, page_end - addr);
        accessSpan(addr, cursor, span, true);
        addr += span;
        cursor += span;
        size -= span;
    }
}

} // namespace safemem
