/**
 * @file
 * The ECC memory controller (paper §2.1, Figure 1).
 *
 * Sits between the cache and PhysicalMemory. On a line writeback it encodes
 * a check byte per 64-bit ECC group (unless ECC is Disabled, in which case
 * stored check bytes go stale — the hook SafeMem's scramble trick relies
 * on). On a line fill it decodes every group: single-bit errors are
 * corrected in CorrectError modes, and uncorrectable mismatches raise an
 * interrupt on the wire registered with setInterruptHandler().
 *
 * Device-initiated accesses used by the kernel (word writes during a
 * scramble, raw line peeks) charge no cycles; the kernel bills calibrated
 * syscall totals instead. Cache-initiated fills/evictions charge
 * kDramLineCycles.
 */

#pragma once

#include "common/clock.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/types.h"
#include "ecc/codec.h"
#include "mem/fault.h"
#include "mem/line.h"
#include "mem/physical_memory.h"

namespace safemem {

class Trace;

/** Slot indices into the controller StatSet; order matches the names. */
enum class ControllerStat : std::size_t
{
    BusLocks,
    InterruptsRaised,
    SingleBitReported,
    SingleBitCorrected,
    MultiBitDetected,
    LineFills,
    LineEvictions,
    ScrubPasses,
};

/** Report/snapshot names for ControllerStat, in enumerator order. */
inline constexpr const char *kControllerStatNames[] = {
    "bus_locks",          "interrupts_raised", "single_bit_reported",
    "single_bit_corrected", "multi_bit_detected", "line_fills",
    "line_evictions",     "scrub_passes",
};

class MemoryController
{
  public:
    /**
     * @param code the ECC codec wired into the datapath (must outlive
     *        the controller). The machine geometry requires 64 data
     *        bits and a check word that fits the DIMM's check lane;
     *        anything else panics at construction.
     */
    MemoryController(PhysicalMemory &memory, CycleClock &clock,
                     Trace *trace = nullptr,
                     const EccCodec &code = defaultCodec());

    /** @return the codec wired into the datapath. */
    const EccCodec &code() const { return code_; }

    /** Switch the controller operating mode (device register write). */
    void setMode(EccMode mode) { mode_ = mode; }

    /** @return the current operating mode. */
    EccMode mode() const { return mode_; }

    /** Register the interrupt wire into the kernel. */
    void setInterruptHandler(EccInterruptHandler handler);

    /**
     * @name Memory-bus lock (held around scrambles, paper §2.2.2).
     *
     * A simulated lock, but a real capability: lockBus()/unlockBus()
     * acquire and release busCapability(), so Clang's thread-safety
     * analysis rejects double-locking and lock-leaking call paths at
     * compile time. Prefer the BusLockGuard RAII below — a panic()
     * between a bare lockBus()/unlockBus() pair would otherwise unwind
     * with the bus stuck locked.
     */
    /// @{
    void lockBus() ACQUIRE(busCapability_);
    void unlockBus() RELEASE(busCapability_);
    bool busLocked() const { return busLocked_; }

    /** The bus-lock capability, for ACQUIRE/RELEASE/REQUIRES clauses. */
    const Capability &
    busCapability() const RETURN_CAPABILITY(busCapability_)
    {
        return busCapability_;
    }
    /// @}

    /**
     * Cache-initiated line fill with full ECC decode.
     *
     * @param line_addr line-aligned physical address.
     * @param out       receives the (possibly corrected) line contents.
     * @return false when any group had an uncorrectable error; the
     *         interrupt handler has already run by then and the caller is
     *         expected to retry the fill.
     */
    bool fillLine(PhysAddr line_addr, LineData &out);

    /** Cache-initiated writeback; encodes check bytes per current mode. */
    void evictLine(PhysAddr line_addr, const LineData &data);

    /**
     * Device-initiated word write honouring the current mode: with ECC
     * Disabled the stored check byte is left untouched. Charges no cycles.
     */
    void writeWordDeviceOp(PhysAddr word_addr, std::uint64_t value);

    /** Uncharged, unchecked word read (kernel save path, tests). */
    std::uint64_t peekWord(PhysAddr word_addr) const;

    /** Uncharged, unchecked line read (kernel save path, tests). */
    void peekLine(PhysAddr line_addr, LineData &out) const;

    /**
     * Scrub @p lines cache lines starting at @p start_line: decode every
     * group, rewrite corrected singles, raise ScrubMultiBit interrupts on
     * uncorrectable groups.
     */
    void scrubRange(PhysAddr start_line, std::size_t lines);

    /** Scrub all of physical memory. */
    void scrubAll();

    /** @return controller statistics (fills, corrections, faults...). */
    const StatSet &stats() const { return stats_; }

    /** @return underlying DRAM (fault injection in tests). */
    PhysicalMemory &memory() { return memory_; }

  private:
    /**
     * Decode one group during a fill/scrub.
     * @return false on an uncorrectable error (interrupt already raised).
     */
    bool decodeWord(PhysAddr word_addr, bool scrubbing,
                    std::uint64_t &data_out);

    /** SimCheck: written-back line must read back verbatim and decode
     *  clean (run only while auditing is enabled). */
    void auditWritebackCoherence(PhysAddr line_addr,
                                 const LineData &data) const;

    void raise(const EccFaultInfo &info);

    PhysicalMemory &memory_;
    CycleClock &clock_;
    const EccCodec &code_;
    EccMode mode_ = EccMode::CorrectError;
    Capability busCapability_; ///< compile-time face of the bus lock
    bool busLocked_ = false;   ///< runtime face, audited by SimCheck
    EccInterruptHandler interruptHandler_;
    Trace *trace_;
    StatSet stats_{kControllerStatNames};
};

/**
 * RAII holder of the memory-bus lock. The kernel's scramble and
 * unscramble paths panic on malformed requests *while the bus is
 * locked*; unwinding through this guard releases the bus instead of
 * wedging every later lockBus() (see test_lock_discipline.cc).
 */
class SCOPED_CAPABILITY BusLockGuard
{
  public:
    explicit BusLockGuard(MemoryController &controller)
        ACQUIRE(controller.busCapability())
        : controller_(controller)
    {
        controller_.lockBus();
    }

    ~BusLockGuard() RELEASE() { controller_.unlockBus(); }

    BusLockGuard(const BusLockGuard &) = delete;
    BusLockGuard &operator=(const BusLockGuard &) = delete;

  private:
    MemoryController &controller_;
};

} // namespace safemem
