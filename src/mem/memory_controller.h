/**
 * @file
 * The ECC memory controller (paper §2.1, Figure 1), sharded into banks.
 *
 * Sits between the cache and PhysicalMemory. On a line writeback it encodes
 * a check byte per 64-bit ECC group (unless ECC is Disabled, in which case
 * stored check bytes go stale — the hook SafeMem's scramble trick relies
 * on). On a line fill it decodes every group: single-bit errors are
 * corrected in CorrectError modes, and uncorrectable mismatches raise an
 * interrupt on the wire registered with setInterruptHandler().
 *
 * Physical memory is page-interleaved across numBanks() MemoryBank
 * objects (bank.h). Each bank has its own lock capability and stat
 * slots; lockBus() is now the compatibility shim that locks every bank
 * in ascending order. Traffic is gated per bank: a fill of bank 2
 * proceeds while bank 0 is locked for a scramble.
 *
 * Device-initiated accesses used by the kernel (word writes during a
 * scramble, raw line peeks) charge no cycles; the kernel bills calibrated
 * syscall totals instead. Cache-initiated fills/evictions charge
 * kDramLineCycles.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/types.h"
#include "ecc/codec.h"
#include "ecc/geometry.h"
#include "mem/bank.h"
#include "mem/fault.h"
#include "mem/line.h"
#include "mem/physical_memory.h"

namespace safemem {

class Trace;

class MemoryController
{
  public:
    /**
     * @param code the ECC codec wired into the datapath (must outlive
     *        the controller). The machine geometry requires 64 data
     *        bits and a check word that fits the DIMM's check lane;
     *        anything else panics at construction.
     * @param banks number of interleaved banks in [1, kMaxMemoryBanks];
     *        the DIMM must hold at least one page per bank.
     * @param geometry protection geometry of the datapath. A block
     *        geometry requires a DIMM organised with the matching EDC
     *        lane; the word default is bit-identical to the
     *        pre-geometry controller.
     */
    MemoryController(PhysicalMemory &memory, CycleClock &clock,
                     Trace *trace = nullptr,
                     const EccCodec &code = defaultCodec(),
                     unsigned banks = 1, ProtectionGeometry geometry = {});

    /** @return the codec wired into the datapath. */
    const EccCodec &code() const { return code_; }

    /** @return the protection geometry wired into the datapath. */
    const ProtectionGeometry &geometry() const { return geometry_; }

    /** Switch the controller operating mode (device register write). */
    void setMode(EccMode mode) { mode_ = mode; }

    /** @return the current operating mode. */
    EccMode mode() const { return mode_; }

    /** Register the interrupt wire into the kernel. */
    void setInterruptHandler(EccInterruptHandler handler);

    /**
     * @name Bank geometry.
     */
    /// @{
    /** @return the number of interleaved banks. */
    unsigned numBanks() const { return static_cast<unsigned>(banks_.size()); }

    /** @return the bank owning @p addr (page-granular interleave). */
    unsigned bankOf(PhysAddr addr) const
    {
        return static_cast<unsigned>((addr / kPageSize) % banks_.size());
    }

    /** @return bank @p id for inspection (stats, lock state, cursor). */
    const MemoryBank &bank(unsigned id) const;

    /** @return bit mask of the banks spanned by [addr, addr+bytes). */
    std::uint64_t bankMaskForSpan(PhysAddr addr, std::size_t bytes) const;
    /// @}

    /**
     * @name Memory-bus lock (held around scrambles, paper §2.2.2).
     *
     * Each bank is an independently lockable bus segment: lockBank(b)
     * stalls only traffic to bank b. lockBus()/unlockBus() remain as the
     * whole-machine operation — they lock every bank in ascending order
     * (and release in descending order) and still acquire/release
     * busCapability(), so Clang's thread-safety analysis rejects
     * double-locking and lock-leaking call paths at compile time. Prefer
     * the RAII guards below — a panic() between a bare lock/unlock pair
     * would otherwise unwind with a bank stuck locked.
     */
    /// @{
    void lockBank(unsigned id);
    void unlockBank(unsigned id);
    bool bankLocked(unsigned id) const;

    void lockBus() ACQUIRE(busCapability_);
    void unlockBus() RELEASE(busCapability_);

    /** @return whether every bank is locked (the whole-bus view). */
    bool busLocked() const;

    /** @return whether any bank is locked. */
    bool anyBankLocked() const;

    /** The bus-lock capability, for ACQUIRE/RELEASE/REQUIRES clauses. */
    const Capability &
    busCapability() const RETURN_CAPABILITY(busCapability_)
    {
        return busCapability_;
    }
    /// @}

    /**
     * Cache-initiated line fill with full ECC decode.
     *
     * @param line_addr line-aligned physical address.
     * @param out       receives the (possibly corrected) line contents.
     * @return false when any group had an uncorrectable error; the
     *         interrupt handler has already run by then and the caller is
     *         expected to retry the fill.
     */
    bool fillLine(PhysAddr line_addr, LineData &out);

    /** Cache-initiated writeback; encodes check bytes per current mode. */
    void evictLine(PhysAddr line_addr, const LineData &data);

    /**
     * Device-initiated word write honouring the current mode: with ECC
     * Disabled the stored check byte is left untouched. Charges no cycles.
     */
    void writeWordDeviceOp(PhysAddr word_addr, std::uint64_t value);

    /** Uncharged, unchecked word read (kernel save path, tests). */
    std::uint64_t peekWord(PhysAddr word_addr) const;

    /** Uncharged, unchecked line read (kernel save path, tests). */
    void peekLine(PhysAddr line_addr, LineData &out) const;

    /**
     * Scrub @p lines cache lines starting at @p start_line: decode every
     * group, rewrite corrected singles, raise ScrubMultiBit interrupts on
     * uncorrectable groups. Spanned banks must be unlocked.
     */
    void scrubRange(PhysAddr start_line, std::size_t lines);

    /**
     * One full scrub pass over bank @p id's slice of memory: its pages
     * in ascending address order, advancing the bank's scrub cursor.
     * With one bank this is exactly the old whole-memory scrub pass.
     */
    void scrubBank(unsigned id);

    /** Scrub all of physical memory, bank by bank in ascending order. */
    void scrubAll();

    /** @return machine-wide controller statistics (roll-up of banks). */
    const StatSet &stats() const { return stats_; }

    /** @return machine-wide block-geometry statistics (roll-up of the
     *  per-bank slices; all-zero on the word default). */
    const StatSet &geometryStats() const { return geomStats_; }

    /** @return whether the stored EDC fold of the line at @p line_addr
     *  matches its stored data. Trivially true on the word default
     *  (no EDC lane exists). Uncharged — SimCheck audits and tests. */
    bool edcConsistent(PhysAddr line_addr) const;

    /**
     * SimCheck: every machine-wide counter must equal the sum of the
     * per-bank slots — each stat site bumps exactly one bank alongside
     * the roll-up (run only while auditing is enabled).
     */
    void auditBankRollup() const;

    /** @return underlying DRAM (fault injection in tests). */
    PhysicalMemory &memory() { return memory_; }

  private:
    /**
     * Decode one group during a fill/scrub.
     * @return false on an uncorrectable error (interrupt already raised).
     */
    bool decodeWord(PhysAddr word_addr, bool scrubbing,
                    std::uint64_t &data_out);

    /** @return the EDC fold of the stored data of the line at
     *  @p line_addr (block geometries only). */
    std::uint64_t storedLineFold(PhysAddr line_addr) const;

    /** Bump a block-geometry stat machine-wide and on @p bank_id. */
    void geomAdd(GeometryStat stat, unsigned bank_id,
                 std::uint64_t delta = 1);

    /**
     * Full long-code ECC decode of the codeword containing
     * @p line_addr, after an EDC miss. Words of the requested line get
     * the word-default fault semantics (heal / report / raise);
     * uncorrectable words elsewhere in the codeword are counted latent
     * instead of raising, so one scrambled neighbour cannot storm the
     * interrupt wire with faults nobody demanded. Lines that decode
     * clean get stale EDC folds refreshed — correcting modes only,
     * because CheckOnly never heals and a refresh would bless the very
     * error a stale fold is flagging.
     * @param out receives the requested line when non-null.
     * @return false when a word of the requested line was uncorrectable.
     */
    bool blockDecode(PhysAddr line_addr, bool scrubbing, LineData *out);

    /** decodeWord for codeword words outside the requested line: heals
     *  singles in correcting modes, counts uncorrectable words as
     *  latent instead of raising. @return whether the stored word ends
     *  up clean. */
    bool latentDecodeWord(PhysAddr word_addr);

    /** Scrub one line: per-word decode on the word default; EDC
     *  fast-check with decode-on-miss under a block geometry. */
    void scrubLine(PhysAddr line_addr);

    /** SimCheck: written-back line must read back verbatim and decode
     *  clean (run only while auditing is enabled). */
    void auditWritebackCoherence(PhysAddr line_addr,
                                 const LineData &data) const;

    void raise(const EccFaultInfo &info);

    PhysicalMemory &memory_;
    CycleClock &clock_;
    const EccCodec &code_;
    EccMode mode_ = EccMode::CorrectError;
    Capability busCapability_; ///< compile-time face of the all-banks lock
    /** Banks hold a Capability each, so they never move; a deque
     *  constructs them in place and leaves them put. */
    std::deque<MemoryBank> banks_;
    EccInterruptHandler interruptHandler_;
    Trace *trace_;
    ProtectionGeometry geometry_;
    StatSet stats_{kControllerStatNames};
    StatSet geomStats_{kGeometryStatNames};
};

/**
 * RAII holder of the whole memory bus (every bank). The kernel's
 * scramble and unscramble paths panic on malformed requests *while the
 * bus is locked*; unwinding through this guard releases the bus instead
 * of wedging every later lockBus() (see test_lock_discipline.cc).
 */
class SCOPED_CAPABILITY BusLockGuard
{
  public:
    explicit BusLockGuard(MemoryController &controller)
        ACQUIRE(controller.busCapability())
        : controller_(controller)
    {
        controller_.lockBus();
    }

    ~BusLockGuard() RELEASE() { controller_.unlockBus(); }

    BusLockGuard(const BusLockGuard &) = delete;
    BusLockGuard &operator=(const BusLockGuard &) = delete;

  private:
    MemoryController &controller_;
};

/**
 * RAII holder of a single bank's lock. Bank indices are runtime values,
 * so the static analysis cannot name the capability; the SimCheck
 * pairing audit and the lock-order lint carry the discipline instead.
 */
class BankLockGuard
{
  public:
    BankLockGuard(MemoryController &controller, unsigned bank)
        : controller_(controller), bank_(bank)
    {
        controller_.lockBank(bank_);
    }

    ~BankLockGuard() { controller_.unlockBank(bank_); }

    BankLockGuard(const BankLockGuard &) = delete;
    BankLockGuard &operator=(const BankLockGuard &) = delete;

  private:
    MemoryController &controller_;
    unsigned bank_;
};

/**
 * RAII holder of a set of bank locks, given as a bit mask. Locks
 * ascending and releases descending, matching lockBus()'s whole-machine
 * order so mixed users can never deadlock in a future preemptive world.
 */
class BankSetLockGuard
{
  public:
    BankSetLockGuard(MemoryController &controller, std::uint64_t mask)
        : controller_(controller), mask_(mask)
    {
        for (unsigned b = 0; b < controller_.numBanks(); ++b)
            if (mask_ >> b & 1)
                controller_.lockBank(b);
    }

    ~BankSetLockGuard()
    {
        for (unsigned b = controller_.numBanks(); b-- > 0;)
            if (mask_ >> b & 1)
                controller_.unlockBank(b);
    }

    BankSetLockGuard(const BankSetLockGuard &) = delete;
    BankSetLockGuard &operator=(const BankSetLockGuard &) = delete;

  private:
    MemoryController &controller_;
    std::uint64_t mask_;
};

} // namespace safemem
