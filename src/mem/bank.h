/**
 * @file
 * One interleaved memory bank: the unit of independent locking.
 *
 * Physical memory is page-interleaved across N banks: page p lives in
 * bank p % N, so every cache line and every frame is wholly owned by
 * exactly one bank. Each bank carries its own annotated lock capability
 * (the per-bank face of the old global bus lock), its own scrubber
 * cursor, and its own ControllerStat slots; the machine-wide StatSet on
 * the controller stays the bit-compatible roll-up of the per-bank
 * slots. With one bank the machine degenerates to the original
 * single-bus chipset.
 */

#pragma once

#include <cstddef>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/types.h"

namespace safemem {

/** Banks are interleaved at page granularity; the cap keeps a bank
 *  footprint representable as one uint64 bit mask everywhere. */
inline constexpr unsigned kMaxMemoryBanks = 64;

/** Slot indices into the controller StatSet; order matches the names. */
enum class ControllerStat : std::size_t
{
    BusLocks,
    InterruptsRaised,
    SingleBitReported,
    SingleBitCorrected,
    MultiBitDetected,
    LineFills,
    LineEvictions,
    ScrubPasses,
};

/** Report/snapshot names for ControllerStat, in enumerator order. */
inline constexpr const char *kControllerStatNames[] = {
    "bus_locks",          "interrupts_raised", "single_bit_reported",
    "single_bit_corrected", "multi_bit_detected", "line_fills",
    "line_evictions",     "scrub_passes",
};

/**
 * Slot indices into the block-geometry StatSet; order matches
 * kGeometryStatNames. These slots only move on block-geometry machines:
 * the per-word SEC-DED default never touches them, and the driver only
 * merges them into run results under a block geometry, keeping
 * word-geometry stat maps byte-identical to the pre-geometry machine.
 */
enum class GeometryStat : std::size_t
{
    EdcChecksPassed,  ///< fills declared clean by the EDC fast path
    EdcChecksFailed,  ///< fills that missed EDC and took the full decode
    BlockDecodes,     ///< whole-codeword ECC decodes (one per EDC miss)
    BlockDecodeWords, ///< words decoded across all block decodes
    PartialWriteRmws, ///< writebacks that opened a new codeword (full RMW)
    OpenCodewordHits, ///< writebacks folded into the open codeword
    LatentFaultWords, ///< uncorrectable words outside the requested line
    EdcRefreshes,     ///< stale-but-clean EDC folds rewritten
    RedundancyBytesRead,    ///< EDC + ECC + RMW traffic read
    RedundancyBytesWritten, ///< EDC + ECC traffic written
    DataBytesRead,    ///< demand data read by fills
    DataBytesWritten, ///< demand data written by evictions
};

/** Report/snapshot names for GeometryStat, in enumerator order. */
inline constexpr const char *kGeometryStatNames[] = {
    "edc_checks_passed",
    "edc_checks_failed",
    "block_decodes",
    "block_decode_words",
    "partial_write_rmws",
    "open_codeword_hits",
    "latent_fault_words",
    "edc_refreshes",
    "redundancy_bytes_read",
    "redundancy_bytes_written",
    "data_bytes_read",
    "data_bytes_written",
};

/**
 * Per-bank state owned by the MemoryController. The controller is the
 * only mutator (lockBank/unlockBank/scrubBank); everyone else reads
 * through the const accessors.
 */
class MemoryBank
{
  public:
    explicit MemoryBank(unsigned id)
        : id_(id), scrubCursor_(static_cast<PhysAddr>(id) * kPageSize)
    {
    }

    /** @return this bank's index in [0, numBanks). */
    unsigned id() const { return id_; }

    /** @return whether this bank's bus lock is currently held. */
    bool locked() const { return locked_; }

    /** @return the next page this bank's scrubber will visit. */
    PhysAddr scrubCursor() const { return scrubCursor_; }

    /** @return this bank's slice of the controller statistics. */
    const StatSet &stats() const { return stats_; }

    /** @return this bank's slice of the block-geometry statistics
     *  (all-zero on a word-geometry machine). */
    const StatSet &geometryStats() const { return geomStats_; }

    /** The bank-lock capability, for ACQUIRE/RELEASE/REQUIRES clauses. */
    const Capability &capability() const RETURN_CAPABILITY(capability_)
    {
        return capability_;
    }

  private:
    friend class MemoryController;

    unsigned id_;
    Capability capability_; ///< compile-time face of the bank lock
    bool locked_ = false;   ///< runtime face, audited by SimCheck
    PhysAddr scrubCursor_;  ///< patrol position within this bank's slice
    StatSet stats_{kControllerStatNames};
    StatSet geomStats_{kGeometryStatNames};
    /** Codeword held open in this bank's write-combine buffer: further
     *  writebacks into it fold their redundancy update incrementally
     *  instead of paying the full read-modify-write (block geometry
     *  only; ~0 = nothing open). */
    PhysAddr openCodeword_ = ~PhysAddr{0};
};

} // namespace safemem
