/**
 * @file
 * One interleaved memory bank: the unit of independent locking.
 *
 * Physical memory is page-interleaved across N banks: page p lives in
 * bank p % N, so every cache line and every frame is wholly owned by
 * exactly one bank. Each bank carries its own annotated lock capability
 * (the per-bank face of the old global bus lock), its own scrubber
 * cursor, and its own ControllerStat slots; the machine-wide StatSet on
 * the controller stays the bit-compatible roll-up of the per-bank
 * slots. With one bank the machine degenerates to the original
 * single-bus chipset.
 */

#pragma once

#include <cstddef>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/types.h"

namespace safemem {

/** Banks are interleaved at page granularity; the cap keeps a bank
 *  footprint representable as one uint64 bit mask everywhere. */
inline constexpr unsigned kMaxMemoryBanks = 64;

/** Slot indices into the controller StatSet; order matches the names. */
enum class ControllerStat : std::size_t
{
    BusLocks,
    InterruptsRaised,
    SingleBitReported,
    SingleBitCorrected,
    MultiBitDetected,
    LineFills,
    LineEvictions,
    ScrubPasses,
};

/** Report/snapshot names for ControllerStat, in enumerator order. */
inline constexpr const char *kControllerStatNames[] = {
    "bus_locks",          "interrupts_raised", "single_bit_reported",
    "single_bit_corrected", "multi_bit_detected", "line_fills",
    "line_evictions",     "scrub_passes",
};

/**
 * Per-bank state owned by the MemoryController. The controller is the
 * only mutator (lockBank/unlockBank/scrubBank); everyone else reads
 * through the const accessors.
 */
class MemoryBank
{
  public:
    explicit MemoryBank(unsigned id)
        : id_(id), scrubCursor_(static_cast<PhysAddr>(id) * kPageSize)
    {
    }

    /** @return this bank's index in [0, numBanks). */
    unsigned id() const { return id_; }

    /** @return whether this bank's bus lock is currently held. */
    bool locked() const { return locked_; }

    /** @return the next page this bank's scrubber will visit. */
    PhysAddr scrubCursor() const { return scrubCursor_; }

    /** @return this bank's slice of the controller statistics. */
    const StatSet &stats() const { return stats_; }

    /** The bank-lock capability, for ACQUIRE/RELEASE/REQUIRES clauses. */
    const Capability &capability() const RETURN_CAPABILITY(capability_)
    {
        return capability_;
    }

  private:
    friend class MemoryController;

    unsigned id_;
    Capability capability_; ///< compile-time face of the bank lock
    bool locked_ = false;   ///< runtime face, audited by SimCheck
    PhysAddr scrubCursor_;  ///< patrol position within this bank's slice
    StatSet stats_{kControllerStatNames};
};

} // namespace safemem
