#include "mem/memory_controller.h"

#include "check/simcheck.h"
#include "common/costs.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace safemem {

MemoryController::MemoryController(PhysicalMemory &memory, CycleClock &clock,
                                   Trace *trace, const EccCodec &code)
    : memory_(memory), clock_(clock), code_(code), trace_(trace)
{
    // The datapath is one 64-bit ECC group per check byte; a codec with
    // another geometry belongs to the campaign engine, not a machine.
    if (code_.dataBits() != 64)
        panic("MemoryController: codec '", code_.name(), "' protects ",
              code_.dataBits(), " data bits; the ECC group is 64");
    if (code_.checkBits() > memory_.checkBits())
        panic("MemoryController: codec '", code_.name(), "' needs ",
              code_.checkBits(), " check bits; the DIMM stores ",
              memory_.checkBits());
}

void
MemoryController::setInterruptHandler(EccInterruptHandler handler)
{
    interruptHandler_ = std::move(handler);
}

void
MemoryController::lockBus()
{
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "bus_lock_pairing",
                   !busLocked_, "lockBus while the bus is already locked");
    if (busLocked_)
        panic("MemoryController: bus already locked");
    busLocked_ = true;
    stats_.add(ControllerStat::BusLocks);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerBusLock, clock_.now());
}

void
MemoryController::unlockBus()
{
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "bus_lock_pairing",
                   busLocked_, "unlockBus while the bus is not locked");
    if (!busLocked_)
        panic("MemoryController: bus not locked");
    busLocked_ = false;
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerBusUnlock, clock_.now());
}

void
MemoryController::raise(const EccFaultInfo &info)
{
    stats_.add(ControllerStat::InterruptsRaised);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerInterrupt, clock_.now(),
                       info.lineAddr,
                       static_cast<std::uint64_t>(info.wordIndex),
                       static_cast<std::uint64_t>(info.kind));
    if (!interruptHandler_)
        panic("MemoryController: ECC interrupt with no handler wired; "
              "line=", info.lineAddr, " word=", info.wordIndex);
    interruptHandler_(info);
}

bool
MemoryController::decodeWord(PhysAddr word_addr, bool scrubbing,
                             std::uint64_t &data_out)
{
    std::uint64_t data = memory_.readWord(word_addr);
    data_out = data;

    if (mode_ == EccMode::Disabled)
        return true;

    std::uint8_t check = memory_.readCheck(word_addr);
    EccDecodeResult result = code_.decode(data, check);

    switch (result.status) {
      case EccDecodeStatus::Ok:
        return true;

      case EccDecodeStatus::CorrectedSingle:
        if (mode_ == EccMode::CheckOnly) {
            // Check-Only mode detects and reports but never corrects.
            stats_.add(ControllerStat::SingleBitReported);
            EccFaultInfo info;
            info.kind = EccFaultKind::UnreportedSingle;
            info.lineAddr = alignDown(word_addr, kCacheLineSize);
            info.wordIndex = static_cast<int>(
                (word_addr % kCacheLineSize) / kEccGroupSize);
            info.rawData = data;
            raise(info);
            return true;
        }
        // Correct transparently and heal the stored copy.
        stats_.add(ControllerStat::SingleBitCorrected);
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerSingleBitCorrected,
                           clock_.now(), word_addr);
        memory_.writeWord(word_addr, result.data);
        memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                          code_.encode(result.data)));
        data_out = result.data;
        // The corrected word just written back must form a clean codeword;
        // anything else means the correct/heal datapath is broken.
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "fill_reencode_clean",
                       code_.decode(memory_.readWord(word_addr),
                                    memory_.readCheck(word_addr)).status ==
                           EccDecodeStatus::Ok,
                       "healed word at ", word_addr,
                       " does not re-decode clean");
        return true;

      case EccDecodeStatus::Uncorrectable: {
        stats_.add(ControllerStat::MultiBitDetected);
        EccFaultInfo info;
        info.kind = scrubbing ? EccFaultKind::ScrubMultiBit
                              : EccFaultKind::MultiBit;
        info.lineAddr = alignDown(word_addr, kCacheLineSize);
        info.wordIndex = static_cast<int>(
            (word_addr % kCacheLineSize) / kEccGroupSize);
        info.rawData = data;
        raise(info);
        return false;
      }
    }
    return true;
}

bool
MemoryController::fillLine(PhysAddr line_addr, LineData &out)
{
    if (!isAligned(line_addr, kCacheLineSize))
        panic("MemoryController: unaligned fill address ", line_addr);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !busLocked_, "cache fill of line ", line_addr,
                   " while the memory bus is locked");
    if (busLocked_)
        panic("MemoryController: fill while memory bus is locked");

    clock_.advance(kDramLineCycles);
    stats_.add(ControllerStat::LineFills);

    bool ok = true;
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        std::uint64_t word;
        if (!decodeWord(line_addr + i * kEccGroupSize, false, word))
            ok = false;
        setLineWord(out, i, word);
    }
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerFill, clock_.now(),
                       line_addr, ok ? 1 : 0);
    return ok;
}

void
MemoryController::evictLine(PhysAddr line_addr, const LineData &data)
{
    if (!isAligned(line_addr, kCacheLineSize))
        panic("MemoryController: unaligned eviction address ", line_addr);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !busLocked_, "cache writeback of line ", line_addr,
                   " while the memory bus is locked");
    if (busLocked_)
        panic("MemoryController: writeback while memory bus is locked");

    clock_.advance(kDramLineCycles);
    stats_.add(ControllerStat::LineEvictions);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerEvict, clock_.now(),
                       line_addr);

    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        PhysAddr word_addr = line_addr + i * kEccGroupSize;
        std::uint64_t word = lineWord(data, i);
        memory_.writeWord(word_addr, word);
        if (mode_ != EccMode::Disabled)
            memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                              code_.encode(word)));
    }

    if (simCheckActive())
        auditWritebackCoherence(line_addr, data);
}

void
MemoryController::auditWritebackCoherence(PhysAddr line_addr,
                                          const LineData &data) const
{
    // The line the cache just wrote back must read back verbatim and (with
    // ECC on) decode clean — a mismatch means the writeback datapath lost
    // or mangled data, exactly the silent corruption SafeMem exists to
    // catch in applications.
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        PhysAddr word_addr = line_addr + i * kEccGroupSize;
        std::uint64_t stored = memory_.readWord(word_addr);
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "writeback_data_match",
                       stored == lineWord(data, i),
                       "word ", i, " of line ", line_addr,
                       " differs from the written-back data");
        if (mode_ != EccMode::Disabled) {
            SIMCHECK_AUDIT(
                AuditDomain::MemoryController, "writeback_check_clean",
                code_.decode(stored, memory_.readCheck(word_addr)).status ==
                    EccDecodeStatus::Ok,
                "stored check byte stale after writeback of line ",
                line_addr);
        }
    }
}

void
MemoryController::writeWordDeviceOp(PhysAddr word_addr, std::uint64_t value)
{
    memory_.writeWord(word_addr, value);
    if (mode_ != EccMode::Disabled)
        memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                          code_.encode(value)));
}

std::uint64_t
MemoryController::peekWord(PhysAddr word_addr) const
{
    return memory_.readWord(word_addr);
}

void
MemoryController::peekLine(PhysAddr line_addr, LineData &out) const
{
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
        setLineWord(out, i, memory_.readWord(line_addr + i * kEccGroupSize));
}

void
MemoryController::scrubRange(PhysAddr start_line, std::size_t lines)
{
    // The scrub engine is a bus agent like the cache: while the kernel
    // holds the bus for a scramble, scrub reads of half-written groups
    // would race the scramble exactly like a fill would.
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !busLocked_, "scrub of ", lines, " lines at ", start_line,
                   " while the memory bus is locked");
    if (busLocked_)
        panic("MemoryController: scrub while memory bus is locked");

    stats_.add(ControllerStat::ScrubPasses);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubBegin, clock_.now(),
                       start_line, lines);
    for (std::size_t l = 0; l < lines; ++l) {
        PhysAddr line_addr = start_line + l * kCacheLineSize;
        for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
            clock_.advance(kScrubWordCycles, CostCenter::Kernel);
            std::uint64_t word;
            decodeWord(line_addr + i * kEccGroupSize, true, word);
        }
    }
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubEnd, clock_.now(),
                       start_line, lines);
}

void
MemoryController::scrubAll()
{
    scrubRange(0, memory_.size() / kCacheLineSize);
}

} // namespace safemem
