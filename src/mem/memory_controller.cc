#include "mem/memory_controller.h"

#include "check/simcheck.h"
#include "common/costs.h"
#include "common/logging.h"
#include "ecc/edc.h"
#include "trace/trace.h"

namespace safemem {

namespace {

/** Stored bytes of one line's EDC fold (the lane rounds up to bytes). */
std::uint64_t
edcFoldBytes(EdcKind kind)
{
    return (edcBitsPerLine(kind) + 7) / 8;
}

} // namespace

MemoryController::MemoryController(PhysicalMemory &memory, CycleClock &clock,
                                   Trace *trace, const EccCodec &code,
                                   unsigned banks, ProtectionGeometry geometry)
    : memory_(memory), clock_(clock), code_(code), trace_(trace),
      geometry_(geometry)
{
    // The datapath is one 64-bit ECC group per check byte; a codec with
    // another geometry belongs to the campaign engine, not a machine.
    if (code_.dataBits() != 64)
        panic("MemoryController: codec '", code_.name(), "' protects ",
              code_.dataBits(), " data bits; the ECC group is 64");
    if (code_.checkBits() > memory_.checkBits())
        panic("MemoryController: codec '", code_.name(), "' needs ",
              code_.checkBits(), " check bits; the DIMM stores ",
              memory_.checkBits());
    if (banks < 1 || banks > kMaxMemoryBanks)
        panic("MemoryController: ", banks, " banks outside [1, ",
              kMaxMemoryBanks, "]");
    if (memory_.size() / kPageSize < banks)
        panic("MemoryController: ", banks, " banks but only ",
              memory_.size() / kPageSize, " pages of DRAM");
    // A block-geometry datapath needs the DIMM's EDC lane, organised for
    // the same codeword size and fold kind. validCodewordBytes() caps
    // codewords at one page, so a codeword never straddles a page — and
    // with page-granular interleaving, never a bank — boundary.
    if (!geometry_.isWord() &&
        (!memory_.hasEdcLane() || !(memory_.geometry() == geometry_)))
        panic("MemoryController: geometry '", geometryName(geometry_),
              "' but the DIMM is organised for '",
              geometryName(memory_.geometry()), "'");
    for (unsigned b = 0; b < banks; ++b)
        banks_.emplace_back(b);
}

void
MemoryController::setInterruptHandler(EccInterruptHandler handler)
{
    interruptHandler_ = std::move(handler);
}

const MemoryBank &
MemoryController::bank(unsigned id) const
{
    if (id >= banks_.size())
        panic("MemoryController: bank ", id, " of ", banks_.size());
    return banks_[id];
}

std::uint64_t
MemoryController::bankMaskForSpan(PhysAddr addr, std::size_t bytes) const
{
    if (bytes == 0)
        return 0;
    std::uint64_t mask = 0;
    PhysAddr first = alignDown(addr, kPageSize);
    PhysAddr last = alignDown(addr + bytes - 1, kPageSize);
    for (PhysAddr page = first; page <= last; page += kPageSize)
        mask |= std::uint64_t{1} << bankOf(page);
    return mask;
}

void
MemoryController::lockBank(unsigned id)
{
    MemoryBank &bank = banks_.at(id);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "bus_lock_pairing",
                   !bank.locked_, "lockBank while bank ", id,
                   " is already locked");
    if (bank.locked_)
        panic("MemoryController: bus already locked");
    bank.locked_ = true;
    stats_.add(ControllerStat::BusLocks);
    bank.stats_.add(ControllerStat::BusLocks);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerBusLock, clock_.now(),
                       id);
}

void
MemoryController::unlockBank(unsigned id)
{
    MemoryBank &bank = banks_.at(id);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "bus_lock_pairing",
                   bank.locked_, "unlockBank while bank ", id,
                   " is not locked");
    if (!bank.locked_)
        panic("MemoryController: bus not locked");
    bank.locked_ = false;
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerBusUnlock, clock_.now(),
                       id);
}

bool
MemoryController::bankLocked(unsigned id) const
{
    return banks_.at(id).locked_;
}

void
MemoryController::lockBus()
{
    for (unsigned b = 0; b < banks_.size(); ++b)
        lockBank(b);
}

void
MemoryController::unlockBus()
{
    for (unsigned b = static_cast<unsigned>(banks_.size()); b-- > 0;)
        unlockBank(b);
}

bool
MemoryController::busLocked() const
{
    for (const MemoryBank &bank : banks_)
        if (!bank.locked_)
            return false;
    return true;
}

bool
MemoryController::anyBankLocked() const
{
    for (const MemoryBank &bank : banks_)
        if (bank.locked_)
            return true;
    return false;
}

void
MemoryController::raise(const EccFaultInfo &info)
{
    stats_.add(ControllerStat::InterruptsRaised);
    banks_[info.bank].stats_.add(ControllerStat::InterruptsRaised);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerInterrupt, clock_.now(),
                       info.lineAddr,
                       static_cast<std::uint64_t>(info.wordIndex),
                       static_cast<std::uint64_t>(info.kind));
    if (!interruptHandler_)
        panic("MemoryController: ECC interrupt with no handler wired; "
              "line=", info.lineAddr, " word=", info.wordIndex);
    interruptHandler_(info);
}

bool
MemoryController::decodeWord(PhysAddr word_addr, bool scrubbing,
                             std::uint64_t &data_out)
{
    std::uint64_t data = memory_.readWord(word_addr);
    data_out = data;

    if (mode_ == EccMode::Disabled)
        return true;

    std::uint8_t check = memory_.readCheck(word_addr);
    EccDecodeResult result = code_.decode(data, check);
    unsigned bank_id = bankOf(word_addr);

    switch (result.status) {
      case EccDecodeStatus::Ok:
        return true;

      case EccDecodeStatus::CorrectedSingle:
        if (mode_ == EccMode::CheckOnly) {
            // Check-Only mode detects and reports but never corrects.
            stats_.add(ControllerStat::SingleBitReported);
            banks_[bank_id].stats_.add(ControllerStat::SingleBitReported);
            EccFaultInfo info;
            info.kind = EccFaultKind::UnreportedSingle;
            info.lineAddr = alignDown(word_addr, kCacheLineSize);
            info.wordIndex = static_cast<int>(
                (word_addr % kCacheLineSize) / kEccGroupSize);
            info.rawData = data;
            info.bank = bank_id;
            if (!geometry_.isWord())
                info.codewordAddr =
                    alignDown(word_addr, geometry_.codewordBytes);
            raise(info);
            return true;
        }
        // Correct transparently and heal the stored copy.
        stats_.add(ControllerStat::SingleBitCorrected);
        banks_[bank_id].stats_.add(ControllerStat::SingleBitCorrected);
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerSingleBitCorrected,
                           clock_.now(), word_addr);
        memory_.writeWord(word_addr, result.data);
        memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                          code_.encode(result.data)));
        data_out = result.data;
        // The corrected word just written back must form a clean codeword;
        // anything else means the correct/heal datapath is broken.
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "fill_reencode_clean",
                       code_.decode(memory_.readWord(word_addr),
                                    memory_.readCheck(word_addr)).status ==
                           EccDecodeStatus::Ok,
                       "healed word at ", word_addr,
                       " does not re-decode clean");
        return true;

      case EccDecodeStatus::Uncorrectable: {
        stats_.add(ControllerStat::MultiBitDetected);
        banks_[bank_id].stats_.add(ControllerStat::MultiBitDetected);
        EccFaultInfo info;
        info.kind = scrubbing ? EccFaultKind::ScrubMultiBit
                              : EccFaultKind::MultiBit;
        info.lineAddr = alignDown(word_addr, kCacheLineSize);
        info.wordIndex = static_cast<int>(
            (word_addr % kCacheLineSize) / kEccGroupSize);
        info.rawData = data;
        info.bank = bank_id;
        if (!geometry_.isWord())
            info.codewordAddr = alignDown(word_addr, geometry_.codewordBytes);
        raise(info);
        return false;
      }
    }
    return true;
}

std::uint64_t
MemoryController::storedLineFold(PhysAddr line_addr) const
{
    std::uint64_t words[kEccGroupsPerLine];
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
        words[i] = memory_.readWord(line_addr + i * kEccGroupSize);
    return edcLineFold(geometry_.edc, words, kEccGroupsPerLine);
}

bool
MemoryController::edcConsistent(PhysAddr line_addr) const
{
    if (geometry_.isWord())
        return true;
    return storedLineFold(line_addr) == memory_.readEdc(line_addr);
}

void
MemoryController::geomAdd(GeometryStat stat, unsigned bank_id,
                          std::uint64_t delta)
{
    geomStats_.add(stat, delta);
    banks_[bank_id].geomStats_.add(stat, delta);
}

bool
MemoryController::latentDecodeWord(PhysAddr word_addr)
{
    std::uint64_t data = memory_.readWord(word_addr);
    std::uint8_t check = memory_.readCheck(word_addr);
    EccDecodeResult result = code_.decode(data, check);
    unsigned bank_id = bankOf(word_addr);

    switch (result.status) {
      case EccDecodeStatus::Ok:
        return true;

      case EccDecodeStatus::CorrectedSingle:
        if (mode_ == EccMode::CheckOnly)
            // Detected but, per CheckOnly, not corrected: the stored
            // word still carries the error, so its line must not get
            // an EDC refresh. Nothing is raised either — reporting is
            // for demanded reads, and nobody demanded this word.
            return false;
        stats_.add(ControllerStat::SingleBitCorrected);
        banks_[bank_id].stats_.add(ControllerStat::SingleBitCorrected);
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerSingleBitCorrected,
                           clock_.now(), word_addr);
        memory_.writeWord(word_addr, result.data);
        memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                          code_.encode(result.data)));
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "fill_reencode_clean",
                       code_.decode(memory_.readWord(word_addr),
                                    memory_.readCheck(word_addr)).status ==
                           EccDecodeStatus::Ok,
                       "healed word at ", word_addr,
                       " does not re-decode clean");
        return true;

      case EccDecodeStatus::Uncorrectable:
        // Uncorrectable, but outside the demanded line: count it
        // latent instead of raising, so a scrambled neighbour sharing
        // the codeword cannot storm the interrupt wire. It raises for
        // real the moment something actually reads its line.
        geomAdd(GeometryStat::LatentFaultWords, bank_id);
        return false;
    }
    return true;
}

bool
MemoryController::blockDecode(PhysAddr line_addr, bool scrubbing,
                              LineData *out)
{
    const PhysAddr cw = alignDown(line_addr, geometry_.codewordBytes);
    const unsigned bank_id = bankOf(line_addr);
    const std::size_t cw_lines = geometry_.codewordBytes / kCacheLineSize;
    const std::size_t cw_words = geometry_.codewordBytes / kEccGroupSize;

    geomAdd(GeometryStat::BlockDecodes, bank_id);
    geomAdd(GeometryStat::BlockDecodeWords, bank_id, cw_words);
    // The demanded line arrived with the burst already; the decode
    // fetches the rest of the codeword plus the long-code redundancy.
    geomAdd(GeometryStat::RedundancyBytesRead, bank_id,
            geometry_.codewordBytes - kCacheLineSize +
                blockEccCheckBytes(geometry_.codewordBytes));
    Cycles cost = static_cast<Cycles>(cw_words) * kBlockDecodeWordCycles;
    if (scrubbing)
        clock_.advance(cost, CostCenter::Kernel);
    else
        clock_.advance(cost);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::EccBlockDecode, clock_.now(),
                       line_addr, cw, bank_id);

    bool ok = true;
    for (std::size_t l = 0; l < cw_lines; ++l) {
        PhysAddr cur = cw + l * kCacheLineSize;
        const bool requested = cur == line_addr;
        bool clean = true;
        for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
            PhysAddr word_addr = cur + i * kEccGroupSize;
            if (requested) {
                std::uint64_t word;
                if (!decodeWord(word_addr, scrubbing, word)) {
                    ok = false;
                    clean = false;
                }
                if (out)
                    setLineWord(*out, i, word);
            } else if (!latentDecodeWord(word_addr)) {
                clean = false;
            }
        }
        // Refresh a stale-but-clean fold so the next read of this line
        // takes the EDC fast path. Correcting modes only: CheckOnly
        // never heals, so its "clean" can still hide the very error a
        // stale fold is flagging.
        if (clean && (mode_ == EccMode::CorrectError ||
                      mode_ == EccMode::CorrectAndScrub)) {
            std::uint64_t fold = storedLineFold(cur);
            if (fold != memory_.readEdc(cur)) {
                memory_.writeEdc(cur, fold);
                geomAdd(GeometryStat::EdcRefreshes, bank_id);
                geomAdd(GeometryStat::RedundancyBytesWritten, bank_id,
                        edcFoldBytes(geometry_.edc));
            }
        }
    }
    return ok;
}

bool
MemoryController::fillLine(PhysAddr line_addr, LineData &out)
{
    if (!isAligned(line_addr, kCacheLineSize))
        panic("MemoryController: unaligned fill address ", line_addr);
    unsigned bank_id = bankOf(line_addr);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !banks_[bank_id].locked_, "cache fill of line ", line_addr,
                   " while bank ", bank_id, "'s bus is locked");
    if (banks_[bank_id].locked_)
        panic("MemoryController: fill while memory bus is locked");

    clock_.advance(kDramLineCycles);
    stats_.add(ControllerStat::LineFills);
    banks_[bank_id].stats_.add(ControllerStat::LineFills);

    bool ok = true;
    if (geometry_.isWord() || mode_ == EccMode::Disabled) {
        // Per-word SEC-DED: decode every group of the demanded line.
        // (With ECC Disabled the block fast path has nothing to check
        // either, so both geometries degenerate to this raw read.)
        for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
            std::uint64_t word;
            if (!decodeWord(line_addr + i * kEccGroupSize, false, word))
                ok = false;
            setLineWord(out, i, word);
        }
    } else {
        // Block geometry: verify the line's EDC fold that rode in with
        // the burst; only an EDC miss pays the long-code decode.
        geomAdd(GeometryStat::DataBytesRead, bank_id, kCacheLineSize);
        geomAdd(GeometryStat::RedundancyBytesRead, bank_id,
                edcFoldBytes(geometry_.edc));
        clock_.advance(kEdcCheckCycles);
        PhysAddr cw = alignDown(line_addr, geometry_.codewordBytes);
        if (storedLineFold(line_addr) == memory_.readEdc(line_addr)) {
            geomAdd(GeometryStat::EdcChecksPassed, bank_id);
            SAFEMEM_TRACE_EMIT(trace_, TraceEvent::EdcCheckPass,
                               clock_.now(), line_addr, cw, bank_id);
            for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
                setLineWord(out, i,
                            memory_.readWord(line_addr + i * kEccGroupSize));
        } else {
            geomAdd(GeometryStat::EdcChecksFailed, bank_id);
            SAFEMEM_TRACE_EMIT(trace_, TraceEvent::EdcCheckFail,
                               clock_.now(), line_addr, cw, bank_id);
            ok = blockDecode(line_addr, false, &out);
        }
    }
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerFill, clock_.now(),
                       line_addr, ok ? 1 : 0, bank_id);
    return ok;
}

void
MemoryController::evictLine(PhysAddr line_addr, const LineData &data)
{
    if (!isAligned(line_addr, kCacheLineSize))
        panic("MemoryController: unaligned eviction address ", line_addr);
    unsigned bank_id = bankOf(line_addr);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !banks_[bank_id].locked_, "cache writeback of line ",
                   line_addr, " while bank ", bank_id, "'s bus is locked");
    if (banks_[bank_id].locked_)
        panic("MemoryController: writeback while memory bus is locked");

    clock_.advance(kDramLineCycles);
    stats_.add(ControllerStat::LineEvictions);
    banks_[bank_id].stats_.add(ControllerStat::LineEvictions);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerEvict, clock_.now(),
                       line_addr, bank_id);

    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        PhysAddr word_addr = line_addr + i * kEccGroupSize;
        std::uint64_t word = lineWord(data, i);
        memory_.writeWord(word_addr, word);
        if (mode_ != EccMode::Disabled)
            memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                              code_.encode(word)));
    }

    if (!geometry_.isWord() && mode_ != EccMode::Disabled) {
        // The EDC fold rides with the burst and covers exactly this
        // line, so the writeback computes it from the new data alone.
        // (With ECC Disabled it goes stale alongside the check bytes —
        // the hook the scramble trick relies on.)
        std::uint64_t words[kEccGroupsPerLine];
        for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
            words[i] = lineWord(data, i);
        memory_.writeEdc(line_addr,
                         edcLineFold(geometry_.edc, words,
                                     kEccGroupsPerLine));
        geomAdd(GeometryStat::DataBytesWritten, bank_id, kCacheLineSize);
        geomAdd(GeometryStat::RedundancyBytesWritten, bank_id,
                edcFoldBytes(geometry_.edc));
        // The long-code ECC spans the whole codeword. A writeback that
        // opens a new codeword pays a full read-modify-write (fetch the
        // old line and redundancy, merge, rewrite); further writebacks
        // into the open codeword fold their update in incrementally —
        // the amortisation sequential streams are built to hit.
        PhysAddr cw = alignDown(line_addr, geometry_.codewordBytes);
        MemoryBank &bank = banks_[bank_id];
        if (bank.openCodeword_ == cw) {
            geomAdd(GeometryStat::OpenCodewordHits, bank_id);
            clock_.advance(kEdcUpdateCycles);
        } else {
            geomAdd(GeometryStat::PartialWriteRmws, bank_id);
            geomAdd(GeometryStat::RedundancyBytesRead, bank_id,
                    kCacheLineSize +
                        blockEccCheckBytes(geometry_.codewordBytes));
            geomAdd(GeometryStat::RedundancyBytesWritten, bank_id,
                    blockEccCheckBytes(geometry_.codewordBytes));
            clock_.advance(kPartialWriteRmwCycles);
            SAFEMEM_TRACE_EMIT(trace_, TraceEvent::PartialWriteRmw,
                               clock_.now(), line_addr, cw, bank_id);
            bank.openCodeword_ = cw;
        }
    }

    if (simCheckActive())
        auditWritebackCoherence(line_addr, data);
}

void
MemoryController::auditWritebackCoherence(PhysAddr line_addr,
                                          const LineData &data) const
{
    // The line the cache just wrote back must read back verbatim and (with
    // ECC on) decode clean — a mismatch means the writeback datapath lost
    // or mangled data, exactly the silent corruption SafeMem exists to
    // catch in applications.
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        PhysAddr word_addr = line_addr + i * kEccGroupSize;
        std::uint64_t stored = memory_.readWord(word_addr);
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "writeback_data_match",
                       stored == lineWord(data, i),
                       "word ", i, " of line ", line_addr,
                       " differs from the written-back data");
        if (mode_ != EccMode::Disabled) {
            SIMCHECK_AUDIT(
                AuditDomain::MemoryController, "writeback_check_clean",
                code_.decode(stored, memory_.readCheck(word_addr)).status ==
                    EccDecodeStatus::Ok,
                "stored check byte stale after writeback of line ",
                line_addr);
        }
    }
    if (!geometry_.isWord() && mode_ != EccMode::Disabled) {
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "writeback_edc_clean",
                       edcConsistent(line_addr),
                       "stored EDC fold stale after writeback of line ",
                       line_addr);
    }
}

void
MemoryController::auditBankRollup() const
{
    constexpr std::size_t slots =
        sizeof(kControllerStatNames) / sizeof(kControllerStatNames[0]);
    for (std::size_t s = 0; s < slots; ++s) {
        auto stat = static_cast<ControllerStat>(s);
        std::uint64_t sum = 0;
        for (const MemoryBank &bank : banks_)
            sum += bank.stats().get(stat);
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "bank_stat_rollup",
                       sum == stats_.get(stat),
                       "per-bank '", kControllerStatNames[s],
                       "' slots sum to ", sum, " but the machine-wide "
                       "counter reads ", stats_.get(stat));
    }
    constexpr std::size_t geom_slots =
        sizeof(kGeometryStatNames) / sizeof(kGeometryStatNames[0]);
    for (std::size_t s = 0; s < geom_slots; ++s) {
        auto stat = static_cast<GeometryStat>(s);
        std::uint64_t sum = 0;
        for (const MemoryBank &bank : banks_)
            sum += bank.geometryStats().get(stat);
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "bank_stat_rollup",
                       sum == geomStats_.get(stat),
                       "per-bank '", kGeometryStatNames[s],
                       "' geometry slots sum to ", sum,
                       " but the machine-wide counter reads ",
                       geomStats_.get(stat));
    }
}

void
MemoryController::writeWordDeviceOp(PhysAddr word_addr, std::uint64_t value)
{
    memory_.writeWord(word_addr, value);
    if (mode_ != EccMode::Disabled)
        memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                          code_.encode(value)));
}

std::uint64_t
MemoryController::peekWord(PhysAddr word_addr) const
{
    return memory_.readWord(word_addr);
}

void
MemoryController::peekLine(PhysAddr line_addr, LineData &out) const
{
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
        setLineWord(out, i, memory_.readWord(line_addr + i * kEccGroupSize));
}

void
MemoryController::scrubRange(PhysAddr start_line, std::size_t lines)
{
    // The scrub engine is a bus agent like the cache: while the kernel
    // holds a bank's bus for a scramble, scrub reads of half-written
    // groups would race the scramble exactly like a fill would.
    std::uint64_t span = bankMaskForSpan(start_line, lines * kCacheLineSize);
    for (unsigned b = 0; b < banks_.size(); ++b) {
        if (!(span >> b & 1))
            continue;
        SIMCHECK_AUDIT(AuditDomain::MemoryController,
                       "no_traffic_while_locked", !banks_[b].locked_,
                       "scrub of ", lines, " lines at ", start_line,
                       " while bank ", b, "'s bus is locked");
        if (banks_[b].locked_)
            panic("MemoryController: scrub while memory bus is locked");
    }

    unsigned bank_id = bankOf(start_line);
    stats_.add(ControllerStat::ScrubPasses);
    banks_[bank_id].stats_.add(ControllerStat::ScrubPasses);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubBegin, clock_.now(),
                       start_line, lines, bank_id);
    for (std::size_t l = 0; l < lines; ++l)
        scrubLine(start_line + l * kCacheLineSize);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubEnd, clock_.now(),
                       start_line, lines, bank_id);
}

void
MemoryController::scrubLine(PhysAddr line_addr)
{
    if (geometry_.isWord() || mode_ == EccMode::Disabled) {
        for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
            clock_.advance(kScrubWordCycles, CostCenter::Kernel);
            std::uint64_t word;
            decodeWord(line_addr + i * kEccGroupSize, true, word);
        }
        return;
    }
    // Block geometry: the patrol read verifies the line's EDC fold and
    // only a miss pays the long-code decode — the same fast-check /
    // decode-on-failure split the fill path uses. Errors confined to
    // the redundancy lane stay latent until something misses EDC;
    // that blind spot is part of the trade the coarse geometry makes.
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
        clock_.advance(kScrubWordCycles, CostCenter::Kernel);
    if (storedLineFold(line_addr) != memory_.readEdc(line_addr))
        blockDecode(line_addr, true, nullptr);
}

void
MemoryController::scrubBank(unsigned id)
{
    MemoryBank &bank = banks_.at(id);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !bank.locked_, "scrub pass over bank ", id,
                   " while its bus is locked");
    if (bank.locked_)
        panic("MemoryController: scrub while memory bus is locked");

    const std::size_t stride =
        static_cast<std::size_t>(banks_.size()) * kPageSize;
    const PhysAddr first = static_cast<PhysAddr>(id) * kPageSize;
    std::size_t line_count = 0;
    for (PhysAddr page = first; page < memory_.size(); page += stride)
        line_count += kPageSize / kCacheLineSize;

    stats_.add(ControllerStat::ScrubPasses);
    bank.stats_.add(ControllerStat::ScrubPasses);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubBegin, clock_.now(),
                       first, line_count, id);
    for (PhysAddr page = first; page < memory_.size(); page += stride) {
        bank.scrubCursor_ = page;
        for (std::size_t l = 0; l < kPageSize / kCacheLineSize; ++l)
            scrubLine(page + l * kCacheLineSize);
    }
    bank.scrubCursor_ = first;
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubEnd, clock_.now(),
                       first, line_count, id);
}

void
MemoryController::scrubAll()
{
    for (unsigned b = 0; b < banks_.size(); ++b)
        scrubBank(b);
}

} // namespace safemem
