#include "mem/memory_controller.h"

#include "check/simcheck.h"
#include "common/costs.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace safemem {

MemoryController::MemoryController(PhysicalMemory &memory, CycleClock &clock,
                                   Trace *trace, const EccCodec &code,
                                   unsigned banks)
    : memory_(memory), clock_(clock), code_(code), trace_(trace)
{
    // The datapath is one 64-bit ECC group per check byte; a codec with
    // another geometry belongs to the campaign engine, not a machine.
    if (code_.dataBits() != 64)
        panic("MemoryController: codec '", code_.name(), "' protects ",
              code_.dataBits(), " data bits; the ECC group is 64");
    if (code_.checkBits() > memory_.checkBits())
        panic("MemoryController: codec '", code_.name(), "' needs ",
              code_.checkBits(), " check bits; the DIMM stores ",
              memory_.checkBits());
    if (banks < 1 || banks > kMaxMemoryBanks)
        panic("MemoryController: ", banks, " banks outside [1, ",
              kMaxMemoryBanks, "]");
    if (memory_.size() / kPageSize < banks)
        panic("MemoryController: ", banks, " banks but only ",
              memory_.size() / kPageSize, " pages of DRAM");
    for (unsigned b = 0; b < banks; ++b)
        banks_.emplace_back(b);
}

void
MemoryController::setInterruptHandler(EccInterruptHandler handler)
{
    interruptHandler_ = std::move(handler);
}

const MemoryBank &
MemoryController::bank(unsigned id) const
{
    if (id >= banks_.size())
        panic("MemoryController: bank ", id, " of ", banks_.size());
    return banks_[id];
}

std::uint64_t
MemoryController::bankMaskForSpan(PhysAddr addr, std::size_t bytes) const
{
    if (bytes == 0)
        return 0;
    std::uint64_t mask = 0;
    PhysAddr first = alignDown(addr, kPageSize);
    PhysAddr last = alignDown(addr + bytes - 1, kPageSize);
    for (PhysAddr page = first; page <= last; page += kPageSize)
        mask |= std::uint64_t{1} << bankOf(page);
    return mask;
}

void
MemoryController::lockBank(unsigned id)
{
    MemoryBank &bank = banks_.at(id);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "bus_lock_pairing",
                   !bank.locked_, "lockBank while bank ", id,
                   " is already locked");
    if (bank.locked_)
        panic("MemoryController: bus already locked");
    bank.locked_ = true;
    stats_.add(ControllerStat::BusLocks);
    bank.stats_.add(ControllerStat::BusLocks);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerBusLock, clock_.now(),
                       id);
}

void
MemoryController::unlockBank(unsigned id)
{
    MemoryBank &bank = banks_.at(id);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "bus_lock_pairing",
                   bank.locked_, "unlockBank while bank ", id,
                   " is not locked");
    if (!bank.locked_)
        panic("MemoryController: bus not locked");
    bank.locked_ = false;
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerBusUnlock, clock_.now(),
                       id);
}

bool
MemoryController::bankLocked(unsigned id) const
{
    return banks_.at(id).locked_;
}

void
MemoryController::lockBus()
{
    for (unsigned b = 0; b < banks_.size(); ++b)
        lockBank(b);
}

void
MemoryController::unlockBus()
{
    for (unsigned b = static_cast<unsigned>(banks_.size()); b-- > 0;)
        unlockBank(b);
}

bool
MemoryController::busLocked() const
{
    for (const MemoryBank &bank : banks_)
        if (!bank.locked_)
            return false;
    return true;
}

bool
MemoryController::anyBankLocked() const
{
    for (const MemoryBank &bank : banks_)
        if (bank.locked_)
            return true;
    return false;
}

void
MemoryController::raise(const EccFaultInfo &info)
{
    stats_.add(ControllerStat::InterruptsRaised);
    banks_[info.bank].stats_.add(ControllerStat::InterruptsRaised);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerInterrupt, clock_.now(),
                       info.lineAddr,
                       static_cast<std::uint64_t>(info.wordIndex),
                       static_cast<std::uint64_t>(info.kind));
    if (!interruptHandler_)
        panic("MemoryController: ECC interrupt with no handler wired; "
              "line=", info.lineAddr, " word=", info.wordIndex);
    interruptHandler_(info);
}

bool
MemoryController::decodeWord(PhysAddr word_addr, bool scrubbing,
                             std::uint64_t &data_out)
{
    std::uint64_t data = memory_.readWord(word_addr);
    data_out = data;

    if (mode_ == EccMode::Disabled)
        return true;

    std::uint8_t check = memory_.readCheck(word_addr);
    EccDecodeResult result = code_.decode(data, check);
    unsigned bank_id = bankOf(word_addr);

    switch (result.status) {
      case EccDecodeStatus::Ok:
        return true;

      case EccDecodeStatus::CorrectedSingle:
        if (mode_ == EccMode::CheckOnly) {
            // Check-Only mode detects and reports but never corrects.
            stats_.add(ControllerStat::SingleBitReported);
            banks_[bank_id].stats_.add(ControllerStat::SingleBitReported);
            EccFaultInfo info;
            info.kind = EccFaultKind::UnreportedSingle;
            info.lineAddr = alignDown(word_addr, kCacheLineSize);
            info.wordIndex = static_cast<int>(
                (word_addr % kCacheLineSize) / kEccGroupSize);
            info.rawData = data;
            info.bank = bank_id;
            raise(info);
            return true;
        }
        // Correct transparently and heal the stored copy.
        stats_.add(ControllerStat::SingleBitCorrected);
        banks_[bank_id].stats_.add(ControllerStat::SingleBitCorrected);
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerSingleBitCorrected,
                           clock_.now(), word_addr);
        memory_.writeWord(word_addr, result.data);
        memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                          code_.encode(result.data)));
        data_out = result.data;
        // The corrected word just written back must form a clean codeword;
        // anything else means the correct/heal datapath is broken.
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "fill_reencode_clean",
                       code_.decode(memory_.readWord(word_addr),
                                    memory_.readCheck(word_addr)).status ==
                           EccDecodeStatus::Ok,
                       "healed word at ", word_addr,
                       " does not re-decode clean");
        return true;

      case EccDecodeStatus::Uncorrectable: {
        stats_.add(ControllerStat::MultiBitDetected);
        banks_[bank_id].stats_.add(ControllerStat::MultiBitDetected);
        EccFaultInfo info;
        info.kind = scrubbing ? EccFaultKind::ScrubMultiBit
                              : EccFaultKind::MultiBit;
        info.lineAddr = alignDown(word_addr, kCacheLineSize);
        info.wordIndex = static_cast<int>(
            (word_addr % kCacheLineSize) / kEccGroupSize);
        info.rawData = data;
        info.bank = bank_id;
        raise(info);
        return false;
      }
    }
    return true;
}

bool
MemoryController::fillLine(PhysAddr line_addr, LineData &out)
{
    if (!isAligned(line_addr, kCacheLineSize))
        panic("MemoryController: unaligned fill address ", line_addr);
    unsigned bank_id = bankOf(line_addr);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !banks_[bank_id].locked_, "cache fill of line ", line_addr,
                   " while bank ", bank_id, "'s bus is locked");
    if (banks_[bank_id].locked_)
        panic("MemoryController: fill while memory bus is locked");

    clock_.advance(kDramLineCycles);
    stats_.add(ControllerStat::LineFills);
    banks_[bank_id].stats_.add(ControllerStat::LineFills);

    bool ok = true;
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        std::uint64_t word;
        if (!decodeWord(line_addr + i * kEccGroupSize, false, word))
            ok = false;
        setLineWord(out, i, word);
    }
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerFill, clock_.now(),
                       line_addr, ok ? 1 : 0, bank_id);
    return ok;
}

void
MemoryController::evictLine(PhysAddr line_addr, const LineData &data)
{
    if (!isAligned(line_addr, kCacheLineSize))
        panic("MemoryController: unaligned eviction address ", line_addr);
    unsigned bank_id = bankOf(line_addr);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !banks_[bank_id].locked_, "cache writeback of line ",
                   line_addr, " while bank ", bank_id, "'s bus is locked");
    if (banks_[bank_id].locked_)
        panic("MemoryController: writeback while memory bus is locked");

    clock_.advance(kDramLineCycles);
    stats_.add(ControllerStat::LineEvictions);
    banks_[bank_id].stats_.add(ControllerStat::LineEvictions);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerEvict, clock_.now(),
                       line_addr, bank_id);

    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        PhysAddr word_addr = line_addr + i * kEccGroupSize;
        std::uint64_t word = lineWord(data, i);
        memory_.writeWord(word_addr, word);
        if (mode_ != EccMode::Disabled)
            memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                              code_.encode(word)));
    }

    if (simCheckActive())
        auditWritebackCoherence(line_addr, data);
}

void
MemoryController::auditWritebackCoherence(PhysAddr line_addr,
                                          const LineData &data) const
{
    // The line the cache just wrote back must read back verbatim and (with
    // ECC on) decode clean — a mismatch means the writeback datapath lost
    // or mangled data, exactly the silent corruption SafeMem exists to
    // catch in applications.
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        PhysAddr word_addr = line_addr + i * kEccGroupSize;
        std::uint64_t stored = memory_.readWord(word_addr);
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "writeback_data_match",
                       stored == lineWord(data, i),
                       "word ", i, " of line ", line_addr,
                       " differs from the written-back data");
        if (mode_ != EccMode::Disabled) {
            SIMCHECK_AUDIT(
                AuditDomain::MemoryController, "writeback_check_clean",
                code_.decode(stored, memory_.readCheck(word_addr)).status ==
                    EccDecodeStatus::Ok,
                "stored check byte stale after writeback of line ",
                line_addr);
        }
    }
}

void
MemoryController::auditBankRollup() const
{
    constexpr std::size_t slots =
        sizeof(kControllerStatNames) / sizeof(kControllerStatNames[0]);
    for (std::size_t s = 0; s < slots; ++s) {
        auto stat = static_cast<ControllerStat>(s);
        std::uint64_t sum = 0;
        for (const MemoryBank &bank : banks_)
            sum += bank.stats().get(stat);
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "bank_stat_rollup",
                       sum == stats_.get(stat),
                       "per-bank '", kControllerStatNames[s],
                       "' slots sum to ", sum, " but the machine-wide "
                       "counter reads ", stats_.get(stat));
    }
}

void
MemoryController::writeWordDeviceOp(PhysAddr word_addr, std::uint64_t value)
{
    memory_.writeWord(word_addr, value);
    if (mode_ != EccMode::Disabled)
        memory_.writeCheck(word_addr, static_cast<std::uint8_t>(
                                          code_.encode(value)));
}

std::uint64_t
MemoryController::peekWord(PhysAddr word_addr) const
{
    return memory_.readWord(word_addr);
}

void
MemoryController::peekLine(PhysAddr line_addr, LineData &out) const
{
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
        setLineWord(out, i, memory_.readWord(line_addr + i * kEccGroupSize));
}

void
MemoryController::scrubRange(PhysAddr start_line, std::size_t lines)
{
    // The scrub engine is a bus agent like the cache: while the kernel
    // holds a bank's bus for a scramble, scrub reads of half-written
    // groups would race the scramble exactly like a fill would.
    std::uint64_t span = bankMaskForSpan(start_line, lines * kCacheLineSize);
    for (unsigned b = 0; b < banks_.size(); ++b) {
        if (!(span >> b & 1))
            continue;
        SIMCHECK_AUDIT(AuditDomain::MemoryController,
                       "no_traffic_while_locked", !banks_[b].locked_,
                       "scrub of ", lines, " lines at ", start_line,
                       " while bank ", b, "'s bus is locked");
        if (banks_[b].locked_)
            panic("MemoryController: scrub while memory bus is locked");
    }

    unsigned bank_id = bankOf(start_line);
    stats_.add(ControllerStat::ScrubPasses);
    banks_[bank_id].stats_.add(ControllerStat::ScrubPasses);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubBegin, clock_.now(),
                       start_line, lines, bank_id);
    for (std::size_t l = 0; l < lines; ++l) {
        PhysAddr line_addr = start_line + l * kCacheLineSize;
        for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
            clock_.advance(kScrubWordCycles, CostCenter::Kernel);
            std::uint64_t word;
            decodeWord(line_addr + i * kEccGroupSize, true, word);
        }
    }
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubEnd, clock_.now(),
                       start_line, lines, bank_id);
}

void
MemoryController::scrubBank(unsigned id)
{
    MemoryBank &bank = banks_.at(id);
    SIMCHECK_AUDIT(AuditDomain::MemoryController, "no_traffic_while_locked",
                   !bank.locked_, "scrub pass over bank ", id,
                   " while its bus is locked");
    if (bank.locked_)
        panic("MemoryController: scrub while memory bus is locked");

    const std::size_t stride =
        static_cast<std::size_t>(banks_.size()) * kPageSize;
    const PhysAddr first = static_cast<PhysAddr>(id) * kPageSize;
    std::size_t line_count = 0;
    for (PhysAddr page = first; page < memory_.size(); page += stride)
        line_count += kPageSize / kCacheLineSize;

    stats_.add(ControllerStat::ScrubPasses);
    bank.stats_.add(ControllerStat::ScrubPasses);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubBegin, clock_.now(),
                       first, line_count, id);
    for (PhysAddr page = first; page < memory_.size(); page += stride) {
        bank.scrubCursor_ = page;
        for (std::size_t l = 0; l < kPageSize / kCacheLineSize; ++l) {
            PhysAddr line_addr = page + l * kCacheLineSize;
            for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
                clock_.advance(kScrubWordCycles, CostCenter::Kernel);
                std::uint64_t word;
                decodeWord(line_addr + i * kEccGroupSize, true, word);
            }
        }
    }
    bank.scrubCursor_ = first;
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::ControllerScrubEnd, clock_.now(),
                       first, line_count, id);
}

void
MemoryController::scrubAll()
{
    for (unsigned b = 0; b < banks_.size(); ++b)
        scrubBank(b);
}

} // namespace safemem
