/**
 * @file
 * ECC fault descriptors and controller mode definitions (paper §2.1).
 */

#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace safemem {

/**
 * The four operating modes of a commodity ECC memory controller.
 */
enum class EccMode : std::uint8_t
{
    Disabled,       ///< no ECC checking; writes leave check bits stale
    CheckOnly,      ///< detect and report, never correct
    CorrectError,   ///< detect all, correct single-bit errors
    CorrectAndScrub ///< CorrectError plus periodic background scrubbing
};

/** Reason a fault was raised. */
enum class EccFaultKind : std::uint8_t
{
    MultiBit,          ///< uncorrectable multi-bit mismatch on a read
    UnreportedSingle,  ///< single-bit error seen while in CheckOnly mode
    ScrubMultiBit      ///< uncorrectable mismatch found by the scrubber
};

/**
 * Descriptor delivered with an ECC interrupt.
 */
struct EccFaultInfo
{
    EccFaultKind kind = EccFaultKind::MultiBit;
    /** Physical address of the affected cache line. */
    PhysAddr lineAddr = 0;
    /** Index (0-7) of the faulting 64-bit word within the line. */
    int wordIndex = 0;
    /** Raw (possibly scrambled/corrupt) data of the faulting word. */
    std::uint64_t rawData = 0;
    /** Bank owning the affected line (page-interleaved). */
    unsigned bank = 0;
    /** Base of the ECC codeword the fault was decoded in (block
     *  geometries; 0 on the per-word SEC-DED default, whose codeword is
     *  the faulting word itself). */
    PhysAddr codewordAddr = 0;
};

/** Interrupt line from the controller into the kernel. */
using EccInterruptHandler = std::function<void(const EccFaultInfo &)>;

} // namespace safemem
