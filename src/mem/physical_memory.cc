#include "mem/physical_memory.h"

#include "common/logging.h"
#include "ecc/edc.h"

namespace safemem {

PhysicalMemory::PhysicalMemory(std::size_t bytes, int check_bits,
                               ProtectionGeometry geometry)
    : bytes_(bytes), checkBits_(check_bits), geometry_(geometry)
{
    if (bytes == 0 || !isAligned(bytes, kCacheLineSize))
        fatal("PhysicalMemory: capacity ", bytes,
              " is not a multiple of the line size");
    if (check_bits < 1 || check_bits > 8)
        fatal("PhysicalMemory: check lane of ", check_bits,
              " bits does not fit the DIMM's check byte");
    if (!geometry_.isWord() &&
        !validCodewordBytes(geometry_.codewordBytes))
        fatal("PhysicalMemory: unsupported codeword size ",
              geometry_.codewordBytes);
    words_.assign(bytes / kEccGroupSize, 0);
    // All-zero data has all-zero check bits under any linear code, so
    // fresh memory decodes cleanly without an explicit init pass.
    checks_.assign(bytes / kEccGroupSize, 0);
    // The EDC lane starts consistent with the all-zero data.
    if (!geometry_.isWord())
        edc_.assign(bytes / kCacheLineSize,
                    edcZeroLineFold(geometry_.edc));
}

std::size_t
PhysicalMemory::wordIndex(PhysAddr addr) const
{
    if (!isAligned(addr, kEccGroupSize))
        panic("PhysicalMemory: unaligned word address ", addr);
    if (addr >= bytes_)
        panic("PhysicalMemory: address ", addr, " beyond capacity ", bytes_);
    return addr / kEccGroupSize;
}

std::uint64_t
PhysicalMemory::readWord(PhysAddr addr) const
{
    return words_[wordIndex(addr)];
}

void
PhysicalMemory::writeWord(PhysAddr addr, std::uint64_t value)
{
    words_[wordIndex(addr)] = value;
}

std::uint8_t
PhysicalMemory::readCheck(PhysAddr addr) const
{
    return checks_[wordIndex(addr)];
}

void
PhysicalMemory::writeCheck(PhysAddr addr, std::uint8_t check)
{
    checks_[wordIndex(addr)] = check;
}

void
PhysicalMemory::flipDataBit(PhysAddr addr, int bit)
{
    if (bit < 0 || bit > 63)
        panic("PhysicalMemory: bad data bit ", bit);
    words_[wordIndex(addr)] ^= 1ULL << bit;
}

void
PhysicalMemory::flipCheckBit(PhysAddr addr, int bit)
{
    if (bit < 0 || bit >= checkBits_)
        panic("PhysicalMemory: bad check bit ", bit);
    checks_[wordIndex(addr)] ^= static_cast<std::uint8_t>(1u << bit);
}

std::size_t
PhysicalMemory::lineIndex(PhysAddr addr) const
{
    if (edc_.empty())
        panic("PhysicalMemory: no EDC lane on a word-geometry DIMM");
    if (!isAligned(addr, kCacheLineSize))
        panic("PhysicalMemory: unaligned line address ", addr);
    if (addr >= bytes_)
        panic("PhysicalMemory: address ", addr, " beyond capacity ", bytes_);
    return addr / kCacheLineSize;
}

std::uint64_t
PhysicalMemory::readEdc(PhysAddr line_addr) const
{
    return edc_[lineIndex(line_addr)];
}

void
PhysicalMemory::writeEdc(PhysAddr line_addr, std::uint64_t fold)
{
    edc_[lineIndex(line_addr)] = fold;
}

void
PhysicalMemory::flipEdcBit(PhysAddr line_addr, int bit)
{
    if (bit < 0 ||
        bit >= static_cast<int>(edcBitsPerLine(geometry_.edc)))
        panic("PhysicalMemory: bad EDC bit ", bit);
    edc_[lineIndex(line_addr)] ^= 1ULL << bit;
}

} // namespace safemem
