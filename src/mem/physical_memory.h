/**
 * @file
 * Simulated DRAM: data words plus their stored ECC check bytes.
 *
 * PhysicalMemory is deliberately dumb — it models the DIMMs, not the
 * controller. All ECC policy (encode on write, check on read, scrubbing,
 * fault raising) lives in MemoryController, including which codec fills
 * the check bits; the DIMM only knows how many check bits per group it
 * physically has. Raw accessors here neither charge cycles nor validate
 * codes; they are what the controller's datapath and the test
 * fault-injection hooks are built from.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ecc/geometry.h"

namespace safemem {

class PhysicalMemory
{
  public:
    /**
     * @param bytes      capacity; must be a non-zero multiple of the
     *                   cache-line size.
     * @param check_bits stored check bits per 64-bit ECC group, in
     *                   [1, 8] — the width of the DIMM's check lane
     *                   (8 for the paper's x72 modules). Fault
     *                   injection validates bit indices against it.
     * @param geometry   protection geometry the DIMM is organised for.
     *                   A block geometry adds an EDC lane (one fold
     *                   word per cache line, riding with the data
     *                   burst); the word default adds nothing and is
     *                   bit-identical to the pre-geometry DIMM.
     */
    explicit PhysicalMemory(std::size_t bytes, int check_bits = 8,
                            ProtectionGeometry geometry = {});

    /** @return capacity in bytes. */
    std::size_t size() const { return bytes_; }

    /** @return stored check bits per ECC group. */
    int checkBits() const { return checkBits_; }

    /** @return the data word at 8-byte-aligned physical address @p addr. */
    std::uint64_t readWord(PhysAddr addr) const;

    /** Store @p value at 8-byte-aligned @p addr without touching ECC. */
    void writeWord(PhysAddr addr, std::uint64_t value);

    /** @return the stored check byte for the word at @p addr. */
    std::uint8_t readCheck(PhysAddr addr) const;

    /** Overwrite the stored check byte for the word at @p addr. */
    void writeCheck(PhysAddr addr, std::uint8_t check);

    /** Flip one stored data bit — models a hardware memory error. */
    void flipDataBit(PhysAddr addr, int bit);

    /** Flip one stored check bit (< checkBits()) — models a hardware
     *  memory error. */
    void flipCheckBit(PhysAddr addr, int bit);

    /** @name EDC lane (block geometries only)
     *  One fold word per cache line, stored with the data burst. The
     *  accessors panic on a word-geometry DIMM — the lane physically
     *  does not exist there. */
    /// @{

    /** @return whether this DIMM carries an EDC lane. */
    bool hasEdcLane() const { return !edc_.empty(); }

    /** @return the geometry this DIMM was organised for. */
    const ProtectionGeometry &geometry() const { return geometry_; }

    /** @return the stored EDC fold of the line at @p line_addr. */
    std::uint64_t readEdc(PhysAddr line_addr) const;

    /** Overwrite the stored EDC fold of the line at @p line_addr. */
    void writeEdc(PhysAddr line_addr, std::uint64_t fold);

    /** Flip one stored EDC bit (< the geometry's EDC width) — models a
     *  hardware memory error in the EDC lane. */
    void flipEdcBit(PhysAddr line_addr, int bit);
    /// @}

  private:
    std::size_t wordIndex(PhysAddr addr) const;
    std::size_t lineIndex(PhysAddr addr) const;

    std::size_t bytes_;
    int checkBits_;
    ProtectionGeometry geometry_;
    std::vector<std::uint64_t> words_;
    std::vector<std::uint8_t> checks_;
    /** EDC lane: one fold word per line; empty for word geometry. */
    std::vector<std::uint64_t> edc_;
};

} // namespace safemem
