/**
 * @file
 * Cache-line data buffer with word-granularity accessors.
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace safemem {

/** One cache line worth of bytes. */
using LineData = std::array<std::uint8_t, kCacheLineSize>;

/** @return 64-bit word @p index (0-7) of @p line. */
inline std::uint64_t
lineWord(const LineData &line, std::size_t index)
{
    std::uint64_t value;
    std::memcpy(&value, line.data() + index * kEccGroupSize, sizeof(value));
    return value;
}

/** Store @p value as 64-bit word @p index (0-7) of @p line. */
inline void
setLineWord(LineData &line, std::size_t index, std::uint64_t value)
{
    std::memcpy(line.data() + index * kEccGroupSize, &value, sizeof(value));
}

} // namespace safemem
