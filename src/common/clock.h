/**
 * @file
 * The simulated-machine cycle clock.
 *
 * Every cost in the reproduction — cache hits, DRAM fills, syscalls, tool
 * instrumentation — is charged to one CycleClock instance owned by the
 * Machine. The paper measures "CPU time of the monitored program" (§3), so
 * the clock distinguishes application cycles from tool-overhead cycles:
 * overhead attribution is what Table 3 reports.
 *
 * Charges default to the clock's current cost center; tool code opens a
 * CostScope so that any machine activity it causes (cache fills during a
 * scramble, for example) is billed to the tool rather than the application.
 */

#pragma once

#include <cstdint>

#include "common/types.h"

namespace safemem {

/** Attribution buckets for charged cycles. */
enum class CostCenter : std::uint8_t
{
    Application,    ///< the monitored program's own work
    ToolLeak,       ///< memory-leak detection bookkeeping
    ToolCorruption, ///< memory-corruption monitoring (watch/unwatch)
    ToolAccess,     ///< per-access instrumentation (Purify-style)
    Kernel,         ///< syscall entry/exit and interrupt dispatch
    NumCostCenters
};

/**
 * Monotonic virtual clock with per-cost-center attribution.
 */
class CycleClock
{
  public:
    CycleClock() = default;

    /** Advance the clock by @p cycles, billed to the current cost center. */
    void
    advance(Cycles cycles)
    {
        advance(cycles, center_);
    }

    /** Advance the clock by @p cycles, billed explicitly to @p center. */
    void
    advance(Cycles cycles, CostCenter center)
    {
        now_ += cycles;
        buckets_[static_cast<std::size_t>(center)] += cycles;
    }

    /** @return the current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** @return total cycles charged to @p center so far. */
    Cycles
    charged(CostCenter center) const
    {
        return buckets_[static_cast<std::size_t>(center)];
    }

    /** @return cycles charged to every non-Application bucket. */
    Cycles
    overheadCycles() const
    {
        Cycles total = 0;
        for (std::size_t i = 0; i < kNumBuckets; ++i) {
            if (i != static_cast<std::size_t>(CostCenter::Application))
                total += buckets_[i];
        }
        return total;
    }

    /** @return the cost center default-attributed charges currently go to. */
    CostCenter currentCenter() const { return center_; }

    /** Redirect default-attributed charges to @p center. */
    void setCurrentCenter(CostCenter center) { center_ = center; }

    /** Reset the clock and all attribution buckets to zero. */
    void
    reset()
    {
        now_ = 0;
        center_ = CostCenter::Application;
        for (auto &b : buckets_)
            b = 0;
    }

  private:
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>(CostCenter::NumCostCenters);

    Cycles now_ = 0;
    CostCenter center_ = CostCenter::Application;
    Cycles buckets_[kNumBuckets] = {};
};

/**
 * RAII guard that re-attributes default-billed cycles while alive.
 */
class CostScope
{
  public:
    CostScope(CycleClock &clock, CostCenter center)
        : clock_(clock), saved_(clock.currentCenter())
    {
        clock_.setCurrentCenter(center);
    }

    ~CostScope() { clock_.setCurrentCenter(saved_); }

    CostScope(const CostScope &) = delete;
    CostScope &operator=(const CostScope &) = delete;

  private:
    CycleClock &clock_;
    CostCenter saved_;
};

} // namespace safemem
