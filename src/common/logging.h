/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (throws PanicError so tests
 * can assert on it); fatal() is for unrecoverable user/configuration errors;
 * warn()/inform() emit status lines without stopping the simulation.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace safemem {

/** Exception thrown by panic(); models the simulated kernel going down. */
class PanicError : public std::runtime_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Exception thrown by fatal(); an unrecoverable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Severity used by the log sink. */
enum class LogLevel { Inform, Warn, Panic, Fatal };

/**
 * Route a formatted message to the process-wide log sink.
 *
 * @param level  Severity tag prepended to the line.
 * @param msg    Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Silence or re-enable inform()/warn() output (tests use this). */
void setLogQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool logQuiet();

namespace detail {

inline void
appendAll(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and unwind via PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = detail::format(args...);
    logMessage(LogLevel::Panic, msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error and unwind via FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = detail::format(args...);
    logMessage(LogLevel::Fatal, msg);
    throw FatalError(msg);
}

/** Emit a non-fatal warning. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, detail::format(args...));
}

/** Emit an informational status line. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Inform, detail::format(args...));
}

} // namespace safemem
