/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (throws PanicError so tests
 * can assert on it); fatal() is for unrecoverable user/configuration errors;
 * warn()/inform() emit status lines without stopping the simulation.
 *
 * Routing is instance-safe: a run installs a LogScope on its thread and
 * every message emitted by simulator code on that thread goes to the
 * scope's Log sink. Concurrent runs on different threads therefore keep
 * independent sinks — nothing is shared. Threads without a scope fall
 * back to a stderr default, gated by the deprecated process-wide quiet
 * flag (setLogQuiet), which is kept only for the CLI flag and legacy
 * single-run callers.
 */

#pragma once

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace safemem {

/** Exception thrown by panic(); models the simulated kernel going down. */
class PanicError : public std::runtime_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Exception thrown by fatal(); an unrecoverable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Severity used by the log sink. */
enum class LogLevel { Inform, Warn, Panic, Fatal };

/** @return the printable tag for @p level ("info", "warn", ...). */
const char *logLevelTag(LogLevel level);

/**
 * A per-run log sink. A default-constructed Log formats to stderr; a
 * custom sink receives every message; Log::quiet() drops everything
 * (panic/fatal text still reaches the caller inside the thrown
 * exception). Log objects are immutable after construction, so one Log
 * may serve many runs — but a *custom sink* invoked from several
 * threads at once must synchronise internally.
 */
class Log
{
  public:
    using Sink = std::function<void(LogLevel, const std::string &)>;

    /** stderr default. */
    Log() = default;

    /** Route every message to @p sink. */
    explicit Log(Sink sink) : sink_(std::move(sink)), silent_(false) {}

    /** @return a sink that discards all messages. */
    static Log
    quiet()
    {
        Log log;
        log.silent_ = true;
        return log;
    }

    /** Deliver one message to this sink. */
    void message(LogLevel level, const std::string &msg) const;

  private:
    Sink sink_;           ///< empty: use the stderr default
    bool silent_ = false; ///< quiet(): drop everything
};

/**
 * RAII: route this *thread's* logMessage() traffic to @p log for the
 * scope's lifetime. Scopes nest (the previous target is restored) and
 * are strictly thread-local: other threads are unaffected, which is
 * what lets concurrent runs keep independent sinks.
 */
class LogScope
{
  public:
    explicit LogScope(const Log &log);
    ~LogScope();

    LogScope(const LogScope &) = delete;
    LogScope &operator=(const LogScope &) = delete;

  private:
    const Log *previous_;
};

/**
 * Route a formatted message to the current thread's LogScope sink, or
 * to the process-wide stderr default when no scope is installed.
 *
 * @param level  Severity tag prepended to the line.
 * @param msg    Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Silence or re-enable the *default* (scope-less) stderr sink.
 *
 * @deprecated Process-wide state, kept only for the CLI and legacy
 * single-run callers. New code passes a Log through RunParams /
 * MachineConfig (or installs a LogScope) so concurrent runs do not
 * share quiet state.
 */
void setLogQuiet(bool quiet);

/** @return true when the scope-less default sink is suppressed. */
bool logQuiet();

namespace detail {

inline void
appendAll(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and unwind via PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = detail::format(args...);
    logMessage(LogLevel::Panic, msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error and unwind via FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = detail::format(args...);
    logMessage(LogLevel::Fatal, msg);
    throw FatalError(msg);
}

/** Emit a non-fatal warning. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, detail::format(args...));
}

/** Emit an informational status line. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Inform, detail::format(args...));
}

} // namespace safemem
