/**
 * @file
 * Interface every monitoring tool implements.
 *
 * The workload Env routes all dynamic-memory traffic through a Tool, the
 * way the paper's tools interpose on malloc/free/calloc/realloc via
 * LD_PRELOAD. A pass-through implementation gives the uninstrumented
 * baseline run; SafeMem (with either watch backend) and the Purify model
 * are the interesting implementations.
 *
 * @p site_tag carries the workload's ground-truth label for the
 * allocation site (leaky or not). Tools MUST treat it as opaque — it is
 * surfaced back in reports only so the experiment driver can score
 * detections and false positives.
 */

#pragma once

#include <cstdint>

#include "common/shadow_stack.h"
#include "common/types.h"

namespace safemem {

class Tool
{
  public:
    virtual ~Tool() = default;

    /** malloc interposition. @return the user-visible address. */
    virtual VirtAddr toolAlloc(std::size_t size, const ShadowStack &stack,
                               std::uint64_t site_tag) = 0;

    /** calloc interposition (allocate + zero). */
    virtual VirtAddr toolCalloc(std::size_t count, std::size_t size,
                                const ShadowStack &stack,
                                std::uint64_t site_tag) = 0;

    /** realloc interposition. */
    virtual VirtAddr toolRealloc(VirtAddr addr, std::size_t new_size,
                                 const ShadowStack &stack,
                                 std::uint64_t site_tag) = 0;

    /** free interposition. */
    virtual void toolFree(VirtAddr addr) = 0;

    /**
     * Observe a block of pure computation of @p cycles. Instrumentation
     * tools that rewrite every memory instruction (Purify) slow down
     * compute-bound code too; watchpoint tools do not.
     */
    virtual void onCompute(Cycles cycles) { (void)cycles; }

    /** End-of-run hook: flush pending detection work and reports. */
    virtual void finish() {}
};

} // namespace safemem
