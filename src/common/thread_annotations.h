/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * These wrap the `__attribute__((capability))` family so every shared
 * field can name its guarding capability (GUARDED_BY) and every
 * lock-shaped function can declare what it acquires, releases, or
 * requires. Under Clang with -Wthread-safety (the SAFEMEM_THREAD_SAFETY
 * CMake option turns it on as an error), violations of the declared
 * discipline fail the build; under any other compiler every macro
 * expands to nothing, so the annotated tree builds identically with GCC.
 *
 * The vocabulary follows the Clang documentation and the LLVM/abseil
 * convention:
 *
 *  - CAPABILITY(name) / SCOPED_CAPABILITY mark classes that *are* locks
 *    (safemem::Mutex, RAII guards such as MutexLock and BusLockGuard);
 *  - GUARDED_BY(mu) / PT_GUARDED_BY(mu) mark the data a lock protects;
 *  - REQUIRES / ACQUIRE / RELEASE / TRY_ACQUIRE / EXCLUDES describe a
 *    function's locking contract;
 *  - ACQUIRED_BEFORE / ACQUIRED_AFTER declare lock-ordering edges (the
 *    beta analysis enforces them — see the lock hierarchy in
 *    docs/MECHANISM.md §11);
 *  - NO_THREAD_SAFETY_ANALYSIS opts a function out, reserved for the
 *    handful of trampolines whose acquire/release pairing spans call
 *    paths the analysis cannot see (scrub hooks).
 */

#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define SAFEMEM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SAFEMEM_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

#define CAPABILITY(x) SAFEMEM_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY SAFEMEM_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) SAFEMEM_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) SAFEMEM_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
    SAFEMEM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
    SAFEMEM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
    SAFEMEM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
    SAFEMEM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
    SAFEMEM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
    SAFEMEM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
    SAFEMEM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
    SAFEMEM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
    SAFEMEM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
    SAFEMEM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
    SAFEMEM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) SAFEMEM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) SAFEMEM_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
    SAFEMEM_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) SAFEMEM_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
    SAFEMEM_THREAD_ANNOTATION(no_thread_safety_analysis)
