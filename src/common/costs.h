/**
 * @file
 * Cycle-cost model of the simulated machine.
 *
 * One place holds every latency constant so the experiment tables are easy
 * to audit. Kernel-path constants are calibrated so the Table 2
 * microbenchmark lands on the paper's measurements for the 2.4 GHz
 * evaluation machine: WatchMemory ~2.0 us, DisableWatchMemory ~1.5 us,
 * mprotect ~1.02 us per page.
 */

#pragma once

#include "common/types.h"

namespace safemem {

/** L1 data-cache hit latency. */
inline constexpr Cycles kCacheHitCycles = 4;

/** Full cache-line DRAM transfer (fill or writeback), including ECC work. */
inline constexpr Cycles kDramLineCycles = 200;

/** Extra cache bookkeeping on a miss (tag update, victim selection). */
inline constexpr Cycles kCacheMissMgmtCycles = 20;

/** Kernel entry/exit for any syscall. */
inline constexpr Cycles kSyscallEntryCycles = 900;

/** Page-table walk to resolve one user pointer inside the kernel. */
inline constexpr Cycles kPageTableWalkCycles = 300;

/**
 * WatchMemory / DisableWatchMemory cost structure. One syscall pays a
 * fixed cost (bus lock, ECC mode switches, registry update), a per-page
 * cost (page-table walk + pin), and a small marginal cost per extra
 * cache line (scramble the 8 ECC groups, flush). The constants are
 * calibrated so a one-line call reproduces Table 2 (2.0 us / 1.5 us at
 * 2.4 GHz) while multi-line regions scale sublinearly, as a batched
 * scramble under a single bus lock would.
 */
/// @{
/** Locking or unlocking the memory bus around a scramble (paper §2.2.2). */
inline constexpr Cycles kBusLockCycles = 200;

/** Switching the controller ECC mode (device register write). */
inline constexpr Cycles kEccModeSwitchCycles = 300;

/** Flushing one line from the cache (clflush analog). */
inline constexpr Cycles kCacheFlushLineCycles = 60;

/** Scrambling the 8 ECC groups of one line (device word writes). */
inline constexpr Cycles kScrambleLineCycles = 340;

/** Unscrambling the 8 ECC groups of one line. */
inline constexpr Cycles kUnscrambleLineCycles = 300;

/** Pinning or unpinning one page in the VM system. */
inline constexpr Cycles kPagePinCycles = 1100;

/** Watch-registry insert bookkeeping per WatchMemory call. */
inline constexpr Cycles kWatchInsertCycles = 1000;

/** Watch-registry removal bookkeeping per DisableWatchMemory call. */
inline constexpr Cycles kWatchRemoveCycles = 580;
/// @}

/** Page-table permission update for one page (mprotect body). */
inline constexpr Cycles kPageProtCycles = 500;

/** TLB shootdown after a permission change. */
inline constexpr Cycles kTlbFlushCycles = 748;

/** Hardware page walk on a CPU-side TLB miss. */
inline constexpr Cycles kTlbMissCycles = 40;

/** Delivering an interrupt / fault to a user-level handler. */
inline constexpr Cycles kFaultDeliveryCycles = 1400;

/** Tool wrapper bookkeeping per allocation/deallocation event. */
inline constexpr Cycles kWrapperEventCycles = 90;

/** Fixed cost of one §3.2.2 outlier-detection pass. */
inline constexpr Cycles kDetectPassCycles = 60;

/** Per-group cost of one outlier-detection pass. */
inline constexpr Cycles kDetectPerGroupCycles = 15;

/** Purify-model cost of checking one memory access against shadow bits. */
inline constexpr Cycles kPurifyCheckCycles = 24;

/** Purify-model cost of updating shadow state for one byte. */
inline constexpr Cycles kPurifyShadowByteCycles = 2;

/** Purify-model mark-and-sweep cost per heap word scanned. */
inline constexpr Cycles kPurifySweepWordCycles = 6;

/** Scrubbing one ECC group during a scrub pass. */
inline constexpr Cycles kScrubWordCycles = 2;

/** Swapping one page out to (or in from) the backing store. */
inline constexpr Cycles kSwapPageCycles = 24000;

/** Creating a fresh process (address-space setup, kernel structures). */
inline constexpr Cycles kProcessCreateCycles = 12000;

/** One cooperative context switch (register save/restore, CR3 write;
 *  TLBs are per-address-space — ASID-tagged — so no flush is charged). */
inline constexpr Cycles kContextSwitchCycles = 2400;

/** @name Block protection geometry (large-codeword EDC+ECC split).
 *  Charged only on block-geometry machines; the per-word SEC-DED
 *  default never reaches these paths. */
/// @{

/** Verifying one line's EDC fold on the fill fast path. */
inline constexpr Cycles kEdcCheckCycles = 2;

/** Decoding one 64-bit word of a codeword after an EDC miss (the ECC
 *  redundancy fetch and long-code decode, amortized per word). */
inline constexpr Cycles kBlockDecodeWordCycles = 6;

/** Read-modify-write turnaround when a writeback opens a new codeword:
 *  fetch the old line and ECC, merge, rewrite the redundancy. */
inline constexpr Cycles kPartialWriteRmwCycles = 150;

/** Folding a writeback into an already-open codeword (EDC update plus
 *  the buffered incremental ECC merge). */
inline constexpr Cycles kEdcUpdateCycles = 8;
/// @}

} // namespace safemem
