/**
 * @file
 * A small job-queue thread pool for fanning independent simulator runs
 * out across host cores.
 *
 * Each Machine is a self-contained world, so whole runs parallelise
 * with no shared state beyond this queue. The pool is deliberately
 * minimal: FIFO jobs, fixed worker count, drain() as the only barrier.
 * Jobs must not throw — a run harness catches per-run failures itself
 * (see runMatrix) so one bad cell cannot take down the batch.
 */

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace safemem {

class ThreadPool
{
  public:
    /** Spawn @p workers threads (at least one). */
    explicit ThreadPool(unsigned workers)
    {
        if (workers == 0)
            workers = 1;
        threads_.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    /** drain(), then stop and join every worker. */
    ~ThreadPool()
    {
        drain();
        {
            MutexLock lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (std::thread &thread : threads_)
            thread.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; it runs on some worker in FIFO order. */
    void
    submit(std::function<void()> job) EXCLUDES(mutex_)
    {
        {
            MutexLock lock(mutex_);
            queue_.push_back(std::move(job));
            ++unfinished_;
        }
        wake_.notify_one();
    }

    /** Block until every submitted job has finished running. */
    void
    drain() EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        while (unfinished_ != 0)
            idle_.wait(mutex_);
    }

    /** @return the number of worker threads. */
    std::size_t size() const { return threads_.size(); }

    /**
     * @return a worker count for @p jobs jobs: @p requested, or the
     * host's hardware concurrency when @p requested is 0, never more
     * than @p jobs and never less than one.
     */
    static unsigned
    clampWorkers(unsigned requested, std::size_t jobs)
    {
        unsigned workers =
            requested != 0 ? requested : std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
        if (jobs > 0 && workers > jobs)
            workers = static_cast<unsigned>(jobs);
        return workers;
    }

  private:
    void
    workerLoop() EXCLUDES(mutex_)
    {
        while (true) {
            std::function<void()> job;
            {
                MutexLock lock(mutex_);
                while (!stopping_ && queue_.empty())
                    wake_.wait(mutex_);
                if (queue_.empty())
                    return; // stopping_, and nothing left to run
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            job();
            {
                MutexLock lock(mutex_);
                if (--unfinished_ == 0)
                    idle_.notify_all();
            }
        }
    }

    Mutex mutex_;
    CondVar wake_; ///< signals queued work / shutdown
    CondVar idle_; ///< signals "all jobs finished"
    std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
    std::size_t unfinished_ GUARDED_BY(mutex_) = 0; ///< queued + running jobs
    bool stopping_ GUARDED_BY(mutex_) = false;
    /** Fixed at construction, joined in the destructor. */
    std::vector<std::thread> threads_; // lint: unguarded
};

} // namespace safemem
