/**
 * @file
 * Fundamental type aliases and machine constants shared by every module.
 *
 * The simulated machine mirrors the paper's evaluation platform: a 2.4 GHz
 * processor with 64-byte cache lines, 4 KiB pages, and (72,64) ECC groups
 * (8 check bits protecting each 64-bit word).
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace safemem {

/** A virtual address in the simulated process address space. */
using VirtAddr = std::uint64_t;

/** A physical address in the simulated DRAM. */
using PhysAddr = std::uint64_t;

/** A simulated-CPU cycle count. */
using Cycles = std::uint64_t;

/** Cache-line size in bytes; ECC watch granularity (paper §2.2). */
inline constexpr std::size_t kCacheLineSize = 64;

/** Page size in bytes; page-protection watch granularity. */
inline constexpr std::size_t kPageSize = 4096;

/** Bytes per ECC group: 8 check bits protect one 64-bit word (paper §2.1). */
inline constexpr std::size_t kEccGroupSize = 8;

/** ECC groups per cache line. */
inline constexpr std::size_t kEccGroupsPerLine = kCacheLineSize / kEccGroupSize;

/** Simulated core clock frequency, used to convert cycles to wall time. */
inline constexpr double kCpuFrequencyHz = 2.4e9;

/** Round @p value down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Round @p value up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** True when @p value is a multiple of @p align (power of two). */
constexpr bool
isAligned(std::uint64_t value, std::uint64_t align)
{
    return (value & (align - 1)) == 0;
}

/** Convert a cycle count to microseconds at the simulated clock rate. */
constexpr double
cyclesToMicros(Cycles cycles)
{
    return static_cast<double>(cycles) / kCpuFrequencyHz * 1e6;
}

} // namespace safemem
