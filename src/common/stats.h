/**
 * @file
 * Lightweight named statistics: counters and scalar gauges with a registry,
 * plus a fixed-bucket histogram used by the lifetime analysis.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace safemem {

/**
 * A bag of named 64-bit counters. Modules expose one StatSet each; the
 * experiment driver snapshots them into its result records.
 */
class StatSet
{
  public:
    /** Add @p delta to the counter named @p name (created on first use). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Overwrite the counter named @p name with @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Track the maximum of values reported for @p name. */
    void
    maxOf(const std::string &name, std::uint64_t value)
    {
        auto it = counters_.find(name);
        if (it == counters_.end() || it->second < value)
            counters_[name] = value;
    }

    /** @return the counter value, or 0 when never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** @return all counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Zero every counter. */
    void clear() { counters_.clear(); }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Histogram over a fixed linear bucket width. Used for object-lifetime and
 * warm-up-time distributions (Figure 3).
 */
class Histogram
{
  public:
    /** @param bucket_width width of every bucket (> 0). */
    explicit Histogram(std::uint64_t bucket_width = 1)
        : bucketWidth_(bucket_width ? bucket_width : 1)
    {}

    /** Record one sample. */
    void
    record(std::uint64_t value)
    {
        std::size_t idx = value / bucketWidth_;
        if (idx >= buckets_.size())
            buckets_.resize(idx + 1, 0);
        ++buckets_[idx];
        ++count_;
    }

    /** @return total samples recorded. */
    std::uint64_t count() const { return count_; }

    /** @return fraction of samples with value <= @p value; 0 when empty. */
    double
    cumulativeAt(std::uint64_t value) const
    {
        if (count_ == 0)
            return 0.0;
        std::uint64_t below = 0;
        std::size_t last = value / bucketWidth_;
        for (std::size_t i = 0; i < buckets_.size() && i <= last; ++i)
            below += buckets_[i];
        return static_cast<double>(below) / static_cast<double>(count_);
    }

    /** @return the configured bucket width. */
    std::uint64_t bucketWidth() const { return bucketWidth_; }

  private:
    std::uint64_t bucketWidth_;
    std::uint64_t count_ = 0;
    std::vector<std::uint64_t> buckets_;
};

} // namespace safemem
