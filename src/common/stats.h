/**
 * @file
 * Lightweight statistics: fixed-slot (enum-indexed) counters with a name
 * table for reporting, a string-keyed fallback for cold/ad-hoc counters,
 * plus a fixed-bucket histogram used by the lifetime analysis.
 *
 * Per-access paths (cache hits, TLB lookups, Purify checks) account
 * through enum slots: `stats_.add(CacheStat::Hits)` is one array
 * increment, fully inlineable. The registered name table keeps every
 * counter visible under its historical string key, so driver snapshots
 * (`all()`), `get("hits")` assertions and the report writer see exactly
 * the same name->value map the old string-keyed implementation produced.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

namespace safemem {

/**
 * A bag of named 64-bit counters. Modules expose one StatSet each; the
 * experiment driver snapshots them into its result records.
 *
 * A StatSet constructed with a slot-name table owns one flat counter per
 * name; those counters are addressed by enum on hot paths and remain
 * addressable by string everywhere else (both views share storage).
 * Names not in the table fall back to a std::map, as before.
 */
class StatSet
{
  public:
    StatSet() = default;

    /**
     * Register fixed slots. `names[i]` names slot `i`; the module's stat
     * enum must list its enumerators in the same order.
     */
    template <std::size_t N>
    explicit StatSet(const char *const (&names)[N])
        : slotNames_(names, names + N), slotValues_(N, 0), slotTouched_(N, 0)
    {}

    /** @name Enum-indexed hot path (registered slots only) */
    /// @{

    /** Add @p delta to the slot @p stat indexes. */
    template <typename E,
              std::enable_if_t<std::is_enum_v<E>, int> = 0>
    void
    add(E stat, std::uint64_t delta = 1)
    {
        std::size_t idx = static_cast<std::size_t>(stat);
        slotTouched_[idx] = 1;
        slotValues_[idx] += delta;
    }

    /** Overwrite the slot @p stat indexes with @p value. */
    template <typename E,
              std::enable_if_t<std::is_enum_v<E>, int> = 0>
    void
    set(E stat, std::uint64_t value)
    {
        std::size_t idx = static_cast<std::size_t>(stat);
        slotTouched_[idx] = 1;
        slotValues_[idx] = value;
    }

    /** Track the maximum of values reported for slot @p stat. */
    template <typename E,
              std::enable_if_t<std::is_enum_v<E>, int> = 0>
    void
    maxOf(E stat, std::uint64_t value)
    {
        std::size_t idx = static_cast<std::size_t>(stat);
        if (!slotTouched_[idx] || slotValues_[idx] < value) {
            slotTouched_[idx] = 1;
            slotValues_[idx] = value;
        }
    }

    /** @return the slot value, or 0 when never touched. */
    template <typename E,
              std::enable_if_t<std::is_enum_v<E>, int> = 0>
    std::uint64_t
    get(E stat) const
    {
        return slotValues_[static_cast<std::size_t>(stat)];
    }
    /// @}

    /** @name String-keyed view (cold paths, reporting, tests)
     * Registered names resolve to their slot, so both views always
     * agree; unregistered names live in the fallback map. */
    /// @{

    /** Add @p delta to the counter named @p name (created on first use). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        if (std::size_t idx; findSlot(name, idx)) {
            slotTouched_[idx] = 1;
            slotValues_[idx] += delta;
        } else {
            counters_[name] += delta;
        }
    }

    /** Overwrite the counter named @p name with @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        if (std::size_t idx; findSlot(name, idx)) {
            slotTouched_[idx] = 1;
            slotValues_[idx] = value;
        } else {
            counters_[name] = value;
        }
    }

    /** Track the maximum of values reported for @p name. */
    void
    maxOf(const std::string &name, std::uint64_t value)
    {
        if (std::size_t idx; findSlot(name, idx)) {
            if (!slotTouched_[idx] || slotValues_[idx] < value) {
                slotTouched_[idx] = 1;
                slotValues_[idx] = value;
            }
        } else {
            auto it = counters_.find(name);
            if (it == counters_.end() || it->second < value)
                counters_[name] = value;
        }
    }

    /** @return the counter value, or 0 when never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        if (std::size_t idx; findSlot(name, idx))
            return slotValues_[idx];
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }
    /// @}

    /**
     * Snapshot every counter, sorted by name: touched slots under their
     * registered names merged with the fallback map. Untouched slots are
     * omitted, matching the old created-on-first-use behaviour.
     */
    std::map<std::string, std::uint64_t>
    all() const
    {
        std::map<std::string, std::uint64_t> merged(counters_);
        for (std::size_t i = 0; i < slotNames_.size(); ++i) {
            if (slotTouched_[i])
                merged[slotNames_[i]] = slotValues_[i];
        }
        return merged;
    }

    /** @return the registered slot-name table (reporting, tests). */
    const std::vector<const char *> &slotNames() const { return slotNames_; }

    /** Zero every counter. */
    void
    clear()
    {
        counters_.clear();
        slotValues_.assign(slotValues_.size(), 0);
        slotTouched_.assign(slotTouched_.size(), 0);
    }

  private:
    /** @return true (and the index) when @p name is a registered slot. */
    bool
    findSlot(const std::string &name, std::size_t &idx) const
    {
        for (std::size_t i = 0; i < slotNames_.size(); ++i) {
            if (std::strcmp(slotNames_[i], name.c_str()) == 0) {
                idx = i;
                return true;
            }
        }
        return false;
    }

    std::vector<const char *> slotNames_;
    std::vector<std::uint64_t> slotValues_;
    /** Slot ever written? Distinguishes "0" from "never touched". */
    std::vector<std::uint8_t> slotTouched_;
    /** Fallback for names outside the registered table. */
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Histogram over a fixed linear bucket width. Used for object-lifetime and
 * warm-up-time distributions (Figure 3).
 */
class Histogram
{
  public:
    /** @param bucket_width width of every bucket (> 0). */
    explicit Histogram(std::uint64_t bucket_width = 1)
        : bucketWidth_(bucket_width ? bucket_width : 1)
    {}

    /** Record one sample. */
    void
    record(std::uint64_t value)
    {
        std::size_t idx = value / bucketWidth_;
        if (idx >= buckets_.size())
            buckets_.resize(idx + 1, 0);
        ++buckets_[idx];
        ++count_;
    }

    /** @return total samples recorded. */
    std::uint64_t count() const { return count_; }

    /**
     * @return estimated fraction of samples with value <= @p value; 0
     * when empty.
     *
     * Buckets entirely at or below @p value contribute fully; the bucket
     * containing a mid-bucket @p value contributes linearly interpolated
     * mass (`(value - bucket_start + 1) / bucket_width` of its samples),
     * since exact positions within a bucket are not recorded. The old
     * behaviour counted that whole bucket, over-reporting the CDF for
     * every mid-bucket query.
     */
    double
    cumulativeAt(std::uint64_t value) const
    {
        if (count_ == 0)
            return 0.0;
        std::size_t bucket = value / bucketWidth_;
        double below = 0.0;
        for (std::size_t i = 0; i < buckets_.size() && i < bucket; ++i)
            below += static_cast<double>(buckets_[i]);
        if (bucket < buckets_.size()) {
            double fraction =
                static_cast<double>(value - bucket * bucketWidth_ + 1) /
                static_cast<double>(bucketWidth_);
            below += static_cast<double>(buckets_[bucket]) * fraction;
        }
        return below / static_cast<double>(count_);
    }

    /** @return the configured bucket width. */
    std::uint64_t bucketWidth() const { return bucketWidth_; }

  private:
    std::uint64_t bucketWidth_;
    std::uint64_t count_ = 0;
    std::vector<std::uint64_t> buckets_;
};

} // namespace safemem
