/**
 * @file
 * Deterministic pseudo-random number generator for workloads.
 *
 * Workload applications must be reproducible run-to-run so the experiment
 * tables are stable; xoshiro256** is small, fast and high quality.
 */

#pragma once

#include <cstdint>

namespace safemem {

/**
 * xoshiro256** generator with convenience range/probability helpers.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so any 64-bit seed yields a good state. */
    explicit Rng(std::uint64_t seed = 0x5afe3e3d)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a value uniform in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

    /** @return true with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return toUnit(next()) < p;
    }

    /** @return a double uniform in [0, 1). */
    double real() { return toUnit(next()); }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static double
    toUnit(std::uint64_t v)
    {
        return static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
    }

    std::uint64_t state_[4] = {};
};

} // namespace safemem
