/**
 * @file
 * Shadow call stack maintained by the workload framework.
 *
 * Real SafeMem unwinds the caller's stack inside its malloc wrapper to
 * compute the call-stack signature (paper §3, footnote 1). Our workloads
 * are synthetic, so they maintain an explicit shadow stack of "return
 * addresses" (stable synthetic function ids); tools read the most recent
 * frames from it exactly where a real unwinder would.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace safemem {

class ShadowStack
{
  public:
    /** Push the return address of an entered function. */
    void push(std::uint64_t return_address)
    {
        frames_.push_back(return_address);
    }

    /** Pop on function exit. */
    void
    pop()
    {
        if (frames_.empty())
            panic("ShadowStack: pop of empty stack");
        frames_.pop_back();
    }

    /** @return current stack depth. */
    std::size_t depth() const { return frames_.size(); }

    /**
     * Copy up to @p n innermost return addresses into @p out
     * (innermost first). @return how many were copied.
     */
    std::size_t
    topFrames(std::uint64_t *out, std::size_t n) const
    {
        std::size_t count = 0;
        for (auto it = frames_.rbegin();
             it != frames_.rend() && count < n; ++it)
            out[count++] = *it;
        return count;
    }

  private:
    std::vector<std::uint64_t> frames_;
};

/** RAII helper pairing push/pop around a synthetic function body. */
class FrameGuard
{
  public:
    FrameGuard(ShadowStack &stack, std::uint64_t return_address)
        : stack_(stack)
    {
        stack_.push(return_address);
    }

    ~FrameGuard() { stack_.pop(); }

    FrameGuard(const FrameGuard &) = delete;
    FrameGuard &operator=(const FrameGuard &) = delete;

  private:
    ShadowStack &stack_;
};

} // namespace safemem
