/**
 * @file
 * Annotated locking primitives for the host-thread layer.
 *
 * libstdc++'s std::mutex carries no thread-safety attributes, so code
 * locking one is invisible to Clang's -Wthread-safety analysis. These
 * thin wrappers restore visibility at zero cost:
 *
 *  - Mutex       an annotated CAPABILITY over std::mutex;
 *  - MutexLock   the SCOPED_CAPABILITY lock_guard equivalent;
 *  - CondVar     a condition variable that waits on a Mutex, REQUIRES()
 *                annotated so predicates read GUARDED_BY state legally
 *                (write the wait as `while (!pred) cv.wait(mutex_);` in
 *                the function that already holds the lock — no lambda,
 *                nothing for the analysis to lose track of);
 *  - Capability  a zero-size tag for *simulated* locks (the memory-bus
 *                lock, the scrub-park state) so ACQUIRE/RELEASE pairing
 *                is compiler-checked even where no host mutex exists.
 *
 * Every mutex-owning class in src/ must name what each field is guarded
 * by (GUARDED_BY) or carry an explicit `// lint: unguarded` waiver; the
 * repo lint rule `unguarded-shared-state` enforces this.
 */

#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace safemem {

/** An annotated std::mutex: the unit of the thread-safety analysis. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mutex_.lock(); }
    void unlock() RELEASE() { mutex_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mutex_;
};

/** RAII lock for a Mutex (std::lock_guard with annotations). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable over a Mutex. wait() REQUIRES the mutex, so the
 * canonical use keeps the analysis fully informed:
 *
 *     MutexLock lock(mutex_);
 *     while (!condition)   // reads of GUARDED_BY(mutex_) state are legal
 *         cv_.wait(mutex_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mutex, sleep, and reacquire before return. */
    void
    wait(Mutex &mutex) REQUIRES(mutex)
    {
        // Adopt the already-held native mutex for the wait, then release
        // the unique_lock's ownership claim so the caller's guard keeps
        // sole responsibility for the final unlock.
        std::unique_lock<std::mutex> relock(mutex.mutex_, std::adopt_lock);
        cv_.wait(relock);
        relock.release();
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * A zero-size capability tag for locks that exist only inside the
 * simulation (no host mutex to wrap). Functions that take or drop the
 * simulated lock are annotated ACQUIRE/RELEASE against the owning
 * class's Capability member, which gives compile-time pairing and
 * double-acquire checking on every call path Clang can see.
 */
class CAPABILITY("role") Capability
{
  public:
    Capability() = default;
    Capability(const Capability &) = delete;
    Capability &operator=(const Capability &) = delete;
};

} // namespace safemem
