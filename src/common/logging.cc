#include "common/logging.h"

#include <cstdio>

namespace safemem {

namespace {

bool g_quiet = false;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
    }
    return "?";
}

} // namespace

void
logMessage(LogLevel level, const std::string &msg)
{
    // Quiet mode silences everything: panic/fatal text still reaches
    // the caller inside the thrown exception.
    if (g_quiet)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg.c_str());
}

void
setLogQuiet(bool quiet)
{
    g_quiet = quiet;
}

bool
logQuiet()
{
    return g_quiet;
}

} // namespace safemem
