#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace safemem {

namespace {

// The deprecated process-wide quiet flag (setLogQuiet shim). Atomic so a
// legacy caller flipping it while worker threads run is a defined race;
// new code routes per-run sinks through LogScope and never touches it.
std::atomic<bool> g_defaultQuiet{false};

// The active sink of *this* thread, installed by LogScope. thread_local
// keeps concurrent runs' sinks independent without any locking.
thread_local const Log *t_threadLog = nullptr;

} // namespace

const char *
logLevelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
    }
    return "?";
}

void
Log::message(LogLevel level, const std::string &msg) const
{
    if (silent_)
        return;
    if (sink_) {
        sink_(level, msg);
        return;
    }
    std::fprintf(stderr, "[%s] %s\n", logLevelTag(level), msg.c_str());
}

LogScope::LogScope(const Log &log)
    : previous_(t_threadLog)
{
    t_threadLog = &log;
}

LogScope::~LogScope()
{
    t_threadLog = previous_;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (const Log *scoped = t_threadLog) {
        scoped->message(level, msg);
        return;
    }
    // Scope-less default: stderr, gated by the deprecated quiet shim.
    // Quiet silences everything — panic/fatal text still reaches the
    // caller inside the thrown exception.
    if (g_defaultQuiet.load(std::memory_order_relaxed))
        return;
    std::fprintf(stderr, "[%s] %s\n", logLevelTag(level), msg.c_str());
}

void
setLogQuiet(bool quiet)
{
    g_defaultQuiet.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return g_defaultQuiet.load(std::memory_order_relaxed);
}

} // namespace safemem
