#include "safemem/leak_detector.h"

#include <algorithm>

#include "common/costs.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace safemem {

LeakDetector::LeakDetector(const SafeMemConfig &config,
                           WatchBackend &backend,
                           std::function<Cycles()> cpu_now,
                           std::function<void(Cycles)> charge,
                           Trace *trace,
                           std::function<Cycles()> trace_now)
    : config_(config), backend_(backend), cpuNow_(std::move(cpu_now)),
      charge_(std::move(charge)), trace_(trace),
      traceNow_(std::move(trace_now))
{
}

LeakDetector::~LeakDetector() = default;

Cycles
LeakDetector::traceNow() const
{
    return traceNow_ ? traceNow_() : cpuNow_();
}

ObjectGroup &
LeakDetector::groupFor(std::uint64_t size, std::uint64_t signature)
{
    GroupKey key{size, signature};
    auto it = groups_.find(key);
    if (it != groups_.end())
        return *it->second;

    auto group = std::make_unique<ObjectGroup>();
    group->key = key;
    Cycles now = cpuNow_();
    group->firstAllocTime = now;
    group->lastLifetimeUpdate = now;
    group->lastMaxChange = now;
    ObjectGroup &ref = *group;
    groups_.emplace(key, std::move(group));
    stats_.add(LeakStat::GroupsCreated);
    return ref;
}

void
LeakDetector::onAlloc(VirtAddr addr, std::size_t size,
                      std::uint64_t signature, std::uint64_t site_tag)
{
    Cycles now = cpuNow_();
    if (!sawFirstEvent_) {
        sawFirstEvent_ = true;
        startTime_ = now;
        lastCheck_ = now;
    }

    ObjectGroup &group = groupFor(size, signature);
    if (group.liveCount == 0 && group.deallocCount == 0)
        group.siteTag = site_tag;

    auto object = std::make_unique<LiveObject>();
    object->addr = addr;
    object->size = size;
    object->group = &group;
    object->allocTime = now;
    object->originalAllocTime = now;
    object->siteTag = site_tag;

    group.liveList.push_back(object.get());
    object->listPos = std::prev(group.liveList.end());
    ++group.liveCount;
    group.lastAllocTime = now;
    group.totalBytes += size;

    objects_.emplace(addr, std::move(object));
    stats_.add(LeakStat::AllocsTracked);

    maybeRunDetection();
}

bool
LeakDetector::onFree(VirtAddr addr)
{
    auto it = objects_.find(addr);
    if (it == objects_.end())
        return false;
    LiveObject &object = *it->second;
    ObjectGroup &group = *object.group;
    Cycles now = cpuNow_();

    if (object.suspect) {
        // Being freed proves the suspect was a false positive too; the
        // program still held a reference to it.
        unwatchSuspect(object);
        ++prunedSuspects_;
        stats_.add(LeakStat::SuspectsFreed);
    }

    // Step 1 (§3.2.1): update the group's lifetime information.
    Cycles lifetime = now - object.originalAllocTime;
    Cycles tolerated = static_cast<Cycles>(
        static_cast<double>(group.maxLifetime) * config_.lifetimeTolerance);
    if (group.deallocCount == 0 || lifetime > tolerated) {
        group.maxLifetime = std::max(group.maxLifetime, lifetime);
        group.stableTime = 0;
        group.lastMaxChange = now;
        group.maxHistory.emplace_back(now, group.maxLifetime);
    } else {
        group.stableTime += now - group.lastLifetimeUpdate;
    }
    group.lastLifetimeUpdate = now;
    ++group.deallocCount;

    --group.liveCount;
    group.totalBytes -= object.size;
    group.liveList.erase(object.listPos);
    objects_.erase(it);
    stats_.add(LeakStat::FreesTracked);

    maybeRunDetection();
    return true;
}

bool
LeakDetector::tracksObject(VirtAddr addr) const
{
    return objects_.count(addr) != 0;
}

void
LeakDetector::maybeRunDetection()
{
    Cycles now = cpuNow_();
    if (now - startTime_ < config_.warmupTime)
        return;
    if (now - lastCheck_ < config_.checkingPeriod)
        return;
    lastCheck_ = now;
    stats_.add(LeakStat::DetectionPasses);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::LeakDetectionPass, traceNow(),
                       groups_.size(), suspects_.size());
    if (charge_)
        charge_(kDetectPassCycles +
                groups_.size() * kDetectPerGroupCycles);

    // Report suspects that stayed silent past the threshold (§3.2.3).
    std::vector<LiveObject *> overdue;
    for (auto &[addr, object] : suspects_) {
        if (now - object->suspectSince > config_.leakReportThreshold)
            overdue.push_back(object);
    }
    for (LiveObject *object : overdue)
        reportLeak(*object, now);

    // Step 2 (§3.2.2): outlier detection per group.
    for (auto &[key, group] : groups_) {
        if (group->reportedLeak || now < group->cooldownUntil)
            continue;
        if (group->everFreed())
            detectSLeak(*group, now);
        else
            detectALeak(*group, now);
    }
}

void
LeakDetector::detectALeak(ObjectGroup &group, Cycles now)
{
    if (group.liveCount <= config_.aleakLiveThreshold)
        return;
    // Growing only counts if the group allocated recently; otherwise it
    // is probably an init-time pool used for the whole run (§3.2.2).
    if (now - group.lastAllocTime > config_.aleakRecentWindow)
        return;

    // Keep one batch of suspects outstanding per group; piling fresh
    // watches on every pass would creep past the oldest objects and
    // manufacture unprunable suspects.
    if (group.suspectCount >= config_.aleakWatchCount)
        return;

    group.everSuspected = true;
    std::uint32_t placed = 0;
    for (LiveObject *object : group.liveList) {
        if (group.suspectCount >= config_.aleakWatchCount)
            break;
        if (object->suspect || object->reported)
            continue;
        watchSuspect(*object, now);
        ++placed;
    }
    if (placed > 0)
        stats_.add(LeakStat::AleakSuspicions);
}

void
LeakDetector::detectSLeak(ObjectGroup &group, Cycles now)
{
    // Condition 2 first: the group's maximal lifetime must have been
    // stable long enough to trust (§3.2.2).
    if (group.deallocCount < 3)
        return;
    if (now - group.lastMaxChange < config_.minStableTime)
        return;
    if (group.maxLifetime == 0)
        return;

    Cycles outlier_bar = static_cast<Cycles>(
        static_cast<double>(group.maxLifetime) *
        config_.sleakLifetimeMultiplier);

    // The live list is allocation-ordered, so the oldest few objects at
    // the front are the only possible outliers (§3.2.2).
    std::uint32_t examined = 0;
    for (LiveObject *object : group.liveList) {
        if (++examined > config_.sleakTopK)
            break;
        if (object->suspect || object->reported)
            continue;
        if (now - object->allocTime > outlier_bar) {
            watchSuspect(*object, now);
            group.everSuspected = true;
            stats_.add(LeakStat::SleakSuspicions);
        }
    }
}

void
LeakDetector::watchSuspect(LiveObject &object, Cycles now)
{
    // The corruption detector may still hold an uninitialised-buffer
    // watch over this object; leave it be and retry later.
    if (backend_.isWatched(object.addr))
        return;

    std::size_t granule = backend_.granule();
    std::size_t watch_size = alignUp(std::max<std::size_t>(object.size, 1),
                                     granule);
    backend_.watch(object.addr, watch_size, WatchKind::LeakSuspect,
                   kCookie);
    object.suspect = true;
    object.suspectSince = now;
    ++object.group->suspectCount;
    suspects_[object.addr] = &object;
    stats_.add(LeakStat::SuspectsWatched);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::LeakSuspectWatched, traceNow(),
                       object.addr, watch_size);
}

void
LeakDetector::unwatchSuspect(LiveObject &object)
{
    if (!object.suspect)
        return;
    if (backend_.isWatched(object.addr))
        backend_.unwatch(object.addr);
    object.suspect = false;
    --object.group->suspectCount;
    suspects_.erase(object.addr);
}

void
LeakDetector::onSuspectAccessed(VirtAddr base)
{
    auto it = objects_.find(base);
    if (it == objects_.end())
        panic("LeakDetector: fault on unknown suspect ", base);
    LiveObject &object = *it->second;
    if (!object.suspect)
        panic("LeakDetector: fault on non-suspect object ", base);
    ObjectGroup &group = *object.group;
    Cycles now = cpuNow_();

    // The backend already removed the watch; fix our bookkeeping.
    object.suspect = false;
    --group.suspectCount;
    suspects_.erase(base);
    ++prunedSuspects_;
    stats_.add(LeakStat::SuspectsPruned);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::LeakSuspectPruned, traceNow(),
                       base);
    group.cooldownUntil = now + config_.suspectCooldown;

    if (group.everFreed()) {
        // §3.2.3: reset the object's clock and raise the group maximum
        // to the suspect's current living time so similar false
        // positives are not flagged again.
        Cycles living = now - object.originalAllocTime;
        object.allocTime = now;
        if (living > group.maxLifetime) {
            group.maxLifetime = living;
            group.stableTime = 0;
            group.lastMaxChange = now;
            group.lastLifetimeUpdate = now;
            group.maxHistory.emplace_back(now, group.maxLifetime);
        }
    }
}

void
LeakDetector::reportLeak(LiveObject &object, Cycles now)
{
    ObjectGroup &group = *object.group;

    unwatchSuspect(object);
    object.reported = true;

    if (group.reportedLeak)
        return; // one report per group / allocation site
    group.reportedLeak = true;

    LeakReport report;
    report.kind =
        group.everFreed() ? LeakKind::Sometimes : LeakKind::Always;
    report.objectSize = group.key.size;
    report.signature = group.key.signature;
    report.siteTag = object.siteTag;
    report.liveCount = group.liveCount;
    report.reportTime = now;
    reports_.push_back(report);
    stats_.add(LeakStat::LeaksReported);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::LeakReported, traceNow(),
                       object.addr, group.key.size, object.siteTag);
}

void
LeakDetector::finish()
{
    Cycles now = cpuNow_();
    std::vector<LiveObject *> overdue;
    for (auto &[addr, object] : suspects_) {
        if (now - object->suspectSince > config_.leakReportThreshold)
            overdue.push_back(object);
    }
    for (LiveObject *object : overdue)
        reportLeak(*object, now);

    // Drop remaining watches so the backend ends the run clean.
    while (!suspects_.empty())
        unwatchSuspect(*suspects_.begin()->second);
}

std::vector<LeakReport>
LeakDetector::suspectedGroupReports() const
{
    std::vector<LeakReport> result;
    for (const auto &[key, group] : groups_) {
        if (!group->everSuspected)
            continue;
        LeakReport report;
        report.kind =
            group->everFreed() ? LeakKind::Sometimes : LeakKind::Always;
        report.objectSize = key.size;
        report.signature = key.signature;
        report.siteTag = group->siteTag;
        report.liveCount = group->liveCount;
        result.push_back(report);
    }
    return result;
}

std::vector<LeakDetector::GroupStability>
LeakDetector::stabilityData() const
{
    std::vector<GroupStability> result;
    Cycles now = cpuNow_();
    Cycles teardown_start =
        startTime_ + (now - startTime_) / 10 * 9;
    for (const auto &[key, group] : groups_) {
        if (!group->everFreed() || group->maxHistory.empty())
            continue;
        // Pools released only during program teardown produce a single
        // end-of-run lifetime sample; the paper's servers were sampled
        // mid-operation and never shut down, so skip those groups.
        if (group->maxHistory.front().first > teardown_start)
            continue;
        // Warm-up ends the first time the maximum reaches within the
        // tolerance band of its final value: later raises inside the
        // band would not have changed the detector's behaviour.
        Cycles final_max = group->maxHistory.back().second;
        Cycles band = static_cast<Cycles>(
            static_cast<double>(final_max) / config_.lifetimeTolerance);
        Cycles warm_up = group->maxHistory.back().first;
        for (const auto &[when, value] : group->maxHistory) {
            if (value >= band) {
                warm_up = when;
                break;
            }
        }
        result.push_back(GroupStability{
            key, warm_up > startTime_ ? warm_up - startTime_ : 0});
    }
    return result;
}

} // namespace safemem
