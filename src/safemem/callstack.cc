#include "safemem/callstack.h"

namespace safemem {

namespace {

std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
callStackSignature(const std::uint64_t *frames, std::size_t count)
{
    std::uint64_t signature = 0;
    for (std::size_t i = 0; i < count; ++i)
        signature = rotl64(signature, 7) ^ frames[i];
    return signature;
}

std::uint64_t
callStackSignature(const ShadowStack &stack)
{
    std::uint64_t frames[kSignatureFrames];
    std::size_t count = stack.topFrames(frames, kSignatureFrames);
    return callStackSignature(frames, count);
}

} // namespace safemem
