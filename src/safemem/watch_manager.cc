#include "safemem/watch_manager.h"

#include "common/logging.h"

namespace safemem {

EccWatchManager::EccWatchManager(Machine &machine)
    : machine_(machine), scramble_(defaultScramblePattern())
{
}

void
EccWatchManager::installFaultHandler()
{
    machine_.kernel().registerEccFaultHandler(
        [this](const UserEccFault &fault) { return onEccFault(fault); });
}

void
EccWatchManager::installScrubHooks()
{
    machine_.kernel().setScrubHooks(
        [this] {
            // Lift every watch so the scrubber sees clean lines
            // (paper §2.2.2: SafeMem temporarily unmonitors all watched
            // regions and blocks the program until scrubbing finishes).
            while (!regions_.empty()) {
                auto it = regions_.begin();
                scrubParked_.push_back(it->second);
                dropRegion(it);
            }
            stats_.add(WatchStat::ScrubUnwatchPasses);
        },
        [this] {
            for (const Region &region : scrubParked_)
                watch(region.base, region.size, region.kind, region.cookie);
            scrubParked_.clear();
        });
}

void
EccWatchManager::installSwapHooks()
{
    machine_.kernel().setSwapHooks(
        [this](VirtAddr vpage) {
            // Pre swap-out: park every watched region that intersects
            // the departing page.
            std::vector<VirtAddr> bases;
            for (const auto &[base, region] : regions_) {
                if (base < vpage + kPageSize &&
                    base + region.size > vpage)
                    bases.push_back(base);
            }
            for (VirtAddr base : bases) {
                auto it = regions_.find(base);
                swapParked_.push_back(it->second);
                dropRegion(it);
                stats_.add(WatchStat::RegionsSwapParked);
            }
        },
        [this](VirtAddr vpage) {
            // Post swap-in: restore the parked regions of this page.
            // Detach them from the parking list first — watch()
            // consults it for overlaps.
            std::vector<Region> restore;
            std::vector<Region> keep;
            for (const Region &region : swapParked_) {
                if (region.base < vpage + kPageSize &&
                    region.base + region.size > vpage)
                    restore.push_back(region);
                else
                    keep.push_back(region);
            }
            swapParked_ = std::move(keep);
            for (const Region &region : restore) {
                watch(region.base, region.size, region.kind,
                      region.cookie);
                stats_.add(WatchStat::RegionsSwapRestored);
            }
        });
}

void
EccWatchManager::setFaultCallback(WatchFaultCallback callback)
{
    callback_ = std::move(callback);
}

void
EccWatchManager::watch(VirtAddr base, std::size_t size, WatchKind kind,
                       std::uint64_t cookie)
{
    if (!isAligned(base, kCacheLineSize) || !isAligned(size, kCacheLineSize)
        || size == 0)
        panic("EccWatchManager: region ", base, "+", size,
              " is not line aligned");

    for (std::size_t off = 0; off < size; off += kCacheLineSize) {
        if (lineToRegion_.count(base + off))
            panic("EccWatchManager: line ", base + off, " already watched");
    }
    for (const Region &parked : swapParked_) {
        if (base < parked.base + parked.size && parked.base < base + size)
            panic("EccWatchManager: region ", base,
                  " overlaps a swap-parked watch at ", parked.base);
    }

    Region region;
    region.base = base;
    region.size = size;
    region.kind = kind;
    region.cookie = cookie;

    // Save the original contents into SafeMem's private memory — the
    // hardware-error discriminator needs them (§2.2.2).
    region.originalWords.resize(size / kEccGroupSize);
    machine_.read(base, region.originalWords.data(), size);

    machine_.kernel().watchMemory(base, size);

    for (std::size_t off = 0; off < size; off += kCacheLineSize)
        lineToRegion_[base + off] = base;
    watchedBytes_ += size;
    stats_.add(WatchStat::RegionsWatched);
    stats_.maxOf(WatchStat::PeakWatchedBytes, watchedBytes_);
    regions_.emplace(base, std::move(region));
}

void
EccWatchManager::dropRegion(std::map<VirtAddr, Region>::iterator it)
{
    const Region &region = it->second;
    machine_.kernel().disableWatchMemory(region.base, region.size);
    for (std::size_t off = 0; off < region.size; off += kCacheLineSize)
        lineToRegion_.erase(region.base + off);
    watchedBytes_ -= region.size;
    regions_.erase(it);
}

void
EccWatchManager::unwatch(VirtAddr base)
{
    auto it = regions_.find(base);
    if (it != regions_.end()) {
        dropRegion(it);
        stats_.add(WatchStat::RegionsUnwatched);
        return;
    }
    // A region parked while its page is swapped out is still logically
    // watched; cancelling it only removes the parking entry (its lines
    // were already unscrambled when it was parked).
    for (auto parked = swapParked_.begin(); parked != swapParked_.end();
         ++parked) {
        if (parked->base == base) {
            swapParked_.erase(parked);
            stats_.add(WatchStat::ParkedRegionsCancelled);
            return;
        }
    }
    panic("EccWatchManager: unwatch of unknown region ", base);
}

bool
EccWatchManager::isWatched(VirtAddr base) const
{
    if (regions_.count(base) != 0)
        return true;
    for (const Region &region : swapParked_) {
        if (region.base == base)
            return true;
    }
    return false;
}

FaultDecision
EccWatchManager::onEccFault(const UserEccFault &fault)
{
    VirtAddr vline = alignDown(fault.vaddr, kCacheLineSize);
    auto line_it = lineToRegion_.find(vline);
    if (line_it == lineToRegion_.end()) {
        // Not one of ours: a genuine hardware error somewhere else.
        stats_.add(WatchStat::ForeignFaults);
        return FaultDecision::HardwareError;
    }

    auto it = regions_.find(line_it->second);
    if (it == regions_.end())
        panic("EccWatchManager: dangling line->region mapping");
    const Region &region = it->second;

    // Everything from here on is monitoring work, not application work.
    CostScope scope(machine_.clock(),
                    region.kind == WatchKind::LeakSuspect
                        ? CostCenter::ToolLeak
                        : CostCenter::ToolCorruption);

    // Recompute the scramble signature for the faulting line and compare
    // against memory: a mismatch means a real hardware error struck the
    // watched line (§2.2.2).
    MemoryController &controller = machine_.controller();
    std::size_t first_word = (vline - region.base) / kEccGroupSize;
    bool signature_intact = true;
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        std::uint64_t current = controller.peekWord(
            alignDown(fault.lineAddr, kCacheLineSize) + i * kEccGroupSize);
        std::uint64_t expected =
            scramble_.apply(region.originalWords[first_word + i]);
        if (current != expected) {
            signature_intact = false;
            break;
        }
    }

    if (!signature_intact) {
        // Hardware error under a watch. The watched data is expendable
        // (padding or a suspected leak) and we hold a pristine copy:
        // repair the region, then report the hardware error.
        stats_.add(WatchStat::HardwareErrorsDetected);
        Region saved = region;
        dropRegion(it);
        machine_.write(saved.base, saved.originalWords.data(), saved.size);
        return FaultDecision::HardwareError;
    }

    // Access fault: remove the watch (only the first access matters),
    // then hand the event to the owning detector.
    stats_.add(WatchStat::AccessFaults);
    Region saved = region;
    dropRegion(it);
    if (callback_)
        callback_(saved.base, saved.kind, saved.cookie, vline,
                  fault.isWrite);
    return FaultDecision::Handled;
}

} // namespace safemem
