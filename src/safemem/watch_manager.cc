#include "safemem/watch_manager.h"

#include "check/simcheck.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace safemem {

EccWatchManager::EccWatchManager(Machine &machine)
    : machine_(machine), scramble_(machine.kernel().scramblePattern()),
      trace_(machine.trace())
{
}

void
EccWatchManager::installFaultHandler()
{
    machine_.kernel().registerEccFaultHandler(
        [this](const UserEccFault &fault) { return onEccFault(fault); });
}

void
EccWatchManager::installScrubHooks()
{
    machine_.kernel().setScrubHooks(
        [this](unsigned bank) { scrubHookPark(bank); },
        [this](unsigned bank) { scrubHookRestore(bank); });
}

void
EccWatchManager::parkAllForScrub(unsigned bank)
{
    // Per-bank pairing discipline: the kernel runs park(b) → scrub(b) →
    // restore(b) strictly nested, so no region parked by bank b may
    // still be waiting when b parks again.
    if (simCheckActive()) {
        for (const ScrubParkedRegion &parked : scrubParked_) {
            SIMCHECK_AUDIT(AuditDomain::Kernel, "scrub_park_pairing",
                           parked.bank != bank, "bank ", bank,
                           " parks again while region ",
                           parked.region.base,
                           " from its previous pass awaits restore");
        }
    }
    // Lift every watch the scrubbed bank backs so its scrubber sees
    // clean lines (paper §2.2.2: SafeMem temporarily unmonitors watched
    // regions and blocks the program until scrubbing finishes). Regions
    // wholly in other banks stay live — that is the point of banking.
    std::vector<VirtAddr> bases;
    for (const auto &[base, region] : regions_) {
        if (region.bankMask >> bank & 1)
            bases.push_back(base);
    }
    for (VirtAddr base : bases) {
        auto it = regions_.find(base);
        scrubParked_.push_back(ScrubParkedRegion{it->second, bank});
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchScrubPark,
                           machine_.clock().now(), it->second.base,
                           it->second.size);
        dropRegion(it);
    }
    stats_.add(WatchStat::ScrubUnwatchPasses);
}

void
EccWatchManager::restoreAfterScrub(unsigned bank)
{
    // Detach this bank's parked regions first — watch() consults the
    // parking list for overlaps, so restoring in place would see each
    // region as overlapping itself. Entries parked by other banks'
    // in-flight passes stay parked.
    std::vector<Region> restore;
    std::vector<ScrubParkedRegion> keep;
    for (ScrubParkedRegion &parked : scrubParked_) {
        if (parked.bank == bank)
            restore.push_back(std::move(parked.region));
        else
            keep.push_back(std::move(parked));
    }
    scrubParked_ = std::move(keep);
    for (const Region &region : restore) {
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchScrubRestore,
                           machine_.clock().now(), region.base, region.size);
        watch(region.base, region.size, region.kind, region.cookie);
    }
}

void
EccWatchManager::installSwapHooks()
{
    machine_.kernel().setSwapHooks(
        [this](VirtAddr vpage) {
            // Pre swap-out: park every watched region that intersects
            // the departing page.
            std::vector<VirtAddr> bases;
            for (const auto &[base, region] : regions_) {
                if (base < vpage + kPageSize &&
                    base + region.size > vpage)
                    bases.push_back(base);
            }
            for (VirtAddr base : bases) {
                auto it = regions_.find(base);
                swapParked_.push_back(it->second);
                SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchSwapPark,
                                   machine_.clock().now(), it->second.base,
                                   it->second.size);
                dropRegion(it);
                stats_.add(WatchStat::RegionsSwapParked);
            }
        },
        [this](VirtAddr vpage) {
            // Post swap-in: restore the parked regions of this page.
            // Detach them from the parking list first — watch()
            // consults it for overlaps.
            std::vector<Region> restore;
            std::vector<Region> keep;
            for (const Region &region : swapParked_) {
                if (region.base < vpage + kPageSize &&
                    region.base + region.size > vpage)
                    restore.push_back(region);
                else
                    keep.push_back(region);
            }
            swapParked_ = std::move(keep);
            for (const Region &region : restore) {
                SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchSwapRestore,
                                   machine_.clock().now(), region.base,
                                   region.size);
                watch(region.base, region.size, region.kind,
                      region.cookie);
                stats_.add(WatchStat::RegionsSwapRestored);
            }
        });
}

void
EccWatchManager::setFaultCallback(WatchFaultCallback callback)
{
    callback_ = std::move(callback);
}

void
EccWatchManager::watch(VirtAddr base, std::size_t size, WatchKind kind,
                       std::uint64_t cookie)
{
    if (!isAligned(base, kCacheLineSize) || !isAligned(size, kCacheLineSize)
        || size == 0)
        panic("EccWatchManager: region ", base, "+", size,
              " is not line aligned");

    for (std::size_t off = 0; off < size; off += kCacheLineSize) {
        if (lineToRegion_.count(base + off))
            panic("EccWatchManager: line ", base + off, " already watched");
    }
    for (const Region &parked : swapParked_) {
        if (base < parked.base + parked.size && parked.base < base + size)
            panic("EccWatchManager: region ", base,
                  " overlaps a swap-parked watch at ", parked.base);
    }
    // Scrub-parked regions are just as logically watched as swap-parked
    // ones: they come back the moment the scrub pass finishes, so
    // letting a new watch overlap one would double-watch on restore.
    for (const ScrubParkedRegion &parked : scrubParked_) {
        if (base < parked.region.base + parked.region.size &&
            parked.region.base < base + size)
            panic("EccWatchManager: region ", base,
                  " overlaps a scrub-parked watch at ", parked.region.base);
    }

    Region region;
    region.base = base;
    region.size = size;
    region.kind = kind;
    region.cookie = cookie;

    // Save the original contents into SafeMem's private memory — the
    // hardware-error discriminator needs them (§2.2.2).
    region.originalWords.resize(size / kEccGroupSize);
    machine_.read(base, region.originalWords.data(), size);

    machine_.kernel().watchMemory(base, size);

    // Record which banks back the region's frames (resident and pinned
    // now that the kernel watch is in): only those banks' scrub passes
    // ever park this region.
    region.bankMask = 0;
    MemoryController &controller = machine_.controller();
    for (VirtAddr vpage = alignDown(base, kPageSize); vpage < base + size;
         vpage += kPageSize) {
        if (auto paddr = machine_.kernel().peekTranslate(vpage))
            region.bankMask |= std::uint64_t{1} << controller.bankOf(*paddr);
    }
    if (region.bankMask == 0)
        panic("EccWatchManager: region ", base,
              " has no resident frames after watchMemory");

    for (std::size_t off = 0; off < size; off += kCacheLineSize)
        lineToRegion_[base + off] = base;
    watchedBytes_ += size;
    stats_.add(WatchStat::RegionsWatched);
    stats_.maxOf(WatchStat::PeakWatchedBytes, watchedBytes_);
    regions_.emplace(base, std::move(region));
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchEstablish,
                       machine_.clock().now(), base, size,
                       static_cast<std::uint64_t>(kind));
}

void
EccWatchManager::dropRegion(std::map<VirtAddr, Region>::iterator it)
{
    const Region &region = it->second;
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchDrop,
                       machine_.clock().now(), region.base, region.size);
    machine_.kernel().disableWatchMemory(region.base, region.size);
    for (std::size_t off = 0; off < region.size; off += kCacheLineSize)
        lineToRegion_.erase(region.base + off);
    watchedBytes_ -= region.size;
    regions_.erase(it);
}

void
EccWatchManager::unwatch(VirtAddr base)
{
    auto it = regions_.find(base);
    if (it != regions_.end()) {
        dropRegion(it);
        stats_.add(WatchStat::RegionsUnwatched);
        return;
    }
    // A parked region — swap- or scrub-parked — is still logically
    // watched; cancelling it only removes the parking entry (its lines
    // were already unscrambled when it was parked).
    for (auto parked = swapParked_.begin(); parked != swapParked_.end();
         ++parked) {
        if (parked->base == base) {
            SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchSwapCancel,
                               machine_.clock().now(), base);
            swapParked_.erase(parked);
            stats_.add(WatchStat::ParkedRegionsCancelled);
            return;
        }
    }
    for (auto parked = scrubParked_.begin(); parked != scrubParked_.end();
         ++parked) {
        if (parked->region.base == base) {
            SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchScrubCancel,
                               machine_.clock().now(), base);
            scrubParked_.erase(parked);
            stats_.add(WatchStat::ParkedRegionsCancelled);
            return;
        }
    }
    panic("EccWatchManager: unwatch of unknown region ", base);
}

bool
EccWatchManager::isWatched(VirtAddr base) const
{
    if (regions_.count(base) != 0)
        return true;
    for (const Region &region : swapParked_) {
        if (region.base == base)
            return true;
    }
    for (const ScrubParkedRegion &parked : scrubParked_) {
        if (parked.region.base == base)
            return true;
    }
    return false;
}

FaultDecision
EccWatchManager::onEccFault(const UserEccFault &fault)
{
    VirtAddr vline = alignDown(fault.vaddr, kCacheLineSize);
    auto line_it = lineToRegion_.find(vline);
    if (line_it == lineToRegion_.end()) {
        // Not one of ours: a genuine hardware error somewhere else.
        if (inRepair_)
            panic("EccWatchManager: nested ECC fault at line ", vline,
                  " while repairing a hardware error — the repair path "
                  "pulled the corrupted region back through the cache");
        stats_.add(WatchStat::ForeignFaults);
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchFaultForeign,
                           machine_.clock().now(), vline);
        return FaultDecision::HardwareError;
    }

    auto it = regions_.find(line_it->second);
    if (it == regions_.end())
        panic("EccWatchManager: dangling line->region mapping");
    const Region &region = it->second;

    // Everything from here on is monitoring work, not application work.
    CostScope scope(machine_.clock(),
                    region.kind == WatchKind::LeakSuspect
                        ? CostCenter::ToolLeak
                        : CostCenter::ToolCorruption);

    // Recompute the scramble signature for the faulting line and compare
    // against memory: a mismatch means a real hardware error struck the
    // watched line (§2.2.2).
    MemoryController &controller = machine_.controller();
    std::size_t first_word = (vline - region.base) / kEccGroupSize;
    bool signature_intact = true;
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        std::uint64_t current = controller.peekWord(
            alignDown(fault.lineAddr, kCacheLineSize) + i * kEccGroupSize);
        std::uint64_t expected =
            scramble_.apply(region.originalWords[first_word + i]);
        if (current != expected) {
            signature_intact = false;
            break;
        }
    }

    if (!signature_intact) {
        // Hardware error under a watch. The watched data is expendable
        // (padding or a suspected leak) and we hold a pristine copy:
        // repair the region, then report the hardware error.
        stats_.add(WatchStat::HardwareErrorsDetected);
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchFaultHardware,
                           machine_.clock().now(), vline, region.base);
        if (inRepair_)
            panic("EccWatchManager: nested hardware fault inside the "
                  "repair path at line ", vline);
        inRepair_ = true;
        Region saved = region;
        dropRegion(it);
        // Repair through the device-op path: writeWordDeviceOp rewrites
        // each word with freshly encoded check bytes without any cache
        // traffic. A machine_.write() here would write-allocate, and the
        // read-for-ownership fill would pull the still-corrupted line
        // through the controller — a nested ECC fault inside the fault
        // handler (the inRepair_ guard above turns that into a panic
        // rather than unbounded recursion).
        MemoryController &controller_ref = machine_.controller();
        Kernel &kernel = machine_.kernel();
        for (std::size_t off = 0; off < saved.size; off += kCacheLineSize) {
            PhysAddr pline = kernel.translate(saved.base + off);
            // The region's lines cannot be cache-resident (watchMemory
            // flushed them and faulted fills never install), but flush
            // defensively so a stale copy can never shadow the repair.
            machine_.cache().flushLine(pline);
            for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
                controller_ref.writeWordDeviceOp(
                    pline + i * kEccGroupSize,
                    saved.originalWords[off / kEccGroupSize + i]);
        }
        inRepair_ = false;
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchRepairDone,
                           machine_.clock().now(), saved.base, saved.size);
        return FaultDecision::HardwareError;
    }

    // Access fault: remove the watch (only the first access matters),
    // then hand the event to the owning detector.
    stats_.add(WatchStat::AccessFaults);
    SAFEMEM_TRACE_EMIT(trace_, TraceEvent::WatchFaultAccess,
                       machine_.clock().now(), vline, region.base,
                       fault.isWrite ? 1 : 0);
    Region saved = region;
    dropRegion(it);
    if (callback_)
        callback_(saved.base, saved.kind, saved.cookie, vline,
                  fault.isWrite);
    return FaultDecision::Handled;
}

} // namespace safemem
