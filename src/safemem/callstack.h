/**
 * @file
 * Call-stack signature used to group memory objects.
 *
 * Paper §3, footnote 1: "The call-stack signature is calculated by
 * individually applying the exclusive-or and rotate functions to the
 * return addresses of the most recent four functions in the current
 * stack."
 */

#pragma once

#include <cstdint>

#include "common/shadow_stack.h"

namespace safemem {

/** Number of innermost frames folded into the signature. */
inline constexpr std::size_t kSignatureFrames = 4;

/** @return the xor/rotate fold of up to four innermost return addresses. */
std::uint64_t callStackSignature(const ShadowStack &stack);

/** Fold an explicit frame array (used by tests). */
std::uint64_t callStackSignature(const std::uint64_t *frames,
                                 std::size_t count);

} // namespace safemem
