/**
 * @file
 * The ECC watch backend — SafeMem's user-level library side of the
 * mechanism (paper §2.2).
 *
 * Responsibilities beyond calling the kernel's WatchMemory /
 * DisableWatchMemory:
 *
 *  - keep a private copy of each watched line's original contents, used
 *    to recompute the scramble signature and tell access faults apart
 *    from genuine hardware ECC errors (§2.2.2 "Data Scrambling");
 *  - dispatch verified access faults to the owning detector through the
 *    WatchFaultCallback, after disabling the watch (only the first
 *    access matters, §2.2.1);
 *  - coordinate with memory scrubbing: unwatch everything before a scrub
 *    pass and rewatch afterwards (§2.2.2 "Dealing with ECC Memory
 *    Scrubbing").
 */

#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "ecc/scramble.h"
#include "os/machine.h"
#include "safemem/watch_backend.h"

namespace safemem {

/** Slot indices into the watch manager StatSet; order matches kWatchStatNames. */
enum class WatchStat : std::size_t
{
    ScrubUnwatchPasses,
    RegionsSwapParked,
    RegionsSwapRestored,
    RegionsWatched,
    PeakWatchedBytes,
    RegionsUnwatched,
    ParkedRegionsCancelled,
    ForeignFaults,
    HardwareErrorsDetected,
    AccessFaults,
};

/** Report/snapshot names for WatchStat, in enumerator order. */
inline constexpr const char *kWatchStatNames[] = {
    "scrub_unwatch_passes",
    "regions_swap_parked",
    "regions_swap_restored",
    "regions_watched",
    "peak_watched_bytes",
    "regions_unwatched",
    "parked_regions_cancelled",
    "foreign_faults",
    "hardware_errors_detected",
    "access_faults",
};

class EccWatchManager : public WatchBackend
{
  public:
    explicit EccWatchManager(Machine &machine);

    /** Wire this manager into the kernel's ECC fault delivery. */
    void installFaultHandler();

    /** Register the pre/post scrub hooks with the kernel. */
    void installScrubHooks();

    /**
     * Lift every watch whose frames @p bank holds ahead of that bank's
     * scrub pass, parking the regions for restoreAfterScrub() (paper
     * §2.2.2 "Dealing with ECC Memory Scrubbing"). Scrubbing is
     * per-bank, and so is parking: regions wholly in other banks stay
     * live, and a region spanning the scrubbed bank parks whole (its
     * kernel unwatch is all-or-nothing). Parked regions stay logically
     * watched: isWatched() reports them, unwatch() cancels them, and
     * watch() refuses overlaps with them — exactly like swap-parked
     * regions.
     *
     * Park/restore is a simulated lock on the watch set, and PR 4 fixed
     * real double-park/lost-restore bugs here — so it is annotated as a
     * capability: any call path Clang can see that parks twice, or
     * restores without parking, is a compile error. Per-bank pairing
     * (park(b) must not nest inside an unfinished park(b)) is audited
     * at runtime by SimCheck.
     */
    void parkAllForScrub(unsigned bank) ACQUIRE(scrubPark_);

    /** Re-establish every region parked by parkAllForScrub(@p bank). */
    void restoreAfterScrub(unsigned bank) RELEASE(scrubPark_);

    /**
     * Register swap hooks for the kernel's UnwatchRewatch policy
     * (paper §2.2.2's proposed alternative to pinning): watches on a
     * page that swaps out are parked, and re-established when the page
     * swaps back in.
     */
    void installSwapHooks();

    /** @name WatchBackend interface */
    /// @{
    std::size_t granule() const override { return kCacheLineSize; }
    void setFaultCallback(WatchFaultCallback callback) override;
    void watch(VirtAddr base, std::size_t size, WatchKind kind,
               std::uint64_t cookie) override;
    void unwatch(VirtAddr base) override;
    bool isWatched(VirtAddr base) const override;
    std::size_t regionCount() const override { return regions_.size(); }
    std::uint64_t watchedBytes() const override { return watchedBytes_; }
    const StatSet &stats() const override { return stats_; }
    /// @}

    /**
     * The user-level ECC fault handler (registered via the kernel).
     * Classifies the fault by scramble signature and dispatches access
     * faults; hardware errors are repaired from the private copy.
     */
    FaultDecision onEccFault(const UserEccFault &fault);

  private:
    struct Region
    {
        VirtAddr base = 0;
        std::size_t size = 0;
        WatchKind kind = WatchKind::LeakSuspect;
        std::uint64_t cookie = 0;
        /** Private copy of the original data (one word per ECC group). */
        std::vector<std::uint64_t> originalWords;
        /** Banks backing the region's frames at watch() time — the
         *  banks whose scrub passes must park this region. */
        std::uint64_t bankMask = 1;
    };

    /** A region lifted for a scrub pass, tagged with the bank whose
     *  pass parked it (its restore key). */
    struct ScrubParkedRegion
    {
        Region region;
        unsigned bank = 0;
    };

    /** Remove @p region's kernel watches and bookkeeping. */
    void dropRegion(std::map<VirtAddr, Region>::iterator it);

    /**
     * @name Kernel scrub-hook trampolines
     * The kernel invokes park and restore from *separate* std::function
     * hooks, so the acquire/release pairing spans call paths the
     * analysis cannot follow; these two opt-outs are the only sanctioned
     * unpaired entries (the pairing itself is exercised by the scrub
     * tests and audited at runtime by SimCheck).
     */
    /// @{
    void scrubHookPark(unsigned bank) NO_THREAD_SAFETY_ANALYSIS
    {
        parkAllForScrub(bank);
    }
    void scrubHookRestore(unsigned bank) NO_THREAD_SAFETY_ANALYSIS
    {
        restoreAfterScrub(bank);
    }
    /// @}

    Machine &machine_;
    const ScramblePattern &scramble_;
    Trace *trace_;
    WatchFaultCallback callback_;

    /** Guards the hardware-error repair block against re-entry: a
     *  nested ECC fault while rewriting the corrupted region means the
     *  repair itself pulled the bad line through the controller. */
    bool inRepair_ = false;

    /** Watched regions keyed by base address. */
    std::map<VirtAddr, Region> regions_;
    /** Line address -> owning region base. */
    std::unordered_map<VirtAddr, VirtAddr> lineToRegion_;

    /** Compile-time face of the park/restore pairing discipline. */
    Capability scrubPark_;
    /** Regions temporarily lifted for a bank's scrub pass. */
    std::vector<ScrubParkedRegion> scrubParked_;
    /** Regions parked while their page is swapped out. */
    std::vector<Region> swapParked_;

    std::uint64_t watchedBytes_ = 0;
    StatSet stats_{kWatchStatNames};
};

} // namespace safemem
