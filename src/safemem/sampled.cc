#include "safemem/sampled.h"

#include <algorithm>
#include <vector>

#include "common/costs.h"
#include "safemem/callstack.h"

namespace safemem {

SampledSafeMemTool::SampledSafeMemTool(Machine &machine,
                                       HeapAllocator &allocator,
                                       WatchBackend &backend,
                                       SafeMemConfig config, Pid pid)
    : SafeMemTool(machine, allocator, backend, config), pid_(pid)
{
}

bool
SampledSafeMemTool::sampleDecision(std::uint64_t seed, Pid pid,
                                   std::uint64_t ordinal, double rate)
{
    if (rate >= 1.0)
        return true;
    if (rate <= 0.0)
        return false;
    // splitmix64 finalizer over a linear mix of the identity triple:
    // cheap, stateless, and uniform enough that the admitted fraction
    // tracks the rate. Statelessness is the point — the verdict cannot
    // depend on scheduling, worker count or any other allocation.
    std::uint64_t z = seed +
                      0x9e3779b97f4a7c15ULL *
                          (static_cast<std::uint64_t>(pid) + 1) +
                      0xbf58476d1ce4e5b9ULL * (ordinal + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    double unit = static_cast<double>(z >> 11) *
                  (1.0 / 9007199254740992.0); // 2^-53
    return unit < rate;
}

bool
SampledSafeMemTool::nextSampled()
{
    return sampleDecision(config_.sampleSeed, pid_, ordinal_++,
                          config_.sampleRate);
}

void
SampledSafeMemTool::copyContents(VirtAddr from, VirtAddr to,
                                 std::size_t old_size, std::size_t new_size)
{
    std::vector<std::uint8_t> copy(std::min(old_size, new_size));
    if (copy.empty())
        return;
    machine_.read(from, copy.data(), copy.size());
    machine_.write(to, copy.data(), copy.size());
}

VirtAddr
SampledSafeMemTool::toolAlloc(std::size_t size, const ShadowStack &stack,
                              std::uint64_t site_tag)
{
    if (nextSampled()) {
        stats_.add(SampledStat::SampledAllocs);
        // The full tool's path verbatim: guards, leak tracking, costs.
        return SafeMemTool::toolAlloc(size, stack, site_tag);
    }

    stats_.add(SampledStat::UnsampledAllocs);
    VirtAddr user = allocator_.allocate(size);
    // The allocator may recycle a block whose freed body is still
    // watched from a sampled lifetime; clear it before the new owner
    // touches the memory, or its first access reads as use-after-free.
    if (corruption_)
        corruption_->onBlockRecycled(user);
    return user;
}

VirtAddr
SampledSafeMemTool::toolRealloc(VirtAddr addr, std::size_t new_size,
                                const ShadowStack &stack,
                                std::uint64_t site_tag)
{
    if (addr == 0)
        return toolAlloc(new_size, stack, site_tag);

    // Exactly one decision per realloc, for the *new* object, consumed
    // up front so the ordinal stream is independent of which branch
    // runs. The old object's fate was decided at its own allocation and
    // is read back from the detectors' bookkeeping.
    const bool new_sampled = nextSampled();
    const bool old_guarded = corruption_ && corruption_->owns(addr);
    const bool old_tracked = leak_ && leak_->tracksObject(addr);

    if (old_guarded && new_sampled) {
        stats_.add(SampledStat::ReallocStaySampled);
        // Sampled -> sampled: the full tool's move, bit for bit.
        return SafeMemTool::toolRealloc(addr, new_size, stack, site_tag);
    }

    if (old_tracked) {
        CostScope scope(machine_.clock(), CostCenter::ToolLeak);
        machine_.clock().advance(kWrapperEventCycles);
        leak_->onFree(addr);
    }

    VirtAddr fresh;
    if (old_guarded) {
        stats_.add(SampledStat::ReallocDropSample);
        // Sampled -> unsampled: plain new block, copy, guarded free of
        // the old object (its freed body gets the usual watch).
        std::size_t old_size = corruption_->userSize(addr);
        fresh = allocator_.allocate(new_size);
        corruption_->onBlockRecycled(fresh);
        copyContents(addr, fresh, old_size, new_size);
        CostScope scope(machine_.clock(), CostCenter::ToolCorruption);
        machine_.clock().advance(kWrapperEventCycles);
        corruption_->deallocate(addr);
    } else if (new_sampled) {
        stats_.add(SampledStat::ReallocGainSample);
        // Unsampled -> sampled: guarded (or, ML-only, granule-aligned)
        // new block carrying the new site tag, copy, plain free.
        std::size_t old_size = allocator_.blockSize(addr);
        if (corruption_) {
            CostScope scope(machine_.clock(),
                            CostCenter::ToolCorruption);
            machine_.clock().advance(kWrapperEventCycles);
            fresh = corruption_->allocate(new_size, site_tag);
        } else {
            fresh = allocator_.allocate(new_size, backend_.granule());
        }
        copyContents(addr, fresh, old_size, new_size);
        allocator_.deallocate(addr);
    } else {
        stats_.add(SampledStat::ReallocStayUnsampled);
        // Unsampled -> unsampled: zero-cost plain realloc; a moved
        // block may land on a recycled base with a stale body watch.
        fresh = allocator_.reallocate(addr, new_size);
        if (corruption_)
            corruption_->onBlockRecycled(fresh);
    }

    if (leak_ && new_sampled) {
        CostScope scope(machine_.clock(), CostCenter::ToolLeak);
        machine_.clock().advance(kWrapperEventCycles);
        leak_->onAlloc(fresh, new_size, callStackSignature(stack),
                       site_tag);
    }
    return fresh;
}

void
SampledSafeMemTool::toolFree(VirtAddr addr)
{
    const bool old_guarded = corruption_ && corruption_->owns(addr);
    const bool old_tracked = leak_ && leak_->tracksObject(addr);
    if (!old_guarded && !old_tracked) {
        // The common case at low rates: an object the detectors never
        // saw goes straight back, no wrapper cost charged.
        stats_.add(SampledStat::UnsampledFrees);
        allocator_.deallocate(addr);
        return;
    }
    stats_.add(SampledStat::SampledFrees);
    SafeMemTool::toolFree(addr);
}

} // namespace safemem
