/**
 * @file
 * Bug reports emitted by the detectors.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace safemem {

/** Which kind of continuous leak a report describes (paper §3.1). */
enum class LeakKind : std::uint8_t
{
    Always,   ///< ALeak: the group is never freed on any path
    Sometimes ///< SLeak: freed on some paths, leaked on others
};

/** One reported memory leak (per memory-object group). */
struct LeakReport
{
    LeakKind kind = LeakKind::Always;
    std::uint64_t objectSize = 0;   ///< the group's object size
    std::uint64_t signature = 0;    ///< the group's call-stack signature
    std::uint64_t siteTag = 0;      ///< workload ground-truth label
    std::uint64_t liveCount = 0;    ///< live objects in the group at report
    Cycles reportTime = 0;          ///< app CPU time of the report
};

/** Categories of memory corruption SafeMem detects (paper §4). */
enum class CorruptionKind : std::uint8_t
{
    UnderflowPadding,  ///< access below the buffer (front guard)
    OverflowPadding,   ///< access beyond the buffer (rear guard)
    UseAfterFree,      ///< access to a freed buffer
    UninitializedRead  ///< read of a never-written buffer (extension)
};

/** One reported memory-corruption bug. */
struct CorruptionReport
{
    CorruptionKind kind = CorruptionKind::OverflowPadding;
    VirtAddr userAddr = 0;      ///< user base of the involved buffer
    VirtAddr faultAddr = 0;     ///< line address of the illegal access
    std::uint64_t objectSize = 0;
    std::uint64_t siteTag = 0;  ///< ground-truth label of the alloc site
    Cycles reportTime = 0;
};

/** @return a short human-readable name for @p kind. */
inline const char *
corruptionKindName(CorruptionKind kind)
{
    switch (kind) {
      case CorruptionKind::UnderflowPadding: return "buffer-underflow";
      case CorruptionKind::OverflowPadding: return "buffer-overflow";
      case CorruptionKind::UseAfterFree: return "use-after-free";
      case CorruptionKind::UninitializedRead: return "uninitialised-read";
    }
    return "?";
}

} // namespace safemem
