/**
 * @file
 * The memory-corruption detector (paper §4).
 *
 * Buffer overflow: every buffer is granule-aligned and padded with one
 * watched granule at each end; any access to the padding is a bug.
 *
 * Use-after-free: on free the guards are released and the freed body is
 * watched; any access is a bug. When the allocator hands the same block
 * out again, the freed-body watch is removed first (§4: "When a freed
 * memory buffer is reallocated, ECC monitoring for this buffer will be
 * disabled").
 *
 * The only per-event costs are the watch/unwatch syscalls at allocation
 * and deallocation time — no per-access interception, which is the whole
 * point of the paper.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/stats.h"
#include "safemem/config.h"
#include "safemem/report.h"
#include "safemem/watch_backend.h"

namespace safemem {

/** Slot indices into the corruption detector StatSet; order matches kCorruptionStatNames. */
enum class CorruptionStat : std::size_t
{
    FreedWatchesRecycled,
    BuffersGuarded,
    UninitWatchesExpired,
    LargeBlocksQuarantined,
    BuffersReleased,
    CorruptionReports,
    UninitWatchesRetired,
};

/** Report/snapshot names for CorruptionStat, in enumerator order. */
inline constexpr const char *kCorruptionStatNames[] = {
    "freed_watches_recycled",
    "buffers_guarded",
    "uninit_watches_expired",
    "large_blocks_quarantined",
    "buffers_released",
    "corruption_reports",
    "uninit_watches_retired",
};

class CorruptionDetector
{
  public:
    CorruptionDetector(const SafeMemConfig &config, WatchBackend &backend,
                       HeapAllocator &allocator, Machine &machine,
                       std::function<Cycles()> cpu_now);

    /** Padded, guarded allocation. @return the user-visible address. */
    VirtAddr allocate(std::size_t size, std::uint64_t site_tag);

    /**
     * Release @p user_addr: drop guards, watch the freed body. An
     * address the detector never guarded (sampled tools admit only a
     * fraction of allocations) is a cheap no-op.
     * @return true when @p user_addr was a live guarded buffer.
     */
    bool deallocate(VirtAddr user_addr);

    /**
     * The allocator handed block @p base out again outside allocate()
     * (a sampled tool's unmonitored allocation or realloc): if the
     * block's freed body is still watched, disable that monitoring so
     * the new owner's accesses are not reported as use-after-free (§4).
     */
    void onBlockRecycled(VirtAddr base);

    /** Guarded realloc: new guarded block, copy, free old. */
    VirtAddr reallocate(VirtAddr user_addr, std::size_t new_size,
                        std::uint64_t site_tag);

    /** @return true when @p user_addr is a live guarded buffer. */
    bool owns(VirtAddr user_addr) const;

    /** @return requested size of live buffer @p user_addr. */
    std::size_t userSize(VirtAddr user_addr) const;

    /** Watch-backend fault dispatched by the facade. */
    void onWatchFault(VirtAddr base, WatchKind kind, std::uint64_t cookie,
                      VirtAddr fault_addr, bool is_write);

    /** End of run: release all remaining watches and quarantine. */
    void finish();

    /** @return corruption reports emitted so far. */
    const std::vector<CorruptionReport> &reports() const
    {
        return reports_;
    }

    /** @name Table 4 space accounting */
    /// @{

    /** Sum over all allocations of (capacity - requested) bytes. */
    std::uint64_t cumulativeWasteBytes() const { return wasteBytes_; }

    /** Sum over all allocations of requested bytes. */
    std::uint64_t cumulativeUserBytes() const { return userBytes_; }
    /// @}

    /** @return detector statistics. */
    const StatSet &stats() const { return stats_; }

  private:
    struct Buffer
    {
        VirtAddr base = 0;      ///< block base (front guard start)
        VirtAddr userAddr = 0;  ///< base + one guard
        std::size_t size = 0;   ///< requested size
        std::size_t bodyBytes = 0; ///< user body rounded to granules
        std::uint64_t siteTag = 0;
        bool frontWatched = false;
        bool rearWatched = false;
        bool uninitWatched = false;
    };

    struct FreedBuffer
    {
        Buffer buffer;
        bool bodyWatched = false;
        bool quarantined = false; ///< large block withheld from reuse
    };

    VirtAddr rearGuardAddr(const Buffer &buffer) const;
    void emitReport(CorruptionKind kind, const Buffer &buffer,
                    VirtAddr fault_addr);

    const SafeMemConfig &config_;
    WatchBackend &backend_;
    HeapAllocator &allocator_;
    Machine &machine_;
    std::function<Cycles()> cpuNow_;

    /** Live guarded buffers keyed by user address. */
    std::unordered_map<VirtAddr, Buffer> live_;
    /** Freed, still-watched buffers keyed by block base. */
    std::unordered_map<VirtAddr, FreedBuffer> freedByBase_;

    std::uint64_t wasteBytes_ = 0;
    std::uint64_t userBytes_ = 0;
    std::vector<CorruptionReport> reports_;
    StatSet stats_{kCorruptionStatNames};
};

} // namespace safemem
