/**
 * @file
 * Memory-object groups and per-object records (paper §3).
 *
 * Objects are grouped by the tuple (size, call-stack signature); each
 * group tracks the lifetime statistics the outlier detector consumes:
 * the current maximal lifetime, how long that maximum has been stable,
 * live-object bookkeeping, and the group's warm-up time (when the
 * maximum last changed — the quantity Figure 3 plots).
 */

#pragma once

#include <cstdint>
#include <list>
#include <utility>
#include <vector>

#include "common/types.h"

namespace safemem {

/** Grouping key: (object size, call-stack signature). */
struct GroupKey
{
    std::uint64_t size = 0;
    std::uint64_t signature = 0;

    bool
    operator==(const GroupKey &other) const
    {
        return size == other.size && signature == other.signature;
    }
};

/** Hash for GroupKey. */
struct GroupKeyHash
{
    std::size_t
    operator()(const GroupKey &key) const
    {
        std::uint64_t h = key.size * 0x9e3779b97f4a7c15ULL;
        h ^= key.signature + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

struct ObjectGroup;

/** One live (not yet deallocated) memory object. */
struct LiveObject
{
    VirtAddr addr = 0;
    std::size_t size = 0;
    ObjectGroup *group = nullptr;
    /** Allocation time in app CPU cycles; reset when a suspect proves
     *  live again (paper §3.2.3). */
    Cycles allocTime = 0;
    /** True allocation time, never reset (lifetime bookkeeping). */
    Cycles originalAllocTime = 0;
    /** Workload ground-truth tag; opaque to the detector. */
    std::uint64_t siteTag = 0;
    /** Currently watched as a leak suspect. */
    bool suspect = false;
    /** App CPU time the suspect watch was placed. */
    Cycles suspectSince = 0;
    /** Already counted in a leak report. */
    bool reported = false;
    /** Position in the group's allocation-ordered live list. */
    std::list<LiveObject *>::iterator listPos;
};

/** Statistics for one (size, signature) group. */
struct ObjectGroup
{
    GroupKey key;

    /** @name Lifetime information (paper §3.2.1) */
    /// @{
    Cycles maxLifetime = 0;
    /** How long maxLifetime has been stable. */
    Cycles stableTime = 0;
    /** Last time stableTime was accumulated into. */
    Cycles lastLifetimeUpdate = 0;
    /** App CPU time when maxLifetime last increased (warm-up point). */
    Cycles lastMaxChange = 0;
    /** History of (time, new maximum) raises — Figure 3's warm-up
     *  metric reads the first time the maximum got within tolerance of
     *  its final value. Raises are rare, so this stays tiny. */
    std::vector<std::pair<Cycles, Cycles>> maxHistory;
    /// @}

    /** @name Memory usage information (paper §3.2.1) */
    /// @{
    std::uint64_t liveCount = 0;
    Cycles lastAllocTime = 0;
    std::uint64_t totalBytes = 0;
    /// @}

    Cycles firstAllocTime = 0;
    std::uint64_t deallocCount = 0;
    bool everFreed() const { return deallocCount > 0; }

    /** Live objects in allocation order (oldest at the front). */
    std::list<LiveObject *> liveList;

    /** Ground-truth tag of the group's allocation site. */
    std::uint64_t siteTag = 0;

    /** Live objects of this group currently watched as suspects. */
    std::uint32_t suspectCount = 0;

    /** Group already reported as leaking. */
    bool reportedLeak = false;
    /** Do not re-suspect this group before this time (after a prune). */
    Cycles cooldownUntil = 0;
    /** Ever flagged as a suspect (Table 5 "before pruning" counting). */
    bool everSuspected = false;
};

} // namespace safemem
