/**
 * @file
 * SafeMem: the user-level runtime the paper describes, assembled as a
 * Tool the workload Env can interpose.
 *
 * Wraps malloc/free/calloc/realloc (the paper preloads a shared library
 * for this), feeding the leak detector (§3) and corruption detector (§4),
 * both built over a WatchBackend. With the ECC backend this is SafeMem
 * proper; with the page-protection backend it is the paper's
 * page-granularity comparison point (Tables 2 and 4).
 */

#pragma once

#include <memory>

#include "alloc/heap_allocator.h"
#include "common/tool.h"
#include "os/machine.h"
#include "safemem/config.h"
#include "safemem/corruption_detector.h"
#include "safemem/leak_detector.h"
#include "safemem/watch_backend.h"

namespace safemem {

class SafeMemTool : public Tool
{
  public:
    /**
     * @param machine   the simulated machine to monitor on
     * @param allocator the heap allocator being interposed
     * @param backend   watch mechanism (ECC or page protection); must
     *                  already be wired into the machine's fault paths
     * @param config    detection thresholds
     */
    SafeMemTool(Machine &machine, HeapAllocator &allocator,
                WatchBackend &backend, SafeMemConfig config);
    ~SafeMemTool() override;

    /** @name Tool interface (malloc wrapper family) */
    /// @{
    VirtAddr toolAlloc(std::size_t size, const ShadowStack &stack,
                       std::uint64_t site_tag) override;
    VirtAddr toolCalloc(std::size_t count, std::size_t size,
                        const ShadowStack &stack,
                        std::uint64_t site_tag) override;
    VirtAddr toolRealloc(VirtAddr addr, std::size_t new_size,
                         const ShadowStack &stack,
                         std::uint64_t site_tag) override;
    void toolFree(VirtAddr addr) override;
    void finish() override;
    /// @}

    /** @return the leak detector (reports, Figure 3 data). */
    const LeakDetector &leakDetector() const;

    /** @return the corruption detector (reports, Table 4 data). */
    const CorruptionDetector &corruptionDetector() const;

    /** @return the active configuration. */
    const SafeMemConfig &config() const { return config_; }

  protected:
    /** App CPU time: cycles charged to the application bucket. */
    Cycles cpuNow() const;

    // Protected rather than private so SampledSafeMemTool can route
    // unsampled traffic straight to the allocator while reusing the
    // detectors, the backend wiring and the cost accounting.
    Machine &machine_;
    HeapAllocator &allocator_;
    WatchBackend &backend_;
    SafeMemConfig config_;
    std::unique_ptr<LeakDetector> leak_;
    std::unique_ptr<CorruptionDetector> corruption_;
};

} // namespace safemem
