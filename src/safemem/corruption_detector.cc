#include "safemem/corruption_detector.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "trace/trace.h"

namespace safemem {

CorruptionDetector::CorruptionDetector(const SafeMemConfig &config,
                                       WatchBackend &backend,
                                       HeapAllocator &allocator,
                                       Machine &machine,
                                       std::function<Cycles()> cpu_now)
    : config_(config), backend_(backend), allocator_(allocator),
      machine_(machine), cpuNow_(std::move(cpu_now))
{
}

VirtAddr
CorruptionDetector::rearGuardAddr(const Buffer &buffer) const
{
    return buffer.userAddr + buffer.bodyBytes;
}

VirtAddr
CorruptionDetector::allocate(std::size_t size, std::uint64_t site_tag)
{
    std::size_t granule = backend_.granule();
    std::size_t guard_bytes = config_.paddingGranules * granule;
    std::size_t body_bytes = alignUp(std::max<std::size_t>(size, 1),
                                     granule);
    std::size_t total = guard_bytes + body_bytes + guard_bytes;

    VirtAddr base = allocator_.allocate(total, granule);
    onBlockRecycled(base);

    Buffer buffer;
    buffer.base = base;
    buffer.userAddr = base + guard_bytes;
    buffer.size = size;
    buffer.bodyBytes = body_bytes;
    buffer.siteTag = site_tag;

    backend_.watch(base, guard_bytes, WatchKind::GuardFront,
                   buffer.userAddr);
    buffer.frontWatched = true;
    backend_.watch(rearGuardAddr(buffer), guard_bytes,
                   WatchKind::GuardRear, buffer.userAddr);
    buffer.rearWatched = true;

    if (config_.detectUninitializedReads) {
        // Extension (§4): watch the fresh body; the first write retires
        // the watch, a first read is an uninitialised-read bug.
        backend_.watch(buffer.userAddr, body_bytes,
                       WatchKind::UninitBuffer, buffer.userAddr);
        buffer.uninitWatched = true;
    }

    userBytes_ += size;
    wasteBytes_ += allocator_.blockCapacity(base) - size;
    stats_.add(CorruptionStat::BuffersGuarded);

    VirtAddr user = buffer.userAddr;
    live_.emplace(user, buffer);
    return user;
}

void
CorruptionDetector::onBlockRecycled(VirtAddr base)
{
    // If the allocator recycled a block whose freed body is still being
    // watched, reallocation disables that monitoring (§4).
    auto freed_it = freedByBase_.find(base);
    if (freed_it == freedByBase_.end())
        return;
    if (freed_it->second.bodyWatched &&
        backend_.isWatched(freed_it->second.buffer.userAddr))
        backend_.unwatch(freed_it->second.buffer.userAddr);
    freedByBase_.erase(freed_it);
    stats_.add(CorruptionStat::FreedWatchesRecycled);
}

bool
CorruptionDetector::deallocate(VirtAddr user_addr)
{
    auto it = live_.find(user_addr);
    if (it == live_.end())
        return false;
    Buffer buffer = it->second;
    live_.erase(it);

    if (buffer.frontWatched && backend_.isWatched(buffer.base))
        backend_.unwatch(buffer.base);
    if (buffer.rearWatched && backend_.isWatched(rearGuardAddr(buffer)))
        backend_.unwatch(rearGuardAddr(buffer));
    if (buffer.uninitWatched && backend_.isWatched(buffer.userAddr)) {
        // Never written *or* read; the freed-body watch takes over.
        backend_.unwatch(buffer.userAddr);
        stats_.add(CorruptionStat::UninitWatchesExpired);
    }

    // Watch the freed body to catch dangling accesses (§4).
    FreedBuffer freed;
    freed.buffer = buffer;
    backend_.watch(buffer.userAddr, buffer.bodyBytes,
                   WatchKind::FreedBuffer, buffer.userAddr);
    freed.bodyWatched = true;

    if (allocator_.isSlabBacked(buffer.base)) {
        // The block returns to the allocator's free list; the watch is
        // lifted when this exact block is handed out again.
        allocator_.deallocate(buffer.base);
    } else {
        // Large direct-mapped block: returning it would unmap watched,
        // pinned pages, so quarantine it until the end of the run.
        freed.quarantined = true;
        stats_.add(CorruptionStat::LargeBlocksQuarantined);
    }

    freedByBase_.emplace(buffer.base, freed);
    stats_.add(CorruptionStat::BuffersReleased);
    return true;
}

VirtAddr
CorruptionDetector::reallocate(VirtAddr user_addr, std::size_t new_size,
                               std::uint64_t site_tag)
{
    if (user_addr == 0)
        return allocate(new_size, site_tag);
    auto it = live_.find(user_addr);
    if (it == live_.end())
        panic("CorruptionDetector: realloc of unknown buffer ", user_addr);
    std::size_t old_size = it->second.size;

    VirtAddr fresh = allocate(new_size, site_tag);
    std::vector<std::uint8_t> copy(std::min(old_size, new_size));
    if (!copy.empty()) {
        machine_.read(user_addr, copy.data(), copy.size());
        machine_.write(fresh, copy.data(), copy.size());
    }
    deallocate(user_addr);
    return fresh;
}

bool
CorruptionDetector::owns(VirtAddr user_addr) const
{
    return live_.count(user_addr) != 0;
}

std::size_t
CorruptionDetector::userSize(VirtAddr user_addr) const
{
    auto it = live_.find(user_addr);
    if (it == live_.end())
        panic("CorruptionDetector: userSize of unknown buffer ",
              user_addr);
    return it->second.size;
}

void
CorruptionDetector::emitReport(CorruptionKind kind, const Buffer &buffer,
                               VirtAddr fault_addr)
{
    CorruptionReport report;
    report.kind = kind;
    report.userAddr = buffer.userAddr;
    report.faultAddr = fault_addr;
    report.objectSize = buffer.size;
    report.siteTag = buffer.siteTag;
    report.reportTime = cpuNow_();
    reports_.push_back(report);
    stats_.add(CorruptionStat::CorruptionReports);
    SAFEMEM_TRACE_EMIT(machine_.trace(), TraceEvent::CorruptionReported,
                       machine_.clock().now(), fault_addr, buffer.userAddr,
                       static_cast<std::uint64_t>(kind));
}

void
CorruptionDetector::onWatchFault(VirtAddr base, WatchKind kind,
                                 std::uint64_t cookie, VirtAddr fault_addr,
                                 bool is_write)
{
    // cookie carries the buffer's user address for every kind.
    (void)base;
    switch (kind) {
      case WatchKind::UninitBuffer: {
        auto it = live_.find(cookie);
        if (it == live_.end())
            panic("CorruptionDetector: uninit fault for unknown buffer ",
                  cookie);
        it->second.uninitWatched = false;
        if (is_write) {
            // First write: expected initialisation, retire silently.
            stats_.add(CorruptionStat::UninitWatchesRetired);
        } else {
            emitReport(CorruptionKind::UninitializedRead, it->second,
                       fault_addr);
        }
        break;
      }
      case WatchKind::GuardFront:
      case WatchKind::GuardRear: {
        auto it = live_.find(cookie);
        if (it == live_.end())
            panic("CorruptionDetector: guard fault for unknown buffer ",
                  cookie);
        Buffer &buffer = it->second;
        if (kind == WatchKind::GuardFront) {
            buffer.frontWatched = false;
            emitReport(CorruptionKind::UnderflowPadding, buffer,
                       fault_addr);
        } else {
            buffer.rearWatched = false;
            emitReport(CorruptionKind::OverflowPadding, buffer,
                       fault_addr);
        }
        // The paper pauses here so a debugger can attach; in the
        // reproduction we record the bug and let the run continue.
        break;
      }
      case WatchKind::FreedBuffer: {
        std::size_t guard_bytes =
            config_.paddingGranules * backend_.granule();
        auto it = freedByBase_.find(cookie - guard_bytes);
        if (it == freedByBase_.end())
            panic("CorruptionDetector: freed-buffer fault for unknown "
                  "buffer ", cookie);
        it->second.bodyWatched = false;
        emitReport(CorruptionKind::UseAfterFree, it->second.buffer,
                   fault_addr);
        break;
      }
      case WatchKind::LeakSuspect:
        panic("CorruptionDetector: received a leak-suspect fault");
    }
}

void
CorruptionDetector::finish()
{
    // Drop guard watches of still-live buffers.
    for (auto &[user, buffer] : live_) {
        if (buffer.frontWatched && backend_.isWatched(buffer.base))
            backend_.unwatch(buffer.base);
        if (buffer.rearWatched &&
            backend_.isWatched(rearGuardAddr(buffer)))
            backend_.unwatch(rearGuardAddr(buffer));
        buffer.frontWatched = buffer.rearWatched = false;
    }

    // Drop freed-body watches and flush the quarantine.
    for (auto &[base, freed] : freedByBase_) {
        if (freed.bodyWatched &&
            backend_.isWatched(freed.buffer.userAddr))
            backend_.unwatch(freed.buffer.userAddr);
        freed.bodyWatched = false;
        if (freed.quarantined)
            allocator_.deallocate(freed.buffer.base);
    }
    freedByBase_.clear();
}

} // namespace safemem
