/**
 * @file
 * SampledSafeMem: GWP-ASan-style sampled monitoring over the SafeMem
 * detectors.
 *
 * The full tool intercepts every allocation; at fleet scale that is the
 * overhead the paper's Table 3 pays on every machine. GWP-ASan's
 * observation is that across a large fleet a *tiny* sample rate still
 * catches production bugs, because the same bug fires on many machines —
 * so this tool admits each allocation into the leak/corruption detectors
 * with probability SafeMemConfig::sampleRate and routes everything else
 * straight to the allocator at zero monitoring cost.
 *
 * Sampling decisions are a pure function of (sampleSeed, pid, allocation
 * ordinal): no shared RNG stream, no dependence on scheduling or worker
 * count, so sampled runs keep the repo's bit-identical-results contract.
 *
 * Because most objects are unsampled, every interposition path must cope
 * with objects the detectors never saw: frees fall through to the
 * allocator, reallocs move objects across the sampled/unsampled boundary
 * (watch drop/establish, site-tag propagation), and recycled blocks must
 * clear any stale freed-body watch (CorruptionDetector::onBlockRecycled).
 */

#pragma once

#include "os/process.h"
#include "safemem/safemem.h"

namespace safemem {

/** Slot indices into the sampling StatSet; order matches kSampledStatNames. */
enum class SampledStat : std::size_t
{
    SampledAllocs,
    UnsampledAllocs,
    SampledFrees,
    UnsampledFrees,
    ReallocStaySampled,
    ReallocDropSample,
    ReallocGainSample,
    ReallocStayUnsampled,
};

/** Report/snapshot names for SampledStat, in enumerator order. */
inline constexpr const char *kSampledStatNames[] = {
    "sampled_allocs",
    "unsampled_allocs",
    "sampled_frees",
    "unsampled_frees",
    "realloc_stay_sampled",
    "realloc_drop_sample",
    "realloc_gain_sample",
    "realloc_stay_unsampled",
};

class SampledSafeMemTool : public SafeMemTool
{
  public:
    /**
     * @param pid the owning process, mixed into every sampling decision
     *            so consolidated tenants sample independent streams.
     * Other parameters as SafeMemTool; config.sampleRate/sampleSeed
     * control the sampling.
     */
    SampledSafeMemTool(Machine &machine, HeapAllocator &allocator,
                       WatchBackend &backend, SafeMemConfig config,
                       Pid pid);

    VirtAddr toolAlloc(std::size_t size, const ShadowStack &stack,
                       std::uint64_t site_tag) override;
    VirtAddr toolRealloc(VirtAddr addr, std::size_t new_size,
                         const ShadowStack &stack,
                         std::uint64_t site_tag) override;
    void toolFree(VirtAddr addr) override;

    /**
     * The sampling function itself, exposed for tests: admit allocation
     * number @p ordinal of process @p pid with probability @p rate.
     * Deterministic — same arguments, same verdict, on any thread.
     */
    static bool sampleDecision(std::uint64_t seed, Pid pid,
                               std::uint64_t ordinal, double rate);

    /** @return allocations decided so far (the ordinal counter). */
    std::uint64_t allocationOrdinal() const { return ordinal_; }

    /** @return sampling statistics (sampled/unsampled traffic split). */
    const StatSet &samplingStats() const { return stats_; }

  private:
    /** Decide the next allocation ordinal's fate. */
    bool nextSampled();

    /** Copy min(old,new) bytes through the machine (charged, observable). */
    void copyContents(VirtAddr from, VirtAddr to, std::size_t old_size,
                      std::size_t new_size);

    Pid pid_;
    std::uint64_t ordinal_ = 0;
    StatSet stats_{kSampledStatNames};
};

} // namespace safemem
