/**
 * @file
 * Tunable parameters of the SafeMem runtime.
 *
 * All times are in application CPU cycles (the paper's lifetime analysis
 * explicitly uses the monitored program's CPU time, §3), so tool overhead
 * and idle gaps between requests do not distort lifetimes.
 */

#pragma once

#include <cstdint>

#include "common/types.h"

namespace safemem {

struct SafeMemConfig
{
    /** Enable the §3 memory-leak detector (ML). */
    bool detectLeaks = true;

    /** Enable the §4 memory-corruption detector (MC). */
    bool detectCorruption = true;

    /**
     * Extension sketched in §4: watch each new buffer so the first
     * *read* before any write is reported as an uninitialised read;
     * the first write retires the watch silently. Off by default (not
     * part of the paper's evaluated prototype).
     */
    bool detectUninitializedReads = false;

    /**
     * Minimum app-CPU time between outlier-detection passes; detection
     * runs only at allocation/deallocation time once this has elapsed
     * (paper §3.2.2 "checking-period").
     */
    Cycles checkingPeriod = 500'000;

    /** No detection at all before this much app CPU time has passed.
     *  Must comfortably exceed program start-up plus aleakRecentWindow
     *  so init-time pools are never mistaken for growing groups. */
    Cycles warmupTime = 15'000'000;

    /**
     * A freed object's lifetime within this factor of the group maximum
     * keeps the maximum "stable"; beyond it the maximum is raised and
     * stable time resets (paper §3.2.1 "tolerable range").
     */
    double lifetimeTolerance = 1.25;

    /** SLeak: suspect objects alive longer than this multiple of the
     *  group's expected maximal lifetime (paper uses 2x). */
    double sleakLifetimeMultiplier = 2.0;

    /** SLeak: required stable time of the group maximum before outliers
     *  are trusted (paper §3.2.2 condition 2). */
    Cycles minStableTime = 24'000'000;

    /** SLeak: only the oldest few objects per group are examined, since
     *  the live list is allocation-ordered (paper §3.2.2). */
    std::uint32_t sleakTopK = 4;

    /** ALeak: live-object count a never-freed group must exceed. */
    std::uint32_t aleakLiveThreshold = 64;

    /** ALeak: the group must have allocated within this window to count
     *  as "still growing" (paper §3.2.2). */
    Cycles aleakRecentWindow = 10'000'000;

    /** ALeak: how many of the group's oldest objects to watch. */
    std::uint32_t aleakWatchCount = 2;

    /** A watched suspect untouched this long is reported as a leak
     *  (paper §3.2.3 "threshold of time"). */
    Cycles leakReportThreshold = 12'000'000;

    /** After a suspect of a group proves false, leave the group alone
     *  for this long before re-suspecting. */
    Cycles suspectCooldown = 5'000'000;

    /** Guard padding on each side of a buffer, in watch granules
     *  (paper §4 uses one cache line per end). */
    std::uint32_t paddingGranules = 1;

    /** @name Sampled monitoring (SampledSafeMemTool only)
     * Every allocation's fate is a pure function of
     * (sampleSeed, pid, allocation ordinal), so sampled runs stay
     * bit-identical for any worker count. The full-interception
     * SafeMemTool ignores both fields. */
    /// @{

    /** Fraction of allocations admitted into the detectors; 1.0 monitors
     *  everything (detection-equivalent to full SafeMem). */
    double sampleRate = 1.0;

    /** Seed the per-allocation sampling decisions derive from. */
    std::uint64_t sampleSeed = 0;
    /// @}
};

} // namespace safemem
