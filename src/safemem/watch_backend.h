/**
 * @file
 * Abstraction over the two memory-watch mechanisms the paper compares:
 * ECC protection (cache-line granularity) and page protection (mprotect,
 * page granularity). The detectors are written against this interface so
 * the Table 2/4 comparisons run the *same* detection logic over both
 * mechanisms, differing only in granularity and cost.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "common/stats.h"
#include "common/types.h"

namespace safemem {

/** Why a region is being watched; reported back on faults. */
enum class WatchKind : std::uint8_t
{
    LeakSuspect, ///< §3.2.3 false-positive pruning
    GuardFront,  ///< §4 padding before a buffer
    GuardRear,   ///< §4 padding after a buffer
    FreedBuffer, ///< §4 freed-memory watch
    UninitBuffer ///< §4 extension: unwritten allocation watch
};

/**
 * Callback invoked on the first access to a watched region.
 *
 * @param base       base address of the watched region
 * @param kind       why the region was watched
 * @param cookie     opaque value supplied at watch time
 * @param fault_addr watch-granule address of the offending access
 * @param is_write   the faulting access was a store
 *
 * By the time the callback runs, the backend has already removed the
 * watch on the region (both mechanisms only need the *first* access,
 * paper §2.2.1), so the faulting access can restart cleanly.
 */
using WatchFaultCallback = std::function<void(
    VirtAddr base, WatchKind kind, std::uint64_t cookie,
    VirtAddr fault_addr, bool is_write)>;

class WatchBackend
{
  public:
    virtual ~WatchBackend() = default;

    /** Watch granule in bytes: 64 for ECC, 4096 for page protection. */
    virtual std::size_t granule() const = 0;

    /** Install the fault callback. */
    virtual void setFaultCallback(WatchFaultCallback callback) = 0;

    /**
     * Watch a granule-aligned region.
     * @param cookie opaque value echoed to the fault callback.
     */
    virtual void watch(VirtAddr base, std::size_t size, WatchKind kind,
                       std::uint64_t cookie) = 0;

    /** Remove the watch on the region based at @p base (must exist). */
    virtual void unwatch(VirtAddr base) = 0;

    /** @return true when a region based at @p base is watched. */
    virtual bool isWatched(VirtAddr base) const = 0;

    /** @return number of currently watched regions. */
    virtual std::size_t regionCount() const = 0;

    /** @return bytes currently consumed by watches (for Table 4). */
    virtual std::uint64_t watchedBytes() const = 0;

    /** @return backend statistics. */
    virtual const StatSet &stats() const = 0;
};

} // namespace safemem
