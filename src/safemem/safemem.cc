#include "safemem/safemem.h"

#include <vector>

#include "common/costs.h"
#include "common/logging.h"
#include "safemem/callstack.h"

namespace safemem {

SafeMemTool::SafeMemTool(Machine &machine, HeapAllocator &allocator,
                         WatchBackend &backend, SafeMemConfig config)
    : machine_(machine), allocator_(allocator), backend_(backend),
      config_(config)
{
    auto cpu_now = [this] { return cpuNow(); };

    if (config_.detectLeaks)
        leak_ = std::make_unique<LeakDetector>(
            config_, backend_, cpu_now,
            [this](Cycles cycles) { machine_.clock().advance(cycles); },
            machine_.trace(),
            [this] { return machine_.clock().now(); });
    if (config_.detectCorruption)
        corruption_ = std::make_unique<CorruptionDetector>(
            config_, backend_, allocator_, machine_, cpu_now);

    backend_.setFaultCallback(
        [this](VirtAddr base, WatchKind kind, std::uint64_t cookie,
               VirtAddr fault_addr, bool is_write) {
            if (kind == WatchKind::LeakSuspect) {
                if (!leak_)
                    panic("SafeMemTool: leak fault with ML disabled");
                leak_->onSuspectAccessed(base);
            } else {
                if (!corruption_)
                    panic("SafeMemTool: corruption fault with MC "
                          "disabled");
                corruption_->onWatchFault(base, kind, cookie, fault_addr,
                                          is_write);
            }
        });
}

SafeMemTool::~SafeMemTool() = default;

Cycles
SafeMemTool::cpuNow() const
{
    return machine_.clock().charged(CostCenter::Application);
}

VirtAddr
SafeMemTool::toolAlloc(std::size_t size, const ShadowStack &stack,
                       std::uint64_t site_tag)
{
    VirtAddr user;
    if (corruption_) {
        CostScope scope(machine_.clock(), CostCenter::ToolCorruption);
        machine_.clock().advance(kWrapperEventCycles);
        user = corruption_->allocate(size, site_tag);
    } else if (leak_) {
        // Leak monitoring alone still needs watchable (granule-aligned)
        // buffers, at the price of alignment waste only.
        user = allocator_.allocate(size, backend_.granule());
    } else {
        user = allocator_.allocate(size);
    }

    if (leak_) {
        CostScope scope(machine_.clock(), CostCenter::ToolLeak);
        machine_.clock().advance(kWrapperEventCycles);
        leak_->onAlloc(user, size, callStackSignature(stack), site_tag);
    }
    return user;
}

VirtAddr
SafeMemTool::toolCalloc(std::size_t count, std::size_t size,
                        const ShadowStack &stack, std::uint64_t site_tag)
{
    std::size_t bytes = count * size;
    VirtAddr user = toolAlloc(bytes, stack, site_tag);
    std::vector<std::uint8_t> zeros(bytes, 0);
    machine_.write(user, zeros.data(), zeros.size());
    return user;
}

VirtAddr
SafeMemTool::toolRealloc(VirtAddr addr, std::size_t new_size,
                         const ShadowStack &stack, std::uint64_t site_tag)
{
    if (addr == 0)
        return toolAlloc(new_size, stack, site_tag);

    if (leak_) {
        CostScope scope(machine_.clock(), CostCenter::ToolLeak);
        machine_.clock().advance(kWrapperEventCycles);
        leak_->onFree(addr);
    }

    VirtAddr fresh;
    if (corruption_) {
        CostScope scope(machine_.clock(), CostCenter::ToolCorruption);
        machine_.clock().advance(kWrapperEventCycles);
        fresh = corruption_->reallocate(addr, new_size, site_tag);
    } else if (leak_) {
        // ML-only buffers must stay granule-aligned across a move, or a
        // later suspect watch on the reallocated object would fault the
        // backend's alignment check.
        fresh = allocator_.reallocate(addr, new_size, backend_.granule());
    } else {
        fresh = allocator_.reallocate(addr, new_size);
    }

    if (leak_) {
        CostScope scope(machine_.clock(), CostCenter::ToolLeak);
        leak_->onAlloc(fresh, new_size, callStackSignature(stack),
                       site_tag);
    }
    return fresh;
}

void
SafeMemTool::toolFree(VirtAddr addr)
{
    if (leak_) {
        CostScope scope(machine_.clock(), CostCenter::ToolLeak);
        machine_.clock().advance(kWrapperEventCycles);
        leak_->onFree(addr);
    }
    bool released = false;
    if (corruption_) {
        CostScope scope(machine_.clock(), CostCenter::ToolCorruption);
        machine_.clock().advance(kWrapperEventCycles);
        released = corruption_->deallocate(addr);
    }
    // A buffer the corruption detector never guarded (sampled runs)
    // goes straight back; a genuinely bogus free still panics there.
    if (!released)
        allocator_.deallocate(addr);
}

void
SafeMemTool::finish()
{
    if (leak_) {
        CostScope scope(machine_.clock(), CostCenter::ToolLeak);
        leak_->finish();
    }
    if (corruption_) {
        CostScope scope(machine_.clock(), CostCenter::ToolCorruption);
        corruption_->finish();
    }
}

const LeakDetector &
SafeMemTool::leakDetector() const
{
    if (!leak_)
        panic("SafeMemTool: leak detection is disabled");
    return *leak_;
}

const CorruptionDetector &
SafeMemTool::corruptionDetector() const
{
    if (!corruption_)
        panic("SafeMemTool: corruption detection is disabled");
    return *corruption_;
}

} // namespace safemem
