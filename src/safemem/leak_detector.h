/**
 * @file
 * The memory-leak detector (paper §3).
 *
 * Three-step pipeline, all driven from allocation/deallocation events —
 * never from individual memory accesses:
 *
 *  1. collect per-group memory-usage behaviour (§3.2.1);
 *  2. detect outliers: ALeak groups that only ever grow, and SLeak
 *     objects that outlive their group's stable maximal lifetime
 *     (§3.2.2);
 *  3. watch suspects with the backend; a first access prunes the false
 *     positive, prolonged silence becomes a leak report (§3.2.3).
 *
 * All times are application CPU cycles supplied by the cpu_now callback.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "safemem/config.h"
#include "safemem/object_group.h"
#include "safemem/report.h"
#include "safemem/watch_backend.h"

namespace safemem {

class Trace;

/** Slot indices into the leak detector StatSet; order matches kLeakStatNames. */
enum class LeakStat : std::size_t
{
    GroupsCreated,
    AllocsTracked,
    SuspectsFreed,
    FreesTracked,
    DetectionPasses,
    AleakSuspicions,
    SleakSuspicions,
    SuspectsWatched,
    SuspectsPruned,
    LeaksReported,
};

/** Report/snapshot names for LeakStat, in enumerator order. */
inline constexpr const char *kLeakStatNames[] = {
    "groups_created",
    "allocs_tracked",
    "suspects_freed",
    "frees_tracked",
    "detection_passes",
    "aleak_suspicions",
    "sleak_suspicions",
    "suspects_watched",
    "suspects_pruned",
    "leaks_reported",
};

class LeakDetector
{
  public:
    /** Cookie namespace for this detector's watches. */
    static constexpr std::uint64_t kCookie = 0x4c454b; // "LEK"

    /**
     * @param cpu_now   returns the application CPU time
     * @param charge    bills detector work to the tool's cost center;
     *                  may be null (unit tests)
     * @param trace     per-run flight recorder; may be null
     * @param trace_now wall timestamp source for trace records (the
     *                  machine clock); falls back to cpu_now when null
     */
    LeakDetector(const SafeMemConfig &config, WatchBackend &backend,
                 std::function<Cycles()> cpu_now,
                 std::function<void(Cycles)> charge = nullptr,
                 Trace *trace = nullptr,
                 std::function<Cycles()> trace_now = nullptr);
    ~LeakDetector();

    LeakDetector(const LeakDetector &) = delete;
    LeakDetector &operator=(const LeakDetector &) = delete;

    /** Record an allocation (wrapped malloc/calloc/realloc). */
    void onAlloc(VirtAddr addr, std::size_t size, std::uint64_t signature,
                 std::uint64_t site_tag);

    /**
     * Record a deallocation. An address the detector never saw (a
     * sampled tool admits only a fraction of allocations) is a cheap
     * no-op: no stat moves, no group changes.
     * @return true when @p addr was a tracked object.
     */
    bool onFree(VirtAddr addr);

    /** @return true when @p addr is a tracked live object. */
    bool tracksObject(VirtAddr addr) const;

    /** Watch-backend fault: the suspect based at @p base was accessed. */
    void onSuspectAccessed(VirtAddr base);

    /** Final sweep at program end: overdue suspects become reports. */
    void finish();

    /** @return leak reports emitted so far. */
    const std::vector<LeakReport> &reports() const { return reports_; }

    /**
     * @return one entry per group that was ever suspected — what the
     * detector would have reported with no ECC pruning (Table 5's
     * "before" column).
     */
    std::vector<LeakReport> suspectedGroupReports() const;

    /** @return count of suspect objects whose access pruned them. */
    std::uint64_t prunedSuspects() const { return prunedSuspects_; }

    /**
     * Figure 3 data: (group, warm-up time) for every group with at least
     * one deallocation. Warm-up time is the app CPU time at which the
     * group's maximal lifetime last changed.
     */
    struct GroupStability
    {
        GroupKey key;
        Cycles warmUpTime = 0;
    };
    std::vector<GroupStability> stabilityData() const;

    /** @return detector statistics. */
    const StatSet &stats() const { return stats_; }

  private:
    ObjectGroup &groupFor(std::uint64_t size, std::uint64_t signature);

    /** Run the §3.2.2 outlier pass when the checking period elapsed. */
    void maybeRunDetection();

    void detectALeak(ObjectGroup &group, Cycles now);
    void detectSLeak(ObjectGroup &group, Cycles now);

    /** Place a suspect watch over @p object. */
    void watchSuspect(LiveObject &object, Cycles now);

    /** Remove the suspect watch from @p object (if any). */
    void unwatchSuspect(LiveObject &object);

    /** Turn an overdue suspect into a leak report. */
    void reportLeak(LiveObject &object, Cycles now);

    /** Timestamp for trace records (trace_now, else cpu_now). */
    Cycles traceNow() const;

    const SafeMemConfig &config_;
    WatchBackend &backend_;
    std::function<Cycles()> cpuNow_;
    std::function<void(Cycles)> charge_;
    Trace *trace_;
    std::function<Cycles()> traceNow_;

    std::unordered_map<GroupKey, std::unique_ptr<ObjectGroup>,
                       GroupKeyHash> groups_;
    std::unordered_map<VirtAddr, std::unique_ptr<LiveObject>> objects_;
    /** Currently watched suspects, keyed by object base address. */
    std::unordered_map<VirtAddr, LiveObject *> suspects_;

    Cycles lastCheck_ = 0;
    Cycles startTime_ = 0;
    bool sawFirstEvent_ = false;

    std::vector<LeakReport> reports_;
    std::uint64_t prunedSuspects_ = 0;
    StatSet stats_{kLeakStatNames};
};

} // namespace safemem
