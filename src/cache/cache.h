/**
 * @file
 * Set-associative, write-back, write-allocate data cache.
 *
 * The cache is the reason ECC watchpoints work at all: ECC codes are only
 * checked when the memory controller services a line fill, so WatchMemory
 * must flush a line before watching it (paper §2.2.2, "Dealing with Cache
 * Effects"), and a *write* to an uncached watched line still faults because
 * write-allocate performs a read-for-ownership fill first.
 *
 * The cache holds real data: fills decode through the controller, hits are
 * served locally (never re-checking ECC — the "cache filtering effect"),
 * and dirty evictions re-encode check bytes on writeback.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/memory_controller.h"

namespace safemem {

/** Geometry of the simulated data cache. */
struct CacheConfig
{
    std::size_t sets = 256; ///< number of sets
    std::size_t ways = 8;   ///< associativity
};

class Cache
{
  public:
    Cache(MemoryController &controller, CycleClock &clock,
          CacheConfig config = {});

    /**
     * Read @p size bytes at physical address @p addr (must not cross a
     * line boundary).
     *
     * @return false when the required line fill hit an uncorrectable ECC
     *         error; the interrupt handler has already run and the caller
     *         should retry.
     */
    bool read(PhysAddr addr, void *out, std::size_t size);

    /** Write counterpart of read(); write-allocate, so misses fill. */
    bool write(PhysAddr addr, const void *in, std::size_t size);

    /**
     * Write back (if dirty) and invalidate the line at @p line_addr.
     * The clflush analog used by WatchMemory.
     */
    void flushLine(PhysAddr line_addr);

    /** Flush every valid line. */
    void flushAll();

    /** @return true when @p line_addr currently resides in the cache. */
    bool contains(PhysAddr line_addr) const;

    /**
     * SimCheck deep audit: set placement, duplicate residency, LRU stamp
     * sanity. No-op when auditing is disabled; called periodically by the
     * Machine and directly by tests.
     */
    void auditResidency() const;

    /** @return cache statistics (hits, misses, writebacks...). */
    const StatSet &stats() const { return stats_; }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        PhysAddr lineAddr = 0;
        std::uint64_t lastUse = 0;
        LineData data{};
    };

    std::size_t setIndex(PhysAddr line_addr) const;

    /** Locate @p line_addr in its set; nullptr on miss. */
    Way *lookup(PhysAddr line_addr);
    const Way *lookup(PhysAddr line_addr) const;

    /**
     * Ensure @p line_addr is resident, filling (and evicting) as needed.
     * @return the resident way, or nullptr when the fill faulted.
     */
    Way *ensureResident(PhysAddr line_addr);

    MemoryController &controller_;
    CycleClock &clock_;
    CacheConfig config_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t useCounter_ = 0;
    StatSet stats_;
};

} // namespace safemem
