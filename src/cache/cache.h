/**
 * @file
 * Set-associative, write-back, write-allocate data cache.
 *
 * The cache is the reason ECC watchpoints work at all: ECC codes are only
 * checked when the memory controller services a line fill, so WatchMemory
 * must flush a line before watching it (paper §2.2.2, "Dealing with Cache
 * Effects"), and a *write* to an uncached watched line still faults because
 * write-allocate performs a read-for-ownership fill first.
 *
 * The cache holds real data: fills decode through the controller, hits are
 * served locally (never re-checking ECC — the "cache filtering effect"),
 * and dirty evictions re-encode check bytes on writeback.
 *
 * The hit path is deliberately header-inline: a resident-line access is a
 * tag scan, one clock advance, one slot-counter increment and a memcpy,
 * with no out-of-line call. Misses, flushes and audits live in cache.cc.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/clock.h"
#include "common/costs.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/memory_controller.h"

namespace safemem {

class Trace;

/** Geometry of the simulated data cache. */
struct CacheConfig
{
    std::size_t sets = 256; ///< number of sets
    std::size_t ways = 8;   ///< associativity
};

/** Slot indices into the cache StatSet; order matches kCacheStatNames. */
enum class CacheStat : std::size_t
{
    Hits,
    Misses,
    Writebacks,
    FaultedFills,
    Flushes,
    /** Evictions where the victim was filled by a different process —
     *  the consolidation contention signal (stays 0, and therefore out
     *  of stat snapshots, on single-process machines). */
    CrossProcEvictions,
};

/** Report/snapshot names for CacheStat, in enumerator order. */
inline constexpr const char *kCacheStatNames[] = {
    "hits",    "misses",          "writebacks",
    "faulted_fills", "flushes", "cross_proc_evictions",
};

class Cache
{
  public:
    Cache(MemoryController &controller, CycleClock &clock,
          CacheConfig config = {}, Trace *trace = nullptr);

    /** Dirty writebacks / flushes are traced once per this many. */
    static constexpr std::uint64_t kTraceSampleInterval = 64;

    /**
     * Read @p size bytes at physical address @p addr (must not cross a
     * line boundary).
     *
     * @return false when the required line fill hit an uncorrectable ECC
     *         error; the interrupt handler has already run and the caller
     *         should retry.
     */
    bool
    read(PhysAddr addr, void *out, std::size_t size)
    {
        PhysAddr line_addr = alignDown(addr, kCacheLineSize);
        if (addr + size > line_addr + kCacheLineSize)
            panic("Cache::read crosses a line boundary at ", addr);
        if (Way *way = lookup(line_addr)) {
            touchHit(*way);
            std::memcpy(out, way->data.data() + (addr - line_addr), size);
            return true;
        }
        return readMiss(line_addr, addr, out, size);
    }

    /** Write counterpart of read(); write-allocate, so misses fill. */
    bool
    write(PhysAddr addr, const void *in, std::size_t size)
    {
        PhysAddr line_addr = alignDown(addr, kCacheLineSize);
        if (addr + size > line_addr + kCacheLineSize)
            panic("Cache::write crosses a line boundary at ", addr);
        if (Way *way = lookup(line_addr)) {
            touchHit(*way);
            std::memcpy(way->data.data() + (addr - line_addr), in, size);
            way->dirty = true;
            return true;
        }
        return writeMiss(line_addr, addr, in, size);
    }

    /**
     * Read a span that may cross line boundaries, touching each line once.
     * @return bytes copied before a faulted fill stopped the span (equal
     *         to @p size when no fill faulted). The caller retries from
     *         @p addr + the returned count after the handler has run.
     */
    std::size_t readBlock(PhysAddr addr, void *out, std::size_t size);

    /** Write counterpart of readBlock(). */
    std::size_t writeBlock(PhysAddr addr, const void *in, std::size_t size);

    /**
     * Write back (if dirty) and invalidate the line at @p line_addr.
     * The clflush analog used by WatchMemory.
     */
    void flushLine(PhysAddr line_addr);

    /**
     * Flush every valid line, with the same per-line cycle and counter
     * accounting as flushLine() over each resident line.
     */
    void flushAll();

    /** @return true when @p line_addr currently resides in the cache. */
    bool contains(PhysAddr line_addr) const;

    /**
     * SimCheck deep audit: set placement, duplicate residency, LRU stamp
     * sanity. No-op when auditing is disabled; called periodically by the
     * Machine and directly by tests.
     */
    void auditResidency() const;

    /** @return cache statistics (hits, misses, writebacks...). */
    const StatSet &stats() const { return stats_; }

    /** Tag subsequent fills with the running process (the kernel's
     *  context-switch path calls this) so evictions can tell whether the
     *  victim belonged to someone else. */
    void setCurrentPid(std::uint32_t pid) { currentPid_ = pid; }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        PhysAddr lineAddr = 0;
        std::uint64_t lastUse = 0;
        std::uint32_t ownerPid = 0; ///< process whose access filled it
        LineData data{};
    };

    std::size_t
    setIndex(PhysAddr line_addr) const
    {
        return (line_addr / kCacheLineSize) % config_.sets;
    }

    /** Locate @p line_addr in its set; nullptr on miss. */
    Way *
    lookup(PhysAddr line_addr)
    {
        for (Way &way : sets_[setIndex(line_addr)]) {
            if (way.valid && way.lineAddr == line_addr)
                return &way;
        }
        return nullptr;
    }

    const Way *
    lookup(PhysAddr line_addr) const
    {
        for (const Way &way : sets_[setIndex(line_addr)]) {
            if (way.valid && way.lineAddr == line_addr)
                return &way;
        }
        return nullptr;
    }

    /** Hit bookkeeping: latency, counter, LRU stamp. */
    void
    touchHit(Way &way)
    {
        clock_.advance(kCacheHitCycles);
        stats_.add(CacheStat::Hits);
        way.lastUse = ++useCounter_;
    }

    /** Out-of-line miss paths: fill (evicting as needed), then copy. */
    bool readMiss(PhysAddr line_addr, PhysAddr addr, void *out,
                  std::size_t size);
    bool writeMiss(PhysAddr line_addr, PhysAddr addr, const void *in,
                   std::size_t size);

    /**
     * Fill @p line_addr into a victim way.
     * @return the filled way, or nullptr when the fill faulted.
     */
    Way *fillLine(PhysAddr line_addr);

    /** Sampled trace emits (out of line: the hit path stays emit-free). */
    void traceWriteback(PhysAddr line_addr);
    void traceFlush(PhysAddr line_addr);

    MemoryController &controller_;
    CycleClock &clock_;
    CacheConfig config_;
    Trace *trace_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t useCounter_ = 0;
    std::uint32_t currentPid_ = 0;
    StatSet stats_{kCacheStatNames};
};

} // namespace safemem
