#include "cache/cache.h"

#include <cstring>

#include "common/costs.h"
#include "common/logging.h"

namespace safemem {

Cache::Cache(MemoryController &controller, CycleClock &clock,
             CacheConfig config)
    : controller_(controller), clock_(clock), config_(config)
{
    if (config_.sets == 0 || config_.ways == 0)
        fatal("Cache: geometry must be non-zero");
    sets_.assign(config_.sets, std::vector<Way>(config_.ways));
}

std::size_t
Cache::setIndex(PhysAddr line_addr) const
{
    return (line_addr / kCacheLineSize) % config_.sets;
}

Cache::Way *
Cache::lookup(PhysAddr line_addr)
{
    for (Way &way : sets_[setIndex(line_addr)]) {
        if (way.valid && way.lineAddr == line_addr)
            return &way;
    }
    return nullptr;
}

const Cache::Way *
Cache::lookup(PhysAddr line_addr) const
{
    for (const Way &way : sets_[setIndex(line_addr)]) {
        if (way.valid && way.lineAddr == line_addr)
            return &way;
    }
    return nullptr;
}

Cache::Way *
Cache::ensureResident(PhysAddr line_addr)
{
    if (Way *way = lookup(line_addr)) {
        clock_.advance(kCacheHitCycles);
        stats_.add("hits");
        way->lastUse = ++useCounter_;
        return way;
    }

    stats_.add("misses");
    clock_.advance(kCacheMissMgmtCycles);

    // Victim: first invalid way, else LRU.
    std::vector<Way> &set = sets_[setIndex(line_addr)];
    Way *victim = &set[0];
    for (Way &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }

    if (victim->valid && victim->dirty) {
        stats_.add("writebacks");
        controller_.evictLine(victim->lineAddr, victim->data);
    }
    victim->valid = false;

    LineData data;
    if (!controller_.fillLine(line_addr, data)) {
        // Uncorrectable ECC error: the interrupt handler has run; do not
        // install the line, let the access restart.
        stats_.add("faulted_fills");
        return nullptr;
    }

    victim->valid = true;
    victim->dirty = false;
    victim->lineAddr = line_addr;
    victim->lastUse = ++useCounter_;
    victim->data = data;
    return victim;
}

bool
Cache::read(PhysAddr addr, void *out, std::size_t size)
{
    PhysAddr line_addr = alignDown(addr, kCacheLineSize);
    if (addr + size > line_addr + kCacheLineSize)
        panic("Cache::read crosses a line boundary at ", addr);

    Way *way = ensureResident(line_addr);
    if (!way)
        return false;
    std::memcpy(out, way->data.data() + (addr - line_addr), size);
    return true;
}

bool
Cache::write(PhysAddr addr, const void *in, std::size_t size)
{
    PhysAddr line_addr = alignDown(addr, kCacheLineSize);
    if (addr + size > line_addr + kCacheLineSize)
        panic("Cache::write crosses a line boundary at ", addr);

    // Write-allocate: a write miss performs a read-for-ownership fill,
    // which is exactly why writes to watched lines still trigger faults.
    Way *way = ensureResident(line_addr);
    if (!way)
        return false;
    std::memcpy(way->data.data() + (addr - line_addr), in, size);
    way->dirty = true;
    return true;
}

void
Cache::flushLine(PhysAddr line_addr)
{
    clock_.advance(kCacheFlushLineCycles);
    Way *way = lookup(line_addr);
    if (!way)
        return;
    if (way->dirty) {
        stats_.add("writebacks");
        controller_.evictLine(way->lineAddr, way->data);
    }
    way->valid = false;
    way->dirty = false;
    stats_.add("flushes");
}

void
Cache::flushAll()
{
    for (auto &set : sets_) {
        for (Way &way : set) {
            if (way.valid && way.dirty) {
                stats_.add("writebacks");
                controller_.evictLine(way.lineAddr, way.data);
            }
            way.valid = false;
            way.dirty = false;
        }
    }
}

bool
Cache::contains(PhysAddr line_addr) const
{
    return lookup(line_addr) != nullptr;
}

} // namespace safemem
