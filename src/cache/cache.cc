#include "cache/cache.h"

#include <algorithm>
#include <unordered_set>

#include "check/simcheck.h"
#include "trace/trace.h"

namespace safemem {

Cache::Cache(MemoryController &controller, CycleClock &clock,
             CacheConfig config, Trace *trace)
    : controller_(controller), clock_(clock), config_(config), trace_(trace)
{
    if (config_.sets == 0 || config_.ways == 0)
        fatal("Cache: geometry must be non-zero");
    sets_.assign(config_.sets, std::vector<Way>(config_.ways));
}

Cache::Way *
Cache::fillLine(PhysAddr line_addr)
{
    clock_.advance(kCacheMissMgmtCycles);

    // Victim: first invalid way, else LRU.
    std::vector<Way> &set = sets_[setIndex(line_addr)];
    Way *victim = &set[0];
    for (Way &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }

    if (victim->valid && victim->ownerPid != currentPid_) {
        // Consolidation contention: this fill pushes out a line some
        // other process brought in (a shared-cache effect no
        // single-process run can produce, so the counter stays 0 there).
        stats_.add(CacheStat::CrossProcEvictions);
    }
    if (victim->valid && victim->dirty) {
        stats_.add(CacheStat::Writebacks);
        controller_.evictLine(victim->lineAddr, victim->data);
        traceWriteback(victim->lineAddr);
    }
    victim->valid = false;

    LineData data;
    if (!controller_.fillLine(line_addr, data)) {
        // Uncorrectable ECC error: the interrupt handler has run; do not
        // install the line, let the access restart. This is counted as a
        // faulted fill, not a completed miss — only a fill that installs
        // the line increments `misses`, so a faulted-then-retried access
        // shows up as one miss plus one faulted fill, never two misses.
        stats_.add(CacheStat::FaultedFills);
        return nullptr;
    }

    stats_.add(CacheStat::Misses);
    victim->valid = true;
    victim->dirty = false;
    victim->lineAddr = line_addr;
    victim->lastUse = ++useCounter_;
    victim->ownerPid = currentPid_;
    victim->data = data;
    return victim;
}

bool
Cache::readMiss(PhysAddr line_addr, PhysAddr addr, void *out, std::size_t size)
{
    Way *way = fillLine(line_addr);
    if (!way)
        return false;
    std::memcpy(out, way->data.data() + (addr - line_addr), size);
    return true;
}

bool
Cache::writeMiss(PhysAddr line_addr, PhysAddr addr, const void *in,
                 std::size_t size)
{
    // Write-allocate: a write miss performs a read-for-ownership fill,
    // which is exactly why writes to watched lines still trigger faults.
    Way *way = fillLine(line_addr);
    if (!way)
        return false;
    std::memcpy(way->data.data() + (addr - line_addr), in, size);
    way->dirty = true;
    return true;
}

std::size_t
Cache::readBlock(PhysAddr addr, void *out, std::size_t size)
{
    auto *cursor = static_cast<std::uint8_t *>(out);
    std::size_t done = 0;
    while (done < size) {
        PhysAddr line_end =
            alignDown(addr + done, kCacheLineSize) + kCacheLineSize;
        std::size_t chunk =
            std::min<std::size_t>(size - done, line_end - (addr + done));
        if (!read(addr + done, cursor + done, chunk))
            break;
        done += chunk;
    }
    return done;
}

std::size_t
Cache::writeBlock(PhysAddr addr, const void *in, std::size_t size)
{
    const auto *cursor = static_cast<const std::uint8_t *>(in);
    std::size_t done = 0;
    while (done < size) {
        PhysAddr line_end =
            alignDown(addr + done, kCacheLineSize) + kCacheLineSize;
        std::size_t chunk =
            std::min<std::size_t>(size - done, line_end - (addr + done));
        if (!write(addr + done, cursor + done, chunk))
            break;
        done += chunk;
    }
    return done;
}

void
Cache::flushLine(PhysAddr line_addr)
{
    clock_.advance(kCacheFlushLineCycles);
    Way *way = lookup(line_addr);
    if (!way)
        return;
    bool wrote_back = false;
    if (way->dirty) {
        stats_.add(CacheStat::Writebacks);
        controller_.evictLine(way->lineAddr, way->data);
        traceWriteback(way->lineAddr);
        wrote_back = true;
    }
    SIMCHECK_AUDIT(AuditDomain::Cache, "no_dirty_loss_on_flush",
                   !way->dirty || wrote_back,
                   "dirty line ", line_addr, " dropped without writeback");
    way->valid = false;
    way->dirty = false;
    stats_.add(CacheStat::Flushes);
    traceFlush(line_addr);
}

void
Cache::flushAll()
{
    // Bulk flush pays the same bill as flushLine() over each *resident*
    // line: kCacheFlushLineCycles and one `flushes` count per valid way.
    // Invalid ways are skipped — a bulk flush iterates the tag array, it
    // does not issue a flush per possible address.
    for (auto &set : sets_) {
        for (Way &way : set) {
            if (!way.valid)
                continue;
            clock_.advance(kCacheFlushLineCycles);
            bool wrote_back = false;
            if (way.dirty) {
                stats_.add(CacheStat::Writebacks);
                controller_.evictLine(way.lineAddr, way.data);
                traceWriteback(way.lineAddr);
                wrote_back = true;
            }
            SIMCHECK_AUDIT(AuditDomain::Cache, "no_dirty_loss_on_flush",
                           !way.dirty || wrote_back,
                           "dirty line ", way.lineAddr,
                           " dropped without writeback in flushAll");
            way.valid = false;
            way.dirty = false;
            stats_.add(CacheStat::Flushes);
            traceFlush(way.lineAddr);
        }
    }
}

void
Cache::traceWriteback(PhysAddr line_addr)
{
    // Writebacks are too frequent for per-event records; sampling every
    // kTraceSampleInterval-th keeps the ring for the rare events while
    // still pinning down writeback cadence.
    std::uint64_t count = stats_.get(CacheStat::Writebacks);
    if (count % kTraceSampleInterval == 0)
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::CacheWritebackSample,
                           clock_.now(), line_addr, count);
}

void
Cache::traceFlush(PhysAddr line_addr)
{
    std::uint64_t count = stats_.get(CacheStat::Flushes);
    if (count % kTraceSampleInterval == 0)
        SAFEMEM_TRACE_EMIT(trace_, TraceEvent::CacheFlushSample,
                           clock_.now(), line_addr, count);
}

bool
Cache::contains(PhysAddr line_addr) const
{
    return lookup(line_addr) != nullptr;
}

void
Cache::auditResidency() const
{
    // Structural sweep: every valid way sits in the set its address hashes
    // to, no line is resident twice, and LRU stamps never run ahead of the
    // use counter. Cached *data* is deliberately not compared against DRAM:
    // hardware faults injected underneath a resident line are legitimate
    // simulator states (the paper's cache-filtering effect).
    if (!simCheckActive())
        return;
    std::unordered_set<PhysAddr> resident;
    for (std::size_t s = 0; s < sets_.size(); ++s) {
        for (const Way &way : sets_[s]) {
            if (!way.valid) {
                SIMCHECK_AUDIT(AuditDomain::Cache, "invalid_way_clean",
                               !way.dirty, "invalid way in set ", s,
                               " still flagged dirty");
                continue;
            }
            SIMCHECK_AUDIT(AuditDomain::Cache, "line_alignment",
                           isAligned(way.lineAddr, kCacheLineSize),
                           "resident line ", way.lineAddr, " misaligned");
            SIMCHECK_AUDIT(AuditDomain::Cache, "set_placement",
                           setIndex(way.lineAddr) == s,
                           "line ", way.lineAddr, " resident in set ", s,
                           " but hashes to set ", setIndex(way.lineAddr));
            SIMCHECK_AUDIT(AuditDomain::Cache, "unique_residency",
                           resident.insert(way.lineAddr).second,
                           "line ", way.lineAddr, " resident in two ways");
            SIMCHECK_AUDIT(AuditDomain::Cache, "lru_stamp_bound",
                           way.lastUse <= useCounter_,
                           "LRU stamp ", way.lastUse,
                           " ahead of use counter ", useCounter_);
        }
    }
}

} // namespace safemem
