#include "ecc/geometry.h"

namespace safemem {

std::optional<ProtectionGeometry>
parseGeometry(const std::string &text)
{
    if (text == "word")
        return ProtectionGeometry{};

    const std::string prefix = "block:";
    if (text.rfind(prefix, 0) != 0)
        return std::nullopt;

    std::string body = text.substr(prefix.size());
    ProtectionGeometry geometry;
    std::string::size_type slash = body.find('/');
    if (slash != std::string::npos) {
        std::string kind = body.substr(slash + 1);
        body = body.substr(0, slash);
        if (kind == "parity")
            geometry.edc = EdcKind::Parity;
        else if (kind == "crc32")
            geometry.edc = EdcKind::Crc32;
        else
            return std::nullopt;
    }

    if (body.empty() ||
        body.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    unsigned long bytes = 0;
    try {
        bytes = std::stoul(body);
    } catch (...) {
        return std::nullopt;
    }
    if (!validCodewordBytes(static_cast<std::uint32_t>(bytes)))
        return std::nullopt;
    geometry.codewordBytes = static_cast<std::uint32_t>(bytes);
    return geometry;
}

std::string
geometryName(const ProtectionGeometry &geometry)
{
    if (geometry.isWord())
        return "word";
    std::string name = "block:" + std::to_string(geometry.codewordBytes);
    name += geometry.edc == EdcKind::Crc32 ? "/crc32" : "/parity";
    return name;
}

std::string
geometryLabel(const ProtectionGeometry &geometry)
{
    if (geometry.isWord())
        return "";
    std::string label = "block" + std::to_string(geometry.codewordBytes);
    if (geometry.edc == EdcKind::Crc32)
        label += "crc32";
    return label;
}

std::uint32_t
blockEccCheckBytes(std::uint32_t codeword_bytes)
{
    // Long SEC-DED over k = codeword_bytes * 8 data bits: the smallest r
    // with 2^r >= k + r + 1, plus one overall-parity bit for DED.
    std::uint64_t k = std::uint64_t{codeword_bytes} * 8;
    std::uint32_t r = 1;
    while ((std::uint64_t{1} << r) < k + r + 1)
        ++r;
    return (r + 1 + 7) / 8;
}

bool
validCodewordBytes(std::uint32_t codeword_bytes)
{
    if (codeword_bytes < 8 * kCacheLineSize || codeword_bytes > kPageSize)
        return false;
    return (codeword_bytes & (codeword_bytes - 1)) == 0;
}

} // namespace safemem
