/**
 * @file
 * Classic Hamming (72,64) single-error-correcting code — correction
 * only, no double-error detection.
 *
 * The original Hamming construction assigns every codeword position a
 * distinct non-zero syndrome and treats *any* non-zero syndrome as a
 * single-bit error to fix. With no overall parity bit there is no
 * "detected but uncorrectable" outcome at all: a double-bit error's
 * syndrome is just another non-zero value, so the decoder confidently
 * flips one bit — usually the wrong one — and reports success. That
 * silent miscorrection is exactly what the campaign engine measures,
 * and it is why this code cannot host SafeMem's scramble signature:
 * findScramblePositions() needs a bit triple guaranteed to decode
 * Uncorrectable, and this decoder never returns Uncorrectable.
 *
 * The code here is the 64-data-bit shortening of Hamming(127,120) to 8
 * check bits: data columns are the first 64 non-unit non-zero 8-bit
 * values, unit vectors belong to the check bits. A syndrome naming one
 * of the 183 shortened-away positions still decodes as a "correction"
 * (the classic decoder has no notion of absent positions); the data
 * word is returned unchanged and correctedBit is -1.
 */

#pragma once

#include <array>
#include <cstdint>

#include "ecc/codec.h"

namespace safemem {

/**
 * The classic Hamming 64/8 SEC codec. Stateless after construction;
 * all methods are const and thread-compatible.
 */
class HammingSecCode : public EccCodec
{
  public:
    HammingSecCode();

    const char *name() const override { return "hamming-64-8"; }
    int dataBits() const override { return 64; }
    int checkBits() const override { return 8; }

    /** @return the 8 check bits protecting @p data. */
    std::uint64_t encode(std::uint64_t data) const override;

    /**
     * Decode @p data against @p check. Every non-zero syndrome is
     * treated as a correctable single-bit error — double-bit errors
     * silently miscorrect; nothing ever decodes Uncorrectable.
     */
    EccDecodeResult decode(std::uint64_t data,
                           std::uint64_t check) const override;

    /** @return the H-matrix column (8-bit syndrome) of data bit @p bit. */
    std::uint64_t column(int bit) const override { return columns_[bit]; }

  private:
    /** Syndrome column for each of the 64 data bits. */
    std::array<std::uint8_t, 64> columns_{};
    /** Map from syndrome value to data-bit index, or -1. */
    std::array<std::int8_t, 256> syndromeToBit_{};
};

} // namespace safemem
