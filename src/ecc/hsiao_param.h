/**
 * @file
 * Parameterized Hsiao SEC-DED construction for d data bits and k check
 * bits, with k auto-sized when not given.
 *
 * The generalization of the fixed (72,64) code in ecc/hamming.h: data
 * columns are distinct odd-weight (>= 3) k-bit values assigned in
 * ascending weight then ascending value, unit vectors belong to the
 * check bits. Any k with enough odd-weight columns works; auto-sizing
 * picks the smallest. With d = 64, k = 0 the construction reproduces
 * the paper's code column for column (pinned by test_codec_zoo.cc).
 *
 * Built for the campaign engine's codec sweeps, so encode/decode favour
 * clarity over byte-sliced table tricks; the machine datapath keeps the
 * tuned HsiaoCode as its default.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ecc/codec.h"

namespace safemem {

/**
 * A (d + k, d) Hsiao SEC-DED codec. Stateless after construction; all
 * methods are const and thread-compatible.
 */
class HsiaoParamCode : public EccCodec
{
  public:
    /**
     * @param data_bits  d, in [1, 64].
     * @param check_bits k, in [1, 64], or 0 to auto-size (the smallest
     *                   k whose odd-weight >= 3 column pool covers d).
     * Panics when the requested geometry admits no Hsiao code.
     */
    explicit HsiaoParamCode(int data_bits, int check_bits = 0);

    const char *name() const override { return name_.c_str(); }
    int dataBits() const override { return dataBits_; }
    int checkBits() const override { return checkBits_; }

    std::uint64_t encode(std::uint64_t data) const override;
    EccDecodeResult decode(std::uint64_t data,
                           std::uint64_t check) const override;
    std::uint64_t column(int bit) const override { return columns_[bit]; }

    /** @return the smallest k whose odd-weight (>= 3) column pool
     *  covers @p data_bits data columns, or 0 when none <= 64 does. */
    static int autoCheckBits(int data_bits);

  private:
    int dataBits_;
    int checkBits_;
    std::string name_; ///< "hsiao-<d+k>-<d>", built once
    /** Syndrome column for each data bit, ascending weight then value. */
    std::vector<std::uint64_t> columns_;
};

} // namespace safemem
