/**
 * @file
 * (72,64) Hsiao single-error-correcting, double-error-detecting code.
 *
 * Eight check bits protect each 64-bit word — the ECC-group geometry the
 * paper describes in §2.1 ("8 bits to protect 64 bits"). The parity-check
 * matrix uses odd-weight columns (56 weight-3 and 8 weight-5 columns for the
 * data bits, unit vectors for the check bits), the classic Hsiao
 * construction: any double-bit error yields an even-weight, non-zero
 * syndrome, which is detectable but not correctable.
 */

#pragma once

#include <array>
#include <cstdint>

#include "ecc/codec.h"

namespace safemem {

/**
 * The (72,64) Hsiao codec. Stateless aside from its generator tables, which
 * are built once; all methods are const and thread-compatible.
 */
class HsiaoCode : public EccCodec
{
  public:
    HsiaoCode();

    const char *name() const override { return "hsiao-72-64"; }
    int dataBits() const override { return 64; }
    int checkBits() const override { return 8; }

    /** @return the 8 check bits protecting @p data. */
    std::uint64_t encode(std::uint64_t data) const override;

    /**
     * Check @p data against the stored @p check byte, correcting a
     * single-bit error when possible.
     */
    EccDecodeResult decode(std::uint64_t data,
                           std::uint64_t check) const override;

    /** @return the H-matrix column (8-bit syndrome) of data bit @p bit. */
    std::uint64_t column(int bit) const override { return columns_[bit]; }

  private:
    /** Syndrome column for each of the 64 data bits. */
    std::array<std::uint8_t, 64> columns_{};
    /** Map from syndrome value to data-bit index, or -1. */
    std::array<std::int8_t, 256> syndromeToBit_{};
    /** Byte-sliced encoder tables: check byte of one data byte at each
     *  of the 8 byte positions. Encoding is 8 lookups instead of 64
     *  bit tests (linearity of the code). */
    std::array<std::array<std::uint8_t, 256>, 8> byteTables_{};
};

} // namespace safemem
