/**
 * @file
 * (72,64) Hsiao single-error-correcting, double-error-detecting code.
 *
 * Eight check bits protect each 64-bit word — the ECC-group geometry the
 * paper describes in §2.1 ("8 bits to protect 64 bits"). The parity-check
 * matrix uses odd-weight columns (56 weight-3 and 8 weight-5 columns for the
 * data bits, unit vectors for the check bits), the classic Hsiao
 * construction: any double-bit error yields an even-weight, non-zero
 * syndrome, which is detectable but not correctable.
 */

#pragma once

#include <array>
#include <cstdint>

namespace safemem {

/** Outcome categories of decoding one ECC group. */
enum class EccDecodeStatus : std::uint8_t
{
    Ok,              ///< syndrome zero: data clean
    CorrectedSingle, ///< single-bit error found and corrected
    Uncorrectable    ///< multi-bit error: detected, cannot be corrected
};

/** Result of decoding one ECC group. */
struct EccDecodeResult
{
    EccDecodeStatus status = EccDecodeStatus::Ok;
    /** Corrected data word (valid for Ok / CorrectedSingle). */
    std::uint64_t data = 0;
    /** Bit position fixed when status == CorrectedSingle: 0-63 for data
     *  bits, 64-71 for check bits. */
    int correctedBit = -1;
};

/**
 * The (72,64) Hsiao codec. Stateless aside from its generator tables, which
 * are built once; all methods are const and thread-compatible.
 */
class HsiaoCode
{
  public:
    HsiaoCode();

    /** @return the 8 check bits protecting @p data. */
    std::uint8_t encode(std::uint64_t data) const;

    /**
     * Check @p data against the stored @p check byte, correcting a
     * single-bit error when possible.
     */
    EccDecodeResult decode(std::uint64_t data, std::uint8_t check) const;

    /** @return the H-matrix column (8-bit syndrome) of data bit @p bit. */
    std::uint8_t column(int bit) const { return columns_[bit]; }

    /** @return the process-wide codec instance. */
    static const HsiaoCode &instance();

  private:
    /** Syndrome column for each of the 64 data bits. */
    std::array<std::uint8_t, 64> columns_{};
    /** Map from syndrome value to data-bit index, or -1. */
    std::array<std::int8_t, 256> syndromeToBit_{};
    /** Byte-sliced encoder tables: check byte of one data byte at each
     *  of the 8 byte positions. Encoding is 8 lookups instead of 64
     *  bit tests (linearity of the code). */
    std::array<std::array<std::uint8_t, 256>, 8> byteTables_{};
};

} // namespace safemem
