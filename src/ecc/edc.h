/**
 * @file
 * Error-detection codes for the block protection geometry.
 *
 * Under a block geometry every cache line (the read granule) carries a
 * small EDC word that rides with the data burst: the controller folds
 * the line's eight 64-bit words into it on writeback and verifies the
 * fold on every fill. A matching fold declares the line clean without
 * fetching any ECC redundancy — the bandwidth win; a mismatch triggers
 * the full codeword ECC decode.
 *
 * Both folds are *linear* in the data (XOR-of-rotations for parity, the
 * linear part of CRC-32): the fold delta of any error pattern is a
 * constant independent of the underlying data. SafeMem's scramble trick
 * depends on this — a scrambled line's fold delta is one fixed value,
 * computed once at kernel boot and verified non-zero (the EDC analogue
 * of the no-miscorrecting-scramble-triple search), so a watched line can
 * never slip through the EDC fast path unnoticed.
 *
 * The folds are honest about their accounted width (edcBitsPerLine):
 * parity keeps 8 bits and CRC-32 keeps 32, so narrow EDCs really can
 * alias multi-bit error patterns — the detection-strength axis of the
 * geometry trade-off, not a simulator bug.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "ecc/geometry.h"

namespace safemem {

/** @return EDC bits stored per cache line under @p kind (8 or 32). */
unsigned edcBitsPerLine(EdcKind kind);

/**
 * Fold one cache line's @p nwords data words into its EDC value.
 * Word position enters the fold (rotation schedule / byte order), so
 * permuted lines and repeated patterns fold differently.
 */
std::uint64_t edcLineFold(EdcKind kind, const std::uint64_t *words,
                          std::size_t nwords);

/** @return the fold of an all-zero line — the EDC lane's initial value. */
std::uint64_t edcZeroLineFold(EdcKind kind);

/**
 * @return the constant fold delta of XOR-ing every word of a line with
 * @p mask (both folds are linear, so the delta is data-independent).
 * Zero means the pattern is invisible to this EDC — the kernel panics
 * at boot if the scramble pattern folds to zero.
 */
std::uint64_t edcScrambleFoldDelta(EdcKind kind, std::uint64_t mask);

} // namespace safemem
