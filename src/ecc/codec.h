/**
 * @file
 * The pluggable ECC codec abstraction.
 *
 * SafeMem's mechanism (paper §2.1, §2.2.2) stands on two properties of
 * the controller's code: real single-bit errors correct transparently,
 * and the 3-bit scramble signature decodes as *uncorrectable*. Neither
 * property is free — it depends on which code the controller implements.
 * EccCodec makes the code a run parameter so fault-injection campaigns
 * can compare codes (and show where the scramble trick breaks), while
 * the machine datapath stays wired to whichever codec its MachineConfig
 * names.
 *
 * All implementations are stateless after construction: every method is
 * const and thread-compatible, so one codec instance may serve many
 * concurrent machines or campaign workers.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace safemem {

/** Outcome categories of decoding one ECC group. */
enum class EccDecodeStatus : std::uint8_t
{
    Ok,              ///< syndrome zero: data clean
    CorrectedSingle, ///< single-bit error found and corrected
    Uncorrectable    ///< multi-bit error: detected, cannot be corrected
};

/** Result of decoding one ECC group. */
struct EccDecodeResult
{
    EccDecodeStatus status = EccDecodeStatus::Ok;
    /**
     * The decoder's data output. For Ok / CorrectedSingle this is the
     * (possibly corrected) word. For Uncorrectable it is the *raw*,
     * still-corrupt word as read — the controller forwards it as
     * EccFaultInfo::rawData, which is how SafeMem's fault handler
     * recovers the original contents of a scrambled group (unscramble
     * is just re-applying the 3-bit mask). Always set.
     */
    std::uint64_t data = 0;
    /**
     * Bit position fixed when status == CorrectedSingle: [0, dataBits)
     * for data bits, [dataBits, dataBits + checkBits) for check bits.
     * -1 otherwise — including the pure-SEC Hamming decoder's phantom
     * "corrections" of codeword positions that do not exist in the
     * shortened code (see HammingSecCode). Consumers must not assume
     * the value indexes a data word.
     */
    int correctedBit = -1;
};

/**
 * Interface of one (d + k, d) binary ECC code: d data bits protected by
 * k check bits, both at most 64 so a codeword fits two machine words.
 *
 * The machine datapath additionally requires d == 64 and k <= 8 (one
 * check byte per ECC group, the paper's geometry); the campaign engine
 * accepts any EccCodec.
 */
class EccCodec
{
  public:
    virtual ~EccCodec() = default;

    /** @return a short printable name, e.g. "hsiao-72-64". */
    virtual const char *name() const = 0;

    /** @return the number of data bits d per codeword. */
    virtual int dataBits() const = 0;

    /** @return the number of check bits k per codeword. */
    virtual int checkBits() const = 0;

    /** @return the k check bits protecting @p data (low k bits). */
    virtual std::uint64_t encode(std::uint64_t data) const = 0;

    /**
     * Check @p data against the stored @p check bits, correcting a
     * single-bit error when the code can.
     */
    virtual EccDecodeResult decode(std::uint64_t data,
                                   std::uint64_t check) const = 0;

    /** @return the H-matrix column (k-bit syndrome) of data bit @p bit. */
    virtual std::uint64_t column(int bit) const = 0;
};

/** The codec implementations selectable per run. */
enum class EccCodecKind : std::uint8_t
{
    Hsiao72_64, ///< the paper's (72,64) Hsiao SEC-DED code
    Hamming64_8, ///< classic Hamming SEC, no detect-only outcome
    HsiaoParam  ///< parameterized Hsiao d/k with auto-sized k
};

/**
 * Value-type description of a codec — the piece of a RunSpec that names
 * which code the machine (or a campaign cell) runs. Default-constructed
 * it names the paper's (72,64) Hsiao code.
 */
struct EccCodecSpec
{
    EccCodecKind kind = EccCodecKind::Hsiao72_64;
    /** Data bits d (HsiaoParam only; fixed 64 for the others). */
    int dataBits = 64;
    /** Check bits k, 0 = auto-size (HsiaoParam only). */
    int checkBits = 0;

    bool operator==(const EccCodecSpec &) const = default;
};

/** @return a freshly built codec implementing @p spec (panics on a
 *  malformed spec, e.g. HsiaoParam dimensions no code satisfies). */
std::unique_ptr<EccCodec> makeCodec(const EccCodecSpec &spec);

/** @return the shared immutable (72,64) Hsiao codec every machine uses
 *  unless its config says otherwise. */
const EccCodec &defaultCodec();

/**
 * Parse a codec name as accepted by the CLI: "hsiao" (the default
 * (72,64) code), "hamming64/8", or "hsiao:<d>" / "hsiao:<d>/<k>" for
 * the parameterized construction. @return nullopt on anything else.
 */
std::optional<EccCodecSpec> parseCodecSpec(const std::string &name);

/** @return the canonical CLI/report name of @p spec. */
std::string codecSpecName(const EccCodecSpec &spec);

} // namespace safemem
