#include "ecc/hsiao_param.h"

#include <bit>

#include "common/logging.h"

namespace safemem {

namespace {

/** C(n, r) without overflow for the small n this file needs. */
std::uint64_t
binomial(int n, int r)
{
    if (r < 0 || r > n)
        return 0;
    std::uint64_t result = 1;
    for (int i = 0; i < r; ++i)
        result = result * static_cast<std::uint64_t>(n - i) /
                 static_cast<std::uint64_t>(i + 1);
    return result;
}

/** @return the next k-bit value with the same popcount (Gosper's hack),
 *  or 0 when @p v was the largest such value that fits. */
std::uint64_t
nextSameWeight(std::uint64_t v, int k)
{
    std::uint64_t lowest = v & (~v + 1);
    std::uint64_t ripple = v + lowest;
    if (ripple == 0)
        return 0;
    std::uint64_t ones = ((v ^ ripple) >> 2) / lowest;
    std::uint64_t next = ripple | ones;
    if (k < 64 && next >= (1ULL << k))
        return 0;
    return next;
}

} // namespace

int
HsiaoParamCode::autoCheckBits(int data_bits)
{
    for (int k = 3; k <= 64; ++k) {
        std::uint64_t pool = 0;
        for (int w = 3; w <= k; w += 2)
            pool += binomial(k, w);
        if (pool >= static_cast<std::uint64_t>(data_bits))
            return k;
    }
    return 0;
}

HsiaoParamCode::HsiaoParamCode(int data_bits, int check_bits)
    : dataBits_(data_bits), checkBits_(check_bits)
{
    if (dataBits_ < 1 || dataBits_ > 64)
        panic("HsiaoParamCode: data bits ", dataBits_, " out of [1, 64]");
    if (checkBits_ == 0)
        checkBits_ = autoCheckBits(dataBits_);
    if (checkBits_ < 1 || checkBits_ > 64)
        panic("HsiaoParamCode: check bits ", checkBits_, " out of [1, 64]");

    // Fill the data columns with distinct odd-weight (>= 3) values,
    // ascending weight then ascending value — the Hsiao recipe that
    // balances the H-matrix rows and (for d = 64, k = 8) reproduces the
    // fixed HsiaoCode assignment exactly.
    columns_.reserve(static_cast<std::size_t>(dataBits_));
    for (int w = 3; w <= checkBits_ &&
                    columns_.size() < static_cast<std::size_t>(dataBits_);
         w += 2) {
        for (std::uint64_t v = (1ULL << w) - 1;
             v != 0 && columns_.size() < static_cast<std::size_t>(dataBits_);
             v = nextSameWeight(v, checkBits_))
            columns_.push_back(v);
    }
    if (columns_.size() != static_cast<std::size_t>(dataBits_))
        panic("HsiaoParamCode: only ", columns_.size(),
              " odd-weight columns exist for ", dataBits_, "/", checkBits_,
              "; increase the check bits");

    name_ = "hsiao-" + std::to_string(dataBits_ + checkBits_) + "-" +
            std::to_string(dataBits_);
}

std::uint64_t
HsiaoParamCode::encode(std::uint64_t data) const
{
    std::uint64_t check = 0;
    for (int bit = 0; bit < dataBits_; ++bit) {
        if (data & (1ULL << bit))
            check ^= columns_[static_cast<std::size_t>(bit)];
    }
    return check;
}

EccDecodeResult
HsiaoParamCode::decode(std::uint64_t data, std::uint64_t check) const
{
    EccDecodeResult result;
    std::uint64_t mask =
        checkBits_ == 64 ? ~0ULL : (1ULL << checkBits_) - 1;
    std::uint64_t syndrome = (encode(data) ^ check) & mask;

    if (syndrome == 0) {
        result.status = EccDecodeStatus::Ok;
        result.data = data;
        return result;
    }

    for (int bit = 0; bit < dataBits_; ++bit) {
        if (columns_[static_cast<std::size_t>(bit)] == syndrome) {
            result.status = EccDecodeStatus::CorrectedSingle;
            result.data = data ^ (1ULL << bit);
            result.correctedBit = bit;
            return result;
        }
    }

    if (std::popcount(syndrome) == 1) {
        result.status = EccDecodeStatus::CorrectedSingle;
        result.data = data;
        result.correctedBit = dataBits_ + std::countr_zero(syndrome);
        return result;
    }

    result.status = EccDecodeStatus::Uncorrectable;
    result.data = data;
    return result;
}

} // namespace safemem
