#include "ecc/hamming_sec.h"

#include <bit>

#include "common/logging.h"

namespace safemem {

HammingSecCode::HammingSecCode()
{
    // Data columns: the first 64 values that are neither zero nor a
    // unit vector (3, 5, 6, 7, 9, ...). Unlike Hsiao's odd-weight-only
    // assignment, even-weight columns are admitted — which is precisely
    // what destroys double-error detection: the XOR of two columns can
    // equal a third column (or a unit vector) and miscorrect.
    int next = 0;
    for (int v = 3; v < 256 && next < 64; ++v) {
        if (std::popcount(static_cast<unsigned>(v)) >= 2)
            columns_[next++] = static_cast<std::uint8_t>(v);
    }
    if (next != 64)
        panic("HammingSecCode: failed to build 64 data columns");

    syndromeToBit_.fill(-1);
    for (int bit = 0; bit < 64; ++bit)
        syndromeToBit_[columns_[bit]] = static_cast<std::int8_t>(bit);
}

std::uint64_t
HammingSecCode::encode(std::uint64_t data) const
{
    std::uint8_t check = 0;
    for (int bit = 0; bit < 64; ++bit) {
        if (data & (1ULL << bit))
            check ^= columns_[bit];
    }
    return check;
}

EccDecodeResult
HammingSecCode::decode(std::uint64_t data, std::uint64_t check) const
{
    EccDecodeResult result;
    std::uint8_t syndrome = static_cast<std::uint8_t>(encode(data) ^ check);

    if (syndrome == 0) {
        result.status = EccDecodeStatus::Ok;
        result.data = data;
        return result;
    }

    // The classic SEC decoder: the syndrome *is* the position of the
    // (assumed single) error. There is no uncorrectable branch.
    result.status = EccDecodeStatus::CorrectedSingle;

    int data_bit = syndromeToBit_[syndrome];
    if (data_bit >= 0) {
        result.data = data ^ (1ULL << data_bit);
        result.correctedBit = data_bit;
        return result;
    }

    if (std::popcount(static_cast<unsigned>(syndrome)) == 1) {
        // Unit vector: a check-bit position; the data is untouched.
        result.data = data;
        result.correctedBit = 64 + std::countr_zero(
            static_cast<unsigned>(syndrome));
        return result;
    }

    // A shortened-away position: the decoder "fixes" a bit that is not
    // stored anywhere. Data passes through unchanged; correctedBit -1
    // marks the phantom (see EccDecodeResult::correctedBit).
    result.data = data;
    return result;
}

} // namespace safemem
