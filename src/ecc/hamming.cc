#include "ecc/hamming.h"

#include <bit>

#include "common/logging.h"

namespace safemem {

namespace {

/** Population count of an 8-bit value. */
int
weight(std::uint8_t v)
{
    return std::popcount(static_cast<unsigned>(v));
}

} // namespace

HsiaoCode::HsiaoCode()
{
    // Assign odd-weight columns to the 64 data bits: all 56 weight-3
    // patterns first, then the first 8 weight-5 patterns. Odd column
    // weight is what gives the code its double-error-*detecting*
    // property: XOR of two odd-weight columns has even weight and can
    // never equal another (odd-weight) column or a unit vector.
    int next = 0;
    for (int target : {3, 5}) {
        for (int v = 0; v < 256 && next < 64; ++v) {
            if (weight(static_cast<std::uint8_t>(v)) == target)
                columns_[next++] = static_cast<std::uint8_t>(v);
        }
    }
    if (next != 64)
        panic("HsiaoCode: failed to build 64 data columns");

    syndromeToBit_.fill(-1);
    for (int bit = 0; bit < 64; ++bit)
        syndromeToBit_[columns_[bit]] = static_cast<std::int8_t>(bit);

    // Precompute the byte-sliced encoder (the code is linear, so the
    // check byte is the XOR of per-byte contributions).
    for (int byte_pos = 0; byte_pos < 8; ++byte_pos) {
        for (int value = 0; value < 256; ++value) {
            std::uint8_t check = 0;
            for (int bit = 0; bit < 8; ++bit) {
                if (value & (1 << bit))
                    check ^= columns_[byte_pos * 8 + bit];
            }
            byteTables_[byte_pos][value] = check;
        }
    }
}

std::uint64_t
HsiaoCode::encode(std::uint64_t data) const
{
    std::uint8_t check = 0;
    for (int byte_pos = 0; byte_pos < 8; ++byte_pos)
        check ^= byteTables_[byte_pos]
                            [(data >> (byte_pos * 8)) & 0xff];
    return check;
}

EccDecodeResult
HsiaoCode::decode(std::uint64_t data, std::uint64_t check) const
{
    EccDecodeResult result;
    std::uint8_t syndrome = static_cast<std::uint8_t>(encode(data) ^ check);

    if (syndrome == 0) {
        result.status = EccDecodeStatus::Ok;
        result.data = data;
        return result;
    }

    int data_bit = syndromeToBit_[syndrome];
    if (data_bit >= 0) {
        // Syndrome matches a data column: single data-bit error.
        result.status = EccDecodeStatus::CorrectedSingle;
        result.data = data ^ (1ULL << data_bit);
        result.correctedBit = data_bit;
        return result;
    }

    if (weight(syndrome) == 1) {
        // Unit-vector syndrome: the error hit a check bit; data is fine.
        result.status = EccDecodeStatus::CorrectedSingle;
        result.data = data;
        result.correctedBit = 64 + std::countr_zero(
            static_cast<unsigned>(syndrome));
        return result;
    }

    result.status = EccDecodeStatus::Uncorrectable;
    result.data = data;
    return result;
}

} // namespace safemem
