/**
 * @file
 * Protection geometry: how the memory system arranges its redundancy.
 *
 * The paper's chipset hard-wires one shape — a (72,64) per-word SEC-DED
 * code, one check byte fetched and verified with every 64-bit group.
 * Ramulator2_ECC-style controllers instead protect a *large codeword*
 * (512 B / 1 KB / 4 KB): a cheap error-DETECTION code (EDC) rides with
 * every read granule and is verified on every fill, while the heavier
 * error-CORRECTION code covers the whole codeword and is only fetched
 * and decoded when the EDC check fails. The win is redundancy bandwidth
 * and storage (ECC check bits grow logarithmically with codeword size);
 * the cost is decode latency on EDC misses and a read-modify-write on
 * every sub-codeword partial write.
 *
 * ProtectionGeometry is a value type carried on MachineConfig and
 * RunParams, part of the run identity exactly like the codec spec: same
 * spec, same RunResult. The default ("word") names the per-word SEC-DED
 * datapath and constructs nothing new — word-geometry runs are
 * bit-identical to the pre-geometry machine.
 *
 * All codeword-size arithmetic is confined to src/mem/ and src/ecc/
 * (lint rule `codeword-arithmetic`); other layers treat the geometry as
 * an opaque value and use the helpers below.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"

namespace safemem {

/** Which error-detection code rides with each read granule. */
enum class EdcKind : std::uint8_t
{
    Parity, ///< interleaved parity fold, 8 EDC bits per line
    Crc32,  ///< CRC-32 fold, 32 EDC bits per line
};

/**
 * The protection shape of the memory system.
 *
 * codewordBytes == 0 is the per-word SEC-DED geometry ("word"): every
 * 64-bit group carries its own check byte, verified on every fill —
 * exactly the paper's chipset. A non-zero codewordBytes selects the
 * large-codeword EDC+ECC split with that codeword size (a power of two
 * in [512, kPageSize], so a codeword never crosses a page and therefore
 * never crosses a bank or a process boundary).
 */
struct ProtectionGeometry
{
    /** Codeword size in bytes; 0 = per-word SEC-DED (the default). */
    std::uint32_t codewordBytes = 0;
    /** EDC flavour for block geometries; ignored for "word". */
    EdcKind edc = EdcKind::Parity;

    bool operator==(const ProtectionGeometry &) const = default;

    /** @return true for the per-word SEC-DED default. */
    bool isWord() const { return codewordBytes == 0; }
};

/**
 * Parse a geometry spec: "word", or "block:<512|1024|4096>" with an
 * optional "/parity" or "/crc32" EDC suffix (parity is the default).
 * @return std::nullopt on a malformed or unsupported spec.
 */
std::optional<ProtectionGeometry> parseGeometry(const std::string &text);

/** @return the canonical spec string of @p geometry (parse round-trips). */
std::string geometryName(const ProtectionGeometry &geometry);

/** @return a short label suffix for @p geometry ("" for word,
 *  "block512" / "block1024crc32" ... otherwise) — trace-section labels. */
std::string geometryLabel(const ProtectionGeometry &geometry);

/**
 * @return ECC check bytes protecting one codeword of @p codeword_bytes
 * under the block geometry's long SEC-DED code: r parity bits with
 * 2^r >= k + r + 1 over k data bits, plus one DED bit, rounded up to
 * whole bytes. Grows logarithmically — the redundancy-storage win large
 * codewords exist for (2 bytes at 512 B and 1 KB, 3 bytes at 4 KB,
 * against 64/128/512 bytes of per-word check storage).
 */
std::uint32_t blockEccCheckBytes(std::uint32_t codeword_bytes);

/** @return true when @p codeword_bytes is a supported block codeword
 *  size: a power of two, >= 8 cache lines, <= kPageSize. */
bool validCodewordBytes(std::uint32_t codeword_bytes);

} // namespace safemem
