#include "ecc/scramble.h"

namespace safemem {

namespace {

/**
 * True when @p syndrome would be treated as correctable by @p code's
 * decoder. Probed through decode() itself — a zero data word with
 * check bits encode(0) ^ syndrome presents exactly @p syndrome to the
 * decoder — so this classification can never drift from the decoder
 * the controller actually runs (the bug the old hand-rolled
 * unit-vector/column scan invited).
 */
bool
looksCorrectable(const EccCodec &code, std::uint64_t syndrome)
{
    EccDecodeResult probe = code.decode(0, code.encode(0) ^ syndrome);
    return probe.status != EccDecodeStatus::Uncorrectable;
}

} // namespace

std::optional<ScramblePattern>
findScramblePositions(const EccCodec &code)
{
    int data_bits = code.dataBits();
    for (int a = 0; a < data_bits; ++a) {
        for (int b = a + 1; b < data_bits; ++b) {
            for (int c = b + 1; c < data_bits; ++c) {
                std::uint64_t syndrome =
                    code.column(a) ^ code.column(b) ^ code.column(c);
                if (!looksCorrectable(code, syndrome))
                    return ScramblePattern{{a, b, c}};
            }
        }
    }
    return std::nullopt;
}

const ScramblePattern &
defaultScramblePattern()
{
    // The default codec is SEC-DED, so a triple always exists (its
    // odd-weight columns XOR to an odd-weight non-column value for some
    // triple); the kernel re-validates at boot for configured codecs.
    static const ScramblePattern pattern =
        *findScramblePositions(defaultCodec());
    return pattern;
}

} // namespace safemem
