#include "ecc/scramble.h"

#include <bit>

#include "common/logging.h"

namespace safemem {

namespace {

/** True when @p syndrome would be treated as correctable by the decoder. */
bool
looksCorrectable(const HsiaoCode &code, std::uint8_t syndrome)
{
    if (syndrome == 0)
        return true;
    if (std::popcount(static_cast<unsigned>(syndrome)) == 1)
        return true; // unit vector: "check bit error", silently absorbed
    for (int bit = 0; bit < 64; ++bit) {
        if (code.column(bit) == syndrome)
            return true; // would miscorrect to this data bit
    }
    return false;
}

} // namespace

ScramblePattern
findScramblePositions(const HsiaoCode &code)
{
    for (int a = 0; a < 64; ++a) {
        for (int b = a + 1; b < 64; ++b) {
            for (int c = b + 1; c < 64; ++c) {
                std::uint8_t syndrome = static_cast<std::uint8_t>(
                    code.column(a) ^ code.column(b) ^ code.column(c));
                if (!looksCorrectable(code, syndrome))
                    return ScramblePattern{{a, b, c}};
            }
        }
    }
    panic("findScramblePositions: no uncorrectable bit triple exists");
}

const ScramblePattern &
defaultScramblePattern()
{
    static const ScramblePattern pattern =
        findScramblePositions(HsiaoCode::instance());
    return pattern;
}

} // namespace safemem
