/**
 * @file
 * The SafeMem data-scrambling signature (paper §2.2.2, Figure 2).
 *
 * WatchMemory cannot modify ECC check bits directly, so it disables ECC,
 * flips 3 *fixed* data bits in every ECC group of the watched line, and
 * re-enables ECC. The three positions must satisfy two properties:
 *
 *  1. the stale check bits must decode as an *uncorrectable* (multi-bit)
 *     fault — never as a silently "corrected" single-bit error, and never
 *     as a miscorrection to some other bit; and
 *  2. the flipped pattern is a recognisable signature, letting the fault
 *     handler distinguish an access fault from a genuine hardware error.
 *
 * Whether such a triple exists at all depends on the codec. For linear
 * codes property 1 holds exactly when the XOR of the three H-matrix
 * columns is a syndrome the decoder refuses to correct; a pure-SEC code
 * (ecc/hamming_sec.h) corrects *every* syndrome, so no triple works and
 * findScramblePositions() reports failure instead of a pattern. Unit
 * tests re-verify the guarantee against the real decoders.
 */

#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "ecc/codec.h"

namespace safemem {

/** Three fixed data-bit positions flipped by WatchMemory. */
struct ScramblePattern
{
    std::array<int, 3> bits{};

    /** @return @p data with the three signature bits flipped. */
    std::uint64_t
    apply(std::uint64_t data) const
    {
        return data ^ mask();
    }

    /** @return the XOR mask corresponding to the three positions. */
    std::uint64_t
    mask() const
    {
        return (1ULL << bits[0]) | (1ULL << bits[1]) | (1ULL << bits[2]);
    }
};

/**
 * Search @p code for the lowest-indexed bit triple whose combined
 * syndrome is guaranteed uncorrectable, probing each candidate through
 * the codec's own decode() so search and decoder can never drift.
 *
 * @return the triple, or nullopt when @p code cannot host a scramble
 *         signature (e.g. a correction-only code with no Uncorrectable
 *         outcome). Callers that *require* a signature — the kernel at
 *         machine boot — turn nullopt into a panic; the campaign engine
 *         reports it as the codec's scramble-viability verdict instead.
 */
std::optional<ScramblePattern> findScramblePositions(const EccCodec &code);

/** @return the process-wide scramble pattern for defaultCodec(). */
const ScramblePattern &defaultScramblePattern();

} // namespace safemem
