/**
 * @file
 * The SafeMem data-scrambling signature (paper §2.2.2, Figure 2).
 *
 * WatchMemory cannot modify ECC check bits directly, so it disables ECC,
 * flips 3 *fixed* data bits in every ECC group of the watched line, and
 * re-enables ECC. The three positions must satisfy two properties:
 *
 *  1. the stale check byte must decode as an *uncorrectable* (multi-bit)
 *     fault — never as a silently "corrected" single-bit error, and never
 *     as a miscorrection to some other bit; and
 *  2. the flipped pattern is a recognisable signature, letting the fault
 *     handler distinguish an access fault from a genuine hardware error.
 *
 * Property 1 holds exactly when the XOR of the three H-matrix columns is a
 * non-zero syndrome that matches neither a data column nor a unit vector.
 * findScramblePositions() searches the code for such a triple once; unit
 * tests re-verify the guarantee against the real decoder.
 */

#pragma once

#include <array>
#include <cstdint>

#include "ecc/hamming.h"

namespace safemem {

/** Three fixed data-bit positions flipped by WatchMemory. */
struct ScramblePattern
{
    std::array<int, 3> bits{};

    /** @return @p data with the three signature bits flipped. */
    std::uint64_t
    apply(std::uint64_t data) const
    {
        return data ^ mask();
    }

    /** @return the XOR mask corresponding to the three positions. */
    std::uint64_t
    mask() const
    {
        return (1ULL << bits[0]) | (1ULL << bits[1]) | (1ULL << bits[2]);
    }
};

/**
 * Search @p code for the lowest-indexed bit triple whose combined syndrome
 * is guaranteed uncorrectable.
 *
 * @throws PanicError when no such triple exists (cannot happen for the
 *         Hsiao construction, but checked anyway).
 */
ScramblePattern findScramblePositions(const HsiaoCode &code);

/** @return the process-wide scramble pattern for HsiaoCode::instance(). */
const ScramblePattern &defaultScramblePattern();

} // namespace safemem
