#include "ecc/codec.h"

#include "common/logging.h"
#include "ecc/hamming.h"
#include "ecc/hamming_sec.h"
#include "ecc/hsiao_param.h"

namespace safemem {

std::unique_ptr<EccCodec>
makeCodec(const EccCodecSpec &spec)
{
    switch (spec.kind) {
      case EccCodecKind::Hsiao72_64:
        return std::make_unique<HsiaoCode>();
      case EccCodecKind::Hamming64_8:
        return std::make_unique<HammingSecCode>();
      case EccCodecKind::HsiaoParam:
        return std::make_unique<HsiaoParamCode>(spec.dataBits,
                                                spec.checkBits);
    }
    panic("makeCodec: unknown codec kind ",
          static_cast<int>(spec.kind));
}

const EccCodec &
defaultCodec()
{
    static const HsiaoCode codec;
    return codec;
}

std::optional<EccCodecSpec>
parseCodecSpec(const std::string &name)
{
    EccCodecSpec spec;
    if (name == "hsiao" || name == "hsiao-72-64") {
        return spec;
    }
    if (name == "hamming64/8" || name == "hamming-64-8" ||
        name == "hamming") {
        spec.kind = EccCodecKind::Hamming64_8;
        return spec;
    }
    if (name.rfind("hsiao:", 0) != 0)
        return std::nullopt;

    // "hsiao:<d>" or "hsiao:<d>/<k>" — dimensions validated here only
    // for shape; the construction itself rejects impossible geometries.
    std::string dims = name.substr(6);
    std::size_t slash = dims.find('/');
    try {
        spec.kind = EccCodecKind::HsiaoParam;
        if (slash == std::string::npos) {
            spec.dataBits = std::stoi(dims);
            spec.checkBits = 0; // auto-size
        } else {
            spec.dataBits = std::stoi(dims.substr(0, slash));
            spec.checkBits = std::stoi(dims.substr(slash + 1));
        }
    } catch (const std::exception &) {
        return std::nullopt;
    }
    if (spec.dataBits < 1 || spec.dataBits > 64 || spec.checkBits < 0 ||
        spec.checkBits > 64)
        return std::nullopt;
    return spec;
}

std::string
codecSpecName(const EccCodecSpec &spec)
{
    switch (spec.kind) {
      case EccCodecKind::Hsiao72_64:
        return "hsiao";
      case EccCodecKind::Hamming64_8:
        return "hamming64/8";
      case EccCodecKind::HsiaoParam:
        if (spec.checkBits == 0)
            return "hsiao:" + std::to_string(spec.dataBits);
        return "hsiao:" + std::to_string(spec.dataBits) + "/" +
               std::to_string(spec.checkBits);
    }
    return "?";
}

} // namespace safemem
