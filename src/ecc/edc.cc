#include "ecc/edc.h"

#include <array>

namespace safemem {
namespace {

constexpr std::uint64_t
rotl64(std::uint64_t value, unsigned amount)
{
    amount &= 63;
    return amount == 0 ? value
                       : (value << amount) | (value >> (64 - amount));
}

/** Rotation step between word slots; coprime to 64 so the first eight
 *  slots get eight distinct rotations. */
constexpr unsigned kParityRotStep = 19;

std::uint64_t
parityFold(const std::uint64_t *words, std::size_t nwords)
{
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < nwords; ++i)
        acc ^= rotl64(words[i],
                      static_cast<unsigned>(i) * kParityRotStep);
    // Fold the 64-bit accumulator down to the stored 8 parity bits.
    acc ^= acc >> 32;
    acc ^= acc >> 16;
    acc ^= acc >> 8;
    return acc & 0xff;
}

/** Reflected CRC-32 (IEEE 802.3 polynomial), table-driven. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ (crc & 1 ? 0xEDB88320u : 0u);
            t[i] = crc;
        }
        return t;
    }();
    return table;
}

std::uint64_t
crc32Fold(const std::uint64_t *words, std::size_t nwords)
{
    const auto &table = crcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < nwords; ++i) {
        std::uint64_t word = words[i];
        for (int byte = 0; byte < 8; ++byte) {
            crc = (crc >> 8) ^
                  table[(crc ^ static_cast<std::uint8_t>(
                                   word >> (8 * byte))) &
                        0xff];
        }
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace

unsigned
edcBitsPerLine(EdcKind kind)
{
    return kind == EdcKind::Crc32 ? 32 : 8;
}

std::uint64_t
edcLineFold(EdcKind kind, const std::uint64_t *words, std::size_t nwords)
{
    return kind == EdcKind::Crc32 ? crc32Fold(words, nwords)
                                  : parityFold(words, nwords);
}

std::uint64_t
edcZeroLineFold(EdcKind kind)
{
    const std::uint64_t zeros[kEccGroupsPerLine] = {};
    return edcLineFold(kind, zeros, kEccGroupsPerLine);
}

std::uint64_t
edcScrambleFoldDelta(EdcKind kind, std::uint64_t mask)
{
    // Both folds are affine in the data, so fold(x ^ e) ^ fold(x) is the
    // same for every x: compute it against the all-zero line.
    std::uint64_t masked[kEccGroupsPerLine];
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
        masked[i] = mask;
    return edcLineFold(kind, masked, kEccGroupsPerLine) ^
           edcZeroLineFold(kind);
}

} // namespace safemem
