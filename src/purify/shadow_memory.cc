#include "purify/shadow_memory.h"

namespace safemem {

void
ShadowMemory::setRange(VirtAddr addr, std::size_t len, ByteState state)
{
    for (std::size_t i = 0; i < len; ++i) {
        VirtAddr byte = addr + i;
        VirtAddr vpage = alignDown(byte, kPageSize);
        ShadowPage &page = pages_[vpage]; // zero-filled on first touch
        std::size_t offset = byte - vpage;
        std::size_t slot = offset / 4;
        unsigned shift = static_cast<unsigned>((offset % 4) * 2);
        page[slot] = static_cast<std::uint8_t>(
            (page[slot] & ~(0x3u << shift)) |
            (static_cast<unsigned>(state) << shift));
    }
}

ByteState
ShadowMemory::get(VirtAddr addr) const
{
    VirtAddr vpage = alignDown(addr, kPageSize);
    auto it = pages_.find(vpage);
    if (it == pages_.end())
        return ByteState::Unallocated;
    std::size_t offset = addr - vpage;
    unsigned shift = static_cast<unsigned>((offset % 4) * 2);
    return static_cast<ByteState>((it->second[offset / 4] >> shift) & 0x3u);
}

bool
ShadowMemory::covered(VirtAddr addr) const
{
    return pages_.count(alignDown(addr, kPageSize)) != 0;
}

} // namespace safemem
