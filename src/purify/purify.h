/**
 * @file
 * A faithful model of Purify, the paper's dynamic-tool baseline (§5).
 *
 * Purify instruments the object code so *every* memory access is checked
 * against 2-bit-per-byte shadow state (allocated/freed x init/uninit);
 * red zones around each block catch out-of-bounds accesses and the
 * Freed state catches dangling accesses. Memory leaks are found by a
 * periodic conservative mark-and-sweep over the whole heap.
 *
 * Cost model (the paper's reason Purify cannot run in production):
 *  - every application access pays a shadow check;
 *  - compute-bound code pays an instrumentation multiplier, since real
 *    Purify instruments stack/register spills and local accesses too;
 *  - every mark-and-sweep scans all live heap words through the machine
 *    (polluting the cache exactly like the real thing) and pauses the
 *    program for its duration.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <map>

#include "alloc/heap_allocator.h"
#include "common/stats.h"
#include "common/tool.h"
#include "os/machine.h"
#include "purify/shadow_memory.h"
#include "safemem/report.h"

namespace safemem {

/** Tunables of the Purify model. */
struct PurifyConfig
{
    /** Red-zone bytes placed before and after every block. */
    std::size_t redZoneBytes = 32;
    /** App CPU cycles between mark-and-sweep leak scans. */
    Cycles sweepPeriod = 8'000'000;
    /** Instrumentation multiplier applied to compute blocks
     *  (total = factor x original). */
    double computeFactor = 8.0;
    /** Run mark-and-sweep leak scans at all. */
    bool leakScans = true;
};

/** Returns the application root set (addresses of held pointers). */
using RootProvider = std::function<std::vector<VirtAddr>()>;

/** Slot indices into the Purify tool StatSet; order matches kPurifyStatNames. */
enum class PurifyStat : std::size_t
{
    BlocksInstrumented,
    BlocksFreed,
    CorruptionReports,
    AccessesChecked,
    UninitReads,
    Sweeps,
    LeakedBlocks,
};

/** Report/snapshot names for PurifyStat, in enumerator order. */
inline constexpr const char *kPurifyStatNames[] = {
    "blocks_instrumented",
    "blocks_freed",
    "corruption_reports",
    "accesses_checked",
    "uninit_reads",
    "sweeps",
    "leaked_blocks",
};

class PurifyTool : public Tool
{
  public:
    PurifyTool(Machine &machine, HeapAllocator &allocator,
               PurifyConfig config = {});

    /** Hook every machine access. Call once after construction. */
    void install();

    /** Supply the conservative root set for mark-and-sweep. */
    void setRootProvider(RootProvider provider);

    /** @name Tool interface */
    /// @{
    VirtAddr toolAlloc(std::size_t size, const ShadowStack &stack,
                       std::uint64_t site_tag) override;
    VirtAddr toolCalloc(std::size_t count, std::size_t size,
                        const ShadowStack &stack,
                        std::uint64_t site_tag) override;
    VirtAddr toolRealloc(VirtAddr addr, std::size_t new_size,
                         const ShadowStack &stack,
                         std::uint64_t site_tag) override;
    void toolFree(VirtAddr addr) override;
    void onCompute(Cycles cycles) override;
    void finish() override;
    /// @}

    /** @return corruption findings (bounds errors, dangling accesses). */
    const std::vector<CorruptionReport> &corruptionReports() const
    {
        return corruptionReports_;
    }

    /** @return leak findings from mark-and-sweep. */
    const std::vector<LeakReport> &leakReports() const
    {
        return leakReports_;
    }

    /** @return count of uninitialised-read events observed. */
    std::uint64_t uninitReads() const { return uninitReads_; }

    /** @return tool statistics. */
    const StatSet &stats() const { return stats_; }

  private:
    struct Block
    {
        VirtAddr base = 0;     ///< red-zone start
        VirtAddr userAddr = 0;
        std::size_t size = 0;
        std::uint64_t siteTag = 0;
    };

    /** The per-access instrumentation (machine access hook). */
    void onAccess(VirtAddr addr, std::size_t size, bool is_write);

    /** Conservative mark-and-sweep over the heap (paper §5). */
    void markAndSweep();

    void reportCorruption(CorruptionKind kind, const Block *block,
                          VirtAddr fault_addr);

    Cycles appNow() const;

    Machine &machine_;
    HeapAllocator &allocator_;
    PurifyConfig config_;
    ShadowMemory shadow_;

    /** Live instrumented blocks, sorted by user address. */
    std::map<VirtAddr, Block> live_;
    /** Freed blocks, sorted by user address (dangling diagnosis). */
    std::map<VirtAddr, Block> freed_;

    RootProvider rootProvider_;
    Cycles lastSweep_ = 0;
    bool inToolCode_ = false;

    std::vector<CorruptionReport> corruptionReports_;
    std::vector<LeakReport> leakReports_;
    /** Blocks already reported leaked (avoid duplicates across sweeps). */
    std::unordered_set<VirtAddr> reportedLeaked_;
    std::uint64_t uninitReads_ = 0;
    StatSet stats_{kPurifyStatNames};
};

} // namespace safemem
