/**
 * @file
 * Purify-style shadow memory: two state bits per byte of application
 * memory (paper §5: "Purify maintains two bits for each byte of memory
 * to track its status: allocated or freed, and initialized or
 * uninitialized").
 */

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace safemem {

/** Per-byte state, two bits. */
enum class ByteState : std::uint8_t
{
    Unallocated = 0, ///< not part of any live block (incl. red zones)
    AllocUninit = 1, ///< allocated, never written
    AllocInit = 2,   ///< allocated and written
    Freed = 3        ///< was allocated, has been freed
};

class ShadowMemory
{
  public:
    /** Set @p len bytes starting at @p addr to @p state. */
    void setRange(VirtAddr addr, std::size_t len, ByteState state);

    /** @return the state of the byte at @p addr. */
    ByteState get(VirtAddr addr) const;

    /** @return true when any shadow page covers @p addr. */
    bool covered(VirtAddr addr) const;

    /** @return bytes of shadow storage in use (2 bits per app byte). */
    std::uint64_t shadowBytes() const
    {
        return pages_.size() * (kPageSize / 4);
    }

  private:
    /** Two bits per byte, packed four states per shadow byte. */
    using ShadowPage = std::array<std::uint8_t, kPageSize / 4>;

    std::unordered_map<VirtAddr, ShadowPage> pages_;
};

} // namespace safemem
