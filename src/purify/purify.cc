#include "purify/purify.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/costs.h"
#include "common/logging.h"

namespace safemem {

namespace {

/** RAII guard suppressing access instrumentation inside tool code. */
class ToolCodeGuard
{
  public:
    explicit ToolCodeGuard(bool &flag) : flag_(flag), saved_(flag)
    {
        flag_ = true;
    }
    ~ToolCodeGuard() { flag_ = saved_; }

  private:
    bool &flag_;
    bool saved_;
};

} // namespace

PurifyTool::PurifyTool(Machine &machine, HeapAllocator &allocator,
                       PurifyConfig config)
    : machine_(machine), allocator_(allocator), config_(config)
{
}

void
PurifyTool::install()
{
    machine_.setAccessHook(
        [this](VirtAddr addr, std::size_t size, bool is_write) {
            onAccess(addr, size, is_write);
        });
}

void
PurifyTool::setRootProvider(RootProvider provider)
{
    rootProvider_ = std::move(provider);
}

Cycles
PurifyTool::appNow() const
{
    return machine_.clock().charged(CostCenter::Application);
}

VirtAddr
PurifyTool::toolAlloc(std::size_t size, const ShadowStack &stack,
                      std::uint64_t site_tag)
{
    (void)stack;
    ToolCodeGuard guard(inToolCode_);

    std::size_t rz = config_.redZoneBytes;
    VirtAddr base = allocator_.allocate(rz + std::max<std::size_t>(size, 1)
                                        + rz);
    VirtAddr user = base + rz;

    {
        CostScope scope(machine_.clock(), CostCenter::ToolAccess);
        machine_.clock().advance(
            (size + 2 * rz) * kPurifyShadowByteCycles);
        shadow_.setRange(base, rz, ByteState::Unallocated);
        shadow_.setRange(user, size, ByteState::AllocUninit);
        shadow_.setRange(user + size, rz, ByteState::Unallocated);
    }

    freed_.erase(user);
    Block block;
    block.base = base;
    block.userAddr = user;
    block.size = size;
    block.siteTag = site_tag;
    live_[user] = block;
    stats_.add(PurifyStat::BlocksInstrumented);

    if (config_.leakScans && appNow() - lastSweep_ > config_.sweepPeriod)
        markAndSweep();
    return user;
}

VirtAddr
PurifyTool::toolCalloc(std::size_t count, std::size_t size,
                       const ShadowStack &stack, std::uint64_t site_tag)
{
    std::size_t bytes = count * size;
    VirtAddr user = toolAlloc(bytes, stack, site_tag);

    ToolCodeGuard guard(inToolCode_);
    std::vector<std::uint8_t> zeros(bytes, 0);
    machine_.write(user, zeros.data(), zeros.size());
    // calloc's zeroing initialises the block.
    shadow_.setRange(user, bytes, ByteState::AllocInit);
    return user;
}

VirtAddr
PurifyTool::toolRealloc(VirtAddr addr, std::size_t new_size,
                        const ShadowStack &stack, std::uint64_t site_tag)
{
    if (addr == 0)
        return toolAlloc(new_size, stack, site_tag);
    auto it = live_.find(addr);
    if (it == live_.end())
        panic("PurifyTool: realloc of unknown block ", addr);
    std::size_t old_size = it->second.size;

    VirtAddr fresh = toolAlloc(new_size, stack, site_tag);
    {
        ToolCodeGuard guard(inToolCode_);
        std::vector<std::uint8_t> copy(std::min(old_size, new_size));
        if (!copy.empty()) {
            machine_.read(addr, copy.data(), copy.size());
            machine_.write(fresh, copy.data(), copy.size());
            shadow_.setRange(fresh, copy.size(), ByteState::AllocInit);
        }
    }
    toolFree(addr);
    return fresh;
}

void
PurifyTool::toolFree(VirtAddr addr)
{
    ToolCodeGuard guard(inToolCode_);
    auto it = live_.find(addr);
    if (it == live_.end())
        panic("PurifyTool: free of unknown block ", addr);
    Block block = it->second;
    live_.erase(it);

    {
        CostScope scope(machine_.clock(), CostCenter::ToolAccess);
        machine_.clock().advance(block.size * kPurifyShadowByteCycles);
        shadow_.setRange(block.userAddr, block.size, ByteState::Freed);
    }

    freed_[block.userAddr] = block;
    allocator_.deallocate(block.base);
    stats_.add(PurifyStat::BlocksFreed);

    if (config_.leakScans && appNow() - lastSweep_ > config_.sweepPeriod)
        markAndSweep();
}

void
PurifyTool::onCompute(Cycles cycles)
{
    // Instrumented code runs computeFactor x slower overall; the
    // original cycles were already charged to the application.
    Cycles extra = static_cast<Cycles>(
        static_cast<double>(cycles) * (config_.computeFactor - 1.0));
    machine_.clock().advance(extra, CostCenter::ToolAccess);
}

void
PurifyTool::reportCorruption(CorruptionKind kind, const Block *block,
                             VirtAddr fault_addr)
{
    // One report per (kind, block) keeps repeated accesses from
    // flooding the log, like Purify's message suppression.
    for (const CorruptionReport &existing : corruptionReports_) {
        if (existing.kind == kind &&
            existing.userAddr == (block ? block->userAddr : 0))
            return;
    }
    CorruptionReport report;
    report.kind = kind;
    report.userAddr = block ? block->userAddr : 0;
    report.faultAddr = fault_addr;
    report.objectSize = block ? block->size : 0;
    report.siteTag = block ? block->siteTag : 0;
    report.reportTime = appNow();
    corruptionReports_.push_back(report);
    stats_.add(PurifyStat::CorruptionReports);
}

void
PurifyTool::onAccess(VirtAddr addr, std::size_t size, bool is_write)
{
    if (inToolCode_)
        return;

    CostScope scope(machine_.clock(), CostCenter::ToolAccess);
    // Base check plus a word-granularity charge for wide accesses.
    std::size_t words = (size + 7) / 8;
    machine_.clock().advance(kPurifyCheckCycles + (words - 1) * 6);
    stats_.add(PurifyStat::AccessesChecked);

    bool any_unallocated = false;
    bool any_freed = false;
    bool any_uninit_read = false;
    VirtAddr first_unallocated = 0;
    VirtAddr first_freed = 0;
    for (std::size_t i = 0; i < size; ++i) {
        switch (shadow_.get(addr + i)) {
          case ByteState::Unallocated:
            if (!any_unallocated)
                first_unallocated = addr + i;
            any_unallocated = true;
            break;
          case ByteState::Freed:
            if (!any_freed)
                first_freed = addr + i;
            any_freed = true;
            break;
          case ByteState::AllocUninit:
            if (!is_write)
                any_uninit_read = true;
            break;
          case ByteState::AllocInit:
            break;
        }
    }

    if (any_unallocated) {
        // Diagnose from the first byte that actually violates, not the
        // access base (a write may start inside a block and run past
        // its end).
        VirtAddr addr = first_unallocated;
        // Array-bounds error: identify the neighbouring block.
        const Block *owner = nullptr;
        CorruptionKind kind = CorruptionKind::OverflowPadding;
        auto it = live_.upper_bound(addr);
        if (it != live_.begin()) {
            auto prev = std::prev(it);
            // Past the end of the previous block (within its red zone)?
            if (addr >= prev->second.userAddr + prev->second.size &&
                addr < prev->second.userAddr + prev->second.size +
                           config_.redZoneBytes) {
                owner = &prev->second;
                kind = CorruptionKind::OverflowPadding;
            }
        }
        if (!owner && it != live_.end() &&
            addr + config_.redZoneBytes >= it->second.userAddr) {
            owner = &it->second;
            kind = CorruptionKind::UnderflowPadding;
        }
        reportCorruption(kind, owner, addr);
    }

    if (any_freed) {
        const Block *owner = nullptr;
        auto it = freed_.upper_bound(first_freed);
        if (it != freed_.begin()) {
            auto prev = std::prev(it);
            if (first_freed < prev->second.userAddr + prev->second.size)
                owner = &prev->second;
        }
        reportCorruption(CorruptionKind::UseAfterFree, owner, first_freed);
    }

    if (any_uninit_read) {
        ++uninitReads_;
        stats_.add(PurifyStat::UninitReads);
    }

    if (is_write) {
        machine_.clock().advance(size * kPurifyShadowByteCycles);
        // Mark written bytes initialised (only where allocated).
        for (std::size_t i = 0; i < size; ++i) {
            ByteState state = shadow_.get(addr + i);
            if (state == ByteState::AllocUninit)
                shadow_.setRange(addr + i, 1, ByteState::AllocInit);
        }
    }
}

void
PurifyTool::markAndSweep()
{
    ToolCodeGuard guard(inToolCode_);
    CostScope scope(machine_.clock(), CostCenter::ToolLeak);
    lastSweep_ = appNow();
    stats_.add(PurifyStat::Sweeps);

    // Mark phase: conservative BFS from the root set through heap words.
    std::unordered_set<VirtAddr> marked;
    std::deque<VirtAddr> worklist;

    auto block_of = [this](VirtAddr value) -> const Block * {
        auto it = live_.upper_bound(value);
        if (it == live_.begin())
            return nullptr;
        auto prev = std::prev(it);
        if (value < prev->second.userAddr + prev->second.size)
            return &prev->second;
        return nullptr;
    };

    if (rootProvider_) {
        for (VirtAddr root : rootProvider_()) {
            if (const Block *block = block_of(root)) {
                if (marked.insert(block->userAddr).second)
                    worklist.push_back(block->userAddr);
            }
        }
    }

    while (!worklist.empty()) {
        VirtAddr user = worklist.front();
        worklist.pop_front();
        const Block &block = live_.at(user);

        // Scan the block's words for values that look like pointers.
        std::size_t words = block.size / 8;
        machine_.clock().advance(words * kPurifySweepWordCycles);
        for (std::size_t i = 0; i < words; ++i) {
            std::uint64_t value =
                machine_.load<std::uint64_t>(user + i * 8);
            if (const Block *target = block_of(value)) {
                if (marked.insert(target->userAddr).second)
                    worklist.push_back(target->userAddr);
            }
        }
    }

    // Sweep phase: unmarked live blocks are leaks.
    for (const auto &[user, block] : live_) {
        if (marked.count(user) || reportedLeaked_.count(user))
            continue;
        reportedLeaked_.insert(user);
        LeakReport report;
        report.kind = LeakKind::Always;
        report.objectSize = block.size;
        report.signature = 0;
        report.siteTag = block.siteTag;
        report.liveCount = 1;
        report.reportTime = appNow();
        leakReports_.push_back(report);
        stats_.add(PurifyStat::LeakedBlocks);
    }
}

void
PurifyTool::finish()
{
    if (config_.leakScans)
        markAndSweep();
}

} // namespace safemem
