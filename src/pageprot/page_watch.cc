#include "pageprot/page_watch.h"

#include "common/logging.h"

namespace safemem {

PageWatchBackend::PageWatchBackend(Machine &machine)
    : machine_(machine)
{
}

void
PageWatchBackend::install()
{
    machine_.kernel().registerSegvHandler(
        [this](VirtAddr addr) { return onSegv(addr); });
}

void
PageWatchBackend::setFaultCallback(WatchFaultCallback callback)
{
    callback_ = std::move(callback);
}

void
PageWatchBackend::watch(VirtAddr base, std::size_t size, WatchKind kind,
                        std::uint64_t cookie)
{
    if (!isAligned(base, kPageSize) || !isAligned(size, kPageSize)
        || size == 0)
        panic("PageWatchBackend: region ", base, "+", size,
              " is not page aligned");
    for (std::size_t off = 0; off < size; off += kPageSize) {
        if (pageToRegion_.count(base + off))
            panic("PageWatchBackend: page ", base + off,
                  " already watched");
    }

    machine_.kernel().mprotectRange(base, size, false);

    for (std::size_t off = 0; off < size; off += kPageSize)
        pageToRegion_[base + off] = base;
    regions_[base] = Region{base, size, kind, cookie};
    watchedBytes_ += size;
    stats_.add(PageWatchStat::RegionsWatched);
    stats_.maxOf(PageWatchStat::PeakWatchedBytes, watchedBytes_);
}

void
PageWatchBackend::unwatch(VirtAddr base)
{
    auto it = regions_.find(base);
    if (it == regions_.end())
        panic("PageWatchBackend: unwatch of unknown region ", base);
    const Region &region = it->second;

    machine_.kernel().mprotectRange(region.base, region.size, true);
    for (std::size_t off = 0; off < region.size; off += kPageSize)
        pageToRegion_.erase(region.base + off);
    watchedBytes_ -= region.size;
    regions_.erase(it);
    stats_.add(PageWatchStat::RegionsUnwatched);
}

bool
PageWatchBackend::isWatched(VirtAddr base) const
{
    return regions_.count(base) != 0;
}

bool
PageWatchBackend::onSegv(VirtAddr addr)
{
    auto page_it = pageToRegion_.find(alignDown(addr, kPageSize));
    if (page_it == pageToRegion_.end()) {
        stats_.add(PageWatchStat::ForeignSegvs);
        return false;
    }

    auto it = regions_.find(page_it->second);
    if (it == regions_.end())
        panic("PageWatchBackend: dangling page->region mapping");
    Region region = it->second;

    CostScope scope(machine_.clock(),
                    region.kind == WatchKind::LeakSuspect
                        ? CostCenter::ToolLeak
                        : CostCenter::ToolCorruption);

    // First access is all we need: lift the protection, then dispatch.
    unwatch(region.base);
    stats_.add(PageWatchStat::AccessFaults);
    if (callback_)
        callback_(region.base, region.kind, region.cookie,
                  alignDown(addr, kPageSize),
                  machine_.kernel().lastAccessWasWrite());
    return true;
}

} // namespace safemem
