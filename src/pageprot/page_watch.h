/**
 * @file
 * Page-protection watch backend — the mechanism the paper compares ECC
 * protection against (Tables 2 and 4).
 *
 * Watching a region means mprotect(PROT_NONE) over its (page-aligned)
 * range; the first access raises SIGSEGV, which the kernel delivers to
 * the handler this backend registers. Identical detector logic runs on
 * top — only the granule (4096 vs 64 bytes) and the syscall costs
 * differ, which is exactly what drives the paper's 64-74x memory-waste
 * gap.
 */

#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "os/machine.h"
#include "safemem/watch_backend.h"

namespace safemem {

/** Slot indices into the page-watch backend StatSet; order matches kPageWatchStatNames. */
enum class PageWatchStat : std::size_t
{
    RegionsWatched,
    PeakWatchedBytes,
    RegionsUnwatched,
    ForeignSegvs,
    AccessFaults,
};

/** Report/snapshot names for PageWatchStat, in enumerator order. */
inline constexpr const char *kPageWatchStatNames[] = {
    "regions_watched",
    "peak_watched_bytes",
    "regions_unwatched",
    "foreign_segvs",
    "access_faults",
};

class PageWatchBackend : public WatchBackend
{
  public:
    explicit PageWatchBackend(Machine &machine);

    /** Register the SIGSEGV handler with the kernel. */
    void install();

    /** @name WatchBackend interface */
    /// @{
    std::size_t granule() const override { return kPageSize; }
    void setFaultCallback(WatchFaultCallback callback) override;
    void watch(VirtAddr base, std::size_t size, WatchKind kind,
               std::uint64_t cookie) override;
    void unwatch(VirtAddr base) override;
    bool isWatched(VirtAddr base) const override;
    std::size_t regionCount() const override { return regions_.size(); }
    std::uint64_t watchedBytes() const override { return watchedBytes_; }
    const StatSet &stats() const override { return stats_; }
    /// @}

    /** SIGSEGV entry point. @return true when the fault was ours. */
    bool onSegv(VirtAddr addr);

  private:
    struct Region
    {
        VirtAddr base = 0;
        std::size_t size = 0;
        WatchKind kind = WatchKind::LeakSuspect;
        std::uint64_t cookie = 0;
    };

    Machine &machine_;
    WatchFaultCallback callback_;
    std::map<VirtAddr, Region> regions_;
    std::unordered_map<VirtAddr, VirtAddr> pageToRegion_;
    std::uint64_t watchedBytes_ = 0;
    StatSet stats_{kPageWatchStatNames};
};

} // namespace safemem
