/**
 * @file
 * SimCheck: the simulator's internal invariant auditor.
 *
 * The simulator reproduces a paper about catching silent memory corruption,
 * so a silent bug in our own ECC datapath or cache writeback path would be
 * an especially embarrassing way to skew every table. SimCheck is a
 * process-wide registry of audit hooks wired into the simulator's trust
 * boundaries (memory controller, cache, kernel, allocator). Hooks are
 * compiled in unconditionally but cost one branch when disabled; tests and
 * the `--simcheck` CLI flag enable them.
 *
 * A failed audit produces a structured report through common/logging and,
 * by default, unwinds via PanicError so any test exercising the broken
 * path fails. Self-tests flip reporting to collect mode and inspect the
 * recorded violations instead.
 *
 * The auditor is shared by every Machine in the process, so its own state
 * is thread-safe: flags and the hook counter are atomics, the violation
 * record is mutex-guarded. Parallel run matrices therefore audit freely;
 * only the collect-mode *inspection* API (violations()/clearViolations())
 * assumes the caller has quiesced the machines it cares about.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"

namespace safemem {

/** Which trust boundary an audit guards. */
enum class AuditDomain : std::uint8_t
{
    MemoryController, ///< ECC encode/decode datapath, bus lock
    Cache,            ///< residency, writeback coherence
    Kernel,           ///< page table / TLB / watch bookkeeping
    Allocator         ///< free lists, block map, canaries
};

/** @return the report tag for @p domain ("mc", "cache", ...). */
const char *auditDomainName(AuditDomain domain);

/** One recorded invariant violation. */
struct AuditViolation
{
    AuditDomain domain = AuditDomain::MemoryController;
    std::string invariant; ///< stable identifier, e.g. "fill_reencode_clean"
    std::string detail;    ///< free-form context (addresses, values)
};

/**
 * Process-wide auditor. Off by default; enabling it is cheap enough to
 * leave on for every test run (audits are O(checked state), and the deep
 * sweeps are rate-limited by their callers).
 */
class SimCheck
{
  public:
    /** @return the process-wide auditor. */
    static SimCheck &instance();

    /** Master switch; all SIMCHECK_AUDIT hooks no-op while disabled. */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** @return true when audits are active. */
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /**
     * Choose the failure mode: throwing (default — a violation panics so
     * tests fail loudly) or collecting (self-tests seed deliberate
     * violations and inspect the record).
     */
    void
    setThrowOnViolation(bool on)
    {
        throwOnViolation_.store(on, std::memory_order_relaxed);
    }

    /** @return true when violations unwind via PanicError. */
    bool
    throwOnViolation() const
    {
        return throwOnViolation_.load(std::memory_order_relaxed);
    }

    /**
     * Report a failed audit: records it, emits a structured log line, and
     * (in throwing mode) panics.
     */
    void report(AuditDomain domain, const char *invariant,
                const std::string &detail);

    /** Bump the audits-run counter (one per executed hook). */
    void countAudit() { auditsRun_.fetch_add(1, std::memory_order_relaxed); }

    /** @return how many audit hooks have executed while enabled. */
    std::uint64_t
    auditsRun() const
    {
        return auditsRun_.load(std::memory_order_relaxed);
    }

    /** @return a snapshot of violations recorded since the last clear. */
    std::vector<AuditViolation> violations() const EXCLUDES(violationsMutex_);

    /** Forget recorded violations (between self-test cases). */
    void clearViolations() EXCLUDES(violationsMutex_);

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<bool> throwOnViolation_{true};
    std::atomic<std::uint64_t> auditsRun_{0};
    mutable Mutex violationsMutex_;
    std::vector<AuditViolation> violations_ GUARDED_BY(violationsMutex_);
};

/**
 * Audit hook: when SimCheck is enabled and @p cond is false, report a
 * violation of @p invariant in @p domain. Extra arguments are formatted
 * into the detail string (lazily — nothing is formatted on the fast path).
 */
#define SIMCHECK_AUDIT(domain, invariant, cond, ...)                          \
    do {                                                                      \
        ::safemem::SimCheck &simcheck_ = ::safemem::SimCheck::instance();     \
        if (simcheck_.enabled()) {                                            \
            simcheck_.countAudit();                                           \
            if (!(cond))                                                      \
                simcheck_.report((domain), (invariant),                       \
                                 ::safemem::detail::format(__VA_ARGS__));     \
        }                                                                     \
    } while (0)

/** @return true when SimCheck audits should run (guards audit loops). */
inline bool
simCheckActive()
{
    return SimCheck::instance().enabled();
}

} // namespace safemem
