#include "check/simcheck.h"

#include "trace/trace.h"

namespace safemem {

const char *
auditDomainName(AuditDomain domain)
{
    switch (domain) {
      case AuditDomain::MemoryController: return "mc";
      case AuditDomain::Cache: return "cache";
      case AuditDomain::Kernel: return "kernel";
      case AuditDomain::Allocator: return "alloc";
    }
    return "?";
}

SimCheck &
SimCheck::instance()
{
    static SimCheck auditor;
    return auditor;
}

void
SimCheck::report(AuditDomain domain, const char *invariant,
                 const std::string &detail)
{
    {
        MutexLock lock(violationsMutex_);
        violations_.push_back(AuditViolation{domain, invariant, detail});
    }

    // The thread's flight recorder (when one is installed) turns a bare
    // invariant failure into a story: the violation plus the last few
    // events that led up to it.
    std::string msg = detail::format(
        "SimCheck violation: domain=", auditDomainName(domain),
        " invariant=", invariant, detail.empty() ? "" : " ", detail,
        traceContextSummary(8));
    if (throwOnViolation())
        panic(msg);
    logMessage(LogLevel::Warn, msg);
}

std::vector<AuditViolation>
SimCheck::violations() const
{
    MutexLock lock(violationsMutex_);
    return violations_;
}

void
SimCheck::clearViolations()
{
    MutexLock lock(violationsMutex_);
    violations_.clear();
}

} // namespace safemem
