/**
 * @file
 * Segregated-free-list heap allocator over the simulated virtual memory.
 *
 * This is the substrate SafeMem, Purify and the page-protection monitor
 * interpose on, the way the paper preloads wrappers over glibc
 * malloc/free/calloc/realloc. Power-of-two size classes are carved from
 * page-backed slabs; larger requests map dedicated regions. Alignment is
 * a first-class parameter because SafeMem requires every monitored buffer
 * to be cache-line aligned (paper §4) and the page-protection baseline
 * requires page alignment.
 *
 * Block metadata is kept out-of-band (host-side), so an overflowing
 * application write lands in neighbouring *data*, never in allocator
 * metadata — which matches the paper's threat model: the tools, not the
 * allocator, are responsible for catching stray accesses.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "os/machine.h"

namespace safemem {

/** Slot indices into the allocator StatSet; order matches kAllocStatNames. */
enum class AllocStat : std::size_t
{
    SlabsMapped,
    Allocs,
    LargeAllocs,
    Frees,
    Reallocs,
};

/** Report/snapshot names for AllocStat, in enumerator order. */
inline constexpr const char *kAllocStatNames[] = {
    "slabs_mapped",
    "allocs",
    "large_allocs",
    "frees",
    "reallocs",
};

class HeapAllocator
{
  public:
    /** Default alignment of returned blocks. */
    static constexpr std::size_t kDefaultAlignment = 16;

    explicit HeapAllocator(Machine &machine);

    /**
     * Allocate @p size bytes aligned to @p alignment (power of two,
     * >= 16). @return the block's base virtual address.
     */
    VirtAddr allocate(std::size_t size,
                      std::size_t alignment = kDefaultAlignment);

    /** Free a block previously returned by allocate()/reallocate(). */
    void deallocate(VirtAddr addr);

    /**
     * Grow/shrink @p addr to @p new_size, copying the overlapping bytes
     * through the machine (so the copy is charged and observable).
     * When the block must move, the fresh block honours @p alignment —
     * callers keeping granule-aligned (watchable) buffers must pass the
     * granule here, or a moved block silently loses its alignment.
     */
    VirtAddr reallocate(VirtAddr addr, std::size_t new_size,
                        std::size_t alignment = kDefaultAlignment);

    /** calloc analog: allocate and zero @p count * @p size bytes. */
    VirtAddr allocateZeroed(std::size_t count, std::size_t size);

    /** @return the requested size of live block @p addr. */
    std::size_t blockSize(VirtAddr addr) const;

    /** @return the rounded (size-class) capacity of live block @p addr. */
    std::size_t blockCapacity(VirtAddr addr) const;

    /** @return true when @p addr is the base of a live block. */
    bool isLive(VirtAddr addr) const;

    /**
     * @return true when block @p addr (live or freed) came from a slab;
     * false for direct-mapped large blocks, whose pages are returned to
     * the kernel on free.
     */
    bool isSlabBacked(VirtAddr addr) const;

    /**
     * @return the base of the live block containing @p addr, or 0 when
     * @p addr points into no live block. Used by Purify's checker.
     */
    VirtAddr findBlock(VirtAddr addr) const;

    /** Visit every live block as (base, requested_size). */
    void forEachLive(
        const std::function<void(VirtAddr, std::size_t)> &fn) const;

    /** @return bytes currently live (sum of requested sizes). */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** @return high-water mark of liveBytes(). */
    std::uint64_t peakLiveBytes() const { return peakLiveBytes_; }

    /** @return cumulative bytes ever requested. */
    std::uint64_t totalRequestedBytes() const { return totalRequested_; }

    /** @return allocator statistics. */
    const StatSet &stats() const { return stats_; }

    /**
     * SimCheck deep audit: free-list integrity, live-block overlap,
     * metadata canaries, byte accounting. No-op when auditing is disabled;
     * runs automatically every few hundred allocator mutations and
     * directly from tests.
     */
    void auditInvariants() const;

    /** @name SimCheck self-test backdoors
     * Deliberately corrupt allocator metadata so the self-test can prove
     * the auditor notices. Never call these outside tests. */
    /// @{

    /** Overwrite one free-list link with a bogus, misaligned address. */
    void testOnlyClobberFreeList();

    /** Stomp the metadata canary of block @p addr. */
    void testOnlyClobberCanary(VirtAddr addr);
    /// @}

  private:
    /** Guard value stamped into every Block (metadata canary). */
    static constexpr std::uint64_t kBlockCanary = 0x5afe'c0de'5afe'c0deULL;

    struct Block
    {
        std::size_t requested = 0; ///< size the caller asked for
        std::size_t capacity = 0;  ///< size-class capacity
        bool live = false;
        bool slabBacked = true;    ///< false for direct-mapped large blocks
        std::uint64_t canary = kBlockCanary; ///< metadata integrity guard
    };

    /** @return the size class (chunk size) covering @p size / @p align. */
    static std::size_t sizeClass(std::size_t size, std::size_t alignment);

    /** Carve a new slab for @p chunk_size and refill its free list. */
    void refill(std::size_t chunk_size);

    /** Rate-limit auditInvariants() to every few hundred mutations. */
    void noteMutation();

    Machine &machine_;
    /** Free chunks per size class (key = chunk size). */
    std::unordered_map<std::size_t, std::vector<VirtAddr>> freeLists_;
    /** All known blocks, live and freed, ordered for containment search. */
    std::map<VirtAddr, Block> blocks_;

    std::uint64_t liveBytes_ = 0;
    std::uint64_t peakLiveBytes_ = 0;
    std::uint64_t totalRequested_ = 0;
    std::uint32_t mutationsSinceAudit_ = 0;
    StatSet stats_{kAllocStatNames};
};

} // namespace safemem
