#include "alloc/heap_allocator.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_set>

#include "check/simcheck.h"
#include "common/logging.h"

namespace safemem {

namespace {

/** Slab size for small size classes. */
constexpr std::size_t kSlabBytes = 64 * 1024;

/** Largest request served from slabs; above this we map directly. */
constexpr std::size_t kMaxSlabClass = 16 * 1024;

/** Allocator mutations between automatic SimCheck audits. */
constexpr std::uint32_t kAuditEveryMutations = 256;

} // namespace

HeapAllocator::HeapAllocator(Machine &machine)
    : machine_(machine)
{
}

std::size_t
HeapAllocator::sizeClass(std::size_t size, std::size_t alignment)
{
    // Classes are multiples of the requested alignment (at least the
    // default), so chunks carved at class-size strides inside an aligned
    // slab stay aligned, and class rounding wastes at most one stride.
    std::size_t stride = std::max(alignment, kDefaultAlignment);
    return alignUp(std::max(size, kDefaultAlignment), stride);
}

void
HeapAllocator::refill(std::size_t chunk_size)
{
    VirtAddr slab = machine_.kernel().mapRegion(kSlabBytes);
    std::vector<VirtAddr> &list = freeLists_[chunk_size];
    // Carve back-to-front so allocation order is front-to-back.
    for (std::size_t off = kSlabBytes; off >= chunk_size; off -= chunk_size)
        list.push_back(slab + off - chunk_size);
    stats_.add(AllocStat::SlabsMapped);
}

VirtAddr
HeapAllocator::allocate(std::size_t size, std::size_t alignment)
{
    if (size == 0)
        size = 1;
    if (!std::has_single_bit(alignment))
        panic("HeapAllocator: alignment ", alignment, " not a power of two");

    stats_.add(AllocStat::Allocs);
    totalRequested_ += size;

    VirtAddr addr;
    std::size_t capacity;
    bool slab_backed;

    std::size_t cls = sizeClass(size, alignment);
    if (cls <= kMaxSlabClass) {
        std::vector<VirtAddr> &list = freeLists_[cls];
        if (list.empty())
            refill(cls);
        addr = list.back();
        list.pop_back();
        capacity = cls;
        slab_backed = true;
    } else {
        // Large allocation: dedicated page-backed region.
        addr = machine_.kernel().mapRegion(alignUp(size, kPageSize));
        capacity = alignUp(size, kPageSize);
        slab_backed = false;
        stats_.add(AllocStat::LargeAllocs);
    }

    Block &block = blocks_[addr];
    block.requested = size;
    block.capacity = capacity;
    block.live = true;
    block.slabBacked = slab_backed;

    liveBytes_ += size;
    peakLiveBytes_ = std::max(peakLiveBytes_, liveBytes_);
    noteMutation();
    return addr;
}

void
HeapAllocator::deallocate(VirtAddr addr)
{
    auto it = blocks_.find(addr);
    if (it == blocks_.end() || !it->second.live)
        panic("HeapAllocator: free of non-live address ", addr);

    Block &block = it->second;
    block.live = false;
    liveBytes_ -= block.requested;
    stats_.add(AllocStat::Frees);

    if (block.slabBacked) {
        freeLists_[block.capacity].push_back(addr);
    } else {
        machine_.kernel().unmapRegion(addr, block.capacity);
        blocks_.erase(it);
    }
    noteMutation();
}

VirtAddr
HeapAllocator::reallocate(VirtAddr addr, std::size_t new_size,
                          std::size_t alignment)
{
    if (addr == 0)
        return allocate(new_size, alignment);
    auto it = blocks_.find(addr);
    if (it == blocks_.end() || !it->second.live)
        panic("HeapAllocator: realloc of non-live address ", addr);

    stats_.add(AllocStat::Reallocs);
    std::size_t old_size = it->second.requested;
    if (new_size <= it->second.capacity && addr % alignment == 0) {
        // Fits in place; adjust the accounted size.
        liveBytes_ += new_size;
        liveBytes_ -= old_size;
        peakLiveBytes_ = std::max(peakLiveBytes_, liveBytes_);
        totalRequested_ += new_size > old_size ? new_size - old_size : 0;
        it->second.requested = new_size;
        noteMutation();
        return addr;
    }

    VirtAddr fresh = allocate(new_size, alignment);
    std::vector<std::uint8_t> buffer(std::min(old_size, new_size));
    machine_.read(addr, buffer.data(), buffer.size());
    machine_.write(fresh, buffer.data(), buffer.size());
    deallocate(addr);
    return fresh;
}

VirtAddr
HeapAllocator::allocateZeroed(std::size_t count, std::size_t size)
{
    std::size_t bytes = count * size;
    VirtAddr addr = allocate(bytes);
    std::vector<std::uint8_t> zeros(bytes, 0);
    machine_.write(addr, zeros.data(), zeros.size());
    return addr;
}

std::size_t
HeapAllocator::blockSize(VirtAddr addr) const
{
    auto it = blocks_.find(addr);
    if (it == blocks_.end() || !it->second.live)
        panic("HeapAllocator: blockSize of non-live address ", addr);
    return it->second.requested;
}

std::size_t
HeapAllocator::blockCapacity(VirtAddr addr) const
{
    auto it = blocks_.find(addr);
    if (it == blocks_.end() || !it->second.live)
        panic("HeapAllocator: blockCapacity of non-live address ", addr);
    return it->second.capacity;
}

bool
HeapAllocator::isLive(VirtAddr addr) const
{
    auto it = blocks_.find(addr);
    return it != blocks_.end() && it->second.live;
}

bool
HeapAllocator::isSlabBacked(VirtAddr addr) const
{
    auto it = blocks_.find(addr);
    if (it == blocks_.end())
        panic("HeapAllocator: isSlabBacked of unknown address ", addr);
    return it->second.slabBacked;
}

VirtAddr
HeapAllocator::findBlock(VirtAddr addr) const
{
    auto it = blocks_.upper_bound(addr);
    if (it == blocks_.begin())
        return 0;
    --it;
    if (!it->second.live)
        return 0;
    if (addr < it->first + it->second.requested)
        return it->first;
    return 0;
}

void
HeapAllocator::forEachLive(
    const std::function<void(VirtAddr, std::size_t)> &fn) const
{
    for (const auto &[addr, block] : blocks_) {
        if (block.live)
            fn(addr, block.requested);
    }
}

void
HeapAllocator::noteMutation()
{
    if (!simCheckActive())
        return;
    if (++mutationsSinceAudit_ >= kAuditEveryMutations) {
        mutationsSinceAudit_ = 0;
        auditInvariants();
    }
}

void
HeapAllocator::auditInvariants() const
{
    if (!simCheckActive())
        return;

    // Block map: canaries intact, sane sizes, no overlap between
    // consecutive blocks (chunks tile slabs at class strides, large blocks
    // own whole page ranges), and byte accounting that reconciles.
    std::uint64_t live_bytes = 0;
    VirtAddr prev_end = 0;
    VirtAddr prev_addr = 0;
    for (const auto &[addr, block] : blocks_) {
        SIMCHECK_AUDIT(AuditDomain::Allocator, "metadata_canary",
                       block.canary == kBlockCanary,
                       "metadata canary of block ", addr, " clobbered");
        SIMCHECK_AUDIT(AuditDomain::Allocator, "block_capacity_sane",
                       block.capacity > 0 &&
                           (!block.live || block.requested <= block.capacity),
                       "block ", addr, " requested ", block.requested,
                       " exceeds capacity ", block.capacity);
        SIMCHECK_AUDIT(AuditDomain::Allocator, "blocks_disjoint",
                       addr >= prev_end, "block ", addr,
                       " overlaps block ", prev_addr);
        prev_end = addr + block.capacity;
        prev_addr = addr;
        if (block.live)
            live_bytes += block.requested;
    }
    SIMCHECK_AUDIT(AuditDomain::Allocator, "live_bytes_reconcile",
                   live_bytes == liveBytes_, "live blocks sum to ",
                   live_bytes, " bytes but the gauge reads ", liveBytes_);

    // Free lists: every chunk aligned, not live, of the class it is filed
    // under, and present at most once across all lists.
    std::unordered_set<VirtAddr> seen;
    for (const auto &[cls, list] : freeLists_) {
        for (VirtAddr addr : list) {
            SIMCHECK_AUDIT(AuditDomain::Allocator, "free_chunk_aligned",
                           isAligned(addr, kDefaultAlignment),
                           "free chunk ", addr, " of class ", cls,
                           " is misaligned");
            SIMCHECK_AUDIT(AuditDomain::Allocator, "free_chunk_unique",
                           seen.insert(addr).second, "chunk ", addr,
                           " appears on a free list twice");
            auto it = blocks_.find(addr);
            if (it == blocks_.end())
                continue; // carved but never handed out: no metadata yet
            SIMCHECK_AUDIT(AuditDomain::Allocator, "free_chunk_not_live",
                           !it->second.live, "live block ", addr,
                           " sits on the class-", cls, " free list");
            SIMCHECK_AUDIT(AuditDomain::Allocator, "free_chunk_class_match",
                           it->second.capacity == cls, "chunk ", addr,
                           " of capacity ", it->second.capacity,
                           " filed under class ", cls);
        }
    }
}

void
HeapAllocator::testOnlyClobberFreeList()
{
    for (auto &[cls, list] : freeLists_) {
        if (!list.empty()) {
            // Mimic a stray metadata write: the link now points one byte
            // into the chunk, which is both misaligned and off-class.
            list.back() += 1;
            return;
        }
    }
    panic("HeapAllocator::testOnlyClobberFreeList: no free chunk to "
          "clobber; free a block first");
}

void
HeapAllocator::testOnlyClobberCanary(VirtAddr addr)
{
    auto it = blocks_.find(addr);
    if (it == blocks_.end())
        panic("HeapAllocator::testOnlyClobberCanary: unknown block ", addr);
    it->second.canary ^= 0xdeadULL;
}

} // namespace safemem
