/**
 * @file
 * The flight recorder: a fixed-capacity ring buffer of binary trace
 * events covering the rare-event sequencing SafeMem's argument rests on
 * (paper §2.2, §4) — ECC interrupts, watch establish/drop, scrub
 * park/restore, hardware-vs-access fault classification.
 *
 * Design rules, mirroring the enum-stat philosophy of the hot path:
 *
 *  - an event is an enum ID, a cycle timestamp and up to three payload
 *    words; no strings are ever formatted on the emit path (the lint
 *    rule `string-trace-payload` enforces this under src/);
 *  - emitting never advances the simulated clock and never touches a
 *    StatSet, so simulated results are bit-identical with tracing on,
 *    off, or compiled out (-DSAFEMEM_TRACE=OFF);
 *  - tracing is per-run: a Trace* rides on MachineConfig / RunParams
 *    exactly like the per-run Log, so parallel runMatrix() cells record
 *    into fully independent rings and never interleave.
 *
 * Export is offline: writeTraceSection() appends one labelled binary
 * section per run to a stream, and tools/trace_dump turns the file into
 * JSON-lines. TraceScope routes the driving thread's "current trace" so
 * SimCheck can attach the last few events to a violation report.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace safemem {

/** Every recorded event kind; payload word meaning is per-event. */
enum class TraceEvent : std::uint16_t
{
    /** @name Memory controller (a = line/word address unless noted;
     *  bank-carrying payload words are 0 on a one-bank machine, so
     *  single-bank traces are byte-identical to pre-bank ones) */
    /// @{
    ControllerBusLock,            ///< a=bank locked for a scramble
    ControllerBusUnlock,          ///< a=bank released
    ControllerInterrupt,          ///< a=line, b=word index, c=fault kind
    ControllerSingleBitCorrected, ///< a=word address healed in place
    ControllerFill,               ///< a=line, b=1 clean / 0 faulted, c=bank
    ControllerEvict,              ///< a=line written back, b=bank
    ControllerScrubBegin,         ///< a=first line, b=line count, c=bank
    ControllerScrubEnd,           ///< a=first line, b=line count, c=bank
    /// @}

    /** @name Cache (sampled; every Cache::kTraceSampleInterval-th) */
    /// @{
    CacheWritebackSample, ///< a=line, b=total writebacks so far
    CacheFlushSample,     ///< a=line, b=total flushes so far
    /// @}

    /** @name Kernel */
    /// @{
    KernelSegvDelivered,      ///< a=faulting vaddr
    KernelWatchMemory,        ///< a=vaddr, b=size (syscall entry)
    KernelDisableWatchMemory, ///< a=vaddr, b=size (syscall entry)
    KernelEccInterrupt,       ///< a=phys line, b=word index, c=kind
    KernelPanicNoHandler,     ///< a=phys line; panic follows
    KernelPanicHardwareError, ///< a=phys line; panic follows
    KernelSwapOut,            ///< a=vpage
    KernelSwapIn,             ///< a=vpage, b=fresh frame
    KernelScrubTickBegin,     ///< a=bank whose scrub pass is entered
    KernelScrubTickEnd,       ///< a=bank whose scrub pass is left
    /// @}

    /** @name ECC watch manager (a = region base unless noted) */
    /// @{
    WatchEstablish,     ///< a=base, b=size, c=WatchKind
    WatchDrop,          ///< a=base, b=size
    WatchScrubPark,     ///< a=base, b=size (pre-scrub hook)
    WatchScrubRestore,  ///< a=base, b=size (post-scrub hook)
    WatchScrubCancel,   ///< a=base unwatched while scrub-parked
    WatchSwapPark,      ///< a=base, b=size (pre-swap-out hook)
    WatchSwapRestore,   ///< a=base, b=size (post-swap-in hook)
    WatchSwapCancel,    ///< a=base unwatched while swap-parked
    WatchFaultForeign,  ///< a=vline not under any watch
    WatchFaultHardware, ///< a=vline, b=owning region base
    WatchFaultAccess,   ///< a=vline, b=base, c=1 on a store
    WatchRepairDone,    ///< a=base, b=size repaired via device ops
    /// @}

    /** @name Detectors */
    /// @{
    LeakDetectionPass,  ///< a=group count, b=outstanding suspects
    LeakSuspectWatched, ///< a=object, b=watch size
    LeakSuspectPruned,  ///< a=object accessed before the deadline
    LeakReported,       ///< a=object, b=object size, c=site tag
    CorruptionReported, ///< a=fault addr, b=user addr, c=kind
    /// @}

    /** @name Scheduler / processes */
    /// @{
    SchedProcessCreated, ///< a=new pid
    SchedProcessExited,  ///< a=exiting pid
    SchedContextSwitch,  ///< a=from pid, b=to pid
    /// @}

    /** @name Block protection geometry (large-codeword EDC+ECC).
     *  Emitted only on block-geometry machines. */
    /// @{
    EdcCheckPass,    ///< a=line, b=codeword base, c=bank
    EdcCheckFail,    ///< a=line, b=codeword base, c=bank
    EccBlockDecode,  ///< a=demanded line, b=codeword base, c=bank
    PartialWriteRmw, ///< a=written line, b=codeword opened, c=bank
    /// @}

    NumEvents
};

/** Export names for TraceEvent, in enumerator order. */
inline constexpr const char *kTraceEventNames[] = {
    "controller_bus_lock",
    "controller_bus_unlock",
    "controller_interrupt",
    "controller_single_bit_corrected",
    "controller_fill",
    "controller_evict",
    "controller_scrub_begin",
    "controller_scrub_end",
    "cache_writeback_sample",
    "cache_flush_sample",
    "kernel_segv_delivered",
    "kernel_watch_memory",
    "kernel_disable_watch_memory",
    "kernel_ecc_interrupt",
    "kernel_panic_no_handler",
    "kernel_panic_hardware_error",
    "kernel_swap_out",
    "kernel_swap_in",
    "kernel_scrub_tick_begin",
    "kernel_scrub_tick_end",
    "watch_establish",
    "watch_drop",
    "watch_scrub_park",
    "watch_scrub_restore",
    "watch_scrub_cancel",
    "watch_swap_park",
    "watch_swap_restore",
    "watch_swap_cancel",
    "watch_fault_foreign",
    "watch_fault_hardware",
    "watch_fault_access",
    "watch_repair_done",
    "leak_detection_pass",
    "leak_suspect_watched",
    "leak_suspect_pruned",
    "leak_reported",
    "corruption_reported",
    "sched_process_created",
    "sched_process_exited",
    "sched_context_switch",
    "edc_check_pass",
    "edc_check_fail",
    "ecc_block_decode",
    "partial_write_rmw",
};
static_assert(sizeof(kTraceEventNames) / sizeof(kTraceEventNames[0]) ==
                  static_cast<std::size_t>(TraceEvent::NumEvents),
              "kTraceEventNames must cover every TraceEvent");

/** @return the export name of @p event ("?" out of range). */
const char *traceEventName(TraceEvent event);

/**
 * @return which payload word (0 = a, 1 = b, 2 = c) of @p event carries
 * a memory-bank id, or -1 when the event carries none. Backs the
 * trace_dump decoding of the bank payload word and the per-bank counts
 * in --summary output.
 */
int traceEventBankPayload(TraceEvent event);

/** One recorded event: ID + timestamp + raw payload words. */
struct TraceRecord
{
    Cycles cycle = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint32_t pid = 0;  ///< process running when the event fired
    TraceEvent event = TraceEvent::NumEvents;

    bool operator==(const TraceRecord &) const = default;
};

/**
 * The per-run ring buffer. Single-writer: exactly one machine (on one
 * thread) records into a Trace, which is what keeps the parallel run
 * matrix data-race free without any locking. Capacity is rounded up to
 * a power of two so the emit path is a mask, two stores and a counter
 * bump.
 */
class Trace
{
  public:
    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit Trace(std::size_t capacity = kDefaultCapacity);

    /** Record one event. Never advances any clock, never throws. */
    void
    emit(TraceEvent event, Cycles cycle, std::uint64_t a = 0,
         std::uint64_t b = 0, std::uint64_t c = 0)
    {
        TraceRecord &slot =
            ring_[static_cast<std::size_t>(seq_) & mask_];
        slot.cycle = cycle;
        slot.a = a;
        slot.b = b;
        slot.c = c;
        slot.pid = pid_;
        slot.event = event;
        ++seq_;
    }

    /** Stamp subsequent records with @p pid (the kernel's context-switch
     *  path calls this; single-process runs stay at the default 0). */
    void setPid(std::uint32_t pid) { pid_ = pid; }

    /** @return total events emitted, including overwritten ones. */
    std::uint64_t emitted() const { return seq_; }

    /** @return events lost to ring wrap-around. */
    std::uint64_t
    dropped() const
    {
        return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
    }

    /** @return events currently retained. */
    std::size_t
    size() const
    {
        return seq_ < ring_.size() ? static_cast<std::size_t>(seq_)
                                   : ring_.size();
    }

    /** @return the ring capacity (power of two). */
    std::size_t capacity() const { return ring_.size(); }

    /** Forget everything recorded so far. */
    void clear() { seq_ = 0; }

    /** @return retained records, oldest first. */
    std::vector<TraceRecord> records() const;

    /** @return the newest @p n records (fewer when the ring holds fewer),
     *  oldest first. */
    std::vector<TraceRecord> lastRecords(std::size_t n) const;

  private:
    std::vector<TraceRecord> ring_;
    std::uint64_t mask_ = 0;
    std::uint64_t seq_ = 0;
    std::uint32_t pid_ = 0;
};

/** True when emit sites are compiled in (-DSAFEMEM_TRACE=ON, default). */
inline constexpr bool kTraceCompiledIn =
#ifdef SAFEMEM_TRACE_DISABLED
    false;
#else
    true;
#endif

/**
 * RAII: publish @p trace as the current thread's flight recorder for
 * the scope's lifetime (mirrors LogScope). Consumers that cannot be
 * handed a Trace* explicitly — SimCheck::report() attaching event
 * context to a violation — read it back via currentTrace(). Scopes
 * nest and are strictly thread-local, so concurrent runs keep
 * independent recorders.
 */
class TraceScope
{
  public:
    explicit TraceScope(Trace &trace);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    Trace *previous_;
};

/** @return the thread's current flight recorder, or null. */
Trace *currentTrace();

/**
 * @return a one-line summary of the newest @p n events of the thread's
 * current trace (" | last trace events: ..."), or an empty string when
 * no trace is installed or it is empty. Used by SimCheck to attach
 * flight-recorder context to violation reports.
 */
std::string traceContextSummary(std::size_t n);

/** One run's worth of records as read back from a trace file. */
struct TraceSection
{
    std::string label;           ///< e.g. "gzip/safemem+buggy"
    std::uint64_t emitted = 0;   ///< total emitted (incl. dropped)
    std::uint64_t capacity = 0;  ///< ring capacity at write time
    std::vector<TraceRecord> records; ///< retained records, oldest first
};

/** Append @p trace's retained records to @p os as one binary section. */
void writeTraceSection(std::ostream &os, const Trace &trace,
                       const std::string &label);

/**
 * Read every section of a trace file produced by writeTraceSection().
 * Throws FatalError on a malformed or truncated stream.
 */
std::vector<TraceSection> readTraceSections(std::istream &is);

/**
 * @return record @p index of @p section as one JSON-lines object:
 * {"run":...,"seq":...,"cycle":...,"event":...,"a":...,"b":...,"c":...}
 * where seq is the record's absolute emit sequence number.
 */
std::string traceRecordJsonLine(const TraceSection &section,
                                std::size_t index);

/**
 * @return one JSON object summarising @p section: emitted/retained
 * counts, the cycle span of the retained records, and per-event counts
 * (zero-count events omitted). Backs `trace_dump --summary`.
 */
std::string traceSectionSummaryJson(const TraceSection &section);

#ifdef SAFEMEM_TRACE_DISABLED
namespace trace_detail {
/** Swallows emit arguments in compiled-out builds, keeping them "used". */
template <typename... Args>
inline void
sink(Args &&...)
{
}
} // namespace trace_detail
#define SAFEMEM_TRACE_EMIT(trace, event, cycle, ...)                        \
    do {                                                                    \
        if (false)                                                          \
            ::safemem::trace_detail::sink((trace), (event),                 \
                                          (cycle)__VA_OPT__(, )             \
                                              __VA_ARGS__);                 \
    } while (0)
#else
/**
 * Emit one event into @p trace when tracing is active (null pointer:
 * tracing is off for this run; one predictable branch). Payloads are
 * integral words only — never format strings here.
 */
#define SAFEMEM_TRACE_EMIT(trace, event, cycle, ...)                        \
    do {                                                                    \
        ::safemem::Trace *trace_target_ = (trace);                          \
        if (trace_target_)                                                  \
            trace_target_->emit((event), (cycle)__VA_OPT__(, )              \
                                             __VA_ARGS__);                  \
    } while (0)
#endif

} // namespace safemem
