#include "trace/trace.h"

#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace safemem {
namespace {

/// Section framing for writeTraceSection()/readTraceSections().
constexpr char kTraceMagic[4] = {'S', 'F', 'T', 'R'};
/// v2 added the pid word to every serialized record.
constexpr std::uint32_t kTraceVersion = 2;

/// The driving thread's flight recorder (TraceScope; mirrors the Log
/// routing in common/logging.cc — per-thread, so parallel runMatrix
/// cells never see each other's recorder).
thread_local Trace *t_threadTrace = nullptr;

std::size_t
roundUpPow2(std::size_t value)
{
    std::size_t pow2 = 1;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

template <typename T>
void
putScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
getScalar(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(is);
}

/// JSON string escaping for section labels (quotes, backslashes and
/// control characters; labels are app/tool names so this is all they
/// can ever need).
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace

const char *
traceEventName(TraceEvent event)
{
    auto index = static_cast<std::size_t>(event);
    if (index >= static_cast<std::size_t>(TraceEvent::NumEvents))
        return "?";
    return kTraceEventNames[index];
}

int
traceEventBankPayload(TraceEvent event)
{
    switch (event) {
    case TraceEvent::ControllerBusLock:
    case TraceEvent::ControllerBusUnlock:
    case TraceEvent::KernelScrubTickBegin:
    case TraceEvent::KernelScrubTickEnd:
        return 0;
    case TraceEvent::ControllerEvict:
        return 1;
    case TraceEvent::ControllerFill:
    case TraceEvent::ControllerScrubBegin:
    case TraceEvent::ControllerScrubEnd:
    case TraceEvent::EdcCheckPass:
    case TraceEvent::EdcCheckFail:
    case TraceEvent::EccBlockDecode:
    case TraceEvent::PartialWriteRmw:
        return 2;
    default:
        return -1;
    }
}

Trace::Trace(std::size_t capacity)
{
    if (capacity < 16)
        capacity = 16;
    ring_.resize(roundUpPow2(capacity));
    mask_ = ring_.size() - 1;
}

std::vector<TraceRecord>
Trace::records() const
{
    return lastRecords(ring_.size());
}

std::vector<TraceRecord>
Trace::lastRecords(std::size_t n) const
{
    std::size_t available = size();
    if (n > available)
        n = available;
    std::vector<TraceRecord> out;
    out.reserve(n);
    for (std::uint64_t seq = seq_ - n; seq != seq_; ++seq)
        out.push_back(ring_[static_cast<std::size_t>(seq) & mask_]);
    return out;
}

TraceScope::TraceScope(Trace &trace)
    : previous_(t_threadTrace)
{
    t_threadTrace = &trace;
}

TraceScope::~TraceScope()
{
    t_threadTrace = previous_;
}

Trace *
currentTrace()
{
    return t_threadTrace;
}

std::string
traceContextSummary(std::size_t n)
{
    const Trace *trace = currentTrace();
    if (!trace || trace->emitted() == 0)
        return "";
    std::ostringstream out;
    out << " | last trace events:";
    for (const TraceRecord &rec : trace->lastRecords(n))
        out << " " << traceEventName(rec.event) << "@" << rec.cycle << "("
            << rec.a << "," << rec.b << "," << rec.c << ")";
    return out.str();
}

void
writeTraceSection(std::ostream &os, const Trace &trace,
                  const std::string &label)
{
    os.write(kTraceMagic, sizeof(kTraceMagic));
    putScalar(os, kTraceVersion);
    putScalar(os, static_cast<std::uint32_t>(label.size()));
    os.write(label.data(),
             static_cast<std::streamsize>(label.size()));
    putScalar(os, trace.emitted());
    putScalar(os, static_cast<std::uint64_t>(trace.capacity()));
    std::vector<TraceRecord> records = trace.records();
    putScalar(os, static_cast<std::uint64_t>(records.size()));
    for (const TraceRecord &rec : records) {
        putScalar(os, rec.cycle);
        putScalar(os, rec.a);
        putScalar(os, rec.b);
        putScalar(os, rec.c);
        putScalar(os, rec.pid);
        putScalar(os, static_cast<std::uint16_t>(rec.event));
    }
}

std::vector<TraceSection>
readTraceSections(std::istream &is)
{
    std::vector<TraceSection> sections;
    while (true) {
        char magic[4];
        is.read(magic, sizeof(magic));
        if (is.eof() && is.gcount() == 0)
            break;
        if (!is || std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
            throw FatalError("trace: bad section magic (not a trace file, "
                             "or truncated mid-section)");
        std::uint32_t version = 0;
        std::uint32_t label_len = 0;
        if (!getScalar(is, version) || version != kTraceVersion)
            throw FatalError("trace: unsupported section version");
        if (!getScalar(is, label_len) || label_len > 4096)
            throw FatalError("trace: corrupt section label length");
        TraceSection section;
        section.label.resize(label_len);
        is.read(section.label.data(), label_len);
        std::uint64_t count = 0;
        if (!is || !getScalar(is, section.emitted) ||
            !getScalar(is, section.capacity) || !getScalar(is, count) ||
            count > section.capacity)
            throw FatalError("trace: corrupt section header");
        section.records.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
            TraceRecord rec;
            std::uint16_t event = 0;
            if (!getScalar(is, rec.cycle) || !getScalar(is, rec.a) ||
                !getScalar(is, rec.b) || !getScalar(is, rec.c) ||
                !getScalar(is, rec.pid) || !getScalar(is, event))
                throw FatalError("trace: truncated record stream");
            rec.event = static_cast<TraceEvent>(event);
            section.records.push_back(rec);
        }
        sections.push_back(std::move(section));
    }
    return sections;
}

std::string
traceRecordJsonLine(const TraceSection &section, std::size_t index)
{
    const TraceRecord &rec = section.records.at(index);
    // Absolute sequence number: the section retains the newest records,
    // so record 0 is (emitted - retained).
    std::uint64_t seq =
        section.emitted - section.records.size() + index;
    std::ostringstream out;
    out << "{\"run\":\"" << jsonEscape(section.label) << "\",\"seq\":" << seq
        << ",\"cycle\":" << rec.cycle << ",\"pid\":" << rec.pid
        << ",\"event\":\"" << traceEventName(rec.event) << "\",\"a\":" << rec.a
        << ",\"b\":" << rec.b << ",\"c\":" << rec.c;
    // Decode the bank payload word for bank-carrying events, so readers
    // need not know which of a/b/c holds it per event.
    int bank_word = traceEventBankPayload(rec.event);
    if (bank_word >= 0) {
        std::uint64_t bank =
            bank_word == 0 ? rec.a : bank_word == 1 ? rec.b : rec.c;
        out << ",\"bank\":" << bank;
    }
    out << "}";
    return out.str();
}

std::string
traceSectionSummaryJson(const TraceSection &section)
{
    // Per-event counts over the retained records, plus the cycle span
    // they cover — enough to skim a long consolidated trace for which
    // sections saw interrupts, switches or scrub traffic.
    std::uint64_t counts[static_cast<std::size_t>(TraceEvent::NumEvents)] =
        {};
    std::map<std::uint64_t, std::uint64_t> bank_counts;
    Cycles first = 0;
    Cycles last = 0;
    for (std::size_t i = 0; i < section.records.size(); ++i) {
        const TraceRecord &rec = section.records[i];
        auto index = static_cast<std::size_t>(rec.event);
        if (index < static_cast<std::size_t>(TraceEvent::NumEvents))
            ++counts[index];
        int bank_word = traceEventBankPayload(rec.event);
        if (bank_word >= 0)
            ++bank_counts[bank_word == 0   ? rec.a
                          : bank_word == 1 ? rec.b
                                           : rec.c];
        if (i == 0)
            first = rec.cycle;
        last = rec.cycle;
    }
    std::ostringstream out;
    out << "{\"run\":\"" << jsonEscape(section.label)
        << "\",\"emitted\":" << section.emitted
        << ",\"retained\":" << section.records.size()
        << ",\"cycle_first\":" << first << ",\"cycle_last\":" << last
        << ",\"events\":{";
    bool comma = false;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceEvent::NumEvents); ++i) {
        if (counts[i] == 0)
            continue;
        if (comma)
            out << ",";
        out << "\"" << kTraceEventNames[i] << "\":" << counts[i];
        comma = true;
    }
    out << "},\"bank_events\":{";
    comma = false;
    for (const auto &[bank, count] : bank_counts) {
        if (comma)
            out << ",";
        out << "\"" << bank << "\":" << count;
        comma = true;
    }
    out << "}}";
    return out.str();
}

} // namespace safemem
