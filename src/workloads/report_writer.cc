#include "workloads/report_writer.h"

#include <sstream>

#include "common/types.h"

namespace safemem {

namespace {

/** Seconds of simulated CPU time, formatted. */
std::string
seconds(Cycles cycles)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed
       << static_cast<double>(cycles) / kCpuFrequencyHz << " s";
    return os.str();
}

/**
 * Which tool kinds produce leak findings worth a summary line. Every
 * ToolKind enumerator must appear here: the switch is exhaustive (a new
 * kind fails the -Werror build until classified) and the repo lint's
 * toolkind-plumbing rule checks this file names each enumerator.
 */
bool
showsLeakFindings(ToolKind kind)
{
    switch (kind) {
      case ToolKind::None: return false;
      case ToolKind::SafeMemML: return true;
      case ToolKind::SafeMemMC: return false;
      case ToolKind::SafeMemBoth: return true;
      case ToolKind::SafeMemSampled: return true;
      case ToolKind::PageProtBoth: return true;
      case ToolKind::Purify: return true;
    }
    return false;
}

/** Which tool kinds produce corruption findings worth a summary line. */
bool
showsCorruptionFindings(ToolKind kind)
{
    switch (kind) {
      case ToolKind::None: return false;
      case ToolKind::SafeMemML: return false;
      case ToolKind::SafeMemMC: return true;
      case ToolKind::SafeMemBoth: return true;
      case ToolKind::SafeMemSampled: return true;
      case ToolKind::PageProtBoth: return true;
      case ToolKind::Purify: return true;
    }
    return false;
}

} // namespace

double
safeRatePercent(std::uint64_t num, std::uint64_t den)
{
    if (den == 0)
        return 0.0;
    return 100.0 * static_cast<double>(num) / static_cast<double>(den);
}

double
safeMean(double sum, std::uint64_t count)
{
    if (count == 0)
        return 0.0;
    return sum / static_cast<double>(count);
}

std::string
formatVerdict(const RunResult &result)
{
    std::ostringstream os;
    if (result.bugDetected) {
        os << "BUG DETECTED in " << result.app << ":";
        if (result.leakReportsTrue > 0)
            os << " memory leak at the injected site";
        if (result.corruptionTrue > 0)
            os << " memory corruption at the injected site";
    } else if (result.leakReportsFalse > 0 ||
               result.corruptionFalse > 0) {
        os << result.app << ": no injected bug found, but "
           << (result.leakReportsFalse + result.corruptionFalse)
           << " other finding(s) reported";
    } else {
        os << result.app << ": clean run, nothing reported";
    }
    return os.str();
}

std::string
formatRunSummary(const RunResult &result)
{
    std::ostringstream os;
    os << "=== " << result.app << " under " << toolKindName(result.tool)
       << " (" << (result.buggy ? "buggy" : "normal") << " inputs)";
    if (!result.procs.empty())
        os << " x" << result.procs.size() << " consolidated processes";
    os << " ===\n";
    os << "  simulated time     " << seconds(result.totalCycles)
       << " total, " << seconds(result.appCycles) << " application\n";

    // Only block-geometry machines have an EDC fast path to report on;
    // the word default keeps the exact pre-geometry report text.
    if (!result.geometry.isWord()) {
        auto stat = [&](const char *name) -> std::uint64_t {
            auto it = result.stats.find(name);
            return it == result.stats.end() ? 0 : it->second;
        };
        os << "  geometry           " << geometryName(result.geometry)
           << ": " << stat("geometry.edc_checks_passed")
           << " EDC passes / " << stat("geometry.edc_checks_failed")
           << " misses, " << stat("geometry.block_decodes")
           << " block decodes, " << stat("geometry.partial_write_rmws")
           << " RMW writebacks\n";
    }

    // Consolidated run: one detector report per process, then the
    // machine-wide contention counters for the shared resources.
    for (const ProcResult &proc : result.procs) {
        os << "  [pid " << proc.pid << "] leaks " << proc.leakReportsTrue
           << " at the bug site / " << proc.leakReportsFalse
           << " elsewhere, corruptions " << proc.corruptionTrue << " / "
           << proc.corruptionFalse;
        if (proc.tool == ToolKind::SafeMemSampled) {
            auto stat = [&](const char *name) -> std::uint64_t {
                auto it = proc.stats.find(name);
                return it == proc.stats.end() ? 0 : it->second;
            };
            std::uint64_t sampled = stat("sampled.sampled_allocs");
            std::uint64_t total =
                sampled + stat("sampled.unsampled_allocs");
            os.precision(2);
            os << std::fixed << ", sampled " << sampled << "/" << total
               << " (" << safeRatePercent(sampled, total) << "%)";
        }
        os << " -> "
           << (proc.bugDetected ? "BUG DETECTED" : "no bug found") << "\n";
    }
    if (!result.procs.empty()) {
        auto stat = [&](const char *name) -> std::uint64_t {
            auto it = result.stats.find(name);
            return it == result.stats.end() ? 0 : it->second;
        };
        os << "  contention         "
           << stat("cache.cross_proc_evictions")
           << " cross-process evictions, "
           << stat("sched.context_switches") << " context switches, "
           << stat("kernel.scrub_passes")
           << " shared scrub passes\n";
    }

    if (result.tool == ToolKind::SafeMemSampled) {
        auto stat = [&](const char *name) -> std::uint64_t {
            auto it = result.stats.find(name);
            return it == result.stats.end() ? 0 : it->second;
        };
        // Consolidated runs carry the sampling counters per process;
        // sum them so the machine-wide line is meaningful either way.
        std::uint64_t sampled = stat("sampled.sampled_allocs");
        std::uint64_t unsampled = stat("sampled.unsampled_allocs");
        for (const ProcResult &proc : result.procs) {
            auto find = [&](const char *name) -> std::uint64_t {
                auto it = proc.stats.find(name);
                return it == proc.stats.end() ? 0 : it->second;
            };
            sampled += find("sampled.sampled_allocs");
            unsampled += find("sampled.unsampled_allocs");
        }
        std::uint64_t total = sampled + unsampled;
        os.precision(2);
        os << std::fixed << "  sampling           " << sampled << " of "
           << total << " allocations monitored ("
           << safeRatePercent(sampled, total) << "%)";
        if (result.firstCatchCycles > 0)
            os << ", first catch at " << seconds(result.firstCatchCycles)
               << " app time";
        os << "\n";
    }
    if (showsLeakFindings(result.tool)) {
        os << "  leak findings      " << result.leakReportsTrue
           << " at the bug site, " << result.leakReportsFalse
           << " elsewhere";
        if (result.prunedSuspects > 0)
            os << " (" << result.prunedSuspects
               << " suspects pruned by access)";
        os << "\n";
    }
    if (showsCorruptionFindings(result.tool)) {
        os << "  corruption findings " << result.corruptionTrue
           << " at the bug site, " << result.corruptionFalse
           << " elsewhere\n";
    }
    if (result.userBytes > 0) {
        os.precision(2);
        os << std::fixed << "  monitoring space   "
           << result.wasteBytes << " padding bytes over "
           << result.userBytes << " requested ("
           << result.wastePercent() << "%)\n";
    }
    os << "  " << formatVerdict(result) << "\n";
    return os.str();
}

std::string
formatOverhead(const RunResult &run, const RunResult &baseline)
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << toolKindName(run.tool) << " overhead on "
       << run.app << ": " << overheadPercent(run, baseline) << "% ("
       << seconds(run.totalCycles) << " vs "
       << seconds(baseline.totalCycles) << ")";
    return os.str();
}

std::string
formatStats(const RunResult &result, const std::string &prefix)
{
    std::ostringstream os;
    for (const auto &[name, value] : result.stats) {
        if (name.rfind(prefix, 0) == 0)
            os << "  " << name << " = " << value << "\n";
    }
    return os.str();
}

} // namespace safemem
