#include "workloads/report_writer.h"

#include <sstream>

#include "common/types.h"

namespace safemem {

namespace {

/** Seconds of simulated CPU time, formatted. */
std::string
seconds(Cycles cycles)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed
       << static_cast<double>(cycles) / kCpuFrequencyHz << " s";
    return os.str();
}

} // namespace

std::string
formatVerdict(const RunResult &result)
{
    std::ostringstream os;
    if (result.bugDetected) {
        os << "BUG DETECTED in " << result.app << ":";
        if (result.leakReportsTrue > 0)
            os << " memory leak at the injected site";
        if (result.corruptionTrue > 0)
            os << " memory corruption at the injected site";
    } else if (result.leakReportsFalse > 0 ||
               result.corruptionFalse > 0) {
        os << result.app << ": no injected bug found, but "
           << (result.leakReportsFalse + result.corruptionFalse)
           << " other finding(s) reported";
    } else {
        os << result.app << ": clean run, nothing reported";
    }
    return os.str();
}

std::string
formatRunSummary(const RunResult &result)
{
    std::ostringstream os;
    os << "=== " << result.app << " under " << toolKindName(result.tool)
       << " (" << (result.buggy ? "buggy" : "normal") << " inputs)";
    if (!result.procs.empty())
        os << " x" << result.procs.size() << " consolidated processes";
    os << " ===\n";
    os << "  simulated time     " << seconds(result.totalCycles)
       << " total, " << seconds(result.appCycles) << " application\n";

    // Consolidated run: one detector report per process, then the
    // machine-wide contention counters for the shared resources.
    for (const ProcResult &proc : result.procs) {
        os << "  [pid " << proc.pid << "] leaks " << proc.leakReportsTrue
           << " at the bug site / " << proc.leakReportsFalse
           << " elsewhere, corruptions " << proc.corruptionTrue << " / "
           << proc.corruptionFalse << " -> "
           << (proc.bugDetected ? "BUG DETECTED" : "no bug found") << "\n";
    }
    if (!result.procs.empty()) {
        auto stat = [&](const char *name) -> std::uint64_t {
            auto it = result.stats.find(name);
            return it == result.stats.end() ? 0 : it->second;
        };
        os << "  contention         "
           << stat("cache.cross_proc_evictions")
           << " cross-process evictions, "
           << stat("sched.context_switches") << " context switches, "
           << stat("kernel.scrub_passes")
           << " shared scrub passes\n";
    }

    if (result.tool == ToolKind::SafeMemML ||
        result.tool == ToolKind::SafeMemBoth ||
        result.tool == ToolKind::PageProtBoth ||
        result.tool == ToolKind::Purify) {
        os << "  leak findings      " << result.leakReportsTrue
           << " at the bug site, " << result.leakReportsFalse
           << " elsewhere";
        if (result.prunedSuspects > 0)
            os << " (" << result.prunedSuspects
               << " suspects pruned by access)";
        os << "\n";
    }
    if (result.tool != ToolKind::None &&
        result.tool != ToolKind::SafeMemML) {
        os << "  corruption findings " << result.corruptionTrue
           << " at the bug site, " << result.corruptionFalse
           << " elsewhere\n";
    }
    if (result.userBytes > 0) {
        os.precision(2);
        os << std::fixed << "  monitoring space   "
           << result.wasteBytes << " padding bytes over "
           << result.userBytes << " requested ("
           << result.wastePercent() << "%)\n";
    }
    os << "  " << formatVerdict(result) << "\n";
    return os.str();
}

std::string
formatOverhead(const RunResult &run, const RunResult &baseline)
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << toolKindName(run.tool) << " overhead on "
       << run.app << ": " << overheadPercent(run, baseline) << "% ("
       << seconds(run.totalCycles) << " vs "
       << seconds(baseline.totalCycles) << ")";
    return os.str();
}

std::string
formatStats(const RunResult &result, const std::string &prefix)
{
    std::ostringstream os;
    for (const auto &[name, value] : result.stats) {
        if (name.rfind(prefix, 0) == 0)
            os << "  " << name << " = " << value << "\n";
    }
    return os.str();
}

} // namespace safemem
