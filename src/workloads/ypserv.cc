#include "workloads/ypserv.h"

#include <cstring>
#include <vector>

#include "common/random.h"
#include "workloads/sites.h"

namespace safemem {

namespace {

/** Allocation sites. */
constexpr std::uint64_t kSiteMapIndex = makeSite(kAppYpserv, 1);
constexpr std::uint64_t kSiteMapRecord = makeSite(kAppYpserv, 2);
constexpr std::uint64_t kSiteRequestCtx = makeSite(kAppYpserv, 3);
constexpr std::uint64_t kSiteRequestCtxBuggy =
    makeSite(kAppYpserv, 3, true);
constexpr std::uint64_t kSiteMatchResp = makeSite(kAppYpserv, 4);
constexpr std::uint64_t kSiteYpAllBatch = makeSite(kAppYpserv, 5, true);

/** Synthetic functions (shadow-stack frames). */
constexpr std::uint64_t kFnBuildMaps = funcId(kAppYpserv, 1);
constexpr std::uint64_t kFnYpMatch = funcId(kAppYpserv, 2);
constexpr std::uint64_t kFnYpAll = funcId(kAppYpserv, 3);
constexpr std::uint64_t kFnFpBase = funcId(kAppYpserv, 16);

constexpr std::size_t kNumRecords = 256;
constexpr std::size_t kRecordSize = 128;
constexpr std::size_t kIndexSlots = 512;

/** Per-request compute budget (cycles): parse, hash, serialise, send. */
constexpr Cycles kParseCycles = 240'000;
constexpr Cycles kLookupCycles = 360'000;
constexpr Cycles kSerializeCycles = 720'000;
constexpr Cycles kSendCycles = 360'000;
constexpr Cycles kErrorPathCycles = 1'260'000;
constexpr Cycles kYpAllCycles = 1'440'000;

} // namespace

void
YpservApp::run(Env &env, const RunParams &params)
{
    Rng rng(params.seed * 7919 + 11);
    bool aleak_variant = variant_ == Variant::AlwaysLeak;

    // ---- Startup: build the NIS maps -------------------------------
    FrameGuard main_frame(env.stack(), funcId(kAppYpserv, 0));

    SimPointerTable index(env, kIndexSlots, kSiteMapIndex);
    std::vector<VirtAddr> records;
    {
        FrameGuard frame(env.stack(), kFnBuildMaps);
        for (std::size_t i = 0; i < kNumRecords; ++i) {
            VirtAddr record = env.alloc(kRecordSize, kSiteMapRecord);
            std::uint8_t payload[kRecordSize];
            for (std::size_t b = 0; b < kRecordSize; ++b)
                payload[b] = static_cast<std::uint8_t>(i + b);
            env.write(record, payload, kRecordSize);
            index.set(env, i * 2, record);
            records.push_back(record);
            env.compute(2'000);
        }
    }

    // ---- Background behaviours that create FP pressure -------------
    std::vector<ChurnPoolSite> churn;
    std::vector<GrowingPoolSite> growing;
    std::size_t churn_sites = aleak_variant ? 4 : 1;
    std::size_t growing_sites = aleak_variant ? 3 : 1;
    for (std::size_t i = 0; i < churn_sites; ++i) {
        ChurnPoolSite::Params p;
        p.siteTag = makeSite(kAppYpserv, 32 + static_cast<std::uint32_t>(i));
        p.functionId = kFnFpBase + i * 0x40;
        p.objectSize = 96 + i * 32;
        churn.emplace_back(p);
    }
    for (std::size_t i = 0; i < growing_sites; ++i) {
        GrowingPoolSite::Params p;
        p.siteTag = makeSite(kAppYpserv, 48 + static_cast<std::uint32_t>(i));
        p.functionId = kFnFpBase + 0x400 + i * 0x40;
        p.objectSize = 64 + i * 64;
        growing.emplace_back(p);
    }

    // ---- Request loop -----------------------------------------------
    std::uint8_t scratch[1024];
    for (std::uint64_t r = 0; r < params.requests; ++r) {
        for (auto &site : churn)
            site.tick(env, r);
        for (auto &site : growing)
            site.tick(env, r);

        bool yp_all = aleak_variant && params.buggy && rng.chance(0.30);
        if (yp_all) {
            // yp_all: enumerate a whole map into one batch buffer. The
            // ypserv1 bug: the batch buffer is never freed.
            FrameGuard frame(env.stack(), kFnYpAll);
            VirtAddr batch = env.alloc(1024, kSiteYpAllBatch);
            for (std::size_t i = 0; i < 8; ++i) {
                env.read(records[rng.range(0, kNumRecords - 1)], scratch,
                         kRecordSize);
                env.write(batch + i * kRecordSize, scratch, kRecordSize);
            }
            env.compute(kYpAllCycles);
            env.read(batch, scratch, 1024); // "send" to the client
            env.dropRef(batch);             // the leak
            continue;
        }

        // yp_match: the common request.
        FrameGuard frame(env.stack(), kFnYpMatch);
        bool sleak_variant = variant_ == Variant::SometimesLeak;
        std::uint64_t ctx_tag =
            sleak_variant ? kSiteRequestCtxBuggy : kSiteRequestCtx;
        VirtAddr ctx = env.alloc(192, ctx_tag);
        env.fill(ctx, static_cast<std::uint8_t>(r), 64);
        env.compute(kParseCycles);

        // Buggy ypserv2 inputs contain keys that miss the map.
        bool miss = sleak_variant && params.buggy && rng.chance(0.06);
        if (miss) {
            env.compute(kErrorPathCycles);
            // The ypserv2 bug: the error path returns without freeing
            // the request context.
            env.dropRef(ctx);
            continue;
        }

        std::size_t key = rng.range(0, kNumRecords - 1);
        VirtAddr record = index.get(env, key * 2);
        env.read(record, scratch, kRecordSize);
        env.compute(kLookupCycles);

        VirtAddr resp = env.alloc(256, kSiteMatchResp);
        env.write(resp, scratch, kRecordSize);
        env.compute(kSerializeCycles);
        env.read(resp, scratch, 256); // "send"
        env.compute(kSendCycles);

        env.free(resp);
        env.free(ctx);
    }

    // ---- Orderly shutdown -------------------------------------------
    for (auto &site : churn)
        site.drain(env);
    for (auto &site : growing)
        site.drain(env);
    for (VirtAddr record : records)
        env.free(record);
    index.destroy(env);
}

} // namespace safemem
