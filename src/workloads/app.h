/**
 * @file
 * Base interface of the seven workload applications (paper Table 1).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "ecc/codec.h"
#include "ecc/geometry.h"
#include "workloads/env.h"

namespace safemem {

class Trace;

/** Run parameters shared by all applications. */
struct RunParams
{
    /** Number of requests / work items to process. */
    std::uint64_t requests = 2000;
    /** Buggy inputs: the injected bug triggers. Normal inputs do not
     *  exercise the bug (the paper measures overhead on normal inputs). */
    bool buggy = false;
    /**
     * Deterministic RNG seed for the request stream. Together with
     * requests/buggy it fully determines a run: same parameters, same
     * RunResult, bit for bit, regardless of what else the process is
     * doing — the contract runMatrix() builds on.
     */
    std::uint64_t seed = 1;
    /**
     * ECC codec the run's machine is built with. Part of the RunSpec
     * identity like seed/requests: same spec, same RunResult. The
     * default names the shared (72,64) Hsiao code and takes the exact
     * pre-pluggable datapath (no per-run codec is constructed).
     */
    EccCodecSpec codec;
    /**
     * Memory banks the run's machine is built with (MachineConfig::banks).
     * Part of the run identity like seed/codec: same spec, same
     * RunResult. 1 (the default) is the original single-bus chipset and
     * reproduces the pre-bank results bit for bit.
     */
    std::uint32_t banks = 1;
    /**
     * SampledSafeMem (ToolKind::SafeMemSampled): probability an
     * allocation is admitted into the detectors; other tools ignore it.
     * Part of the run identity like seed/banks: same spec, same
     * RunResult. 1.0 (the default) monitors every allocation and is
     * detection-equivalent to full SafeMem.
     */
    double sampleRate = 1.0;
    /**
     * Protection geometry the run's machine is built with
     * (MachineConfig::geometry). Part of the run identity like
     * seed/codec/banks: same spec, same RunResult. The word default is
     * the per-word SEC-DED datapath and reproduces the pre-geometry
     * results bit for bit; block geometries add the "geometry.*" stat
     * family to the result.
     */
    ProtectionGeometry geometry{};
    /**
     * Per-run log sink (must outlive the run); the driver routes every
     * message the run emits — kernel warnings, SimCheck reports — to
     * it, so concurrent runs cannot interleave or share quiet state.
     * Null: the process-default sink, gated by the deprecated
     * setLogQuiet() shim.
     */
    const Log *log = nullptr;
    /**
     * Per-run flight recorder (must outlive the run); routed like
     * `log` — the driver installs it on the run's thread and on the
     * machine, so concurrent runMatrix() cells each record into their
     * own ring. Null: tracing off.
     */
    Trace *trace = nullptr;
};

class App
{
  public:
    virtual ~App() = default;

    /** Short application name as used in the paper's tables. */
    virtual const char *name() const = 0;

    /** Execute the workload in @p env. */
    virtual void run(Env &env, const RunParams &params) = 0;
};

/** @return the application registered under @p name (or nullptr). */
std::unique_ptr<App> makeApp(const std::string &name);

/** @return all seven application names in paper order. */
const std::vector<std::string> &appNames();

} // namespace safemem
