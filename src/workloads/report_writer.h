/**
 * @file
 * Human-readable reports over RunResult — what a deployed SafeMem would
 * print to its log. Used by the CLI runner and available to library
 * users who want formatted findings instead of raw structs.
 */

#pragma once

#include <string>

#include "workloads/driver.h"

namespace safemem {

/** Multi-line summary of one run: tool, timing, findings, space. */
std::string formatRunSummary(const RunResult &result);

/**
 * One-line verdict: "BUG DETECTED: ..." / "clean run" — the line an
 * operator greps for.
 */
std::string formatVerdict(const RunResult &result);

/** Overhead line comparing @p run against @p baseline. */
std::string formatOverhead(const RunResult &run,
                           const RunResult &baseline);

/** Render selected named counters, one per line, indented. */
std::string formatStats(const RunResult &result,
                        const std::string &prefix);

/** @name Guarded rate arithmetic
 * Report cells routinely divide by counts that can be zero — a tenant
 * that sampled nothing, a rate with no detecting seeds. These helpers
 * are the single place that guards those divisions so no table or JSON
 * cell ever renders NaN/inf. */
/// @{

/** @return 100 * num / den, or 0.0 when @p den is zero. */
double safeRatePercent(std::uint64_t num, std::uint64_t den);

/** @return sum / count, or 0.0 when @p count is zero. */
double safeMean(double sum, std::uint64_t count);
/// @}

} // namespace safemem
