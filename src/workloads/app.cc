#include "workloads/app.h"

#include "workloads/gzip_app.h"
#include "workloads/proftpd.h"
#include "workloads/squid.h"
#include "workloads/streaming.h"
#include "workloads/tar_app.h"
#include "workloads/ypserv.h"

namespace safemem {

std::unique_ptr<App>
makeApp(const std::string &name)
{
    if (name == "ypserv1")
        return std::make_unique<YpservApp>(YpservApp::Variant::AlwaysLeak);
    if (name == "ypserv2")
        return std::make_unique<YpservApp>(
            YpservApp::Variant::SometimesLeak);
    if (name == "proftpd")
        return std::make_unique<ProftpdApp>();
    if (name == "squid1")
        return std::make_unique<SquidApp>(SquidApp::Variant::Leak);
    if (name == "squid2")
        return std::make_unique<SquidApp>(SquidApp::Variant::Corruption);
    if (name == "gzip")
        return std::make_unique<GzipApp>();
    if (name == "tar")
        return std::make_unique<TarApp>();
    // Not in appNames(): "stream" is the geometry lab's workload, kept
    // out of the paper-order sweeps ("all", Tables 3-5) on purpose.
    if (name == "stream")
        return std::make_unique<StreamApp>();
    return nullptr;
}

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = {
        "ypserv1", "proftpd", "squid1", "ypserv2",
        "gzip",    "tar",     "squid2",
    };
    return names;
}

} // namespace safemem
