#include "workloads/cli.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "check/simcheck.h"
#include "mem/bank.h"
#include "trace/trace.h"
#include "workloads/report_writer.h"

namespace safemem {

std::optional<ToolKind>
toolKindFromName(const std::string &name)
{
    for (ToolKind kind : {ToolKind::None, ToolKind::SafeMemML,
                          ToolKind::SafeMemMC, ToolKind::SafeMemBoth,
                          ToolKind::SafeMemSampled, ToolKind::PageProtBoth,
                          ToolKind::Purify}) {
        if (name == toolKindName(kind))
            return kind;
    }
    return std::nullopt;
}

std::string
cliUsage()
{
    std::ostringstream os;
    os << "usage: safemem_run <app|all> [options]\n"
       << "       safemem_run campaign [campaign options]\n"
       << "\n"
       << "apps:";
    for (const std::string &name : appNames())
        os << " " << name;
    os << "\n"
       << "('all' sweeps every app under the selected tool;\n"
       << " 'campaign' runs the ECC fault-injection campaign instead)\n"
       << "\noptions:\n"
       << "  --tool <name>     none | safemem-ml | safemem-mc | safemem |"
          " safemem-sampled |\n"
       << "                    pageprot | purify (default: safemem)\n"
       << "  --sample-rate <r> safemem-sampled: fraction of allocations\n"
       << "                    monitored, in (0, 1] (default: 1.0)\n"
       << "  --buggy           use bug-triggering inputs\n"
       << "  --requests <n>    work items to process (default: per app)\n"
       << "  --seed <n>        request-stream seed (default: 42)\n"
       << "  --workers <n>     parallel runs for sweeps/overhead pairs\n"
       << "                    (default: 1 = sequential, 0 = all cores)\n"
       << "  --procs <n>       consolidate n instances of the workload as\n"
       << "                    separate processes on one machine "
          "(default: 1)\n"
       << "  --banks <n>       page-interleaved memory banks, each\n"
       << "                    independently lockable (1-"
       << kMaxMemoryBanks << ", default: 1)\n"
       << "  --overhead        also run uninstrumented and report the "
          "overhead\n"
       << "  --stats[=prefix]  dump run counters (optionally filtered)\n"
       << "  --simcheck        enable the SimCheck invariant auditor\n"
       << "  --trace <file>    record a flight-recorder trace per run;\n"
       << "                    decode with tools/trace_dump\n"
       << "  --codec <spec>    ECC codec the machine runs: hsiao (default)"
          " |\n"
       << "                    hamming64/8 | hsiao:<d>[/<k>]\n"
       << "  --geometry <g>    protection geometry: word (default) |\n"
       << "                    block:<512|1024|4096>[/parity|/crc32]\n"
       << "\ncampaign options:\n"
       << "  --codec <spec>    codec to sweep (repeatable; default: the\n"
       << "                    full zoo: hsiao, hamming64/8, hsiao:64/8)\n"
       << "  --samples <n>     trials per sampled cell (default: 20000)\n"
       << "  --seed <n>        campaign seed (default: 42)\n"
       << "  --workers <n>     worker threads, results independent of n\n"
       << "                    (default: 1, 0 = all cores)\n"
       << "  --out <file>      also write the campaign JSON document\n";
    return os.str();
}

CliParse
parseCliArguments(const std::vector<std::string> &args)
{
    CliParse result;
    if (args.empty()) {
        result.message = cliUsage();
        return result;
    }

    CliOptions options;
    options.params.seed = 42;
    options.params.requests = 0; // resolved after the app is known

    std::size_t i = 0;
    options.app = args[i++];
    options.allApps = options.app == "all";
    options.campaign = options.app == "campaign";
    if (!options.allApps && !options.campaign && !makeApp(options.app)) {
        result.message = "unknown application '" + options.app + "'\n\n" +
                         cliUsage();
        return result;
    }

    auto need_value = [&](const std::string &flag) -> const std::string * {
        if (i >= args.size()) {
            result.message = flag + " needs a value\n\n" + cliUsage();
            return nullptr;
        }
        return &args[i++];
    };

    if (options.campaign) {
        while (i < args.size()) {
            const std::string &arg = args[i++];
            if (arg != "--codec" && arg != "--samples" &&
                arg != "--seed" && arg != "--workers" && arg != "--out") {
                result.message =
                    "unknown campaign option '" + arg + "'\n\n" +
                    cliUsage();
                return result;
            }
            const std::string *value = need_value(arg);
            if (!value)
                return result;
            if (arg == "--codec") {
                auto spec = parseCodecSpec(*value);
                if (!spec) {
                    result.message = "unknown codec '" + *value + "'\n\n" +
                                     cliUsage();
                    return result;
                }
                options.campaignConfig.codecs.push_back(*spec);
            } else if (arg == "--samples") {
                options.campaignConfig.samples = std::stoull(*value);
            } else if (arg == "--seed") {
                options.campaignConfig.seed = std::stoull(*value);
            } else if (arg == "--workers") {
                options.campaignConfig.workers =
                    static_cast<unsigned>(std::stoul(*value));
            } else if (arg == "--out") {
                options.campaignOut = *value;
            }
        }
        result.options = options;
        return result;
    }

    while (i < args.size()) {
        const std::string &arg = args[i++];
        if (arg == "--buggy") {
            options.params.buggy = true;
        } else if (arg == "--overhead") {
            options.compareBaseline = true;
        } else if (arg == "--simcheck") {
            options.simCheck = true;
        } else if (arg == "--stats") {
            options.dumpStats = true;
        } else if (arg.rfind("--stats=", 0) == 0) {
            options.dumpStats = true;
            options.statsPrefix = arg.substr(8);
        } else if (arg == "--tool") {
            const std::string *value = need_value("--tool");
            if (!value)
                return result;
            auto kind = toolKindFromName(*value);
            if (!kind) {
                result.message =
                    "unknown tool '" + *value + "'\n\n" + cliUsage();
                return result;
            }
            options.tool = *kind;
        } else if (arg == "--requests") {
            const std::string *value = need_value("--requests");
            if (!value)
                return result;
            options.params.requests = std::stoull(*value);
        } else if (arg == "--seed") {
            const std::string *value = need_value("--seed");
            if (!value)
                return result;
            options.params.seed = std::stoull(*value);
        } else if (arg == "--sample-rate") {
            const std::string *value = need_value("--sample-rate");
            if (!value)
                return result;
            double rate = 0.0;
            try {
                rate = std::stod(*value);
            } catch (const std::exception &) {
                rate = 0.0;
            }
            if (!(rate > 0.0) || rate > 1.0) {
                result.message =
                    "--sample-rate needs a value in (0, 1]\n\n" +
                    cliUsage();
                return result;
            }
            options.params.sampleRate = rate;
        } else if (arg == "--trace") {
            const std::string *value = need_value("--trace");
            if (!value)
                return result;
            options.traceFile = *value;
        } else if (arg == "--codec") {
            const std::string *value = need_value("--codec");
            if (!value)
                return result;
            auto spec = parseCodecSpec(*value);
            if (!spec) {
                result.message =
                    "unknown codec '" + *value + "'\n\n" + cliUsage();
                return result;
            }
            options.params.codec = *spec;
        } else if (arg == "--geometry") {
            const std::string *value = need_value("--geometry");
            if (!value)
                return result;
            auto geometry = parseGeometry(*value);
            if (!geometry) {
                result.message =
                    "unknown geometry '" + *value + "'\n\n" + cliUsage();
                return result;
            }
            options.params.geometry = *geometry;
        } else if (arg == "--workers") {
            const std::string *value = need_value("--workers");
            if (!value)
                return result;
            options.workers =
                static_cast<unsigned>(std::stoul(*value));
        } else if (arg == "--procs") {
            const std::string *value = need_value("--procs");
            if (!value)
                return result;
            options.procs =
                static_cast<std::uint32_t>(std::stoul(*value));
            if (options.procs < 1) {
                result.message =
                    "--procs needs at least 1\n\n" + cliUsage();
                return result;
            }
        } else if (arg == "--banks") {
            const std::string *value = need_value("--banks");
            if (!value)
                return result;
            options.params.banks =
                static_cast<std::uint32_t>(std::stoul(*value));
            if (options.params.banks < 1 ||
                options.params.banks > kMaxMemoryBanks) {
                result.message = "--banks needs 1-" +
                                 std::to_string(kMaxMemoryBanks) + "\n\n" +
                                 cliUsage();
                return result;
            }
        } else {
            result.message =
                "unknown option '" + arg + "'\n\n" + cliUsage();
            return result;
        }
    }

    // "all" keeps requests at 0: each swept app resolves its own
    // default when the matrix is assembled in runCli().
    if (options.params.requests == 0 && !options.allApps)
        options.params.requests = defaultRequests(options.app);
    result.options = options;
    return result;
}

namespace {

/** Assemble the sweep/overhead matrix one CLI invocation describes. */
std::vector<RunSpec>
cliSpecs(const CliOptions &options)
{
    std::vector<RunSpec> specs;
    const bool baseline =
        options.compareBaseline && options.tool != ToolKind::None;
    std::vector<std::string> apps;
    if (options.allApps)
        apps = appNames();
    else
        apps.push_back(options.app);

    for (const std::string &app : apps) {
        RunParams params = options.params;
        if (params.requests == 0)
            params.requests = defaultRequests(app);
        specs.push_back(RunSpec{app, options.tool, params, options.procs});
        if (baseline)
            specs.push_back(
                RunSpec{app, ToolKind::None, params, options.procs});
    }
    return specs;
}

/** @return the trace-section label of @p spec, e.g. "gzip/safemem+buggy". */
std::string
traceLabel(const RunSpec &spec)
{
    std::string label = spec.app;
    label += "/";
    label += toolKindName(spec.tool);
    if (spec.params.buggy)
        label += "+buggy";
    if (spec.procs > 1)
        label += "+procs" + std::to_string(spec.procs);
    if (spec.params.banks > 1)
        label += "+banks" + std::to_string(spec.params.banks);
    if (!spec.params.geometry.isWord())
        label += "+" + geometryLabel(spec.params.geometry);
    return label;
}

} // namespace

std::string
runCli(const CliOptions &options)
{
    if (options.campaign) {
        CampaignResult campaign = runCampaign(options.campaignConfig);
        std::string report = formatCampaignReport(campaign);
        if (!options.campaignOut.empty()) {
            std::ofstream file(options.campaignOut);
            if (!file) {
                report += "cannot write campaign file '" +
                          options.campaignOut + "'\n";
            } else {
                file << campaignJson(campaign);
                report += "campaign json -> " + options.campaignOut + "\n";
            }
        }
        return report;
    }

    if (options.simCheck)
        SimCheck::instance().setEnabled(true);

    const bool baseline =
        options.compareBaseline && options.tool != ToolKind::None;
    const std::size_t per_app = baseline ? 2 : 1;
    std::vector<RunSpec> specs = cliSpecs(options);

    // One independent flight recorder per matrix cell: parallel runs
    // never share a ring, and the file keeps one section per run.
    std::vector<std::unique_ptr<Trace>> traces;
    if (!options.traceFile.empty()) {
        traces.reserve(specs.size());
        for (RunSpec &spec : specs) {
            traces.push_back(std::make_unique<Trace>());
            spec.params.trace = traces.back().get();
        }
    }

    std::vector<MatrixCell> cells = runMatrix(specs, options.workers);

    std::ostringstream os;
    for (std::size_t i = 0; i < cells.size(); i += per_app) {
        const MatrixCell &cell = cells[i];
        if (!cell.ok()) {
            os << cell.spec.app << ": run failed: " << cell.error << "\n";
            continue;
        }
        os << formatRunSummary(cell.result);
        if (baseline) {
            const MatrixCell &base = cells[i + 1];
            if (base.ok())
                os << "  " << formatOverhead(cell.result, base.result)
                   << "\n";
            else
                os << "  baseline run failed: " << base.error << "\n";
        }
        if (options.dumpStats)
            os << "\ncounters:\n"
               << formatStats(cell.result, options.statsPrefix);
    }

    if (!options.traceFile.empty()) {
        std::ofstream file(options.traceFile, std::ios::binary);
        if (!file) {
            os << "cannot write trace file '" << options.traceFile
               << "'\n";
        } else {
            for (std::size_t i = 0; i < specs.size(); ++i)
                writeTraceSection(file, *traces[i],
                                  traceLabel(specs[i]));
            os << "trace: " << specs.size() << " run section"
               << (specs.size() == 1 ? "" : "s") << " -> "
               << options.traceFile << "\n";
        }
    }
    return os.str();
}

} // namespace safemem
