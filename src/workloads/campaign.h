/**
 * @file
 * Multithreaded ECC fault-injection campaign engine.
 *
 * Sweeps {fail mode: none / random / random-burst} x {error count
 * 1..maxErrors} x {codec}, injecting bit upsets into whole codewords
 * (data + check bits) and scoring each decode against ground truth:
 *
 *   - corrected:    decoder output equals the original data word;
 *   - detected:     decoder raised Uncorrectable (the interrupt case);
 *   - miscorrected: decoder claimed success but returned *wrong* data —
 *                   the silent corruption SEC-DED exists to prevent and
 *                   the number that decides whether SafeMem's scramble
 *                   trick survives a codec (mat_ecc_ram's methodology).
 *
 * Small spaces run exhaustively (every 1- and 2-bit upset, every burst
 * offset); larger ones are seeded-random sampled. Cells fan out over
 * the run-matrix thread pool; every cell derives its RNG from the
 * campaign seed and its own index, so results are bit-identical for
 * any worker count. Each codec also carries a scramble-viability
 * verdict from findScramblePositions() — the paper's (72,64) Hsiao
 * code hosts a signature, classic Hamming 64/8 cannot.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ecc/codec.h"

namespace safemem {

/** How a campaign cell injects errors into a codeword. */
enum class FailMode : std::uint8_t
{
    None,       ///< no upsets: the clean-path control cell
    Random,     ///< n errors at independent random bit positions
    RandomBurst ///< n errors at contiguous positions (one burst)
};

/** @return a short printable name for @p mode. */
const char *failModeName(FailMode mode);

/** Parameters of one campaign run. */
struct CampaignConfig
{
    /** Codecs to sweep; empty = the full zoo (hsiao, hamming64/8,
     *  hsiao:64/8). */
    std::vector<EccCodecSpec> codecs;
    /** Largest injected error count per codeword. */
    int maxErrors = 8;
    /** Trials per cell when the space is too large to exhaust. */
    std::uint64_t samples = 20000;
    /** Campaign seed; every cell mixes in its own index. */
    std::uint64_t seed = 42;
    /** Worker threads (0 = all cores); never changes the results. */
    unsigned workers = 1;
};

/** Outcome counts of one (codec, mode, error count) cell. */
struct CampaignCell
{
    FailMode mode = FailMode::None;
    /** Injected errors per codeword (0 for FailMode::None). */
    int errors = 0;
    /** True when every error pattern in the space was enumerated. */
    bool exhaustive = false;
    std::uint64_t trials = 0;
    std::uint64_t corrected = 0;
    std::uint64_t detected = 0;
    std::uint64_t miscorrected = 0;

    bool operator==(const CampaignCell &) const = default;
};

/** One codec's campaign slice: its cells plus the scramble verdict. */
struct CodecCampaign
{
    EccCodecSpec spec;
    std::string name;
    int dataBits = 0;
    int checkBits = 0;
    /** True when findScramblePositions() found a guaranteed-
     *  uncorrectable bit triple for this codec. */
    bool scrambleViable = false;
    /** The triple (valid only when scrambleViable). */
    std::array<int, 3> scrambleBits{};
    /** Cells in sweep order: none, random 1..max, burst 1..max. */
    std::vector<CampaignCell> cells;

    bool operator==(const CodecCampaign &) const = default;
};

/** Everything a campaign produced, in codec sweep order. */
struct CampaignResult
{
    int maxErrors = 0;
    std::uint64_t samples = 0;
    std::uint64_t seed = 0;
    std::vector<CodecCampaign> codecs;

    /** Field-for-field equality — the bit-identical-sweeps contract. */
    bool operator==(const CampaignResult &) const = default;
};

/** Run the campaign described by @p config. */
CampaignResult runCampaign(const CampaignConfig &config);

/** @return the human-readable campaign report (CLI output). */
std::string formatCampaignReport(const CampaignResult &result);

/**
 * @return the BENCH_ecc_campaign.json document for @p result: config
 * echo, per-codec cells with corrected/detected/miscorrected counts,
 * per-codec rate CDFs over cells, and the scramble-viability verdicts.
 */
std::string campaignJson(const CampaignResult &result);

} // namespace safemem
