/**
 * @file
 * Allocation-site tags and synthetic function ids.
 *
 * Each workload allocation site carries a 64-bit tag: the low bits name
 * the app and site, bit 63 is the ground-truth "this site is the bug"
 * marker. Detectors treat tags as opaque; only the experiment driver
 * interprets them, to score detections (Table 3) and false positives
 * (Table 5).
 *
 * Function ids act as the return addresses pushed on the shadow stack;
 * they determine call-stack signatures, so two sites calling malloc from
 * different synthetic functions land in different memory-object groups.
 */

#pragma once

#include <cstdint>

namespace safemem {

/** Ground-truth marker: the tagged site is the injected bug. */
inline constexpr std::uint64_t kBuggySiteBit = 1ULL << 63;

/** Compose a site tag. */
constexpr std::uint64_t
makeSite(std::uint32_t app_id, std::uint32_t site_id, bool buggy = false)
{
    return (static_cast<std::uint64_t>(app_id) << 32) | site_id |
           (buggy ? kBuggySiteBit : 0);
}

/** @return true when @p tag marks the injected bug site. */
constexpr bool
isBuggySite(std::uint64_t tag)
{
    return (tag & kBuggySiteBit) != 0;
}

/** Synthetic function id ("return address") for the shadow stack. */
constexpr std::uint64_t
funcId(std::uint32_t app_id, std::uint32_t function)
{
    return 0x400000ULL + (static_cast<std::uint64_t>(app_id) << 20) +
           function * 0x40ULL;
}

/** App ids. */
inline constexpr std::uint32_t kAppYpserv = 1;
inline constexpr std::uint32_t kAppProftpd = 2;
inline constexpr std::uint32_t kAppSquid = 3;
inline constexpr std::uint32_t kAppGzip = 4;
inline constexpr std::uint32_t kAppTar = 5;
inline constexpr std::uint32_t kAppStream = 6;

} // namespace safemem
