#include "workloads/tar_app.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "workloads/sites.h"

namespace safemem {

namespace {

constexpr std::uint64_t kSiteArchive = makeSite(kAppTar, 1);
constexpr std::uint64_t kSiteHeader = makeSite(kAppTar, 2);
constexpr std::uint64_t kSiteName = makeSite(kAppTar, 3, true);

constexpr std::uint64_t kFnAddFile = funcId(kAppTar, 1);
constexpr std::uint64_t kFnChecksum = funcId(kAppTar, 2);

constexpr std::size_t kNameBufBytes = 128;
constexpr std::size_t kHeaderBytes = 512;
constexpr std::size_t kArchiveBytes = 64 * 1024;

constexpr Cycles kStatCycles = 140'000;
constexpr Cycles kChecksumCycles = 160'000;
constexpr Cycles kPerBlockCycles = 40'000;

} // namespace

void
TarApp::run(Env &env, const RunParams &params)
{
    Rng rng(params.seed * 31337 + 23);
    FrameGuard main_frame(env.stack(), funcId(kAppTar, 0));

    VirtAddr archive = env.alloc(kArchiveBytes, kSiteArchive);
    std::size_t archive_pos = 0;
    std::uint8_t block[512];

    for (std::uint64_t file = 0; file < params.requests; ++file) {
        FrameGuard frame(env.stack(), kFnAddFile);

        // Build the path. Buggy inputs contain deeply nested paths that
        // exceed the 128-byte name buffer every ~40th file.
        std::string path = "backup/home/user" +
            std::to_string(file % 17) + "/documents/file" +
            std::to_string(file) + ".dat";
        if (params.buggy && file % 40 == 7) {
            while (path.size() < 140)
                path += "/deeply-nested-directory";
            path.resize(140);
        }

        env.compute(kStatCycles);

        // The tar bug: the path is copied with no length check into a
        // fixed-size name buffer.
        VirtAddr name_buf = env.alloc(kNameBufBytes, kSiteName);
        env.write(name_buf, path.data(), path.size() + 1);

        // Header: name, metadata fields, checksum.
        VirtAddr header = env.alloc(kHeaderBytes, kSiteHeader);
        env.copy(header, name_buf,
                 std::min(path.size() + 1, kNameBufBytes));
        std::uint64_t size_field = 512 + rng.range(0, 15) * 512;
        env.store<std::uint64_t>(header + 124, size_field);
        env.store<std::uint64_t>(header + 136, 0644);
        {
            FrameGuard sum_frame(env.stack(), kFnChecksum);
            env.read(header, block, kHeaderBytes);
            env.compute(kChecksumCycles);
            env.store<std::uint64_t>(header + 148, file * 7919);
        }

        // Append header, then the file's data blocks.
        if (archive_pos + kHeaderBytes > kArchiveBytes)
            archive_pos = 0; // archive buffer drained to disk
        env.copy(archive + archive_pos, header, kHeaderBytes);
        archive_pos += kHeaderBytes;

        for (std::uint64_t off = 0; off < size_field; off += 512) {
            for (std::size_t b = 0; b < 512; ++b)
                block[b] = static_cast<std::uint8_t>(file + off + b);
            if (archive_pos + 512 > kArchiveBytes)
                archive_pos = 0;
            env.write(archive + archive_pos, block, 512);
            archive_pos += 512;
            env.compute(kPerBlockCycles);
        }

        env.free(header);
        env.free(name_buf);
    }

    env.free(archive);
}

} // namespace safemem
