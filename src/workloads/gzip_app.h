/**
 * @file
 * gzip — a compression utility model (paper Table 1).
 *
 * Compresses a stream of 8 KiB blocks with a small LZ77-style coder
 * whose hash-chain table, input and output buffers live in simulated
 * memory. The injected bug: the 16-byte stream trailer is written
 * without checking the remaining output space. Normal (compressible)
 * inputs leave plenty of room; buggy (incompressible) inputs fill the
 * output buffer completely and the trailer lands past its end.
 */

#pragma once

#include "workloads/app.h"

namespace safemem {

class GzipApp : public App
{
  public:
    const char *name() const override { return "gzip"; }
    void run(Env &env, const RunParams &params) override;
};

} // namespace safemem
