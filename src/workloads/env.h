/**
 * @file
 * The execution environment handed to workload applications.
 *
 * Env is the seam between an application and whatever tool is (or is
 * not) monitoring it: dynamic-memory calls route through the Tool
 * (malloc-wrapper interposition), loads/stores go to the simulated
 * machine (where the Purify access hook and ECC watchpoints live), and
 * compute() charges pure-CPU work.
 *
 * Env also tracks the application's *root set* — which heap pointers the
 * program currently holds in globals/locals. alloc() registers the new
 * pointer; free() and dropRef() forget it. dropRef() is how a workload
 * models a leak: the memory stays allocated but the last reference is
 * gone. The root set feeds Purify's conservative mark-and-sweep;
 * SafeMem never looks at it.
 */

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/shadow_stack.h"
#include "common/tool.h"
#include "os/machine.h"

namespace safemem {

class Env
{
  public:
    Env(Machine &machine, HeapAllocator &allocator, Tool &tool);

    /** @name Dynamic memory (interposed through the Tool) */
    /// @{
    VirtAddr alloc(std::size_t size, std::uint64_t site_tag = 0);
    VirtAddr callocBytes(std::size_t count, std::size_t size,
                         std::uint64_t site_tag = 0);
    VirtAddr reallocBytes(VirtAddr addr, std::size_t new_size,
                          std::uint64_t site_tag = 0);
    void free(VirtAddr addr);

    /** Forget the pointer without freeing: this is a leak. */
    void dropRef(VirtAddr addr);
    /// @}

    /** @name Memory accesses (via the simulated machine) */
    /// @{
    void read(VirtAddr addr, void *out, std::size_t size);
    void write(VirtAddr addr, const void *in, std::size_t size);

    template <typename T>
    T
    load(VirtAddr addr)
    {
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    store(VirtAddr addr, T value)
    {
        write(addr, &value, sizeof(T));
    }

    /** memset analog. */
    void fill(VirtAddr addr, std::uint8_t value, std::size_t size);

    /** memcpy analog (simulated memory to simulated memory). */
    void copy(VirtAddr dst, VirtAddr src, std::size_t size);
    /// @}

    /** Pure computation of @p cycles (hashing, parsing, I/O waits...). */
    void compute(Cycles cycles);

    /** @return application CPU time (excludes tool overhead). */
    Cycles appNow() const;

    /** @return the shadow call stack (apps push frames around sites). */
    ShadowStack &stack() { return stack_; }

    /** @return the current root set (pointer values the app holds). */
    std::vector<VirtAddr> roots() const;

    /** @return the underlying machine. */
    Machine &machine() { return machine_; }

    /** @return the underlying allocator. */
    HeapAllocator &allocator() { return allocator_; }

  private:
    Machine &machine_;
    HeapAllocator &allocator_;
    Tool &tool_;
    ShadowStack stack_;
    std::unordered_set<VirtAddr> roots_;
};

} // namespace safemem
