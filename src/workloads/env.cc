#include "workloads/env.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace safemem {

Env::Env(Machine &machine, HeapAllocator &allocator, Tool &tool)
    : machine_(machine), allocator_(allocator), tool_(tool)
{
}

VirtAddr
Env::alloc(std::size_t size, std::uint64_t site_tag)
{
    VirtAddr addr = tool_.toolAlloc(size, stack_, site_tag);
    roots_.insert(addr);
    return addr;
}

VirtAddr
Env::callocBytes(std::size_t count, std::size_t size,
                 std::uint64_t site_tag)
{
    VirtAddr addr = tool_.toolCalloc(count, size, stack_, site_tag);
    roots_.insert(addr);
    return addr;
}

VirtAddr
Env::reallocBytes(VirtAddr addr, std::size_t new_size,
                  std::uint64_t site_tag)
{
    if (addr != 0)
        roots_.erase(addr);
    VirtAddr fresh = tool_.toolRealloc(addr, new_size, stack_, site_tag);
    roots_.insert(fresh);
    return fresh;
}

void
Env::free(VirtAddr addr)
{
    roots_.erase(addr);
    tool_.toolFree(addr);
}

void
Env::dropRef(VirtAddr addr)
{
    if (!roots_.erase(addr))
        panic("Env::dropRef: ", addr, " is not a held reference");
}

void
Env::read(VirtAddr addr, void *out, std::size_t size)
{
    machine_.read(addr, out, size);
}

void
Env::write(VirtAddr addr, const void *in, std::size_t size)
{
    machine_.write(addr, in, size);
}

void
Env::fill(VirtAddr addr, std::uint8_t value, std::size_t size)
{
    std::vector<std::uint8_t> buffer(std::min<std::size_t>(size, 4096),
                                     value);
    while (size > 0) {
        std::size_t chunk = std::min(size, buffer.size());
        machine_.write(addr, buffer.data(), chunk);
        addr += chunk;
        size -= chunk;
    }
}

void
Env::copy(VirtAddr dst, VirtAddr src, std::size_t size)
{
    std::vector<std::uint8_t> buffer(std::min<std::size_t>(size, 4096));
    while (size > 0) {
        std::size_t chunk = std::min(size, buffer.size());
        machine_.read(src, buffer.data(), chunk);
        machine_.write(dst, buffer.data(), chunk);
        src += chunk;
        dst += chunk;
        size -= chunk;
    }
}

void
Env::compute(Cycles cycles)
{
    machine_.compute(cycles);
    tool_.onCompute(cycles);
}

Cycles
Env::appNow() const
{
    return machine_.clock().charged(CostCenter::Application);
}

std::vector<VirtAddr>
Env::roots() const
{
    return std::vector<VirtAddr>(roots_.begin(), roots_.end());
}

} // namespace safemem
