/**
 * @file
 * Building blocks shared by the workload applications.
 *
 * SimPointerTable keeps an index of heap pointers *inside simulated
 * memory*, the way a real server keeps its hash buckets on the heap —
 * this is what makes Purify's conservative mark-and-sweep actually
 * traverse something.
 *
 * ChurnPoolSite and GrowingPoolSite reproduce the two memory-usage
 * behaviours that generate leak false positives in real servers (paper
 * §6.4): objects from a mostly-short-lived group that occasionally live
 * far past the group's maximal lifetime and are then touched
 * (keep-alive client state), and append-only pools that keep growing
 * but whose old entries are still consulted now and then (in-memory
 * logs, growing indexes).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "workloads/env.h"

namespace safemem {

/** Fixed-size array of 64-bit slots (pointers) in simulated memory. */
class SimPointerTable
{
  public:
    /** Allocate the table via @p env (all slots zeroed). */
    SimPointerTable(Env &env, std::size_t slots, std::uint64_t site_tag);

    /** Free the table. */
    void destroy(Env &env);

    /** @return the value stored in @p slot. */
    std::uint64_t get(Env &env, std::size_t slot) const;

    /** Store @p value into @p slot. */
    void set(Env &env, std::size_t slot, std::uint64_t value);

    /** @return number of slots. */
    std::size_t size() const { return slots_; }

    /** @return base address of the table. */
    VirtAddr base() const { return base_; }

  private:
    VirtAddr base_ = 0;
    std::size_t slots_ = 0;
};

/**
 * A mostly-short-lived allocation site where every Nth object is held
 * much longer, then *touched* and freed — an SLeak false positive.
 */
class ChurnPoolSite
{
  public:
    struct Params
    {
        std::uint64_t siteTag = 0;
        std::uint64_t functionId = 0; ///< shadow-stack frame for the site
        std::size_t objectSize = 96;
        std::uint32_t allocEvery = 6;  ///< allocate every Nth request
        std::uint32_t shortHold = 3;   ///< requests a normal object lives
        std::uint32_t longEvery = 8;   ///< every Nth object is long-lived
        std::uint32_t longHold = 12;   ///< requests a long object lives
        bool touchBeforeFree = true;   ///< touch long objects (prunes FP)
    };

    explicit ChurnPoolSite(Params params) : params_(params) {}

    /** Advance one request: allocate one object, retire due ones. */
    void tick(Env &env, std::uint64_t request);

    /** Free everything still held. */
    void drain(Env &env);

  private:
    struct Held
    {
        VirtAddr addr = 0;
        std::uint64_t freeAt = 0;
        bool longLived = false;
    };

    Params params_;
    std::deque<Held> held_;
    std::uint64_t counter_ = 0;
};

/**
 * An append-only pool that grows past the ALeak live-object threshold
 * while periodically re-reading its oldest entries — an ALeak false
 * positive.
 */
class GrowingPoolSite
{
  public:
    struct Params
    {
        std::uint64_t siteTag = 0;
        std::uint64_t functionId = 0;
        std::size_t objectSize = 64;
        std::uint32_t growEvery = 4;  ///< append every Nth request
        std::uint32_t touchEvery = 4; ///< re-read oldest entries period
        std::uint32_t touchCount = 4; ///< how many oldest to re-read
    };

    explicit GrowingPoolSite(Params params) : params_(params) {}

    /** Advance one request. */
    void tick(Env &env, std::uint64_t request);

    /** Free the whole pool. */
    void drain(Env &env);

  private:
    Params params_;
    std::vector<VirtAddr> entries_;
};

} // namespace safemem
