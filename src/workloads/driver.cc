#include "workloads/driver.h"

#include <atomic>
#include <memory>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "trace/trace.h"
#include "pageprot/page_watch.h"
#include "purify/purify.h"
#include "safemem/safemem.h"
#include "safemem/sampled.h"
#include "safemem/watch_manager.h"
#include "workloads/null_tool.h"
#include "workloads/sites.h"

namespace safemem {

const char *
toolKindName(ToolKind kind)
{
    switch (kind) {
      case ToolKind::None: return "none";
      case ToolKind::SafeMemML: return "safemem-ml";
      case ToolKind::SafeMemMC: return "safemem-mc";
      case ToolKind::SafeMemBoth: return "safemem";
      case ToolKind::SafeMemSampled: return "safemem-sampled";
      case ToolKind::PageProtBoth: return "pageprot";
      case ToolKind::Purify: return "purify";
    }
    return "?";
}

std::uint64_t
defaultRequests(const std::string &app_name)
{
    if (app_name == "gzip")
        return 80; // blocks
    if (app_name == "tar")
        return 400; // files
    if (app_name == "stream")
        return 48; // 64 KiB batches
    return 2000; // server requests
}

namespace {

/** Copy every counter of @p stats into @p out under @p prefix. */
void
mergeStats(std::map<std::string, std::uint64_t> &out,
           const std::string &prefix, const StatSet &stats)
{
    for (const auto &[name, value] : stats.all())
        out[prefix + "." + name] = value;
}

/**
 * One process's monitoring configuration: allocator, watch backend,
 * tool, environment. Built while the owning process is the kernel's
 * current process, so every handler/hook registration lands on it.
 */
struct ToolStack
{
    std::unique_ptr<HeapAllocator> allocator;
    std::unique_ptr<EccWatchManager> eccBackend;
    std::unique_ptr<PageWatchBackend> pageBackend;
    std::unique_ptr<SafeMemTool> safememTool;
    std::unique_ptr<PurifyTool> purifyTool;
    std::unique_ptr<NullTool> nullTool;
    std::unique_ptr<Env> env;
    Tool *active = nullptr;
    /** Set when safememTool is the sampled variant (owned above). */
    SampledSafeMemTool *sampled = nullptr;
};

/** Assemble the @p tool stack for the kernel's current process. */
ToolStack
makeToolStack(Machine &machine, ToolKind tool, const RunParams &params)
{
    ToolStack stack;
    stack.allocator = std::make_unique<HeapAllocator>(machine);

    auto make_safemem = [&](WatchBackend &backend, bool ml, bool mc) {
        SafeMemConfig config;
        config.detectLeaks = ml;
        config.detectCorruption = mc;
        stack.safememTool = std::make_unique<SafeMemTool>(
            machine, *stack.allocator, backend, config);
        stack.active = stack.safememTool.get();
    };

    switch (tool) {
      case ToolKind::None:
        stack.nullTool =
            std::make_unique<NullTool>(machine, *stack.allocator);
        stack.active = stack.nullTool.get();
        break;

      case ToolKind::SafeMemML:
      case ToolKind::SafeMemMC:
      case ToolKind::SafeMemBoth:
        stack.eccBackend = std::make_unique<EccWatchManager>(machine);
        stack.eccBackend->installFaultHandler();
        stack.eccBackend->installScrubHooks();
        make_safemem(*stack.eccBackend, tool != ToolKind::SafeMemMC,
                     tool != ToolKind::SafeMemML);
        break;

      case ToolKind::SafeMemSampled: {
        stack.eccBackend = std::make_unique<EccWatchManager>(machine);
        stack.eccBackend->installFaultHandler();
        stack.eccBackend->installScrubHooks();
        SafeMemConfig config;
        config.sampleRate = params.sampleRate;
        // The run seed keys the sampling stream; together with the pid
        // and the allocation ordinal it makes every decision a pure
        // function of the RunSpec (the bit-identity contract).
        config.sampleSeed = params.seed;
        auto sampled = std::make_unique<SampledSafeMemTool>(
            machine, *stack.allocator, *stack.eccBackend, config,
            machine.kernel().currentPid());
        stack.sampled = sampled.get();
        stack.safememTool = std::move(sampled);
        stack.active = stack.safememTool.get();
        break;
      }

      case ToolKind::PageProtBoth:
        stack.pageBackend = std::make_unique<PageWatchBackend>(machine);
        stack.pageBackend->install();
        make_safemem(*stack.pageBackend, true, true);
        break;

      case ToolKind::Purify:
        stack.purifyTool =
            std::make_unique<PurifyTool>(machine, *stack.allocator);
        stack.purifyTool->install();
        stack.active = stack.purifyTool.get();
        break;
    }

    stack.env =
        std::make_unique<Env>(machine, *stack.allocator, *stack.active);
    if (stack.purifyTool) {
        Env *env = stack.env.get();
        stack.purifyTool->setRootProvider([env] { return env->roots(); });
    }
    return stack;
}

/**
 * Score @p stack's detector output against the workloads' ground truth
 * and merge its tool counters, filling the shared detector fields of
 * @p result (a RunResult or a ProcResult).
 */
template <typename Result>
void
scoreToolStack(const ToolStack &stack, Result &result)
{
    // Earliest true report = time-to-first-catch; 0 means never caught.
    auto note_catch = [&result](Cycles when) {
        if (result.firstCatchCycles == 0 ||
            when < result.firstCatchCycles)
            result.firstCatchCycles = when;
    };

    if (stack.safememTool) {
        if (stack.safememTool->config().detectLeaks) {
            const LeakDetector &leak = stack.safememTool->leakDetector();
            for (const LeakReport &report : leak.reports()) {
                if (isBuggySite(report.siteTag)) {
                    ++result.leakReportsTrue;
                    note_catch(report.reportTime);
                } else {
                    ++result.leakReportsFalse;
                    result.stats["leak.false_report_site." +
                                 std::to_string(report.siteTag &
                                                0xffffffffULL)] += 1;
                }
            }
            for (const LeakReport &report : leak.suspectedGroupReports()) {
                if (isBuggySite(report.siteTag)) {
                    ++result.suspectedTrue;
                } else {
                    ++result.suspectedFalse;
                    result.stats["leak.suspected_site." +
                                 std::to_string(report.siteTag &
                                                0xffffffffULL)] += 1;
                }
            }
            result.prunedSuspects = leak.prunedSuspects();
            for (const auto &entry : leak.stabilityData())
                result.stabilityWarmups.push_back(entry.warmUpTime);
            mergeStats(result.stats, "leak", leak.stats());
        }
        if (stack.safememTool->config().detectCorruption) {
            const CorruptionDetector &corruption =
                stack.safememTool->corruptionDetector();
            for (const CorruptionReport &report : corruption.reports()) {
                if (isBuggySite(report.siteTag)) {
                    ++result.corruptionTrue;
                    note_catch(report.reportTime);
                } else {
                    ++result.corruptionFalse;
                }
            }
            result.wasteBytes = corruption.cumulativeWasteBytes();
            result.userBytes = corruption.cumulativeUserBytes();
            mergeStats(result.stats, "corruption", corruption.stats());
        }
    }

    if (stack.purifyTool) {
        for (const CorruptionReport &report :
             stack.purifyTool->corruptionReports()) {
            if (isBuggySite(report.siteTag)) {
                ++result.corruptionTrue;
                note_catch(report.reportTime);
            } else {
                ++result.corruptionFalse;
                result.stats[std::string("purify.false_report.") +
                             corruptionKindName(report.kind) + ".site" +
                             std::to_string(report.siteTag &
                                            0xffffffffULL) + ".fault" +
                             std::to_string(report.faultAddr) + ".user" +
                             std::to_string(report.userAddr)] += 1;
            }
        }
        std::uint64_t leak_blocks_true = 0;
        for (const LeakReport &report : stack.purifyTool->leakReports()) {
            if (isBuggySite(report.siteTag)) {
                ++leak_blocks_true;
                note_catch(report.reportTime);
            } else {
                ++result.leakReportsFalse;
            }
        }
        // Purify reports per block; collapse the bug site to one hit.
        result.leakReportsTrue = leak_blocks_true > 0 ? 1 : 0;
        mergeStats(result.stats, "purify", stack.purifyTool->stats());
    }

    if (stack.sampled)
        mergeStats(result.stats, "sampled", stack.sampled->samplingStats());

    if (stack.eccBackend)
        mergeStats(result.stats, "watch", stack.eccBackend->stats());
    if (stack.pageBackend)
        mergeStats(result.stats, "watch", stack.pageBackend->stats());

    result.bugDetected =
        result.leakReportsTrue > 0 || result.corruptionTrue > 0;
}

} // namespace

RunResult
runWorkload(const std::string &app_name, ToolKind tool,
            const RunParams &params)
{
    // Route everything this run emits — kernel warnings, SimCheck
    // reports, detector findings — to the run's own sink. The scope is
    // thread-local, so concurrent runs keep independent sinks.
    std::optional<LogScope> log_scope;
    if (params.log)
        log_scope.emplace(*params.log);

    // Same routing for the flight recorder: the thread-local scope lets
    // SimCheck attach trace context to violations raised on this thread.
    std::optional<TraceScope> trace_scope;
    if (params.trace)
        trace_scope.emplace(*params.trace);

    std::unique_ptr<App> app = makeApp(app_name);
    if (!app)
        fatal("runWorkload: unknown application '", app_name, "'");

    MachineConfig machine_config;
    machine_config.memoryBytes = 192u << 20;
    machine_config.banks = params.banks;
    machine_config.geometry = params.geometry;
    machine_config.log = params.log;
    machine_config.trace = params.trace;
    // Only a non-default codec allocates anything: the default spec
    // keeps the shared defaultCodec() instance and with it the exact
    // pre-pluggable behaviour, bit for bit.
    std::unique_ptr<EccCodec> codec;
    if (!(params.codec == EccCodecSpec{})) {
        codec = makeCodec(params.codec);
        machine_config.codec = codec.get();
    }
    Machine machine(machine_config);

    RunResult result;
    result.app = app_name;
    result.tool = tool;
    result.buggy = params.buggy;
    result.geometry = params.geometry;

    // Assemble the tool stack for this configuration (on the machine's
    // init process — single-process runs never create another).
    ToolStack stack = makeToolStack(machine, tool, params);

    app->run(*stack.env, params);
    stack.active->finish();

    result.totalCycles = machine.clock().now();
    result.appCycles = machine.clock().charged(CostCenter::Application);

    // Score detector output against the workloads' ground truth, then
    // append the machine-wide component counters.
    scoreToolStack(stack, result);
    mergeStats(result.stats, "kernel", machine.kernel().stats());
    mergeStats(result.stats, "tlb",
               machine.kernel().currentProcess().tlb().stats());
    mergeStats(result.stats, "cache", machine.cache().stats());
    mergeStats(result.stats, "controller", machine.controller().stats());
    // The geometry stat family only exists on a block-geometry machine;
    // the word default keeps the exact pre-geometry stats key set.
    if (!params.geometry.isWord())
        mergeStats(result.stats, "geometry",
                   machine.controller().geometryStats());
    mergeStats(result.stats, "alloc", stack.allocator->stats());
    return result;
}

namespace {

/**
 * Hand-off gate for consolidated runs: one token, one holder. Exactly
 * the thread whose process the machine last switched to may touch the
 * machine, so the simulation stays single-threaded in all but name —
 * bit-identical and data-race free (the mutex carries the
 * happens-before edge between consecutive holders).
 *
 * On a banked machine the gate additionally classifies each
 * scheduler-driven hand-off against the bank partition: when the
 * outgoing and incoming processes' resident frames occupy disjoint
 * bank sets (Kernel::bankFootprint), the per-bank locking refactor
 * proves the two could not have contended on a bank lock, and the
 * hand-off is counted as bank-disjoint; hand-offs between processes
 * sharing a bank stay bank-gated. The token itself is never relaxed —
 * the shared cycle clock and the pid-tagged cache make genuinely
 * concurrent machine access meaningless — so the split measures the
 * parallelism the bank partition *exposes*, not parallelism exploited.
 */
class BankGate
{
  public:
    /** Thrown out of waitFor() to unwind threads on a failed run. */
    struct Aborted
    {
    };

    BankGate(const Kernel &kernel, std::uint32_t banks)
        : kernel_(kernel), banks_(banks)
    {
    }

    /** Block until @p pid holds the token (or the run aborts). */
    void
    waitFor(Pid pid) EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        while (!abort_ && running_ != pid)
            cv_.wait(mutex_);
        if (abort_)
            throw Aborted{};
    }

    /**
     * Pass the token from @p from to @p to at a scheduling point,
     * classifying the pair's bank footprints. Must be called by the
     * current holder (it reads the kernel's per-process frame counts,
     * which only the driving thread may touch).
     */
    void
    handOff(Pid from, Pid to) EXCLUDES(mutex_)
    {
        bool disjoint =
            banks_ > 1 &&
            (kernel_.bankFootprint(from) & kernel_.bankFootprint(to)) == 0;
        {
            MutexLock lock(mutex_);
            running_ = to;
            if (disjoint)
                ++disjointHandoffs_;
            else if (banks_ > 1)
                ++gatedHandoffs_;
        }
        cv_.notify_all();
    }

    /** Pass the token to @p pid without classifying (admission and exit
     *  hand-offs, where one side has no address space to compare). */
    void
    handOffTo(Pid pid) EXCLUDES(mutex_)
    {
        {
            MutexLock lock(mutex_);
            running_ = pid;
        }
        cv_.notify_all();
    }

    /** Fail the run: every thread blocked in waitFor() throws. */
    void
    abortAll() EXCLUDES(mutex_)
    {
        {
            MutexLock lock(mutex_);
            abort_ = true;
        }
        cv_.notify_all();
    }

    /** @name Hand-off classification (safe after the threads join) */
    /// @{
    std::uint64_t
    disjointHandoffs() const EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return disjointHandoffs_;
    }
    std::uint64_t
    gatedHandoffs() const EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return gatedHandoffs_;
    }
    /// @}

  private:
    const Kernel &kernel_;
    const std::uint32_t banks_;
    mutable Mutex mutex_;
    CondVar cv_;
    Pid running_ GUARDED_BY(mutex_) = 0;
    bool abort_ GUARDED_BY(mutex_) = false;
    std::uint64_t disjointHandoffs_ GUARDED_BY(mutex_) = 0;
    std::uint64_t gatedHandoffs_ GUARDED_BY(mutex_) = 0;
};

/**
 * First-error-wins slot shared by the consolidated run's process
 * threads. take() is also safe after the threads are joined, which is
 * how runConsolidated reads the verdict.
 */
class ErrorSlot
{
  public:
    /** Record @p message unless an earlier error already claimed the run. */
    void
    setFirst(const std::string &message) EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        if (message_.empty())
            message_ = message;
    }

    /** @return the first recorded error, empty when the run succeeded. */
    std::string
    get() const EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return message_;
    }

  private:
    mutable Mutex mutex_;
    std::string message_ GUARDED_BY(mutex_);
};

} // namespace

RunResult
runConsolidated(const RunSpec &spec)
{
    std::uint32_t nprocs = spec.procs < 1 ? 1 : spec.procs;

    std::optional<LogScope> log_scope;
    if (spec.params.log)
        log_scope.emplace(*spec.params.log);
    std::optional<TraceScope> trace_scope;
    if (spec.params.trace)
        trace_scope.emplace(*spec.params.trace);

    MachineConfig machine_config;
    machine_config.memoryBytes =
        (192u << 20) + static_cast<std::size_t>(96u << 20) * (nprocs - 1);
    machine_config.banks = spec.params.banks;
    machine_config.geometry = spec.params.geometry;
    machine_config.log = spec.params.log;
    machine_config.trace = spec.params.trace;
    std::unique_ptr<EccCodec> codec;
    if (!(spec.params.codec == EccCodecSpec{})) {
        codec = makeCodec(spec.params.codec);
        machine_config.codec = codec.get();
    }
    Machine machine(machine_config);
    Kernel &kernel = machine.kernel();

    RunResult result;
    result.app = spec.app;
    result.tool = spec.tool;
    result.buggy = spec.params.buggy;
    result.geometry = spec.params.geometry;

    // Boot one process per workload instance. Stacks are built with the
    // owning process current, so handlers, hooks and heap mappings all
    // land in the right address space; instances diverge via seed + k.
    struct ProcRun
    {
        Pid pid = 0;
        RunParams params;
        std::unique_ptr<App> app;
        ToolStack stack;
    };
    std::vector<ProcRun> runs(nprocs);
    for (std::uint32_t k = 0; k < nprocs; ++k) {
        ProcRun &run = runs[k];
        run.app = makeApp(spec.app);
        if (!run.app)
            fatal("runConsolidated: unknown application '", spec.app, "'");
        run.params = spec.params;
        run.params.seed = spec.params.seed + k;
        run.pid = kernel.createProcess();
        kernel.setCurrentProcess(run.pid);
        run.stack = makeToolStack(machine, spec.tool, run.params);
        machine.scheduler().admit(run.pid);
    }

    BankGate gate(kernel, machine_config.banks);
    machine.setYieldHook([&gate](Pid from, Pid to) {
        gate.handOff(from, to);
        gate.waitFor(from);
    });

    // Point the machine at the first workload before its thread starts;
    // from here on only the token holder touches the machine.
    kernel.setCurrentProcess(runs.front().pid);

    ErrorSlot error;
    std::vector<std::thread> threads;
    threads.reserve(nprocs);
    for (ProcRun &run : runs) {
        threads.emplace_back([&, &run = run] {
            // Per-thread sink/recorder scopes: handlers fired while this
            // thread drives the machine report through the run's sinks.
            std::optional<LogScope> thread_log;
            if (spec.params.log)
                thread_log.emplace(*spec.params.log);
            std::optional<TraceScope> thread_trace;
            if (spec.params.trace)
                thread_trace.emplace(*spec.params.trace);
            try {
                gate.waitFor(run.pid);
                run.app->run(*run.stack.env, run.params);
                run.stack.active->finish();

                // Exit: pick the successor while still runnable (round
                // robin continues from this slot), leave the run queue,
                // become a zombie, and hand the machine over. The last
                // process to finish picks itself and just returns.
                std::optional<Pid> next =
                    machine.scheduler().pickNext(run.pid);
                machine.scheduler().markExited(run.pid);
                kernel.exitProcess(run.pid);
                if (next && *next != run.pid) {
                    machine.contextSwitchTo(*next);
                    gate.handOffTo(*next);
                }
            } catch (const BankGate::Aborted &) {
                // Another process's failure ended the run.
            } catch (const std::exception &err) {
                error.setFirst(err.what());
                gate.abortAll();
            }
        });
    }

    gate.handOffTo(runs.front().pid);
    for (std::thread &thread : threads)
        thread.join();
    machine.setYieldHook(nullptr);

    if (std::string message = error.get(); !message.empty())
        fatal("consolidated run failed: ", message);

    result.totalCycles = machine.clock().now();
    result.appCycles = machine.clock().charged(CostCenter::Application);

    // Per-process slices: detector verdicts plus the counters that have
    // a per-process identity. Top-level detector counts are the sums.
    for (ProcRun &run : runs) {
        ProcResult proc;
        proc.pid = run.pid;
        proc.app = spec.app;
        proc.tool = spec.tool;
        proc.buggy = run.params.buggy;
        scoreToolStack(run.stack, proc);
        mergeStats(proc.stats, "kernel", kernel.process(run.pid).stats());
        mergeStats(proc.stats, "tlb",
                   kernel.process(run.pid).tlb().stats());
        mergeStats(proc.stats, "alloc", run.stack.allocator->stats());

        result.leakReportsTrue += proc.leakReportsTrue;
        result.leakReportsFalse += proc.leakReportsFalse;
        result.suspectedTrue += proc.suspectedTrue;
        result.suspectedFalse += proc.suspectedFalse;
        result.prunedSuspects += proc.prunedSuspects;
        result.corruptionTrue += proc.corruptionTrue;
        result.corruptionFalse += proc.corruptionFalse;
        result.wasteBytes += proc.wasteBytes;
        result.userBytes += proc.userBytes;
        if (proc.firstCatchCycles > 0 &&
            (result.firstCatchCycles == 0 ||
             proc.firstCatchCycles < result.firstCatchCycles))
            result.firstCatchCycles = proc.firstCatchCycles;
        result.procs.push_back(std::move(proc));
    }

    // Machine-wide counters: the shared resources every process
    // contended on, including the consolidation signals
    // (cache.cross_proc_evictions, sched.context_switches).
    mergeStats(result.stats, "kernel", kernel.stats());
    mergeStats(result.stats, "cache", machine.cache().stats());
    mergeStats(result.stats, "controller", machine.controller().stats());
    if (!spec.params.geometry.isWord())
        mergeStats(result.stats, "geometry",
                   machine.controller().geometryStats());
    mergeStats(result.stats, "sched", machine.scheduler().stats());
    // Bank hand-off classification only exists on a banked machine;
    // banks=1 keeps the exact pre-bank stats key set (bit-identity).
    if (machine_config.banks > 1) {
        result.stats["sched.bank_disjoint_handoffs"] =
            gate.disjointHandoffs();
        result.stats["sched.bank_gated_handoffs"] = gate.gatedHandoffs();
    }

    result.bugDetected =
        result.leakReportsTrue > 0 || result.corruptionTrue > 0;
    return result;
}

namespace {

/** Run one cell, capturing any escaped exception as the cell's error. */
void
runCell(const RunSpec &spec, MatrixCell &cell)
{
    cell.spec = spec;
    try {
        cell.result = spec.procs > 1
                          ? runConsolidated(spec)
                          : runWorkload(spec.app, spec.tool, spec.params);
    } catch (const std::exception &err) {
        cell.error = err.what();
    } catch (...) {
        cell.error = "unknown exception";
    }
}

} // namespace

std::vector<MatrixCell>
runMatrix(const std::vector<RunSpec> &specs, unsigned workers)
{
    std::vector<MatrixCell> cells(specs.size());
    workers = ThreadPool::clampWorkers(workers, specs.size());

    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            runCell(specs[i], cells[i]);
        return cells;
    }

    // Workers claim cells from a shared cursor; each run is a pure
    // function of its spec, so the claim order (and the worker count)
    // cannot change any result — only the wall clock.
    std::atomic<std::size_t> next{0};
    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.submit([&] {
            while (true) {
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= specs.size())
                    return;
                runCell(specs[i], cells[i]);
            }
        });
    }
    pool.drain();
    return cells;
}

RunParams
paperParams(const std::string &app_name, bool buggy)
{
    RunParams params;
    params.requests = defaultRequests(app_name);
    params.seed = 42;
    params.buggy = buggy;
    return params;
}

double
overheadPercent(const RunResult &run, const RunResult &baseline)
{
    if (baseline.totalCycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(run.totalCycles) -
            static_cast<double>(baseline.totalCycles)) /
           static_cast<double>(baseline.totalCycles);
}

} // namespace safemem
