#include "workloads/driver.h"

#include <atomic>
#include <memory>
#include <optional>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "trace/trace.h"
#include "pageprot/page_watch.h"
#include "purify/purify.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"
#include "workloads/null_tool.h"
#include "workloads/sites.h"

namespace safemem {

const char *
toolKindName(ToolKind kind)
{
    switch (kind) {
      case ToolKind::None: return "none";
      case ToolKind::SafeMemML: return "safemem-ml";
      case ToolKind::SafeMemMC: return "safemem-mc";
      case ToolKind::SafeMemBoth: return "safemem";
      case ToolKind::PageProtBoth: return "pageprot";
      case ToolKind::Purify: return "purify";
    }
    return "?";
}

std::uint64_t
defaultRequests(const std::string &app_name)
{
    if (app_name == "gzip")
        return 80; // blocks
    if (app_name == "tar")
        return 400; // files
    return 2000; // server requests
}

namespace {

/** Copy every counter of @p stats into @p out under @p prefix. */
void
mergeStats(std::map<std::string, std::uint64_t> &out,
           const std::string &prefix, const StatSet &stats)
{
    for (const auto &[name, value] : stats.all())
        out[prefix + "." + name] = value;
}

} // namespace

RunResult
runWorkload(const std::string &app_name, ToolKind tool,
            const RunParams &params)
{
    // Route everything this run emits — kernel warnings, SimCheck
    // reports, detector findings — to the run's own sink. The scope is
    // thread-local, so concurrent runs keep independent sinks.
    std::optional<LogScope> log_scope;
    if (params.log)
        log_scope.emplace(*params.log);

    // Same routing for the flight recorder: the thread-local scope lets
    // SimCheck attach trace context to violations raised on this thread.
    std::optional<TraceScope> trace_scope;
    if (params.trace)
        trace_scope.emplace(*params.trace);

    std::unique_ptr<App> app = makeApp(app_name);
    if (!app)
        fatal("runWorkload: unknown application '", app_name, "'");

    MachineConfig machine_config;
    machine_config.memoryBytes = 192u << 20;
    machine_config.log = params.log;
    machine_config.trace = params.trace;
    Machine machine(machine_config);
    HeapAllocator allocator(machine);

    RunResult result;
    result.app = app_name;
    result.tool = tool;
    result.buggy = params.buggy;

    // Assemble the tool stack for this configuration.
    std::unique_ptr<EccWatchManager> ecc_backend;
    std::unique_ptr<PageWatchBackend> page_backend;
    std::unique_ptr<SafeMemTool> safemem_tool;
    std::unique_ptr<PurifyTool> purify_tool;
    std::unique_ptr<NullTool> null_tool;
    Tool *active = nullptr;

    auto make_safemem = [&](WatchBackend &backend, bool ml, bool mc) {
        SafeMemConfig config;
        config.detectLeaks = ml;
        config.detectCorruption = mc;
        safemem_tool = std::make_unique<SafeMemTool>(machine, allocator,
                                                     backend, config);
        active = safemem_tool.get();
    };

    switch (tool) {
      case ToolKind::None:
        null_tool = std::make_unique<NullTool>(machine, allocator);
        active = null_tool.get();
        break;

      case ToolKind::SafeMemML:
      case ToolKind::SafeMemMC:
      case ToolKind::SafeMemBoth:
        ecc_backend = std::make_unique<EccWatchManager>(machine);
        ecc_backend->installFaultHandler();
        ecc_backend->installScrubHooks();
        make_safemem(*ecc_backend, tool != ToolKind::SafeMemMC,
                     tool != ToolKind::SafeMemML);
        break;

      case ToolKind::PageProtBoth:
        page_backend = std::make_unique<PageWatchBackend>(machine);
        page_backend->install();
        make_safemem(*page_backend, true, true);
        break;

      case ToolKind::Purify:
        purify_tool = std::make_unique<PurifyTool>(machine, allocator);
        purify_tool->install();
        active = purify_tool.get();
        break;
    }

    Env env(machine, allocator, *active);
    if (purify_tool)
        purify_tool->setRootProvider([&env] { return env.roots(); });

    app->run(env, params);
    active->finish();

    result.totalCycles = machine.clock().now();
    result.appCycles = machine.clock().charged(CostCenter::Application);

    // Score detector output against the workloads' ground truth.
    if (safemem_tool) {
        if (safemem_tool->config().detectLeaks) {
            const LeakDetector &leak = safemem_tool->leakDetector();
            for (const LeakReport &report : leak.reports()) {
                if (isBuggySite(report.siteTag)) {
                    ++result.leakReportsTrue;
                } else {
                    ++result.leakReportsFalse;
                    result.stats["leak.false_report_site." +
                                 std::to_string(report.siteTag &
                                                0xffffffffULL)] += 1;
                }
            }
            for (const LeakReport &report : leak.suspectedGroupReports()) {
                if (isBuggySite(report.siteTag)) {
                    ++result.suspectedTrue;
                } else {
                    ++result.suspectedFalse;
                    result.stats["leak.suspected_site." +
                                 std::to_string(report.siteTag &
                                                0xffffffffULL)] += 1;
                }
            }
            result.prunedSuspects = leak.prunedSuspects();
            for (const auto &entry : leak.stabilityData())
                result.stabilityWarmups.push_back(entry.warmUpTime);
            mergeStats(result.stats, "leak", leak.stats());
        }
        if (safemem_tool->config().detectCorruption) {
            const CorruptionDetector &corruption =
                safemem_tool->corruptionDetector();
            for (const CorruptionReport &report : corruption.reports()) {
                if (isBuggySite(report.siteTag))
                    ++result.corruptionTrue;
                else
                    ++result.corruptionFalse;
            }
            result.wasteBytes = corruption.cumulativeWasteBytes();
            result.userBytes = corruption.cumulativeUserBytes();
            mergeStats(result.stats, "corruption", corruption.stats());
        }
    }

    if (purify_tool) {
        for (const CorruptionReport &report :
             purify_tool->corruptionReports()) {
            if (isBuggySite(report.siteTag)) {
                ++result.corruptionTrue;
            } else {
                ++result.corruptionFalse;
                result.stats[std::string("purify.false_report.") +
                             corruptionKindName(report.kind) + ".site" +
                             std::to_string(report.siteTag &
                                            0xffffffffULL) + ".fault" +
                             std::to_string(report.faultAddr) + ".user" +
                             std::to_string(report.userAddr)] += 1;
            }
        }
        std::uint64_t leak_blocks_true = 0;
        for (const LeakReport &report : purify_tool->leakReports()) {
            if (isBuggySite(report.siteTag))
                ++leak_blocks_true;
            else
                ++result.leakReportsFalse;
        }
        // Purify reports per block; collapse the bug site to one hit.
        result.leakReportsTrue = leak_blocks_true > 0 ? 1 : 0;
        mergeStats(result.stats, "purify", purify_tool->stats());
    }

    if (ecc_backend)
        mergeStats(result.stats, "watch", ecc_backend->stats());
    if (page_backend)
        mergeStats(result.stats, "watch", page_backend->stats());
    mergeStats(result.stats, "kernel", machine.kernel().stats());
    mergeStats(result.stats, "tlb", machine.kernel().tlb().stats());
    mergeStats(result.stats, "cache", machine.cache().stats());
    mergeStats(result.stats, "controller", machine.controller().stats());
    mergeStats(result.stats, "alloc", allocator.stats());

    result.bugDetected =
        result.leakReportsTrue > 0 || result.corruptionTrue > 0;
    return result;
}

namespace {

/** Run one cell, capturing any escaped exception as the cell's error. */
void
runCell(const RunSpec &spec, MatrixCell &cell)
{
    cell.spec = spec;
    try {
        cell.result = runWorkload(spec.app, spec.tool, spec.params);
    } catch (const std::exception &err) {
        cell.error = err.what();
    } catch (...) {
        cell.error = "unknown exception";
    }
}

} // namespace

std::vector<MatrixCell>
runMatrix(const std::vector<RunSpec> &specs, unsigned workers)
{
    std::vector<MatrixCell> cells(specs.size());
    workers = ThreadPool::clampWorkers(workers, specs.size());

    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            runCell(specs[i], cells[i]);
        return cells;
    }

    // Workers claim cells from a shared cursor; each run is a pure
    // function of its spec, so the claim order (and the worker count)
    // cannot change any result — only the wall clock.
    std::atomic<std::size_t> next{0};
    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.submit([&] {
            while (true) {
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= specs.size())
                    return;
                runCell(specs[i], cells[i]);
            }
        });
    }
    pool.drain();
    return cells;
}

RunParams
paperParams(const std::string &app_name, bool buggy)
{
    RunParams params;
    params.requests = defaultRequests(app_name);
    params.seed = 42;
    params.buggy = buggy;
    return params;
}

double
overheadPercent(const RunResult &run, const RunResult &baseline)
{
    if (baseline.totalCycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(run.totalCycles) -
            static_cast<double>(baseline.totalCycles)) /
           static_cast<double>(baseline.totalCycles);
}

} // namespace safemem
