#include "workloads/proftpd.h"

#include <vector>

#include "common/random.h"
#include "workloads/components.h"
#include "workloads/sites.h"

namespace safemem {

namespace {

constexpr std::uint64_t kSiteSession = makeSite(kAppProftpd, 1);
constexpr std::uint64_t kSiteControlBuf = makeSite(kAppProftpd, 2);
constexpr std::uint64_t kSiteListing = makeSite(kAppProftpd, 3);
constexpr std::uint64_t kSiteXferBuf = makeSite(kAppProftpd, 4);
constexpr std::uint64_t kSiteConvBuf = makeSite(kAppProftpd, 5, true);

constexpr std::uint64_t kFnLogin = funcId(kAppProftpd, 1);
constexpr std::uint64_t kFnList = funcId(kAppProftpd, 2);
constexpr std::uint64_t kFnRetr = funcId(kAppProftpd, 3);
constexpr std::uint64_t kFnConvert = funcId(kAppProftpd, 4);
constexpr std::uint64_t kFnFpBase = funcId(kAppProftpd, 16);

constexpr std::size_t kMaxSessions = 8;

constexpr Cycles kAuthCycles = 960'000;
constexpr Cycles kListCycles = 780'000;
constexpr Cycles kBlockCycles = 270'000;
constexpr Cycles kConvertCycles = 360'000;
constexpr Cycles kCwdCycles = 1'260'000;
constexpr Cycles kQuitCycles = 450'000;

struct Session
{
    VirtAddr state = 0;   ///< session struct
    VirtAddr control = 0; ///< control-connection buffer
    bool active = false;
};

} // namespace

void
ProftpdApp::run(Env &env, const RunParams &params)
{
    Rng rng(params.seed * 6271 + 5);
    FrameGuard main_frame(env.stack(), funcId(kAppProftpd, 0));

    std::vector<Session> sessions(kMaxSessions);

    // Background FP pressure: 9 sites (Table 5).
    std::vector<ChurnPoolSite> churn;
    std::vector<GrowingPoolSite> growing;
    for (std::size_t i = 0; i < 5; ++i) {
        ChurnPoolSite::Params p;
        p.siteTag = makeSite(kAppProftpd,
                             32 + static_cast<std::uint32_t>(i));
        p.functionId = kFnFpBase + i * 0x40;
        p.objectSize = 80 + i * 48;
        p.allocEvery = 5 + static_cast<std::uint32_t>(i);
        churn.emplace_back(p);
    }
    for (std::size_t i = 0; i < 4; ++i) {
        GrowingPoolSite::Params p;
        p.siteTag = makeSite(kAppProftpd,
                             48 + static_cast<std::uint32_t>(i));
        p.functionId = kFnFpBase + 0x400 + i * 0x40;
        p.objectSize = 64 + i * 32;
        growing.emplace_back(p);
    }

    std::uint8_t scratch[4096];
    for (std::uint64_t r = 0; r < params.requests; ++r) {
        for (auto &site : churn)
            site.tick(env, r);
        for (auto &site : growing)
            site.tick(env, r);

        Session &session = sessions[rng.range(0, kMaxSessions - 1)];
        if (!session.active) {
            // LOGIN: allocate per-session state.
            FrameGuard frame(env.stack(), kFnLogin);
            session.state = env.alloc(256, kSiteSession);
            session.control = env.alloc(512, kSiteControlBuf);
            env.fill(session.state, 0x5a, 256);
            env.fill(session.control, 0, 128);
            env.compute(kAuthCycles);
            session.active = true;
            continue;
        }

        double dice = rng.real();
        if (dice < 0.30) {
            // LIST: build a directory listing and send it.
            FrameGuard frame(env.stack(), kFnList);
            VirtAddr listing = env.alloc(2048, kSiteListing);
            for (std::size_t e = 0; e < 2048 / 64; ++e) {
                for (std::size_t b = 0; b < 64; ++b)
                    scratch[b] = static_cast<std::uint8_t>(e + b);
                env.write(listing + e * 64, scratch, 64);
            }
            env.compute(kListCycles);
            env.read(listing, scratch, 2048); // send
            env.free(listing);
        } else if (dice < 0.70) {
            // RETR: transfer a file in four 1 KiB blocks.
            FrameGuard frame(env.stack(), kFnRetr);
            VirtAddr xfer = env.alloc(4096, kSiteXferBuf);
            for (std::size_t block = 0; block < 4; ++block) {
                env.fill(xfer + block * 1024,
                         static_cast<std::uint8_t>(r + block), 1024);
                env.compute(kBlockCycles);
                env.read(xfer + block * 1024, scratch, 1024); // send
            }

            // Line-ending conversion pass. Buggy inputs request ASCII
            // mode 25% of the time; that path leaks the buffer.
            bool ascii = params.buggy && rng.chance(0.25);
            {
                FrameGuard conv_frame(env.stack(), kFnConvert);
                VirtAddr conv = env.alloc(1024, kSiteConvBuf);
                env.copy(conv, xfer, 1024);
                env.compute(kConvertCycles);
                if (ascii)
                    env.dropRef(conv); // the proftpd leak
                else
                    env.free(conv);
            }
            env.free(xfer);
        } else if (dice < 0.90) {
            // CWD: path resolution, touches session state only.
            env.read(session.state, scratch, 256);
            env.write(session.control, scratch, 64);
            env.compute(kCwdCycles);
        } else {
            // QUIT: tear the session down.
            env.compute(kQuitCycles);
            env.free(session.control);
            env.free(session.state);
            session.active = false;
        }
    }

    for (Session &session : sessions) {
        if (session.active) {
            env.free(session.control);
            env.free(session.state);
            session.active = false;
        }
    }
    for (auto &site : churn)
        site.drain(env);
    for (auto &site : growing)
        site.drain(env);
}

} // namespace safemem
