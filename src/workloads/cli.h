/**
 * @file
 * Argument parsing for the `safemem_run` command-line harness, kept in
 * the library so it is unit-testable; the tool's main() is a thin shim.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workloads/campaign.h"
#include "workloads/driver.h"

namespace safemem {

/** Parsed command line of the safemem_run tool. */
struct CliOptions
{
    std::string app;              ///< one application, or "all"
    ToolKind tool = ToolKind::SafeMemBoth;
    RunParams params;
    bool allApps = false;         ///< app was "all": sweep every workload
    unsigned workers = 1;         ///< --workers: matrix fan-out (0 = cores)
    std::uint32_t procs = 1;      ///< --procs: consolidated processes/cell
    bool compareBaseline = false; ///< --overhead: also run uninstrumented
    bool dumpStats = false;       ///< --stats: print every counter
    bool simCheck = false;        ///< --simcheck: enable invariant audits
    std::string statsPrefix;      ///< --stats=<prefix>
    std::string traceFile;        ///< --trace: flight-recorder output file
    bool campaign = false;        ///< app was "campaign": codec sweep
    CampaignConfig campaignConfig; ///< campaign-mode parameters
    std::string campaignOut;      ///< --out: campaign JSON file ("" = none)
};

/** Outcome of parsing: options, or an error/usage message. */
struct CliParse
{
    std::optional<CliOptions> options;
    std::string message; ///< error or usage text when !options
};

/** Parse argv (without the program name). */
CliParse parseCliArguments(const std::vector<std::string> &args);

/** @return the tool kind named by @p name, if any. */
std::optional<ToolKind> toolKindFromName(const std::string &name);

/** @return the usage text. */
std::string cliUsage();

/** Execute the parsed run(s) and return the formatted report. */
std::string runCli(const CliOptions &options);

} // namespace safemem
