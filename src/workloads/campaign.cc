/**
 * @file
 * ECC fault-injection campaign engine (see campaign.h).
 */

#include "workloads/campaign.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <sstream>

#include "common/random.h"
#include "common/thread_pool.h"
#include "ecc/scramble.h"

namespace safemem {
namespace {

/** Data words fed to every exhaustively-enumerated error pattern. The
 *  codecs are linear, so outcome classification depends only on the
 *  error pattern — a handful of words exercises the datapath without
 *  inflating the trial count. */
constexpr int kWordsPerPattern = 4;

/** One injected error pattern over a whole codeword. */
struct ErrorPattern
{
    std::uint64_t dataMask = 0;
    std::uint64_t checkMask = 0;
};

/** Decode one upset word and tally the outcome into @p cell. */
void
scoreTrial(const EccCodec &code, std::uint64_t data,
           const ErrorPattern &pattern, CampaignCell &cell)
{
    std::uint64_t check = code.encode(data);
    EccDecodeResult result =
        code.decode(data ^ pattern.dataMask, check ^ pattern.checkMask);
    ++cell.trials;
    if (result.status == EccDecodeStatus::Uncorrectable)
        ++cell.detected;
    else if (result.data == data)
        ++cell.corrected;
    else
        ++cell.miscorrected;
}

/** Run @p pattern against kWordsPerPattern words from @p rng. */
void
scorePattern(const EccCodec &code, const ErrorPattern &pattern, Rng &rng,
             CampaignCell &cell)
{
    for (int i = 0; i < kWordsPerPattern; ++i)
        scoreTrial(code, rng.next(), pattern, cell);
}

/** @return the pattern flipping codeword bit @p position (data bits
 *  first, then check bits). */
ErrorPattern
singleBit(const EccCodec &code, int position)
{
    ErrorPattern pattern;
    if (position < code.dataBits())
        pattern.dataMask = 1ULL << position;
    else
        pattern.checkMask = 1ULL << (position - code.dataBits());
    return pattern;
}

ErrorPattern
merge(const ErrorPattern &a, const ErrorPattern &b)
{
    return {a.dataMask ^ b.dataMask, a.checkMask ^ b.checkMask};
}

/** @return @p errors distinct random codeword positions as a pattern. */
ErrorPattern
randomPattern(const EccCodec &code, int errors, Rng &rng)
{
    int total = code.dataBits() + code.checkBits();
    ErrorPattern pattern;
    int placed = 0;
    while (placed < errors) {
        ErrorPattern bit = singleBit(
            code, static_cast<int>(rng.range(0, total - 1)));
        ErrorPattern merged = merge(pattern, bit);
        if (merged.dataMask == pattern.dataMask &&
            merged.checkMask == pattern.checkMask)
            continue; // duplicate position, redraw
        pattern = merged;
        ++placed;
    }
    return pattern;
}

/** Run one (codec, mode, errors) cell. Deterministic: the RNG is
 *  seeded from the campaign seed and the cell's global index alone. */
CampaignCell
runCell(const EccCodec &code, FailMode mode, int errors,
        std::uint64_t samples, std::uint64_t seed, std::size_t cell_index)
{
    CampaignCell cell;
    cell.mode = mode;
    cell.errors = errors;
    Rng rng(seed + 0x9e3779b97f4a7c15ULL * (cell_index + 1));
    int total = code.dataBits() + code.checkBits();

    switch (mode) {
    case FailMode::None: {
        cell.exhaustive = true;
        ErrorPattern clean;
        for (int i = 0; i < 8 * kWordsPerPattern; ++i)
            scoreTrial(code, rng.next(), clean, cell);
        break;
    }
    case FailMode::Random: {
        if (errors == 1) {
            cell.exhaustive = true;
            for (int a = 0; a < total; ++a)
                scorePattern(code, singleBit(code, a), rng, cell);
        } else if (errors == 2) {
            cell.exhaustive = true;
            for (int a = 0; a < total; ++a)
                for (int b = a + 1; b < total; ++b)
                    scorePattern(
                        code,
                        merge(singleBit(code, a), singleBit(code, b)),
                        rng, cell);
        } else {
            // C(total, errors) explodes past 2 errors: sample instead.
            cell.exhaustive = false;
            for (std::uint64_t i = 0; i < samples; ++i)
                scoreTrial(code, rng.next(),
                           randomPattern(code, errors, rng), cell);
        }
        break;
    }
    case FailMode::RandomBurst: {
        // Every burst start fits in one sweep regardless of length.
        cell.exhaustive = true;
        for (int start = 0; start + errors <= total; ++start) {
            ErrorPattern pattern;
            for (int i = 0; i < errors; ++i)
                pattern = merge(pattern, singleBit(code, start + i));
            scorePattern(code, pattern, rng, cell);
        }
        break;
    }
    }
    return cell;
}

/** @return the full-zoo codec list used when the config names none. */
std::vector<EccCodecSpec>
defaultZoo()
{
    return {
        {EccCodecKind::Hsiao72_64, 64, 0},
        {EccCodecKind::Hamming64_8, 64, 0},
        {EccCodecKind::HsiaoParam, 64, 8},
    };
}

double
rate(std::uint64_t count, std::uint64_t trials)
{
    return trials == 0 ? 0.0
                       : static_cast<double>(count) /
                             static_cast<double>(trials);
}

/** Append the sorted per-cell rates of one outcome as a JSON array. */
void
appendCdf(std::ostringstream &out, const CodecCampaign &codec,
          std::uint64_t CampaignCell::*member)
{
    std::vector<double> rates;
    rates.reserve(codec.cells.size());
    for (const CampaignCell &cell : codec.cells)
        rates.push_back(rate(cell.*member, cell.trials));
    std::sort(rates.begin(), rates.end());
    out << "[";
    for (std::size_t i = 0; i < rates.size(); ++i) {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.6f", rates[i]);
        out << (i ? "," : "") << buffer;
    }
    out << "]";
}

} // namespace

const char *
failModeName(FailMode mode)
{
    switch (mode) {
    case FailMode::None:
        return "none";
    case FailMode::Random:
        return "random";
    case FailMode::RandomBurst:
        return "random-burst";
    }
    return "?";
}

CampaignResult
runCampaign(const CampaignConfig &config)
{
    CampaignResult result;
    result.maxErrors = config.maxErrors;
    result.samples = config.samples;
    result.seed = config.seed;

    std::vector<EccCodecSpec> specs =
        config.codecs.empty() ? defaultZoo() : config.codecs;

    // Instantiate every codec up front; decode() is const, so workers
    // share the instances freely.
    std::vector<std::unique_ptr<EccCodec>> codecs;
    result.codecs.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        codecs.push_back(makeCodec(specs[i]));
        CodecCampaign &campaign = result.codecs[i];
        campaign.spec = specs[i];
        campaign.name = codecs[i]->name();
        campaign.dataBits = codecs[i]->dataBits();
        campaign.checkBits = codecs[i]->checkBits();
        if (auto triple = findScramblePositions(*codecs[i])) {
            campaign.scrambleViable = true;
            campaign.scrambleBits = {triple->bits[0], triple->bits[1],
                                     triple->bits[2]};
        }
        campaign.cells.resize(
            1 + 2 * static_cast<std::size_t>(config.maxErrors));
    }

    // One job per cell, claimed from a shared cursor exactly like
    // runMatrix(); a cell is a pure function of (seed, global index),
    // so the worker count only moves the wall clock.
    struct Job
    {
        std::size_t codec;
        std::size_t cell;
        FailMode mode;
        int errors;
    };
    std::vector<Job> jobs;
    for (std::size_t c = 0; c < specs.size(); ++c) {
        std::size_t slot = 0;
        jobs.push_back({c, slot++, FailMode::None, 0});
        for (int e = 1; e <= config.maxErrors; ++e)
            jobs.push_back({c, slot++, FailMode::Random, e});
        for (int e = 1; e <= config.maxErrors; ++e)
            jobs.push_back({c, slot++, FailMode::RandomBurst, e});
    }

    auto runJob = [&](std::size_t index) {
        const Job &job = jobs[index];
        result.codecs[job.codec].cells[job.cell] =
            runCell(*codecs[job.codec], job.mode, job.errors,
                    config.samples, config.seed, index);
    };

    unsigned workers = ThreadPool::clampWorkers(config.workers, jobs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            runJob(i);
        return result;
    }

    std::atomic<std::size_t> next{0};
    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.submit([&] {
            while (true) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                runJob(i);
            }
        });
    }
    pool.drain();
    return result;
}

std::string
formatCampaignReport(const CampaignResult &result)
{
    std::ostringstream out;
    char line[160];
    for (const CodecCampaign &codec : result.codecs) {
        std::snprintf(line, sizeof line,
                      "codec %-14s (%d,%d)  scramble: ", codec.name.c_str(),
                      codec.dataBits + codec.checkBits, codec.dataBits);
        out << line;
        if (codec.scrambleViable) {
            std::snprintf(line, sizeof line,
                          "viable (bits %d,%d,%d)\n", codec.scrambleBits[0],
                          codec.scrambleBits[1], codec.scrambleBits[2]);
            out << line;
        } else {
            out << "NOT viable — WatchMemory impossible\n";
        }
        std::snprintf(line, sizeof line, "  %-14s %3s %10s %10s %10s %12s\n",
                      "mode", "n", "trials", "corrected", "detected",
                      "miscorrected");
        out << line;
        for (const CampaignCell &cell : codec.cells) {
            std::snprintf(
                line, sizeof line,
                "  %-14s %3d %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %12" PRIu64 "%s\n",
                failModeName(cell.mode), cell.errors, cell.trials,
                cell.corrected, cell.detected, cell.miscorrected,
                cell.exhaustive ? "  (exhaustive)" : "");
            out << line;
        }
        out << "\n";
    }
    return out.str();
}

std::string
campaignJson(const CampaignResult &result)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"ecc_campaign\",\n"
        << "  \"seed\": " << result.seed << ",\n"
        << "  \"samples\": " << result.samples << ",\n"
        << "  \"max_errors\": " << result.maxErrors << ",\n"
        << "  \"codecs\": [\n";
    for (std::size_t c = 0; c < result.codecs.size(); ++c) {
        const CodecCampaign &codec = result.codecs[c];
        out << "    {\n"
            << "      \"name\": \"" << codec.name << "\",\n"
            << "      \"spec\": \"" << codecSpecName(codec.spec) << "\",\n"
            << "      \"data_bits\": " << codec.dataBits << ",\n"
            << "      \"check_bits\": " << codec.checkBits << ",\n"
            << "      \"scramble_viable\": "
            << (codec.scrambleViable ? "true" : "false") << ",\n"
            << "      \"scramble_bits\": [";
        if (codec.scrambleViable)
            out << codec.scrambleBits[0] << "," << codec.scrambleBits[1]
                << "," << codec.scrambleBits[2];
        out << "],\n"
            << "      \"cells\": [\n";
        for (std::size_t i = 0; i < codec.cells.size(); ++i) {
            const CampaignCell &cell = codec.cells[i];
            out << "        {\"mode\": \"" << failModeName(cell.mode)
                << "\", \"errors\": " << cell.errors
                << ", \"exhaustive\": "
                << (cell.exhaustive ? "true" : "false")
                << ", \"trials\": " << cell.trials
                << ", \"corrected\": " << cell.corrected
                << ", \"detected\": " << cell.detected
                << ", \"miscorrected\": " << cell.miscorrected << "}"
                << (i + 1 < codec.cells.size() ? "," : "") << "\n";
        }
        out << "      ],\n"
            << "      \"cdf\": {\n"
            << "        \"corrected\": ";
        appendCdf(out, codec, &CampaignCell::corrected);
        out << ",\n        \"detected\": ";
        appendCdf(out, codec, &CampaignCell::detected);
        out << ",\n        \"miscorrected\": ";
        appendCdf(out, codec, &CampaignCell::miscorrected);
        out << "\n      }\n"
            << "    }" << (c + 1 < result.codecs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

} // namespace safemem
