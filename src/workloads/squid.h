/**
 * @file
 * squid — a web proxy cache model (paper Table 1).
 *
 * A hash-indexed object cache (index and entries live in simulated
 * memory, so conservative heap scans traverse real pointers) services
 * GET requests; misses fetch through an in-flight buffer and install a
 * cache entry, evicting any slot collision. Two variants:
 *
 *  - squid1 (memory leak): aborted fetches on buggy inputs leak the
 *    in-flight buffer (freed on the normal completion path → SLeak).
 *  - squid2 (memory corruption): aborted client connections on buggy
 *    inputs free the connection buffer while a completion event is
 *    still scheduled; the event's status write is a use-after-free.
 */

#pragma once

#include "workloads/app.h"

namespace safemem {

class SquidApp : public App
{
  public:
    enum class Variant
    {
        Leak,      ///< squid1
        Corruption ///< squid2
    };

    explicit SquidApp(Variant variant) : variant_(variant) {}

    const char *
    name() const override
    {
        return variant_ == Variant::Leak ? "squid1" : "squid2";
    }

    void run(Env &env, const RunParams &params) override;

  private:
    Variant variant_;
};

} // namespace safemem
