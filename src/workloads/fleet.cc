#include "workloads/fleet.h"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/types.h"
#include "workloads/report_writer.h"

namespace safemem {

namespace {

/** One monitoring configuration of the sweep. */
struct ToolConfig
{
    std::string label;
    ToolKind kind;
    double rate;
};

std::vector<ToolConfig>
sweepTools(const FleetConfig &config)
{
    std::vector<ToolConfig> tools = {
        {"none", ToolKind::None, 1.0},
        {"safemem", ToolKind::SafeMemBoth, 1.0},
        {"purify", ToolKind::Purify, 1.0},
    };
    for (double rate : config.rates) {
        std::ostringstream label;
        label << "sampled@" << rate;
        tools.push_back({label.str(), ToolKind::SafeMemSampled, rate});
    }
    return tools;
}

/** Fixed-format double for JSON: deterministic, never NaN/inf. */
std::string
jsonNumber(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    return buf;
}

std::uint64_t
statOf(const std::map<std::string, std::uint64_t> &stats,
       const char *name)
{
    auto it = stats.find(name);
    return it == stats.end() ? 0 : it->second;
}

} // namespace

FleetResult
runFleet(const FleetConfig &config)
{
    if (config.seeds == 0)
        throw std::invalid_argument("fleet sweep needs at least one seed");

    const std::vector<ToolConfig> tools = sweepTools(config);

    std::vector<RunSpec> specs;
    specs.reserve(tools.size() * config.seeds);
    for (const ToolConfig &tool : tools) {
        for (std::uint32_t s = 0; s < config.seeds; ++s) {
            RunSpec spec;
            spec.app = config.app;
            spec.tool = tool.kind;
            spec.procs = config.procs;
            spec.params.requests = config.requests;
            spec.params.buggy = true;
            spec.params.seed = config.baseSeed + 1009ULL * s;
            spec.params.banks = config.banks;
            spec.params.sampleRate = tool.rate;
            spec.params.log = config.log;
            specs.push_back(spec);
        }
    }

    std::vector<MatrixCell> runs = runMatrix(specs, config.workers);
    for (const MatrixCell &cell : runs) {
        if (!cell.ok())
            throw std::runtime_error("fleet cell failed (" + cell.spec.app +
                                     ", " + toolKindName(cell.spec.tool) +
                                     "): " + cell.error);
    }

    FleetResult result;
    result.app = config.app;
    result.procs = config.procs;
    result.requests = config.requests;
    result.seeds = config.seeds;
    result.baseSeed = config.baseSeed;
    result.banks = config.banks;

    // Worker-count independence: the same spec list must produce the
    // same results bit for bit from a differently-sized pool.
    if (config.verifyWorkers != 0) {
        std::vector<MatrixCell> again =
            runMatrix(specs, config.verifyWorkers);
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (!again[i].ok() || !(again[i].result == runs[i].result))
                result.identical = false;
        }
    }

    // Cell (t, s) is runs[t * seeds + s]; tool 0 is the uninstrumented
    // baseline the overhead column compares against, seed by seed.
    auto runAt = [&](std::size_t t, std::uint32_t s) -> const RunResult & {
        return runs[t * config.seeds + s].result;
    };

    for (std::size_t t = 0; t < tools.size(); ++t) {
        FleetCell cell;
        cell.tool = tools[t].label;
        cell.kind = tools[t].kind;
        cell.rate = tools[t].rate;
        cell.seedsRun = config.seeds;

        double overheadSum = 0.0;
        double catchSecondsSum = 0.0;
        Cycles cyclesSum = 0;
        for (std::uint32_t s = 0; s < config.seeds; ++s) {
            const RunResult &run = runAt(t, s);
            cyclesSum += run.totalCycles;
            overheadSum += overheadPercent(run, runAt(0, s));
            if (run.bugDetected) {
                ++cell.seedsDetected;
                catchSecondsSum +=
                    static_cast<double>(run.firstCatchCycles) /
                    kCpuFrequencyHz;
            }

            std::uint64_t sampled = statOf(run.stats,
                                           "sampled.sampled_allocs");
            std::uint64_t unsampled = statOf(run.stats,
                                             "sampled.unsampled_allocs");
            for (const ProcResult &proc : run.procs) {
                std::uint64_t procSampled =
                    statOf(proc.stats, "sampled.sampled_allocs");
                sampled += procSampled;
                unsampled += statOf(proc.stats,
                                    "sampled.unsampled_allocs");
                if (cell.kind == ToolKind::SafeMemSampled &&
                    procSampled == 0)
                    ++cell.zeroSampleTenants;
            }
            cell.monitoredAllocs += sampled;
            cell.totalAllocs += sampled + unsampled;
        }

        cell.detectionPercent =
            safeRatePercent(cell.seedsDetected, cell.seedsRun);
        cell.meanOverheadPercent =
            safeMean(overheadSum, cell.seedsRun);
        cell.meanCatchSeconds =
            safeMean(catchSecondsSum, cell.seedsDetected);
        cell.meanTotalCycles = cyclesSum / config.seeds;
        cell.monitoredPercent =
            safeRatePercent(cell.monitoredAllocs, cell.totalAllocs);
        result.cells.push_back(cell);
    }
    return result;
}

std::string
formatFleetReport(const FleetResult &result)
{
    std::ostringstream os;
    os << "=== fleet: " << result.procs << "x " << result.app
       << " (buggy), " << result.requests << " requests/tenant, "
       << result.seeds << " seeds, " << result.banks << " banks ===\n";
    os << std::left << std::setw(20) << "tool" << std::right
       << std::setw(10) << "detect%" << std::setw(12) << "overhead%"
       << std::setw(12) << "catch(s)" << std::setw(12) << "monitored%"
       << std::setw(12) << "0-sample" << "\n";
    os << std::fixed;
    for (const FleetCell &cell : result.cells) {
        os << std::left << std::setw(20) << cell.tool << std::right;
        os.precision(1);
        os << std::setw(10) << cell.detectionPercent << std::setw(12)
           << cell.meanOverheadPercent;
        os.precision(3);
        os << std::setw(12) << cell.meanCatchSeconds;
        os.precision(1);
        os << std::setw(12) << cell.monitoredPercent << std::setw(12)
           << cell.zeroSampleTenants << "\n";
    }
    os << (result.identical
               ? "worker-count identity: PASS (bit-identical results)"
               : "worker-count identity: FAIL (results differ by pool "
                 "size)")
       << "\n";
    return os.str();
}

std::string
fleetJson(const FleetResult &result)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"fleet\",\n";
    os << "  \"app\": \"" << result.app << "\",\n";
    os << "  \"procs\": " << result.procs << ",\n";
    os << "  \"requests\": " << result.requests << ",\n";
    os << "  \"seeds\": " << result.seeds << ",\n";
    os << "  \"base_seed\": " << result.baseSeed << ",\n";
    os << "  \"banks\": " << result.banks << ",\n";
    os << "  \"identical\": " << (result.identical ? "true" : "false")
       << ",\n";
    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const FleetCell &cell = result.cells[i];
        os << "    {\n";
        os << "      \"tool\": \"" << cell.tool << "\",\n";
        os << "      \"kind\": \"" << toolKindName(cell.kind) << "\",\n";
        os << "      \"rate\": " << jsonNumber(cell.rate) << ",\n";
        os << "      \"seeds_run\": " << cell.seedsRun << ",\n";
        os << "      \"seeds_detected\": " << cell.seedsDetected << ",\n";
        os << "      \"detection_percent\": "
           << jsonNumber(cell.detectionPercent) << ",\n";
        os << "      \"mean_overhead_percent\": "
           << jsonNumber(cell.meanOverheadPercent) << ",\n";
        os << "      \"mean_catch_seconds\": "
           << jsonNumber(cell.meanCatchSeconds) << ",\n";
        os << "      \"mean_total_cycles\": " << cell.meanTotalCycles
           << ",\n";
        os << "      \"monitored_allocs\": " << cell.monitoredAllocs
           << ",\n";
        os << "      \"total_allocs\": " << cell.totalAllocs << ",\n";
        os << "      \"monitored_percent\": "
           << jsonNumber(cell.monitoredPercent) << ",\n";
        os << "      \"zero_sample_tenants\": " << cell.zeroSampleTenants
           << "\n";
        os << "    }" << (i + 1 < result.cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace safemem
