/**
 * @file
 * ypserv — a NIS (YP) directory server model (paper Table 1).
 *
 * Serves yp_match lookups against in-memory maps built at startup. Two
 * variants reproduce the paper's two buggy versions:
 *
 *  - ypserv1 (ALeak): with buggy inputs, yp_all batch transfers leak
 *    their response buffer on every path — the group is never freed.
 *  - ypserv2 (SLeak): with buggy inputs, some lookups miss, and the
 *    error path forgets to free the per-request context buffer.
 *
 * Normal inputs exercise neither path, matching the paper's overhead
 * methodology. The false-positive pressure of a real server (keep-alive
 * client state, append-only statistics) is reproduced with ChurnPool /
 * GrowingPool sites: 7 for ypserv1 and 2 for ypserv2 (Table 5).
 */

#pragma once

#include "workloads/app.h"
#include "workloads/components.h"

namespace safemem {

class YpservApp : public App
{
  public:
    enum class Variant
    {
        AlwaysLeak,   ///< ypserv1
        SometimesLeak ///< ypserv2
    };

    explicit YpservApp(Variant variant) : variant_(variant) {}

    const char *
    name() const override
    {
        return variant_ == Variant::AlwaysLeak ? "ypserv1" : "ypserv2";
    }

    void run(Env &env, const RunParams &params) override;

  private:
    Variant variant_;
};

} // namespace safemem
