/**
 * @file
 * The experiment driver: runs (application x tool x input mode) and
 * collects everything the paper's tables need from one run.
 *
 * Ground truth comes from the workload site tags (bit 63 marks the
 * injected bug site); the driver — never the detectors — uses it to
 * split reports into true detections and false positives.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "workloads/app.h"

namespace safemem {

/** Monitoring configurations compared in the paper. */
enum class ToolKind
{
    None,           ///< uninstrumented baseline
    SafeMemML,      ///< SafeMem, leak detection only (Table 3 "Only ML")
    SafeMemMC,      ///< SafeMem, corruption only (Table 3 "Only MC")
    SafeMemBoth,    ///< SafeMem, ML + MC (the headline configuration)
    SafeMemSampled, ///< SafeMem, ML + MC over sampled interposition
                    ///< (GWP-ASan style; RunParams::sampleRate)
    PageProtBoth,   ///< same detectors over page protection (Tables 2, 4)
    Purify          ///< the Purify model
};

/** @return a short printable name for @p kind. */
const char *toolKindName(ToolKind kind);

/**
 * One process's slice of a consolidated run: its detector verdicts and
 * per-process counters (kernel syscalls, TLB, allocator, tool state).
 * Machine-wide numbers — cycles, cache, controller, scheduler — live on
 * the owning RunResult; they cannot be attributed to one process.
 */
struct ProcResult
{
    std::uint32_t pid = 0;
    std::string app;
    ToolKind tool = ToolKind::None;
    bool buggy = false;

    std::uint64_t leakReportsTrue = 0;
    std::uint64_t leakReportsFalse = 0;
    std::uint64_t suspectedTrue = 0;
    std::uint64_t suspectedFalse = 0;
    std::uint64_t prunedSuspects = 0;
    std::uint64_t corruptionTrue = 0;
    std::uint64_t corruptionFalse = 0;
    bool bugDetected = false;
    std::uint64_t wasteBytes = 0;
    std::uint64_t userBytes = 0;
    /** App-CPU time of the earliest bug-site report; 0 = never caught.
     *  The fleet bench's time-to-first-catch metric. */
    Cycles firstCatchCycles = 0;
    std::vector<Cycles> stabilityWarmups;

    /** Per-process counters (leak/corruption/watch/kernel/tlb/alloc). */
    std::map<std::string, std::uint64_t> stats;

    bool operator==(const ProcResult &) const = default;
};

/** Everything measured from one run. */
struct RunResult
{
    std::string app;
    ToolKind tool = ToolKind::None;
    bool buggy = false;
    /** Protection geometry the run's machine was built with; the word
     *  default reports nothing extra. */
    ProtectionGeometry geometry{};

    /** @name Time (Table 3) */
    /// @{
    Cycles totalCycles = 0; ///< wall clock of the run
    Cycles appCycles = 0;   ///< cycles attributed to the application
    /// @}

    /** @name Leak detection (Tables 3 and 5) */
    /// @{
    std::uint64_t leakReportsTrue = 0;  ///< reports at the bug site
    std::uint64_t leakReportsFalse = 0; ///< reports elsewhere (FPs)
    std::uint64_t suspectedTrue = 0;    ///< suspected groups, bug site
    std::uint64_t suspectedFalse = 0;   ///< suspected groups, FPs
    std::uint64_t prunedSuspects = 0;   ///< suspects cleared by access
    /// @}

    /** @name Corruption detection (Table 3) */
    /// @{
    std::uint64_t corruptionTrue = 0;
    std::uint64_t corruptionFalse = 0;
    /// @}

    /** Any true report of the app's injected bug. */
    bool bugDetected = false;

    /** App-CPU time of the earliest bug-site report across the run's
     *  processes; 0 = never caught (time-to-first-catch). */
    Cycles firstCatchCycles = 0;

    /** @name Space accounting (Table 4) */
    /// @{
    std::uint64_t wasteBytes = 0; ///< padding + alignment, cumulative
    std::uint64_t userBytes = 0;  ///< requested bytes, cumulative
    /// @}

    /** Figure 3: per-group warm-up times (app CPU cycles), SafeMem ML. */
    std::vector<Cycles> stabilityWarmups;

    /** Assorted named counters from the run's components. */
    std::map<std::string, std::uint64_t> stats;

    /** Per-process slices of a consolidated (multi-process) run, in pid
     *  order. Empty for ordinary single-process runs, so their snapshots
     *  and equality semantics are untouched; for consolidated runs the
     *  top-level detector counts above are the sums over these. */
    std::vector<ProcResult> procs;

    /** @return waste as a percentage of requested bytes. */
    double
    wastePercent() const
    {
        return userBytes == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(wasteBytes) /
                         static_cast<double>(userBytes);
    }

    /** Field-for-field equality — the bit-identical-runs contract. */
    bool operator==(const RunResult &) const = default;
};

/**
 * Run @p app_name under @p tool with @p params on a fresh machine.
 */
RunResult runWorkload(const std::string &app_name, ToolKind tool,
                      const RunParams &params);

/** One cell of an evaluation matrix: which run to perform. */
struct RunSpec
{
    std::string app;
    ToolKind tool = ToolKind::SafeMemBoth;
    RunParams params;
    /**
     * Number of consolidated processes for this cell. 1 (the default)
     * runs the classic single-process path; N > 1 boots one machine
     * with N processes each running @ref app under @ref tool, seeded
     * params.seed + k so the instances diverge, scheduled round-robin
     * on kernel ticks.
     */
    std::uint32_t procs = 1;
};

/**
 * Run @p spec.procs instances of the workload consolidated on one
 * machine: per-process address spaces, heaps and tool stacks over a
 * shared cache, controller and scrubber. Each process is driven by its
 * own thread, but exactly one runs at a time (cooperative hand-off at
 * the machine's deterministic scheduling points), so results are
 * bit-identical run to run. @return the machine-wide result with one
 * ProcResult per process in RunResult::procs.
 */
RunResult runConsolidated(const RunSpec &spec);

/** One cell's outcome: the result, or the failure that replaced it. */
struct MatrixCell
{
    RunSpec spec;
    RunResult result;  ///< meaningful only when ok()
    std::string error; ///< what() of the exception that escaped the run

    /** @return true when the run completed and result is valid. */
    bool ok() const { return error.empty(); }
};

/**
 * Run every cell of @p specs — each on a fresh, fully independent
 * machine — and return the outcomes in spec order.
 *
 * @param specs    the matrix, one entry per (app, tool, params) run.
 * @param workers  worker threads; 1 runs sequentially on the calling
 *                 thread, 0 uses the host's hardware concurrency. Cells
 *                 are claimed from a shared queue, so any worker count
 *                 yields bit-identical results (runs are pure functions
 *                 of their RunSpec).
 *
 * A run that throws (unknown app, simulated kernel panic) fails only
 * its own cell: the exception text lands in that cell's error field and
 * every other cell still completes.
 */
std::vector<MatrixCell> runMatrix(const std::vector<RunSpec> &specs,
                                  unsigned workers);

/**
 * @return the paper's canonical parameters for @p app: per-app default
 * request count, seed 42, and @p buggy inputs — the assemble step every
 * table/figure harness shares.
 */
RunParams paperParams(const std::string &app_name, bool buggy = false);

/** @return overhead of @p run over @p baseline, in percent. */
double overheadPercent(const RunResult &run, const RunResult &baseline);

/** Default request counts per app (utilities process fewer items). */
std::uint64_t defaultRequests(const std::string &app_name);

} // namespace safemem
