/**
 * @file
 * tar — an archiving utility model (paper Table 1).
 *
 * Appends files to an archive buffer: a 512-byte header (name, mode,
 * size, checksum) followed by the file data in 512-byte blocks. The
 * injected bug: the file name is copied into a fixed 128-byte name
 * buffer with no length check; buggy inputs contain over-long paths
 * that overflow it.
 */

#pragma once

#include "workloads/app.h"

namespace safemem {

class TarApp : public App
{
  public:
    const char *name() const override { return "tar"; }
    void run(Env &env, const RunParams &params) override;
};

} // namespace safemem
