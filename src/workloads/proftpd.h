/**
 * @file
 * proftpd — an FTP server model (paper Table 1).
 *
 * A pool of concurrent sessions processes LIST / RETR / CWD / QUIT
 * commands. The injected bug (buggy inputs only): RETR transfers in
 * ASCII mode leak the line-ending conversion buffer — binary-mode
 * transfers free it, making this a sometimes-leak. Nine background
 * behaviours provide the false-positive pressure of Table 5.
 */

#pragma once

#include "workloads/app.h"

namespace safemem {

class ProftpdApp : public App
{
  public:
    const char *name() const override { return "proftpd"; }
    void run(Env &env, const RunParams &params) override;
};

} // namespace safemem
