#include "workloads/streaming.h"

#include <vector>

#include "common/random.h"
#include "workloads/sites.h"

namespace safemem {

namespace {

constexpr std::uint64_t kSiteBuffer = makeSite(kAppStream, 1, true);
constexpr std::uint64_t kSiteIndex = makeSite(kAppStream, 2);

constexpr std::uint64_t kFnProduce = funcId(kAppStream, 1);
constexpr std::uint64_t kFnDrain = funcId(kAppStream, 2);

/** One streamed record batch. */
constexpr std::size_t kBufferBytes = 64 * 1024;

/** Sequential transfer granule — many cache lines, so the eviction
 *  stream walks whole codewords in order. */
constexpr std::size_t kChunkBytes = 1024;

/** Buffers are recycled after this many batches, like a ring of DMA
 *  buffers; buggy runs leak at the recycle points instead. */
constexpr std::size_t kBatchesPerBuffer = 8;

/** Light per-chunk processing (checksum + header parse). */
constexpr Cycles kPerChunkCycles = 220;

} // namespace

void
StreamApp::run(Env &env, const RunParams &params)
{
    Rng rng(params.seed * 74093 + 29);
    FrameGuard main_frame(env.stack(), funcId(kAppStream, 0));

    // Small index of batch sequence numbers, touched once per batch.
    VirtAddr index = env.callocBytes(kBatchesPerBuffer,
                                     sizeof(std::uint64_t), kSiteIndex);

    std::vector<std::uint8_t> chunk(kChunkBytes);
    std::vector<std::uint8_t> sink(kChunkBytes);

    VirtAddr buffer = 0;
    for (std::uint64_t batch = 0; batch < params.requests; ++batch) {
        if (batch % kBatchesPerBuffer == 0) {
            if (buffer != 0) {
                // The stream bug: under buggy inputs the retire path
                // forgets every other exhausted buffer — rotate the
                // ring, lose the oldest reference.
                if (params.buggy && (batch / kBatchesPerBuffer) % 2 == 1)
                    env.dropRef(buffer);
                else
                    env.free(buffer);
            }
            buffer = env.alloc(kBufferBytes, kSiteBuffer);
        }

        env.store<std::uint64_t>(
            index + (batch % kBatchesPerBuffer) * sizeof(std::uint64_t),
            batch);

        {
            // Produce: fill the buffer front to back, chunk by chunk.
            FrameGuard frame(env.stack(), kFnProduce);
            for (std::size_t off = 0; off < kBufferBytes;
                 off += kChunkBytes) {
                auto salt = static_cast<std::uint8_t>(rng.next());
                for (std::size_t i = 0; i < kChunkBytes; ++i)
                    chunk[i] = static_cast<std::uint8_t>(i + off + salt);
                env.write(buffer + off, chunk.data(), kChunkBytes);
            }
        }
        {
            // Drain: stream it back out in the same order.
            FrameGuard frame(env.stack(), kFnDrain);
            for (std::size_t off = 0; off < kBufferBytes;
                 off += kChunkBytes) {
                env.read(buffer + off, sink.data(), kChunkBytes);
                env.compute(kPerChunkCycles);
            }
        }
    }

    if (buffer != 0)
        env.free(buffer);
    env.free(index);
}

} // namespace safemem
