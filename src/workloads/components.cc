#include "workloads/components.h"

#include "common/logging.h"

namespace safemem {

SimPointerTable::SimPointerTable(Env &env, std::size_t slots,
                                 std::uint64_t site_tag)
    : slots_(slots)
{
    base_ = env.callocBytes(slots, sizeof(std::uint64_t), site_tag);
}

void
SimPointerTable::destroy(Env &env)
{
    env.free(base_);
    base_ = 0;
    slots_ = 0;
}

std::uint64_t
SimPointerTable::get(Env &env, std::size_t slot) const
{
    if (slot >= slots_)
        panic("SimPointerTable: slot ", slot, " out of range");
    return env.load<std::uint64_t>(base_ + slot * sizeof(std::uint64_t));
}

void
SimPointerTable::set(Env &env, std::size_t slot, std::uint64_t value)
{
    if (slot >= slots_)
        panic("SimPointerTable: slot ", slot, " out of range");
    env.store<std::uint64_t>(base_ + slot * sizeof(std::uint64_t), value);
}

void
ChurnPoolSite::tick(Env &env, std::uint64_t request)
{
    // Retire objects whose hold expired; long-lived ones get touched
    // first, which is what prunes the SLeak suspicion.
    while (!held_.empty() && held_.front().freeAt <= request) {
        Held item = held_.front();
        held_.pop_front();
        if (item.longLived && params_.touchBeforeFree) {
            std::uint64_t value = env.load<std::uint64_t>(item.addr);
            env.store<std::uint64_t>(item.addr, value + 1);
        }
        env.free(item.addr);
    }

    if (params_.allocEvery > 1 && request % params_.allocEvery != 0)
        return;

    ++counter_;
    bool long_lived =
        params_.longEvery > 0 && counter_ % params_.longEvery == 0;

    FrameGuard frame(env.stack(), params_.functionId);
    Held item;
    item.addr = env.alloc(params_.objectSize, params_.siteTag);
    item.longLived = long_lived;
    item.freeAt = request +
        (long_lived ? params_.longHold : params_.shortHold);
    env.store<std::uint64_t>(item.addr, counter_);

    // Keep the deque ordered by freeAt: long objects go to the back but
    // have larger deadlines, so insertion order already works when
    // longHold > shortHold.
    held_.push_back(item);
    if (held_.size() >= 2) {
        // Stable-order fix-up: the common (short) case appends in order;
        // rotate the rare out-of-order element into place.
        auto it = held_.end() - 1;
        while (it != held_.begin() &&
               (it - 1)->freeAt > it->freeAt) {
            std::swap(*(it - 1), *it);
            --it;
        }
    }
}

void
ChurnPoolSite::drain(Env &env)
{
    for (const Held &item : held_)
        env.free(item.addr);
    held_.clear();
}

void
GrowingPoolSite::tick(Env &env, std::uint64_t request)
{
    if (params_.growEvery > 0 && request % params_.growEvery == 0) {
        FrameGuard frame(env.stack(), params_.functionId);
        VirtAddr addr = env.alloc(params_.objectSize, params_.siteTag);
        env.store<std::uint64_t>(addr, request);
        entries_.push_back(addr);
    }

    if (params_.touchEvery > 0 && request % params_.touchEvery == 0) {
        std::size_t touches =
            std::min<std::size_t>(params_.touchCount, entries_.size());
        for (std::size_t i = 0; i < touches; ++i) {
            std::uint64_t value = env.load<std::uint64_t>(entries_[i]);
            env.store<std::uint64_t>(entries_[i], value + 1);
        }
    }
}

void
GrowingPoolSite::drain(Env &env)
{
    for (VirtAddr addr : entries_)
        env.free(addr);
    entries_.clear();
}

} // namespace safemem
