#include "workloads/squid.h"

#include <deque>
#include <vector>

#include "common/random.h"
#include "workloads/components.h"
#include "workloads/sites.h"

namespace safemem {

namespace {

constexpr std::uint64_t kSiteIndex = makeSite(kAppSquid, 1);
constexpr std::uint64_t kSiteEntry = makeSite(kAppSquid, 2);
constexpr std::uint64_t kSiteData = makeSite(kAppSquid, 3);
constexpr std::uint64_t kSiteInflight = makeSite(kAppSquid, 4, true);
constexpr std::uint64_t kSiteInflightOk = makeSite(kAppSquid, 4);
constexpr std::uint64_t kSiteConn = makeSite(kAppSquid, 5, true);

constexpr std::uint64_t kFnFetch = funcId(kAppSquid, 1);
constexpr std::uint64_t kFnInstall = funcId(kAppSquid, 2);
constexpr std::uint64_t kFnAccept = funcId(kAppSquid, 3);
constexpr std::uint64_t kFnFpBase = funcId(kAppSquid, 16);

constexpr std::size_t kIndexSlots = 512;
constexpr std::size_t kEntryBytes = 128;

constexpr Cycles kHitCycles = 780'000;
constexpr Cycles kFetchCycles = 1'260'000;
constexpr Cycles kInstallCycles = 360'000;
constexpr Cycles kAbortCycles = 480'000;
constexpr Cycles kConnCycles = 180'000;

/** Entry layout offsets. */
constexpr std::size_t kOffKey = 0;
constexpr std::size_t kOffDataPtr = 8;
constexpr std::size_t kOffSize = 16;
constexpr std::size_t kOffInstalled = 24;

/** Cached objects expire after this many requests (squid's TTL). */
constexpr std::uint64_t kTtlRequests = 60;
/** Index slots probed for expiry each request (maintenance cursor). */
constexpr std::size_t kExpiryProbes = 8;

} // namespace

void
SquidApp::run(Env &env, const RunParams &params)
{
    Rng rng(params.seed * 104729 + 3);
    bool leak_variant = variant_ == Variant::Leak;
    FrameGuard main_frame(env.stack(), funcId(kAppSquid, 0));

    SimPointerTable index(env, kIndexSlots, kSiteIndex);

    // Pending connection-completion events (squid2's corruption): the
    // event fires one request later and writes a status word into the
    // connection buffer.
    struct PendingEvent
    {
        std::uint64_t due = 0;
        VirtAddr conn = 0;
        bool freedEarly = false; ///< the abort path already freed it
    };
    std::deque<PendingEvent> events;

    // FP pressure (Table 5: squid1 has the most, 13 before pruning).
    std::vector<ChurnPoolSite> churn;
    std::vector<GrowingPoolSite> growing;
    std::size_t churn_sites = leak_variant ? 8 : 2;
    std::size_t growing_sites = leak_variant ? 4 : 1;
    for (std::size_t i = 0; i < churn_sites; ++i) {
        ChurnPoolSite::Params p;
        p.siteTag = makeSite(kAppSquid, 32 + static_cast<std::uint32_t>(i));
        p.functionId = kFnFpBase + i * 0x40;
        p.objectSize = 96 + i * 32;
        p.allocEvery = 5 + static_cast<std::uint32_t>(i % 3);
        churn.emplace_back(p);
    }
    if (leak_variant) {
        // One behaviour whose long-lived objects are touched only after
        // the report threshold: squid1's single residual false positive
        // (Table 5 "after pruning" = 1).
        ChurnPoolSite::Params p;
        p.siteTag = makeSite(kAppSquid, 63);
        p.functionId = kFnFpBase + 0x800;
        p.objectSize = 160;
        p.allocEvery = 6;
        p.longEvery = 24;
        p.longHold = 60;
        churn.emplace_back(p);
    }
    for (std::size_t i = 0; i < growing_sites; ++i) {
        GrowingPoolSite::Params p;
        p.siteTag = makeSite(kAppSquid, 48 + static_cast<std::uint32_t>(i));
        p.functionId = kFnFpBase + 0x400 + i * 0x40;
        p.objectSize = 64 + i * 32;
        growing.emplace_back(p);
    }

    std::uint8_t scratch[4096];
    std::size_t expiry_cursor = 0;
    for (std::uint64_t r = 0; r < params.requests; ++r) {
        for (auto &site : churn)
            site.tick(env, r);
        for (auto &site : growing)
            site.tick(env, r);

        // Cache maintenance: sweep a couple of slots per request and
        // expire objects past their TTL, like squid's periodic cleanup.
        for (std::size_t probe = 0; probe < kExpiryProbes; ++probe) {
            std::size_t slot = expiry_cursor;
            expiry_cursor = (expiry_cursor + 1) % kIndexSlots;
            VirtAddr stale = index.get(env, slot);
            if (stale == 0)
                continue;
            std::uint64_t installed =
                env.load<std::uint64_t>(stale + kOffInstalled);
            if (r - installed > kTtlRequests) {
                VirtAddr stale_data =
                    env.load<std::uint64_t>(stale + kOffDataPtr);
                env.free(stale_data);
                env.free(stale);
                index.set(env, slot, 0);
            }
        }

        // Fire due completion events *before* any allocation this
        // request makes, so a prematurely freed connection buffer has
        // not been recycled yet.
        while (!events.empty() && events.front().due <= r) {
            PendingEvent event = events.front();
            events.pop_front();
            // Status write into the connection buffer. If the abort
            // path freed the buffer already, this is squid2's
            // use-after-free.
            env.store<std::uint64_t>(event.conn + 32, 0x200 /* OK */);
            if (!event.freedEarly)
                env.free(event.conn);
        }

        // Accept a connection (squid2 models the buggy teardown).
        if (!leak_variant) {
            FrameGuard frame(env.stack(), kFnAccept);
            VirtAddr conn = env.alloc(1536, kSiteConn);
            env.fill(conn, static_cast<std::uint8_t>(r), 256);
            env.compute(kConnCycles);

            PendingEvent event;
            event.due = r + 1;
            event.conn = conn;
            if (params.buggy && rng.chance(0.03)) {
                // Client aborted: the buggy path frees the connection
                // without cancelling the scheduled completion event.
                env.free(conn);
                event.freedEarly = true;
                env.compute(kAbortCycles);
            }
            events.push_back(event);
        }

        // Cache lookup: skewed key popularity gives hot entries.
        std::uint64_t key =
            (rng.range(0, 63) * rng.range(0, 63)) % (kIndexSlots * 4);
        std::size_t slot = key % kIndexSlots;

        VirtAddr entry = index.get(env, slot);
        bool hit = false;
        if (entry != 0) {
            std::uint64_t stored_key =
                env.load<std::uint64_t>(entry + kOffKey);
            hit = stored_key == key;
        }

        if (hit) {
            VirtAddr data = env.load<std::uint64_t>(entry + kOffDataPtr);
            std::uint64_t size = env.load<std::uint64_t>(entry + kOffSize);
            env.read(data, scratch, static_cast<std::size_t>(size));
            env.compute(kHitCycles);
            continue;
        }

        // MISS: fetch from the origin through an in-flight buffer.
        FrameGuard frame(env.stack(), kFnFetch);
        std::uint64_t inflight_tag =
            leak_variant ? kSiteInflight : kSiteInflightOk;
        VirtAddr inflight = env.alloc(1024, inflight_tag);
        env.fill(inflight, static_cast<std::uint8_t>(key), 1024);
        env.compute(kFetchCycles);

        if (leak_variant && params.buggy && rng.chance(0.05)) {
            // Aborted fetch: squid1's leak — the in-flight buffer is
            // forgotten instead of freed.
            env.compute(kAbortCycles);
            env.dropRef(inflight);
            continue;
        }

        // Install the object in the cache.
        FrameGuard install_frame(env.stack(), kFnInstall);
        std::size_t object_size = 256 + (key % 7) * 256;
        VirtAddr new_entry = env.alloc(kEntryBytes, kSiteEntry);
        VirtAddr data = env.alloc(object_size, kSiteData);
        env.copy(data, inflight, std::min<std::size_t>(object_size, 1024));
        env.free(inflight);

        env.store<std::uint64_t>(new_entry + kOffKey, key);
        env.store<std::uint64_t>(new_entry + kOffDataPtr, data);
        env.store<std::uint64_t>(new_entry + kOffSize, object_size);
        env.store<std::uint64_t>(new_entry + kOffInstalled, r);
        env.compute(kInstallCycles);

        if (entry != 0) {
            // Evict the colliding entry.
            VirtAddr old_data =
                env.load<std::uint64_t>(entry + kOffDataPtr);
            env.free(old_data);
            env.free(entry);
        }
        index.set(env, slot, new_entry);
    }

    // Orderly shutdown: run out the event queue, then free the cache.
    while (!events.empty()) {
        PendingEvent event = events.front();
        events.pop_front();
        env.store<std::uint64_t>(event.conn + 32, 0x200);
        if (!event.freedEarly)
            env.free(event.conn);
    }
    for (std::size_t slot = 0; slot < kIndexSlots; ++slot) {
        VirtAddr entry = index.get(env, slot);
        if (entry == 0)
            continue;
        VirtAddr data = env.load<std::uint64_t>(entry + kOffDataPtr);
        env.free(data);
        env.free(entry);
    }
    index.destroy(env);
    for (auto &site : churn)
        site.drain(env);
    for (auto &site : growing)
        site.drain(env);
}

} // namespace safemem
