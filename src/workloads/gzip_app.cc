#include "workloads/gzip_app.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "workloads/sites.h"

namespace safemem {

namespace {

constexpr std::uint64_t kSiteHashTable = makeSite(kAppGzip, 1);
constexpr std::uint64_t kSiteInput = makeSite(kAppGzip, 2);
constexpr std::uint64_t kSiteOutput = makeSite(kAppGzip, 3, true);

constexpr std::uint64_t kFnDeflate = funcId(kAppGzip, 1);
constexpr std::uint64_t kFnFlush = funcId(kAppGzip, 2);

constexpr std::size_t kBlockSize = 8192;
constexpr std::size_t kHashSlots = 4096;
constexpr std::size_t kTrailerBytes = 16;
/** Blocks per input file; buffers are allocated per file, like gzip. */
constexpr std::size_t kBlocksPerFile = 16;

/** Deflate-style per-byte compute cost (match search, Huffman). */
constexpr Cycles kPerByteCycles = 180;

} // namespace

void
GzipApp::run(Env &env, const RunParams &params)
{
    Rng rng(params.seed * 50021 + 17);
    FrameGuard main_frame(env.stack(), funcId(kAppGzip, 0));

    // Hash-chain heads, shared across blocks like gzip's window state.
    VirtAddr hash_table =
        env.callocBytes(kHashSlots, sizeof(std::uint32_t), kSiteHashTable);

    std::vector<std::uint8_t> input(kBlockSize);
    std::vector<std::uint8_t> output(kBlockSize + kTrailerBytes + 64);

    static const char kPhrase[] =
        "the quick brown fox jumps over the lazy dog while gzip packs ";

    VirtAddr in_buf = 0;
    VirtAddr out_buf = 0;
    for (std::uint64_t block = 0; block < params.requests; ++block) {
        FrameGuard frame(env.stack(), kFnDeflate);

        // gzip allocates its buffers once per input file, not per block.
        if (block % kBlocksPerFile == 0) {
            if (in_buf != 0) {
                env.free(out_buf);
                env.free(in_buf);
            }
            in_buf = env.alloc(kBlockSize, kSiteInput);
            out_buf = env.alloc(kBlockSize, kSiteOutput);
        }

        // Produce the block's input. Normal inputs are text-like and
        // compress well; buggy inputs are incompressible noise.
        if (params.buggy) {
            for (auto &byte : input)
                byte = static_cast<std::uint8_t>(rng.next());
        } else {
            for (std::size_t i = 0; i < kBlockSize; ++i)
                input[i] = static_cast<std::uint8_t>(
                    kPhrase[(i + block) % (sizeof(kPhrase) - 1)]);
        }

        env.write(in_buf, input.data(), kBlockSize);

        // LZ77 with 3-byte hashing: greedy matches against the last
        // occurrence of the hash, literals otherwise. Output bytes are
        // staged in a 64-byte buffer and flushed to the output buffer
        // in chunks, the way gzip batches its bit stream.
        std::size_t out_pos = 0;
        std::size_t pos = 0;
        std::uint8_t staging[64];
        std::size_t staged = 0;
        std::size_t flush_base = 0;

        auto flush_staging = [&] {
            if (staged == 0)
                return;
            // Deflate's own output writes are clamped to the buffer;
            // only the trailer below goes out unchecked.
            std::size_t limit =
                flush_base < kBlockSize ? kBlockSize - flush_base : 0;
            std::size_t n = std::min(staged, limit);
            if (n > 0)
                env.write(out_buf + flush_base, staging, n);
            flush_base += staged;
            staged = 0;
        };
        auto emit = [&](std::uint8_t byte) {
            staging[staged++] = byte;
            ++out_pos;
            if (staged == sizeof(staging))
                flush_staging();
        };

        std::uint32_t last_pos[kHashSlots];
        std::memset(last_pos, 0xff, sizeof(last_pos));

        while (pos + 3 <= kBlockSize) {
            std::uint32_t h = (input[pos] * 33u + input[pos + 1]) * 33u +
                              input[pos + 2];
            std::size_t slot = h % kHashSlots;

            // Consult and update the hash chain in simulated memory
            // every few positions (gzip touches its window constantly).
            if (pos % 64 == 0) {
                env.load<std::uint32_t>(
                    hash_table + slot * sizeof(std::uint32_t));
                env.store<std::uint32_t>(
                    hash_table + slot * sizeof(std::uint32_t),
                    static_cast<std::uint32_t>(pos));
            }

            std::size_t match_len = 0;
            std::uint32_t candidate = last_pos[slot];
            if (candidate != 0xffffffffu) {
                std::size_t cand = candidate;
                while (pos + match_len < kBlockSize && match_len < 255 &&
                       input[cand + match_len] == input[pos + match_len])
                    ++match_len;
            }
            last_pos[slot] = static_cast<std::uint32_t>(pos);

            if (match_len >= 4) {
                // Emit a 3-byte back-reference token.
                emit(0xff);
                emit(static_cast<std::uint8_t>(match_len));
                emit(static_cast<std::uint8_t>(candidate));
                pos += match_len;
            } else {
                emit(input[pos]);
                ++pos;
            }
        }
        flush_staging();
        env.compute(kBlockSize * kPerByteCycles);

        // The gzip bug: the trailer (CRC32 + ISIZE) is appended with no
        // space check. out_pos is clamped to the buffer for the data
        // writes above, but the trailer write happens regardless.
        {
            FrameGuard flush_frame(env.stack(), kFnFlush);
            std::uint8_t trailer[kTrailerBytes] = {0xde, 0xad, 0xbe, 0xef};
            std::size_t trailer_at = std::min(out_pos, kBlockSize);
            env.write(out_buf + trailer_at, trailer, kTrailerBytes);
        }

        // "Write the compressed block out": read it back once.
        std::size_t produced =
            std::min(out_pos + kTrailerBytes, kBlockSize);
        env.read(out_buf, output.data(), produced);
    }

    if (in_buf != 0) {
        env.free(out_buf);
        env.free(in_buf);
    }
    env.free(hash_table);
}

} // namespace safemem
