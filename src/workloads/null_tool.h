/**
 * @file
 * The uninstrumented baseline: malloc family passes straight through to
 * the heap allocator. Table 3 overheads are measured against runs under
 * this tool.
 */

#pragma once

#include <vector>

#include "alloc/heap_allocator.h"
#include "common/tool.h"
#include "os/machine.h"

namespace safemem {

class NullTool : public Tool
{
  public:
    NullTool(Machine &machine, HeapAllocator &allocator)
        : machine_(machine), allocator_(allocator)
    {}

    VirtAddr
    toolAlloc(std::size_t size, const ShadowStack &, std::uint64_t) override
    {
        return allocator_.allocate(size);
    }

    VirtAddr
    toolCalloc(std::size_t count, std::size_t size, const ShadowStack &,
               std::uint64_t) override
    {
        VirtAddr addr = allocator_.allocate(count * size);
        std::vector<std::uint8_t> zeros(count * size, 0);
        machine_.write(addr, zeros.data(), zeros.size());
        return addr;
    }

    VirtAddr
    toolRealloc(VirtAddr addr, std::size_t new_size, const ShadowStack &,
                std::uint64_t) override
    {
        return allocator_.reallocate(addr, new_size);
    }

    void toolFree(VirtAddr addr) override { allocator_.deallocate(addr); }

  private:
    Machine &machine_;
    HeapAllocator &allocator_;
};

} // namespace safemem
