/**
 * @file
 * Fleet-scale sampled-monitoring scenario: the "millions of users"
 * experiment SampledSafeMem exists for.
 *
 * One fleet run consolidates N request-churning server tenants on one
 * machine (createProcess/exitProcess churn, banked memory, shared cache
 * and scrubber) and repeats that across many seeds for each monitoring
 * configuration: uninstrumented, full SafeMem, Purify, and SampledSafeMem
 * at several rates. Per configuration it aggregates
 *
 *   - overhead: mean simulated-cycle overhead vs the uninstrumented
 *     fleet at the same seed;
 *   - detection probability: fraction of seeds whose injected bug was
 *     caught anywhere in the fleet;
 *   - time-to-first-catch: mean app-CPU time of the earliest bug-site
 *     report over the detecting seeds.
 *
 * Every run is a pure function of its RunSpec, so the whole sweep is
 * bit-identical for any worker count — runFleet() can re-execute the
 * matrix at a second worker count and assert equality. All rate/mean
 * columns use the guarded helpers in report_writer.h, so a tenant that
 * samples nothing or a rate that never detects renders 0, never NaN.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/driver.h"

namespace safemem {

/** Parameters of one fleet sweep. */
struct FleetConfig
{
    /** Server workload every tenant runs (buggy inputs). */
    std::string app = "squid2";
    /** Consolidated tenant processes per run. */
    std::uint32_t procs = 8;
    /** Requests per tenant. */
    std::uint64_t requests = 300;
    /** Distinct fleet seeds per configuration. */
    std::uint32_t seeds = 5;
    /** First seed; seed k runs at baseSeed + 1009 * k. */
    std::uint64_t baseSeed = 42;
    /** Memory banks of each run's machine. */
    std::uint32_t banks = 4;
    /** SampledSafeMem rates to sweep (each adds a configuration). */
    std::vector<double> rates = {1.0 / 16, 1.0 / 64, 1.0 / 256};
    /** Worker threads for the run matrix (0 = all cores). */
    unsigned workers = 1;
    /**
     * When non-zero, execute the matrix a second time with this many
     * workers and record whether every result matched bit for bit
     * (FleetResult::identical). 0 skips the check (identical = true).
     */
    unsigned verifyWorkers = 0;
    /** Per-run log sink (must outlive the sweep); null = default. */
    const Log *log = nullptr;
};

/** Aggregated outcome of one monitoring configuration. */
struct FleetCell
{
    /** Short label: "none", "safemem", "purify", "sampled@0.015625". */
    std::string tool;
    ToolKind kind = ToolKind::None;
    /** Sampling rate (1.0 for non-sampled configurations). */
    double rate = 1.0;

    std::uint32_t seedsRun = 0;
    std::uint32_t seedsDetected = 0;
    /** 100 * seedsDetected / seedsRun (guarded). */
    double detectionPercent = 0.0;
    /** Mean overhead vs the same-seed uninstrumented run, percent. */
    double meanOverheadPercent = 0.0;
    /** Mean time-to-first-catch over detecting seeds, seconds of app
     *  CPU time; 0 when no seed detected (guarded). */
    double meanCatchSeconds = 0.0;
    /** Mean simulated wall clock over seeds, cycles. */
    Cycles meanTotalCycles = 0;

    /** @name Sampling traffic split (zero for non-sampled cells) */
    /// @{
    std::uint64_t monitoredAllocs = 0;
    std::uint64_t totalAllocs = 0;
    /** 100 * monitoredAllocs / totalAllocs (guarded). */
    double monitoredPercent = 0.0;
    /** Tenant processes whose sample count was zero — the cells whose
     *  rate columns would divide by zero without the guards. */
    std::uint64_t zeroSampleTenants = 0;
    /// @}

    bool operator==(const FleetCell &) const = default;
};

/** Everything one fleet sweep produced. */
struct FleetResult
{
    std::string app;
    std::uint32_t procs = 0;
    std::uint64_t requests = 0;
    std::uint32_t seeds = 0;
    std::uint64_t baseSeed = 0;
    std::uint32_t banks = 0;
    /** Configurations in sweep order: none, safemem, purify, sampled@r. */
    std::vector<FleetCell> cells;
    /** True when the verify pass (if any) matched bit for bit. */
    bool identical = true;

    bool operator==(const FleetResult &) const = default;
};

/** Run the fleet sweep described by @p config. */
FleetResult runFleet(const FleetConfig &config);

/** @return the human-readable fleet report (table + verdict line). */
std::string formatFleetReport(const FleetResult &result);

/**
 * @return the BENCH_fleet.json document for @p result: config echo plus
 * one object per configuration. Contains no wall-clock fields, so two
 * sweeps of the same config compare byte-equal regardless of workers.
 */
std::string fleetJson(const FleetResult &result);

} // namespace safemem
