/**
 * @file
 * stream — a coarse-grained sequential streaming workload.
 *
 * Not one of the paper's Table 1 applications: it exists for the
 * protection-geometry trade-off lab. Each batch fills a large buffer
 * front to back in chunk-sized writes, then drains it in the same
 * order — the access pattern large-codeword EDC+ECC geometries are
 * built for, where consecutive writebacks land in the codeword the
 * write-combine buffer already holds open and sidestep the partial
 * write read-modify-write. The injected bug: buggy inputs leak every
 * other exhausted buffer when the ring rotates.
 */

#pragma once

#include "workloads/app.h"

namespace safemem {

class StreamApp : public App
{
  public:
    const char *name() const override { return "stream"; }
    void run(Env &env, const RunParams &params) override;
};

} // namespace safemem
