/**
 * @file
 * Randomized end-to-end stress tests: long random alloc/access/free
 * sequences under full SafeMem, mirrored in host memory, over both
 * watch backends. Invariants:
 *
 *  - no corruption report is ever emitted for a well-behaved program;
 *  - every read returns exactly what the mirror predicts, through any
 *    amount of watch/unwatch churn, suspect pruning and block reuse;
 *  - the backend ends the run with zero live watches after finish().
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "common/random.h"
#include "pageprot/page_watch.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

enum class BackendKind
{
    Ecc,
    Page
};

class StressTest : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(StressTest, WellBehavedProgramSurvivesWatchChurn)
{
    Machine machine(MachineConfig{256u << 20, CacheConfig{64, 4}, 64});
    HeapAllocator allocator(machine);

    std::unique_ptr<EccWatchManager> ecc;
    std::unique_ptr<PageWatchBackend> page;
    WatchBackend *backend;
    if (GetParam() == BackendKind::Ecc) {
        ecc = std::make_unique<EccWatchManager>(machine);
        ecc->installFaultHandler();
        ecc->installScrubHooks();
        backend = ecc.get();
    } else {
        page = std::make_unique<PageWatchBackend>(machine);
        page->install();
        backend = page.get();
    }

    SafeMemConfig config;
    config.warmupTime = 50'000;
    config.checkingPeriod = 5'000;
    config.minStableTime = 20'000;
    config.aleakLiveThreshold = 32;
    config.leakReportThreshold = 500'000;
    config.suspectCooldown = 50'000;
    SafeMemTool tool(machine, allocator, *backend, config);
    ShadowStack stack;

    struct Block
    {
        std::size_t size;
        std::uint8_t fill;
    };
    std::map<VirtAddr, Block> live;
    Rng rng(GetParam() == BackendKind::Ecc ? 101 : 202);

    auto verify = [&](VirtAddr addr, const Block &block) {
        std::vector<std::uint8_t> data(block.size);
        machine.read(addr, data.data(), data.size());
        for (std::uint8_t byte : data)
            ASSERT_EQ(byte, block.fill);
    };

    // A few long-lived blocks that get touched occasionally — suspect
    // pruning fodder.
    std::vector<VirtAddr> elders;
    for (int i = 0; i < 6; ++i) {
        FrameGuard frame(stack, 0x600000 + i * 0x40);
        VirtAddr addr = tool.toolAlloc(96, stack, 0);
        machine.store<std::uint64_t>(addr, 42);
        elders.push_back(addr);
    }

    const int kOps = GetParam() == BackendKind::Ecc ? 1500 : 500;
    for (int op = 0; op < kOps; ++op) {
        machine.compute(2'000);
        double dice = rng.real();
        if (dice < 0.45 || live.empty()) {
            FrameGuard frame(stack, 0x700000 +
                             (rng.range(0, 3)) * 0x40);
            Block block;
            block.size = rng.range(1, 1500);
            block.fill = static_cast<std::uint8_t>(rng.next());
            VirtAddr addr = tool.toolAlloc(block.size, stack, 0);
            std::vector<std::uint8_t> data(block.size, block.fill);
            machine.write(addr, data.data(), data.size());
            live[addr] = block;
        } else if (dice < 0.75) {
            auto it = live.begin();
            std::advance(it, rng.range(0, live.size() - 1));
            verify(it->first, it->second);
        } else if (dice < 0.9) {
            auto it = live.begin();
            std::advance(it, rng.range(0, live.size() - 1));
            verify(it->first, it->second);
            tool.toolFree(it->first);
            live.erase(it);
        } else {
            // Touch an elder (prunes any pending suspicion).
            VirtAddr elder = elders[rng.range(0, elders.size() - 1)];
            ASSERT_EQ(machine.load<std::uint64_t>(elder), 42u);
        }
    }

    for (const auto &[addr, block] : live) {
        verify(addr, block);
        tool.toolFree(addr);
    }
    for (VirtAddr elder : elders)
        tool.toolFree(elder);
    tool.finish();

    EXPECT_TRUE(tool.corruptionDetector().reports().empty())
        << "a well-behaved program must produce no corruption reports";
    EXPECT_EQ(tool.leakDetector().reports().size(), 0u);
    EXPECT_EQ(backend->regionCount(), 0u);
    EXPECT_EQ(allocator.liveBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, StressTest,
                         ::testing::Values(BackendKind::Ecc,
                                           BackendKind::Page),
                         [](const auto &info) {
                             return info.param == BackendKind::Ecc
                                        ? "Ecc"
                                        : "PageProtection";
                         });

TEST(StressScrub, WatchChurnUnderActiveScrubbing)
{
    // Scrubbing fires repeatedly while watches come and go; data stays
    // intact and no spurious faults reach the detectors. The period
    // must exceed the cost of a full-DRAM scrub pass or passes fire
    // back to back (2 MiB = 256 Ki ECC groups x 2 cycles = 512 Ki
    // cycles per pass).
    Machine machine(MachineConfig{2u << 20, CacheConfig{32, 4}, 32});
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    backend.installScrubHooks();

    SafeMemConfig config;
    config.detectLeaks = false;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;
    machine.kernel().enableScrubbing(2'000'000);

    Rng rng(5);
    std::map<VirtAddr, std::uint8_t> live;
    for (int op = 0; op < 400; ++op) {
        machine.compute(3'000);
        if (rng.chance(0.6) || live.empty()) {
            std::uint8_t fill = static_cast<std::uint8_t>(rng.next());
            VirtAddr addr = tool.toolAlloc(200, stack, 0);
            std::vector<std::uint8_t> data(200, fill);
            machine.write(addr, data.data(), data.size());
            live[addr] = fill;
        } else {
            auto it = live.begin();
            std::advance(it, rng.range(0, live.size() - 1));
            std::vector<std::uint8_t> data(200);
            machine.read(it->first, data.data(), data.size());
            for (std::uint8_t byte : data)
                ASSERT_EQ(byte, it->second);
            tool.toolFree(it->first);
            live.erase(it);
        }
    }
    for (const auto &[addr, fill] : live)
        tool.toolFree(addr);
    tool.finish();

    EXPECT_GT(machine.kernel().stats().get("scrub_passes"), 0u);
    EXPECT_TRUE(tool.corruptionDetector().reports().empty());
}

} // namespace
} // namespace safemem
