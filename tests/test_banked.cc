/**
 * @file
 * Tests for the banked memory system: page-interleave geometry,
 * per-bank locking and scrubbing, stat roll-up, home-bank frame
 * placement, trace payload decoding — and the two bit-identity
 * contracts (banks=1 equals the pre-bank machine byte for byte;
 * banked consolidated runs are deterministic at any worker count).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/clock.h"
#include "common/logging.h"
#include "mem/memory_controller.h"
#include "mem/physical_memory.h"
#include "os/machine.h"
#include "trace/trace.h"
#include "workloads/cli.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

class BankedControllerTest : public ::testing::Test
{
  protected:
    BankedControllerTest()
        : memory(64 * 1024),
          controller(memory, clock, nullptr, defaultCodec(), 4)
    {
        controller.setInterruptHandler([this](const EccFaultInfo &info) {
            ++interrupts;
            lastFault = info;
        });
    }

    CycleClock clock;
    PhysicalMemory memory;
    MemoryController controller;
    int interrupts = 0;
    EccFaultInfo lastFault;
};

TEST_F(BankedControllerTest, PageInterleavePartitionsMemory)
{
    ASSERT_EQ(controller.numBanks(), 4u);
    for (PhysAddr page = 0; page < memory.size(); page += kPageSize) {
        unsigned bank = controller.bankOf(page);
        EXPECT_EQ(bank, (page / kPageSize) % 4);
        // Every line of the page lives wholly in the page's bank.
        for (PhysAddr line = page; line < page + kPageSize;
             line += kCacheLineSize)
            EXPECT_EQ(controller.bankOf(line), bank);
    }
}

TEST_F(BankedControllerTest, BankMaskForSpan)
{
    EXPECT_EQ(controller.bankMaskForSpan(0, 0), 0u);
    EXPECT_EQ(controller.bankMaskForSpan(0, kCacheLineSize), 1u << 0);
    EXPECT_EQ(controller.bankMaskForSpan(kPageSize, 8), 1u << 1);
    // A span across the page boundary touches both adjacent banks.
    EXPECT_EQ(controller.bankMaskForSpan(kPageSize - 8, 16),
              (1u << 0) | (1u << 1));
    // Four full pages: every bank once.
    EXPECT_EQ(controller.bankMaskForSpan(0, 4 * kPageSize), 0xfu);
    // Wrap-around: pages 3 and 4 are banks 3 and 0.
    EXPECT_EQ(controller.bankMaskForSpan(3 * kPageSize, 2 * kPageSize),
              (1u << 3) | (1u << 0));
}

TEST_F(BankedControllerTest, BankLocksAreIndependent)
{
    controller.lockBank(0);
    EXPECT_TRUE(controller.bankLocked(0));
    EXPECT_FALSE(controller.bankLocked(1));
    EXPECT_TRUE(controller.anyBankLocked());
    EXPECT_FALSE(controller.busLocked());

    // Traffic to the locked bank panics; other banks stay in service.
    LineData line{};
    EXPECT_THROW(controller.fillLine(0, line), PanicError);
    EXPECT_THROW(controller.evictLine(0, line), PanicError);
    EXPECT_THROW(controller.scrubBank(0), PanicError);
    EXPECT_TRUE(controller.fillLine(kPageSize, line));
    controller.evictLine(kPageSize, line);
    controller.scrubBank(1);

    controller.unlockBank(0);
    EXPECT_FALSE(controller.anyBankLocked());
    EXPECT_TRUE(controller.fillLine(0, line));
}

TEST_F(BankedControllerTest, DoubleBankLockPanics)
{
    controller.lockBank(2);
    EXPECT_THROW(controller.lockBank(2), PanicError);
    controller.unlockBank(2);
    EXPECT_THROW(controller.unlockBank(2), PanicError);
}

TEST_F(BankedControllerTest, LockBusLocksEveryBank)
{
    controller.lockBus();
    EXPECT_TRUE(controller.busLocked());
    for (unsigned b = 0; b < controller.numBanks(); ++b)
        EXPECT_TRUE(controller.bankLocked(b));
    controller.unlockBus();
    EXPECT_FALSE(controller.busLocked());
    EXPECT_FALSE(controller.anyBankLocked());
}

TEST_F(BankedControllerTest, BankSetLockGuardLocksExactlyTheMask)
{
    {
        BankSetLockGuard banks(controller, (1u << 1) | (1u << 3));
        EXPECT_TRUE(controller.bankLocked(1));
        EXPECT_TRUE(controller.bankLocked(3));
        EXPECT_FALSE(controller.bankLocked(0));
        EXPECT_FALSE(controller.bankLocked(2));
    }
    EXPECT_FALSE(controller.anyBankLocked());
}

TEST_F(BankedControllerTest, ScrubBankWalksOnlyItsPages)
{
    LineData line{};
    setLineWord(line, 0, 0xaaaaULL);
    controller.evictLine(0, line);              // bank 0
    controller.evictLine(kPageSize, line);      // bank 1
    memory.flipDataBit(0, 5);
    memory.flipDataBit(kPageSize, 7);

    controller.scrubBank(0);
    EXPECT_EQ(memory.readWord(0), 0xaaaaULL) << "bank 0 healed";
    EXPECT_NE(memory.readWord(kPageSize), 0xaaaaULL)
        << "bank 1 untouched by bank 0's pass";
    EXPECT_EQ(controller.bank(0).stats().get(ControllerStat::ScrubPasses),
              1u);
    EXPECT_EQ(controller.bank(1).stats().get(ControllerStat::ScrubPasses),
              0u);

    controller.scrubBank(1);
    EXPECT_EQ(memory.readWord(kPageSize), 0xaaaaULL);
}

TEST_F(BankedControllerTest, FaultInfoCarriesTheBank)
{
    LineData line{};
    setLineWord(line, 0, 0x5555ULL);
    controller.evictLine(2 * kPageSize, line); // bank 2
    memory.flipDataBit(2 * kPageSize, 1);
    memory.flipDataBit(2 * kPageSize, 3);
    LineData out{};
    EXPECT_FALSE(controller.fillLine(2 * kPageSize, out));
    EXPECT_EQ(interrupts, 1);
    EXPECT_EQ(lastFault.bank, 2u);
}

TEST_F(BankedControllerTest, PerBankStatsRollUpToMachineWide)
{
    LineData line{};
    for (PhysAddr page = 0; page < 8 * kPageSize; page += kPageSize) {
        controller.evictLine(page, line);
        LineData out{};
        controller.fillLine(page, out);
    }
    controller.scrubAll();
    controller.lockBank(1);
    controller.unlockBank(1);

    for (ControllerStat stat :
         {ControllerStat::BusLocks, ControllerStat::LineFills,
          ControllerStat::LineEvictions, ControllerStat::ScrubPasses}) {
        std::uint64_t sum = 0;
        for (unsigned b = 0; b < controller.numBanks(); ++b)
            sum += controller.bank(b).stats().get(stat);
        EXPECT_EQ(sum, controller.stats().get(stat));
    }
    // Two of the eight pages hit each bank.
    EXPECT_EQ(controller.bank(3).stats().get(ControllerStat::LineFills),
              2u);
}

TEST_F(BankedControllerTest, BankCountValidation)
{
    CycleClock c2;
    PhysicalMemory m2(64 * 1024);
    EXPECT_THROW(MemoryController(m2, c2, nullptr, defaultCodec(), 0),
                 PanicError);
    EXPECT_THROW(
        MemoryController(m2, c2, nullptr, defaultCodec(),
                         kMaxMemoryBanks + 1),
        PanicError);
    // 16 pages of DRAM cannot host 32 banks.
    EXPECT_THROW(MemoryController(m2, c2, nullptr, defaultCodec(), 32),
                 PanicError);
}

TEST(BankedMachine, HomeBankAffinityAndFootprint)
{
    MachineConfig config{8u << 20, CacheConfig{16, 2}, 64};
    config.banks = 4;
    Machine machine(config);
    Kernel &kernel = machine.kernel();
    Pid pid = kernel.currentPid();

    VirtAddr region = kernel.mapRegion(4 * kPageSize);
    (void)region;
    unsigned home = pid % 4;
    std::uint64_t footprint = kernel.bankFootprint(pid);
    EXPECT_NE(footprint & (std::uint64_t{1} << home), 0u)
        << "frames placed in the home bank first";
    std::uint32_t total = 0;
    for (unsigned b = 0; b < 4; ++b)
        total += kernel.currentProcess().bankFrameCount(b);
    EXPECT_GE(kernel.currentProcess().bankFrameCount(home), 4u);
    EXPECT_GE(total, 4u);
}

TEST(BankedMachine, TraceCarriesBankPayloads)
{
    if (!kTraceCompiledIn)
        GTEST_SKIP() << "emit sites compiled out";

    Trace trace(1u << 16);
    // Small DIMM: 1 MiB / 4 banks = 64 pages per bank, so a 80-page
    // region must overflow the boot process's home bank and spread
    // traffic across a bank boundary.
    MachineConfig config{1u << 20, CacheConfig{16, 2}, 64};
    config.banks = 4;
    config.trace = &trace;
    Machine machine(config);

    VirtAddr region = machine.kernel().mapRegion(80 * kPageSize);
    for (int i = 0; i < 80; ++i)
        machine.store<std::uint64_t>(region + i * kPageSize, i);
    machine.cache().flushAll();

    std::uint64_t fills = 0;
    std::uint64_t banked_fills = 0;
    for (const TraceRecord &rec : trace.records()) {
        if (rec.event == TraceEvent::ControllerFill ||
            rec.event == TraceEvent::ControllerEvict) {
            std::uint64_t line = rec.a;
            int word = traceEventBankPayload(rec.event);
            ASSERT_GE(word, 1);
            std::uint64_t bank = word == 1 ? rec.b : rec.c;
            EXPECT_EQ(bank, machine.controller().bankOf(line));
            ++fills;
            if (bank != 0)
                ++banked_fills;
        }
    }
    EXPECT_GT(fills, 0u) << "controller traffic was recorded";
    EXPECT_GT(banked_fills, 0u) << "traffic reached a non-zero bank";
}

TEST(BankedTrace, BankPayloadDecodingAndSummary)
{
    EXPECT_EQ(traceEventBankPayload(TraceEvent::ControllerBusLock), 0);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::ControllerBusUnlock), 0);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::KernelScrubTickBegin), 0);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::KernelScrubTickEnd), 0);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::ControllerEvict), 1);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::ControllerFill), 2);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::ControllerScrubBegin), 2);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::ControllerScrubEnd), 2);
    EXPECT_EQ(traceEventBankPayload(TraceEvent::SchedContextSwitch), -1);

    TraceSection section;
    section.label = "t";
    section.emitted = 2;
    section.capacity = 16;
    section.records.push_back(
        TraceRecord{10, 0x1000, 0, 1, 0, TraceEvent::ControllerFill});
    section.records.push_back(
        TraceRecord{20, 3, 0, 0, 0, TraceEvent::KernelScrubTickBegin});
    std::string line0 = traceRecordJsonLine(section, 0);
    EXPECT_NE(line0.find("\"bank\":1"), std::string::npos);
    std::string summary = traceSectionSummaryJson(section);
    EXPECT_NE(summary.find("\"bank_events\":{\"1\":1,\"3\":1}"),
              std::string::npos);
}

TEST(BankedCli, BanksFlagParsesAndValidates)
{
    CliParse parse = parseCliArguments({"gzip", "--banks", "4"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(parse.options->params.banks, 4u);

    EXPECT_FALSE(
        parseCliArguments({"gzip", "--banks", "0"}).options.has_value());
    EXPECT_FALSE(
        parseCliArguments({"gzip", "--banks", "65"}).options.has_value());
}

/** Read a pre-refactor golden capture from tests/data/. */
std::string
readGolden(const std::string &name)
{
    std::ifstream file(std::string(SAFEMEM_TEST_DATA_DIR) + "/" + name,
                       std::ios::binary);
    EXPECT_TRUE(file.is_open()) << "missing golden " << name;
    std::ostringstream text;
    text << file.rdbuf();
    return text.str();
}

TEST(BankedGolden, SingleBankSweepBitIdenticalToPreBankMachine)
{
    // The whole paper sweep (every app under safemem, full counter
    // dump) must reproduce the pre-refactor output byte for byte at
    // banks=1 — tables 2-5 and figures 1-3 all read from these runs.
    CliParse parse =
        parseCliArguments({"all", "--stats", "--workers", "0"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(runCli(*parse.options),
              readGolden("golden_prebank_sweep.txt"));
}

TEST(BankedGolden, SingleBankConsolidatedBitIdenticalToPreBankMachine)
{
    // Same contract for the consolidated runner: the BankGate replaced
    // the token gate, per-bank free lists replaced the flat one, and
    // none of it may move a single byte at banks=1.
    CliParse parse = parseCliArguments(
        {"all", "--stats", "--procs", "3", "--buggy", "--workers", "0"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(runCli(*parse.options),
              readGolden("golden_prebank_procs3.txt"));
}

TEST(BankedConsolidated, DeterministicAcrossWorkersAtEveryBankCount)
{
    for (std::uint32_t banks : {1u, 4u, 8u}) {
        RunSpec spec;
        spec.app = "ypserv1";
        spec.tool = ToolKind::SafeMemBoth;
        spec.params = paperParams("ypserv1", true);
        spec.params.requests = 300;
        spec.params.banks = banks;
        spec.procs = 3;

        // Same spec, twice in a row: the banked hand-off path must stay
        // a pure function of the spec.
        RunResult serial = runConsolidated(spec);
        RunResult again = runConsolidated(spec);
        EXPECT_TRUE(serial == again) << "banks=" << banks;

        // And through the matrix at different worker counts.
        std::vector<RunSpec> specs{spec, spec};
        std::vector<MatrixCell> one = runMatrix(specs, 1);
        std::vector<MatrixCell> four = runMatrix(specs, 4);
        ASSERT_TRUE(one[0].ok() && four[0].ok()) << "banks=" << banks;
        EXPECT_TRUE(one[0].result == four[1].result)
            << "banks=" << banks;
        EXPECT_TRUE(one[0].result == serial) << "banks=" << banks;

        if (banks > 1) {
            // The gate classifies every scheduler-driven hand-off; with
            // home-bank frame affinity the three processes settle into
            // disjoint banks, so some hand-offs must classify disjoint.
            std::uint64_t classified =
                serial.stats.at("sched.bank_disjoint_handoffs") +
                serial.stats.at("sched.bank_gated_handoffs");
            EXPECT_GT(classified, 0u) << "banks=" << banks;
            EXPECT_GT(serial.stats.at("sched.bank_disjoint_handoffs"), 0u)
                << "banks=" << banks;
        } else {
            EXPECT_EQ(serial.stats.count("sched.bank_disjoint_handoffs"),
                      0u)
                << "banks=1 keeps the pre-bank stats key set";
        }
    }
}

} // namespace
} // namespace safemem
