/**
 * @file
 * Tests for the protection-geometry abstraction: spec parsing, the
 * large-codeword EDC fast path / ECC decode-on-failure split in the
 * memory controller, writeback RMW accounting, watches and scrubbing
 * at codeword granularity, and the word-default's stat-silence
 * contract (no "geometry.*" keys on pre-geometry machines).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/types.h"
#include "ecc/edc.h"
#include "ecc/geometry.h"
#include "os/machine.h"
#include "safemem/watch_manager.h"
#include "trace/trace.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

ProtectionGeometry
blockGeometry(const char *spec)
{
    auto parsed = parseGeometry(spec);
    EXPECT_TRUE(parsed.has_value()) << spec;
    return *parsed;
}

TEST(GeometryTest, ParseAndNameRoundTrip)
{
    for (const char *spec :
         {"word", "block:512", "block:1024", "block:4096", "block:512/parity",
          "block:1024/crc32", "block:4096/crc32"}) {
        auto parsed = parseGeometry(spec);
        ASSERT_TRUE(parsed.has_value()) << spec;
        // The canonical name re-parses to the same geometry.
        auto again = parseGeometry(geometryName(*parsed));
        ASSERT_TRUE(again.has_value()) << spec;
        EXPECT_EQ(*again, *parsed) << spec;
    }
    EXPECT_TRUE(parseGeometry("word")->isWord());
    EXPECT_EQ(parseGeometry("block:512")->codewordBytes, 512u);
    EXPECT_EQ(parseGeometry("block:1024/crc32")->edc, EdcKind::Crc32);
    EXPECT_EQ(parseGeometry("block:4096")->edc, EdcKind::Parity);
    // The word default reports no label; block geometries do.
    EXPECT_EQ(geometryLabel(ProtectionGeometry{}), "");
    EXPECT_EQ(geometryLabel(blockGeometry("block:512")), "block512");
    EXPECT_EQ(geometryLabel(blockGeometry("block:1024/crc32")),
              "block1024crc32");
}

TEST(GeometryTest, ParseRejectsInvalidSpecs)
{
    for (const char *spec :
         {"", "words", "block", "block:", "block:0", "block:256",
          "block:8192", "block:1000", "block:512/", "block:512/md5",
          "block:512 ", "Word"}) {
        EXPECT_FALSE(parseGeometry(spec).has_value()) << spec;
    }
}

TEST(GeometryTest, BlockEccCheckBytesGrowSlowerThanCodewords)
{
    // A single SEC-DED code over the whole codeword: check-bit count is
    // logarithmic, so redundancy amortizes as codewords grow.
    EXPECT_EQ(blockEccCheckBytes(512), 2u);
    EXPECT_EQ(blockEccCheckBytes(1024), 2u);
    EXPECT_EQ(blockEccCheckBytes(4096), 3u);
}

TEST(GeometryTest, WordMachineHasNoEdcLaneAndNoGeometryStats)
{
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64});
    EXPECT_FALSE(machine.physicalMemory().hasEdcLane());
    VirtAddr buffer = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(buffer, 0x1234);
    machine.cache().flushAll();
    EXPECT_EQ(machine.load<std::uint64_t>(buffer), 0x1234u);
    // No block-geometry slot ever moves on the per-word datapath.
    EXPECT_TRUE(machine.controller().geometryStats().all().empty());
}

TEST(GeometryTest, WordRunResultCarriesNoGeometryKeys)
{
    // The driver merges "geometry.*" only under a block geometry, so
    // pre-geometry stat snapshots stay byte-identical.
    RunParams params;
    params.requests = 8;
    RunResult result = runWorkload("stream", ToolKind::None, params);
    EXPECT_TRUE(result.geometry.isWord());
    for (const auto &[name, value] : result.stats)
        EXPECT_EQ(name.rfind("geometry.", 0), std::string::npos) << name;
}

TEST(GeometryTest, StreamAppIsReachableButOutOfPaperSweeps)
{
    EXPECT_NE(makeApp("stream"), nullptr);
    for (const std::string &name : appNames())
        EXPECT_NE(name, "stream");
}

TEST(GeometryTest, BlockRunReportsGeometryStats)
{
    RunParams params;
    params.requests = 8;
    params.geometry = blockGeometry("block:512");
    RunResult result = runWorkload("stream", ToolKind::None, params);
    EXPECT_FALSE(result.geometry.isWord());
    EXPECT_GT(result.stats.at("geometry.edc_checks_passed"), 0u);
    EXPECT_GT(result.stats.at("geometry.data_bytes_read"), 0u);
    EXPECT_GT(result.stats.at("geometry.redundancy_bytes_written"), 0u);
}

TEST(GeometryTest, ScrambleDeltaIsVisibleToEveryFold)
{
    // The kernel boot-checks this; keep the unit-level fact pinned too:
    // a 3-bit scramble signature must perturb both EDC folds, or
    // WatchMemory's staleness trick would silently stop faulting.
    ScramblePattern pattern;
    EXPECT_NE(edcScrambleFoldDelta(EdcKind::Parity, pattern.mask()), 0u);
    EXPECT_NE(edcScrambleFoldDelta(EdcKind::Crc32, pattern.mask()), 0u);
}

TEST(GeometryTest, EdcMissTriggersBlockDecodeAndHeals)
{
    MachineConfig config{4u << 20, CacheConfig{16, 2}, 64};
    config.geometry = blockGeometry("block:512");
    Machine machine(config);
    ASSERT_TRUE(machine.physicalMemory().hasEdcLane());
    VirtAddr buffer = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(buffer + 8, 0x5eedf00du);
    machine.cache().flushAll();
    PhysAddr pline = *machine.kernel().peekTranslate(buffer);

    machine.physicalMemory().flipDataBit(pline + 8, 5);
    EXPECT_FALSE(machine.controller().edcConsistent(pline));

    const StatSet &geom = machine.controller().geometryStats();
    std::uint64_t misses = geom.get(GeometryStat::EdcChecksFailed);
    std::uint64_t decodes = geom.get(GeometryStat::BlockDecodes);
    // The fill misses EDC, decodes the whole codeword, and the SEC-DED
    // layer heals the single flipped bit in place.
    EXPECT_EQ(machine.load<std::uint64_t>(buffer + 8), 0x5eedf00du);
    EXPECT_EQ(geom.get(GeometryStat::EdcChecksFailed), misses + 1);
    EXPECT_EQ(geom.get(GeometryStat::BlockDecodes), decodes + 1);
    EXPECT_EQ(geom.get(GeometryStat::BlockDecodeWords),
              (decodes + 1) * (512 / kEccGroupSize));
    EXPECT_GT(machine.controller().stats().get(
                  ControllerStat::SingleBitCorrected), 0u);
    EXPECT_TRUE(machine.controller().edcConsistent(pline));
}

TEST(GeometryTest, StaleEdcFoldIsDetectedAndRefreshed)
{
    MachineConfig config{4u << 20, CacheConfig{16, 2}, 64};
    config.geometry = blockGeometry("block:1024/crc32");
    Machine machine(config);
    VirtAddr buffer = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(buffer, 0xabcdu);
    machine.cache().flushAll();
    PhysAddr pline = *machine.kernel().peekTranslate(buffer);

    // Corrupt the redundancy lane, not the data: the decode finds the
    // codeword clean and rewrites the stale fold so the next fill takes
    // the fast path again.
    machine.physicalMemory().flipEdcBit(pline, 3);
    EXPECT_FALSE(machine.controller().edcConsistent(pline));
    const StatSet &geom = machine.controller().geometryStats();
    std::uint64_t refreshes = geom.get(GeometryStat::EdcRefreshes);
    EXPECT_EQ(machine.load<std::uint64_t>(buffer), 0xabcdu);
    EXPECT_GT(geom.get(GeometryStat::EdcRefreshes), refreshes);
    EXPECT_TRUE(machine.controller().edcConsistent(pline));

    machine.cache().flushAll();
    std::uint64_t passes = geom.get(GeometryStat::EdcChecksPassed);
    EXPECT_EQ(machine.load<std::uint64_t>(buffer), 0xabcdu);
    EXPECT_GT(geom.get(GeometryStat::EdcChecksPassed), passes);
}

TEST(GeometryTest, SequentialWritebacksAmortizeRmwCost)
{
    MachineConfig config{4u << 20, CacheConfig{16, 2}, 64};
    config.geometry = blockGeometry("block:512");
    Machine machine(config);
    // Four pages of sequential stores: the 16x2 cache spills lines in
    // stream order, so most demand writebacks land in the codeword
    // their bank already holds open. (flushAll's set-order tail
    // interleaves codewords and pays the RMW — also by design.)
    VirtAddr buffer = machine.kernel().mapRegion(4 * kPageSize);
    for (std::size_t off = 0; off < 4 * kPageSize; off += 8)
        machine.store<std::uint64_t>(buffer + off, off * 0x9e37u);
    machine.cache().flushAll();

    const StatSet &geom = machine.controller().geometryStats();
    std::uint64_t rmws = geom.get(GeometryStat::PartialWriteRmws);
    std::uint64_t hits = geom.get(GeometryStat::OpenCodewordHits);
    std::uint64_t evictions =
        geom.get(GeometryStat::DataBytesWritten) / kCacheLineSize;
    // Every writeback either reopened a codeword (full RMW) or folded
    // into the open one; a sequential stream mostly folds.
    EXPECT_EQ(rmws + hits, evictions);
    EXPECT_GE(rmws, 4 * kPageSize / 512);
    EXPECT_GT(hits, rmws);
}

TEST(GeometryTest, WatchStraddlingCodewordBoundaryFires)
{
    MachineConfig config{4u << 20, CacheConfig{16, 2}, 64};
    config.geometry = blockGeometry("block:512");
    Machine machine(config);
    Kernel &kernel = machine.kernel();
    VirtAddr buffer = kernel.mapRegion(kPageSize);
    // Pages are codeword-aligned (codewords never span pages), so
    // buffer + 512 is a codeword boundary; the watch covers the last
    // line of one codeword and the first line of the next.
    VirtAddr cross = buffer + 512;
    machine.store<std::uint64_t>(cross - kCacheLineSize, 0xaaaau);
    machine.store<std::uint64_t>(cross, 0xbbbbu);
    machine.cache().flushAll();

    int faults = 0;
    kernel.registerEccFaultHandler([&](const UserEccFault &fault) {
        ++faults;
        kernel.disableWatchMemory(alignDown(fault.vaddr, kCacheLineSize),
                                  kCacheLineSize);
        return FaultDecision::Handled;
    });
    // One watch per line (not one spanning call): the handler above
    // clears line-sized watches, and pin counts must stay balanced.
    kernel.watchMemory(cross - kCacheLineSize, kCacheLineSize);
    kernel.watchMemory(cross, kCacheLineSize);

    // Each side faults through its own codeword's decode path, and the
    // restarted accesses see the original data.
    EXPECT_EQ(machine.load<std::uint64_t>(cross - kCacheLineSize), 0xaaaau);
    EXPECT_EQ(machine.load<std::uint64_t>(cross), 0xbbbbu);
    EXPECT_EQ(faults, 2);
    const StatSet &geom = machine.controller().geometryStats();
    EXPECT_GE(geom.get(GeometryStat::EdcChecksFailed), 2u);
    EXPECT_GE(geom.get(GeometryStat::BlockDecodes), 2u);
}

TEST(GeometryTest, ScrubParksAndRestoresWatchesAtEachGeometry)
{
    for (const char *spec :
         {"word", "block:512", "block:1024", "block:4096"}) {
        SCOPED_TRACE(spec);
        MachineConfig config{4u << 20, CacheConfig{16, 2}, 64};
        config.geometry = *parseGeometry(spec);
        Machine machine(config);
        machine.kernel().setPanicOnHardwareError(false);
        Kernel &kernel = machine.kernel();
        EccWatchManager manager(machine);
        manager.installFaultHandler();
        manager.installScrubHooks();

        VirtAddr buffer = kernel.mapRegion(kPageSize);
        machine.store<std::uint64_t>(buffer, 0xfeedu);
        machine.cache().flushAll();
        manager.watch(buffer, kCacheLineSize, WatchKind::FreedBuffer, 7);

        // Scrub ticks ride the access path (MachineConfig::tickInterval
        // accesses per tick), so the idle loop must actually touch
        // memory — scratch traffic away from the watched line.
        VirtAddr scratch = kernel.mapRegion(kPageSize);
        kernel.enableScrubbing(2'000);
        for (int i = 0; i < 2'000; ++i) {
            machine.store<std::uint64_t>(
                scratch + static_cast<std::size_t>(i % 64) * kCacheLineSize,
                static_cast<std::uint64_t>(i));
            machine.compute(100);
        }
        kernel.disableScrubbing();

        // The scrubber met the watch (parked, scrubbed, restored) and
        // the region survived, still armed, with its data intact.
        EXPECT_GT(machine.controller().stats().get(
                      ControllerStat::ScrubPasses), 0u);
        EXPECT_GT(manager.stats().get(WatchStat::ScrubUnwatchPasses), 0u);
        EXPECT_TRUE(manager.isWatched(buffer));
        manager.unwatch(buffer);
        EXPECT_EQ(machine.load<std::uint64_t>(buffer), 0xfeedu);
    }
}

/**
 * The satellite race: seeded streaming traffic and seeded single-bit
 * fault injection against the per-bank scrubber on a banked block:512
 * machine, with a guard watch straddling a codeword boundary riding
 * along. Returns the machine-wide stat snapshot for the determinism
 * check.
 */
std::map<std::string, std::uint64_t>
runStreamingScrubRace(Trace &trace)
{
    MachineConfig config{8u << 20, CacheConfig{32, 4}, 64};
    config.banks = 4;
    config.trace = &trace;
    config.geometry = *parseGeometry("block:512");
    Machine machine(config);
    machine.kernel().setPanicOnHardwareError(false);
    Kernel &kernel = machine.kernel();
    EccWatchManager manager(machine);
    manager.installFaultHandler();
    manager.installScrubHooks();

    VirtAddr guard = kernel.mapRegion(kPageSize);
    machine.store<std::uint64_t>(guard + 512 - kCacheLineSize, 0xdeadu);
    machine.cache().flushAll();
    manager.watch(guard + 512 - kCacheLineSize, 2 * kCacheLineSize,
                  WatchKind::GuardRear, 3);

    constexpr std::size_t kStreamBytes = 8 * kPageSize;
    VirtAddr buffer = kernel.mapRegion(kStreamBytes);
    Rng rng(4242);
    kernel.enableScrubbing(10'000);
    for (int round = 0; round < 400; ++round) {
        VirtAddr chunk = buffer + (round % 32) * 1024;
        for (std::size_t off = 0; off < 1024; off += 8)
            machine.store<std::uint64_t>(chunk + off, rng.next());
        for (std::size_t off = 0; off < 1024; off += kCacheLineSize)
            machine.load<std::uint64_t>(chunk + off);
        machine.compute(250);
        if (round % 16 == 7) {
            // Inject a correctable flip into the chunk the stream will
            // rewrite next round: its demand fill and the scrubber race
            // to find the flip first, so both decode paths move.
            machine.cache().flushAll();
            VirtAddr vline = buffer + ((round + 1) % 32) * 1024 +
                             rng.range(0, 1024 / kCacheLineSize - 1) *
                                 kCacheLineSize;
            PhysAddr pline = *kernel.peekTranslate(vline);
            machine.physicalMemory().flipDataBit(
                pline + rng.range(0, kEccGroupsPerLine - 1) * kEccGroupSize,
                static_cast<int>(rng.range(0, 63)));
        }
    }
    kernel.disableScrubbing();
    EXPECT_TRUE(manager.isWatched(guard + 512 - kCacheLineSize));
    manager.unwatch(guard + 512 - kCacheLineSize);
    EXPECT_EQ(machine.load<std::uint64_t>(guard + 512 - kCacheLineSize),
              0xdeadu);

    std::map<std::string, std::uint64_t> snapshot =
        machine.controller().geometryStats().all();
    for (const auto &[name, value] : machine.controller().stats().all())
        snapshot["controller." + name] = value;
    return snapshot;
}

TEST(GeometryTest, StreamingRacesPerBankScrubUnderBlock512)
{
    if (!kTraceCompiledIn)
        GTEST_SKIP() << "needs compiled-in trace emit sites";

    Trace trace(1u << 18);
    std::map<std::string, std::uint64_t> first =
        runStreamingScrubRace(trace);

    // Replay the flight recorder: every park window the per-bank
    // scrubber opened on the guard watch closed again, and the block
    // datapath actually worked (decodes and RMWs under traffic).
    ASSERT_EQ(trace.dropped(), 0u);
    std::uint64_t parks = 0, restores = 0, decodes = 0, rmws = 0;
    for (const TraceRecord &record : trace.records()) {
        switch (record.event) {
          case TraceEvent::WatchScrubPark: ++parks; break;
          case TraceEvent::WatchScrubRestore: ++restores; break;
          case TraceEvent::EccBlockDecode:
            ++decodes;
            // Payload: a = line, b = codeword base, c = bank.
            EXPECT_EQ(record.b, alignDown(record.a, 512));
            EXPECT_LT(record.c, 4u);
            break;
          case TraceEvent::PartialWriteRmw:
            ++rmws;
            EXPECT_EQ(record.b, alignDown(record.a, 512));
            EXPECT_LT(record.c, 4u);
            break;
          default:
            break;
        }
    }
    EXPECT_GT(parks, 0u);
    EXPECT_EQ(parks, restores);
    EXPECT_GT(decodes, 0u);
    EXPECT_GT(rmws, 0u);
    auto stat = [&](const char *name) -> std::uint64_t {
        auto it = first.find(name);
        return it == first.end() ? 0 : it->second;
    };
    EXPECT_GT(stat("controller.single_bit_corrected"), 0u);
    EXPECT_GT(stat("edc_checks_failed"), 0u);

    // Seeded means reproducible: an identical second run lands on the
    // same machine-wide counters, bit for bit.
    Trace again(1u << 18);
    EXPECT_EQ(runStreamingScrubRace(again), first);
}

} // namespace
} // namespace safemem
