/**
 * @file
 * Tests for the seven workload applications and the experiment driver:
 * determinism, clean memory behaviour on normal inputs, bug-mode
 * differences, and driver plumbing.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "workloads/driver.h"
#include "workloads/null_tool.h"
#include "workloads/sites.h"

namespace safemem {
namespace {

RunParams
smallParams(bool buggy, std::uint64_t seed = 7)
{
    RunParams params;
    params.requests = 300;
    params.buggy = buggy;
    params.seed = seed;
    return params;
}

TEST(AppRegistry, AllSevenAppsExist)
{
    EXPECT_EQ(appNames().size(), 7u);
    for (const std::string &name : appNames()) {
        auto app = makeApp(name);
        ASSERT_NE(app, nullptr) << name;
        EXPECT_EQ(app->name(), name);
    }
    EXPECT_EQ(makeApp("nonesuch"), nullptr);
}

TEST(SiteTags, BuggyBitRoundTrips)
{
    std::uint64_t clean = makeSite(3, 9);
    std::uint64_t buggy = makeSite(3, 9, true);
    EXPECT_FALSE(isBuggySite(clean));
    EXPECT_TRUE(isBuggySite(buggy));
    EXPECT_EQ(clean, buggy & ~kBuggySiteBit);
}

/** Every app must run to completion and free everything it allocated
 *  on normal inputs (no tool). */
class AppCleanRun : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppCleanRun, NormalRunLeaksNothing)
{
    Machine machine(MachineConfig{192u << 20});
    HeapAllocator allocator(machine);
    NullTool tool(machine, allocator);
    Env env(machine, allocator, tool);

    auto app = makeApp(GetParam());
    app->run(env, smallParams(false));
    EXPECT_EQ(allocator.liveBytes(), 0u)
        << "normal inputs must not leak";
    EXPECT_TRUE(env.roots().empty());
}

TEST_P(AppCleanRun, DeterministicCycleCount)
{
    auto run_once = [&] {
        Machine machine(MachineConfig{192u << 20});
        HeapAllocator allocator(machine);
        NullTool tool(machine, allocator);
        Env env(machine, allocator, tool);
        makeApp(GetParam())->run(env, smallParams(false));
        return machine.clock().now();
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCleanRun,
                         ::testing::ValuesIn(appNames()),
                         [](const auto &info) { return info.param; });

/** The leak apps leak memory exactly in buggy mode. */
class LeakAppBehaviour : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LeakAppBehaviour, BuggyRunLeavesLiveBytes)
{
    Machine machine(MachineConfig{192u << 20});
    HeapAllocator allocator(machine);
    NullTool tool(machine, allocator);
    Env env(machine, allocator, tool);
    makeApp(GetParam())->run(env, smallParams(true));
    EXPECT_GT(allocator.liveBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LeakApps, LeakAppBehaviour,
                         ::testing::Values("ypserv1", "ypserv2",
                                           "proftpd", "squid1"),
                         [](const auto &info) { return info.param; });

/** The corruption apps do not leak even in buggy mode. */
class CorruptionAppBehaviour
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CorruptionAppBehaviour, BuggyRunStillFreesEverything)
{
    Machine machine(MachineConfig{192u << 20});
    HeapAllocator allocator(machine);
    NullTool tool(machine, allocator);
    Env env(machine, allocator, tool);
    makeApp(GetParam())->run(env, smallParams(true));
    EXPECT_EQ(allocator.liveBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(CorruptionApps, CorruptionAppBehaviour,
                         ::testing::Values("gzip", "tar", "squid2"),
                         [](const auto &info) { return info.param; });

TEST(Driver, UnknownAppIsFatal)
{
    EXPECT_THROW(runWorkload("nonesuch", ToolKind::None, RunParams{}),
                 FatalError);
}

TEST(Driver, ToolKindNamesAreDistinct)
{
    EXPECT_STREQ(toolKindName(ToolKind::None), "none");
    EXPECT_STREQ(toolKindName(ToolKind::SafeMemBoth), "safemem");
    EXPECT_STREQ(toolKindName(ToolKind::PageProtBoth), "pageprot");
    EXPECT_STREQ(toolKindName(ToolKind::Purify), "purify");
}

TEST(Driver, ResultCarriesStatsAndCycles)
{
    RunResult r =
        runWorkload("gzip", ToolKind::SafeMemBoth, smallParams(false, 3));
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.appCycles, 0u);
    EXPECT_LE(r.appCycles, r.totalCycles);
    EXPECT_GT(r.stats.at("alloc.allocs"), 0u);
    EXPECT_GT(r.userBytes, 0u);
}

TEST(Driver, OverheadPercentAgainstBaseline)
{
    RunParams params = smallParams(false, 5);
    RunResult base = runWorkload("ypserv2", ToolKind::None, params);
    RunResult sm = runWorkload("ypserv2", ToolKind::SafeMemBoth, params);
    double pct = overheadPercent(sm, base);
    EXPECT_GT(pct, 0.0);
    EXPECT_LT(pct, 100.0);
}

TEST(Driver, IdenticalSeedsGiveIdenticalResults)
{
    RunParams params = smallParams(true, 11);
    RunResult a = runWorkload("squid1", ToolKind::SafeMemBoth, params);
    RunResult b = runWorkload("squid1", ToolKind::SafeMemBoth, params);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.suspectedFalse, b.suspectedFalse);
    EXPECT_EQ(a.leakReportsTrue, b.leakReportsTrue);
}

TEST(Driver, DefaultRequestsPerApp)
{
    EXPECT_EQ(defaultRequests("gzip"), 80u);
    EXPECT_EQ(defaultRequests("tar"), 400u);
    EXPECT_EQ(defaultRequests("squid1"), 2000u);
}

TEST(Driver, PageProtBackendAlsoDetects)
{
    // The identical detectors over mprotect still catch the gzip
    // overflow — at page granularity and page-sized waste.
    RunParams params;
    params.requests = 40;
    params.buggy = true;
    params.seed = 7;
    RunResult r = runWorkload("gzip", ToolKind::PageProtBoth, params);
    EXPECT_GE(r.corruptionTrue, 1u);
    EXPECT_GT(r.wastePercent(), 50.0);
}

} // namespace
} // namespace safemem
