/**
 * @file
 * Tests for the fault-injection campaign engine: deterministic fan-out,
 * exhaustive-space accounting, the SEC-DED vs pure-SEC split, the JSON
 * document shape, and codec selection on real machine runs.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "os/machine.h"
#include "workloads/campaign.h"
#include "workloads/cli.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

/** A reduced campaign that still covers every mode and codec. */
CampaignConfig
smallConfig()
{
    CampaignConfig config;
    config.maxErrors = 4;
    config.samples = 500;
    config.seed = 7;
    return config;
}

TEST(Campaign, WorkerCountNeverChangesTheResults)
{
    CampaignConfig serial = smallConfig();
    serial.workers = 1;
    CampaignConfig fanned = smallConfig();
    fanned.workers = 4;
    EXPECT_TRUE(runCampaign(serial) == runCampaign(fanned));
}

TEST(Campaign, SweepShapeAndExhaustiveTrialCounts)
{
    CampaignConfig config = smallConfig();
    CampaignResult result = runCampaign(config);

    // Default zoo: hsiao, hamming64/8, hsiao:64/8 — in that order.
    ASSERT_EQ(result.codecs.size(), 3u);
    EXPECT_EQ(result.codecs[0].name, "hsiao-72-64");
    EXPECT_EQ(result.codecs[1].name, "hamming-64-8");
    EXPECT_EQ(result.codecs[2].name, "hsiao-72-64");
    EXPECT_EQ(result.codecs[2].spec.kind, EccCodecKind::HsiaoParam);

    for (const CodecCampaign &codec : result.codecs) {
        // none + random 1..4 + burst 1..4.
        ASSERT_EQ(codec.cells.size(), 9u);
        const int total = codec.dataBits + codec.checkBits;
        ASSERT_EQ(total, 72);

        const CampaignCell &clean = codec.cells[0];
        EXPECT_EQ(clean.mode, FailMode::None);
        EXPECT_TRUE(clean.exhaustive);
        EXPECT_EQ(clean.corrected, clean.trials);
        EXPECT_EQ(clean.detected + clean.miscorrected, 0u);

        // Exhaustive spaces: 72 singles, C(72,2) = 2556 pairs, and
        // (72 - n + 1) burst offsets, each over a fixed word sample.
        const CampaignCell &single = codec.cells[1];
        EXPECT_TRUE(single.exhaustive);
        EXPECT_EQ(single.trials % 72, 0u);
        const CampaignCell &pairs = codec.cells[2];
        EXPECT_TRUE(pairs.exhaustive);
        EXPECT_EQ(pairs.trials % 2556, 0u);
        EXPECT_EQ(pairs.trials / 2556, single.trials / 72);

        // Sampled spaces run exactly `samples` trials.
        for (int e = 3; e <= 4; ++e) {
            const CampaignCell &cell = codec.cells[static_cast<
                std::size_t>(e)];
            EXPECT_FALSE(cell.exhaustive);
            EXPECT_EQ(cell.trials, config.samples);
        }
        for (int e = 1; e <= 4; ++e) {
            const CampaignCell &burst = codec.cells[4 + static_cast<
                std::size_t>(e)];
            EXPECT_EQ(burst.mode, FailMode::RandomBurst);
            EXPECT_TRUE(burst.exhaustive);
            EXPECT_EQ(burst.trials % static_cast<std::uint64_t>(
                          total - e + 1), 0u);
        }

        // Every trial lands in exactly one bucket.
        for (const CampaignCell &cell : codec.cells)
            EXPECT_EQ(cell.corrected + cell.detected + cell.miscorrected,
                      cell.trials);
    }
}

TEST(Campaign, SecDedDetectsEveryDoubleWhereHammingMiscorrects)
{
    CampaignResult result = runCampaign(smallConfig());
    const CodecCampaign &hsiao = result.codecs[0];
    const CodecCampaign &hamming = result.codecs[1];

    // (72,64) Hsiao: all singles corrected, all doubles detected,
    // nothing ever miscorrected in either cell.
    EXPECT_EQ(hsiao.cells[1].corrected, hsiao.cells[1].trials);
    EXPECT_EQ(hsiao.cells[2].detected, hsiao.cells[2].trials);
    EXPECT_EQ(hsiao.cells[1].miscorrected + hsiao.cells[2].miscorrected,
              0u);

    // Classic Hamming corrects singles too — but doubles silently
    // corrupt: zero detected (no Uncorrectable outcome exists) and a
    // large miscorrected share. The campaign's headline split.
    EXPECT_EQ(hamming.cells[1].corrected, hamming.cells[1].trials);
    EXPECT_EQ(hamming.cells[2].detected, 0u);
    EXPECT_GT(hamming.cells[2].miscorrected, 0u);

    // Scramble verdicts follow: Hsiao hosts a signature, Hamming never.
    EXPECT_TRUE(hsiao.scrambleViable);
    EXPECT_TRUE(result.codecs[2].scrambleViable);
    EXPECT_FALSE(hamming.scrambleViable);
}

TEST(Campaign, JsonDocumentCarriesTheReportShape)
{
    CampaignConfig config = smallConfig();
    config.codecs = {{EccCodecKind::Hsiao72_64, 64, 0},
                     {EccCodecKind::Hamming64_8, 64, 0}};
    std::string json = campaignJson(runCampaign(config));

    for (const char *needle :
         {"\"bench\": \"ecc_campaign\"", "\"seed\": 7",
          "\"samples\": 500", "\"max_errors\": 4",
          "\"name\": \"hsiao-72-64\"", "\"name\": \"hamming-64-8\"",
          "\"scramble_viable\": true", "\"scramble_viable\": false",
          "\"mode\": \"random-burst\"", "\"cdf\"", "\"miscorrected\""})
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
}

TEST(Campaign, MachineBootRejectsAScramblelessCodec)
{
    // Satellite of the optional-returning search: the panic moved from
    // the search to the consumer that genuinely cannot proceed — a
    // machine booting a codec with no scramble signature would build a
    // WatchMemory that never faults.
    auto hamming = makeCodec({EccCodecKind::Hamming64_8, 64, 0});
    MachineConfig config;
    config.codec = hamming.get();
    EXPECT_THROW(Machine{config}, PanicError);
}

TEST(Campaign, ExplicitDefaultCodecSpecMatchesTheDefaultRun)
{
    // --codec hsiao must be a no-op: same RunResult, bit for bit, as
    // the spec-less default path (which skips codec construction).
    const Log quiet = Log::quiet();
    RunParams params;
    params.requests = 120;
    params.seed = 3;
    params.log = &quiet;
    RunResult plain = runWorkload("gzip", ToolKind::SafeMemBoth, params);
    params.codec = *parseCodecSpec("hsiao");
    RunResult explicit_spec =
        runWorkload("gzip", ToolKind::SafeMemBoth, params);
    EXPECT_TRUE(plain == explicit_spec);
}

TEST(Campaign, CliParsesCampaignMode)
{
    CliParse parse = parseCliArguments(
        {"campaign", "--codec", "hamming64/8", "--codec", "hsiao:16",
         "--samples", "100", "--seed", "9", "--workers", "2", "--out",
         "campaign.json"});
    ASSERT_TRUE(parse.options.has_value());
    const CliOptions &options = *parse.options;
    EXPECT_TRUE(options.campaign);
    ASSERT_EQ(options.campaignConfig.codecs.size(), 2u);
    EXPECT_EQ(options.campaignConfig.codecs[0].kind,
              EccCodecKind::Hamming64_8);
    EXPECT_EQ(options.campaignConfig.codecs[1].kind,
              EccCodecKind::HsiaoParam);
    EXPECT_EQ(options.campaignConfig.codecs[1].dataBits, 16);
    EXPECT_EQ(options.campaignConfig.samples, 100u);
    EXPECT_EQ(options.campaignConfig.seed, 9u);
    EXPECT_EQ(options.campaignConfig.workers, 2u);
    EXPECT_EQ(options.campaignOut, "campaign.json");

    EXPECT_FALSE(
        parseCliArguments({"campaign", "--codec", "crc32"}).options);
    EXPECT_FALSE(
        parseCliArguments({"campaign", "--buggy"}).options);
}

TEST(Campaign, CliParsesRunCodecFlag)
{
    CliParse parse =
        parseCliArguments({"gzip", "--codec", "hsiao:64/8"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(parse.options->params.codec.kind, EccCodecKind::HsiaoParam);
    EXPECT_FALSE(parse.options->campaign);

    EXPECT_FALSE(parseCliArguments({"gzip", "--codec", "bogus"}).options);
}

} // namespace
} // namespace safemem
