/**
 * @file
 * Tests for the segregated-free-list heap allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "common/random.h"

namespace safemem {
namespace {

class AllocatorTest : public ::testing::Test
{
  protected:
    AllocatorTest() : machine(MachineConfig{16u << 20}), alloc(machine) {}

    Machine machine;
    HeapAllocator alloc;
};

TEST_F(AllocatorTest, AllocateGivesLiveAccessibleBlock)
{
    VirtAddr addr = alloc.allocate(100);
    EXPECT_TRUE(alloc.isLive(addr));
    EXPECT_EQ(alloc.blockSize(addr), 100u);
    machine.store<std::uint64_t>(addr, 7);
    EXPECT_EQ(machine.load<std::uint64_t>(addr), 7u);
}

TEST_F(AllocatorTest, DistinctLiveBlocksDoNotOverlap)
{
    std::set<VirtAddr> bases;
    std::vector<std::pair<VirtAddr, std::size_t>> blocks;
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        std::size_t size = rng.range(1, 3000);
        VirtAddr addr = alloc.allocate(size);
        EXPECT_TRUE(bases.insert(addr).second);
        for (const auto &[other, other_size] : blocks) {
            bool disjoint =
                addr + size <= other || other + other_size <= addr;
            EXPECT_TRUE(disjoint);
        }
        blocks.emplace_back(addr, size);
    }
}

TEST_F(AllocatorTest, FreeThenReuseSameClass)
{
    VirtAddr a = alloc.allocate(64);
    alloc.deallocate(a);
    VirtAddr b = alloc.allocate(64);
    EXPECT_EQ(a, b) << "LIFO free-list reuse";
}

TEST_F(AllocatorTest, DoubleFreePanics)
{
    VirtAddr addr = alloc.allocate(64);
    alloc.deallocate(addr);
    EXPECT_THROW(alloc.deallocate(addr), PanicError);
}

TEST_F(AllocatorTest, FreeOfNonBlockPanics)
{
    EXPECT_THROW(alloc.deallocate(0x1234), PanicError);
}

TEST_F(AllocatorTest, AlignmentHonored)
{
    for (std::size_t align : {16u, 64u, 256u, 4096u}) {
        VirtAddr addr = alloc.allocate(40, align);
        EXPECT_TRUE(isAligned(addr, align)) << align;
    }
}

TEST_F(AllocatorTest, NonPowerOfTwoAlignmentPanics)
{
    EXPECT_THROW(alloc.allocate(10, 48), PanicError);
}

TEST_F(AllocatorTest, ZeroSizeRoundsUp)
{
    VirtAddr addr = alloc.allocate(0);
    EXPECT_TRUE(alloc.isLive(addr));
    EXPECT_GE(alloc.blockSize(addr), 1u);
}

TEST_F(AllocatorTest, CallocZeroesMemory)
{
    // Dirty a block, free it, and calloc over the recycled space.
    VirtAddr dirty = alloc.allocate(64);
    machine.store<std::uint64_t>(dirty, ~0ULL);
    alloc.deallocate(dirty);

    VirtAddr addr = alloc.allocateZeroed(8, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(machine.load<std::uint64_t>(addr + i * 8), 0u);
}

TEST_F(AllocatorTest, ReallocGrowCopiesContents)
{
    VirtAddr addr = alloc.allocate(16);
    machine.store<std::uint64_t>(addr, 0x1111ULL);
    machine.store<std::uint64_t>(addr + 8, 0x2222ULL);
    VirtAddr grown = alloc.reallocate(addr, 5000);
    EXPECT_EQ(machine.load<std::uint64_t>(grown), 0x1111ULL);
    EXPECT_EQ(machine.load<std::uint64_t>(grown + 8), 0x2222ULL);
    EXPECT_EQ(alloc.blockSize(grown), 5000u);
}

TEST_F(AllocatorTest, ReallocShrinkStaysInPlace)
{
    VirtAddr addr = alloc.allocate(256);
    VirtAddr shrunk = alloc.reallocate(addr, 100);
    EXPECT_EQ(shrunk, addr);
    EXPECT_EQ(alloc.blockSize(addr), 100u);
}

TEST_F(AllocatorTest, ReallocNullActsAsMalloc)
{
    VirtAddr addr = alloc.reallocate(0, 64);
    EXPECT_TRUE(alloc.isLive(addr));
}

TEST_F(AllocatorTest, LargeAllocationIsPageBacked)
{
    VirtAddr addr = alloc.allocate(100'000);
    EXPECT_FALSE(alloc.isSlabBacked(addr));
    machine.store<std::uint64_t>(addr + 99'992, 3);
    EXPECT_EQ(machine.load<std::uint64_t>(addr + 99'992), 3u);
    alloc.deallocate(addr);
    // Pages were returned to the kernel: the address is gone.
    EXPECT_THROW(machine.load<std::uint64_t>(addr), PanicError);
}

TEST_F(AllocatorTest, LiveBytesAccounting)
{
    EXPECT_EQ(alloc.liveBytes(), 0u);
    VirtAddr a = alloc.allocate(100);
    VirtAddr b = alloc.allocate(200);
    EXPECT_EQ(alloc.liveBytes(), 300u);
    EXPECT_EQ(alloc.peakLiveBytes(), 300u);
    alloc.deallocate(a);
    EXPECT_EQ(alloc.liveBytes(), 200u);
    EXPECT_EQ(alloc.peakLiveBytes(), 300u);
    alloc.deallocate(b);
    EXPECT_EQ(alloc.liveBytes(), 0u);
}

TEST_F(AllocatorTest, FindBlockResolvesInteriorPointers)
{
    VirtAddr addr = alloc.allocate(100);
    EXPECT_EQ(alloc.findBlock(addr), addr);
    EXPECT_EQ(alloc.findBlock(addr + 50), addr);
    EXPECT_EQ(alloc.findBlock(addr + 99), addr);
    EXPECT_EQ(alloc.findBlock(addr + 100), 0u) << "one past the end";
    alloc.deallocate(addr);
    EXPECT_EQ(alloc.findBlock(addr + 50), 0u) << "freed blocks excluded";
}

TEST_F(AllocatorTest, ForEachLiveVisitsExactlyLiveBlocks)
{
    VirtAddr a = alloc.allocate(10);
    VirtAddr b = alloc.allocate(20);
    alloc.deallocate(a);
    std::size_t seen = 0;
    alloc.forEachLive([&](VirtAddr addr, std::size_t size) {
        EXPECT_EQ(addr, b);
        EXPECT_EQ(size, 20u);
        ++seen;
    });
    EXPECT_EQ(seen, 1u);
}

/** Property test: randomized alloc/free/realloc with content mirrors. */
TEST_F(AllocatorTest, RandomizedUsageKeepsContentsIntact)
{
    struct Block
    {
        VirtAddr addr;
        std::size_t size;
        std::uint8_t fill;
    };
    std::vector<Block> blocks;
    Rng rng(99);

    auto verify = [&](const Block &block) {
        std::vector<std::uint8_t> data(block.size);
        machine.read(block.addr, data.data(), block.size);
        for (std::uint8_t byte : data)
            ASSERT_EQ(byte, block.fill);
    };

    for (int op = 0; op < 800; ++op) {
        double dice = rng.real();
        if (dice < 0.5 || blocks.empty()) {
            Block block;
            block.size = rng.range(1, 2000);
            block.fill = static_cast<std::uint8_t>(rng.next());
            block.addr = alloc.allocate(block.size);
            std::vector<std::uint8_t> data(block.size, block.fill);
            machine.write(block.addr, data.data(), block.size);
            blocks.push_back(block);
        } else if (dice < 0.8) {
            std::size_t i = rng.range(0, blocks.size() - 1);
            verify(blocks[i]);
            alloc.deallocate(blocks[i].addr);
            blocks.erase(blocks.begin() + i);
        } else {
            std::size_t i = rng.range(0, blocks.size() - 1);
            verify(blocks[i]);
            std::size_t new_size = rng.range(1, 2000);
            blocks[i].addr = alloc.reallocate(blocks[i].addr, new_size);
            std::size_t keep = std::min(blocks[i].size, new_size);
            blocks[i].size = new_size;
            // Re-fill so the whole block matches again.
            (void)keep;
            std::vector<std::uint8_t> data(new_size, blocks[i].fill);
            machine.write(blocks[i].addr, data.data(), new_size);
        }
    }
    for (const Block &block : blocks)
        verify(block);
}

} // namespace
} // namespace safemem
