/**
 * @file
 * Unit and property tests for the (72,64) Hsiao SEC-DED codec.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "ecc/hamming.h"

namespace safemem {
namespace {

const HsiaoCode code;

TEST(Hamming, ZeroDataHasZeroCheck)
{
    EXPECT_EQ(code.encode(0), 0);
}

TEST(Hamming, CleanWordDecodesOk)
{
    std::uint64_t data = 0xdeadbeefcafef00dULL;
    std::uint8_t check = code.encode(data);
    EccDecodeResult result = code.decode(data, check);
    EXPECT_EQ(result.status, EccDecodeStatus::Ok);
    EXPECT_EQ(result.data, data);
}

TEST(Hamming, EncodeIsLinear)
{
    // Hsiao codes are linear: check(a ^ b) == check(a) ^ check(b).
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t a = rng.next();
        std::uint64_t b = rng.next();
        EXPECT_EQ(code.encode(a ^ b), code.encode(a) ^ code.encode(b));
    }
}

TEST(Hamming, ColumnsAreOddWeightAndDistinct)
{
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(__builtin_popcount(code.column(i)) % 2, 1) << i;
        for (int j = i + 1; j < 64; ++j)
            EXPECT_NE(code.column(i), code.column(j)) << i << "," << j;
        // Never a unit vector (those belong to check bits).
        EXPECT_NE(__builtin_popcount(code.column(i)), 1) << i;
    }
}

/** Property sweep: every single data-bit flip is corrected. */
class HammingSingleBit : public ::testing::TestWithParam<int>
{
};

TEST_P(HammingSingleBit, DataBitFlipCorrected)
{
    int bit = GetParam();
    Rng rng(static_cast<std::uint64_t>(bit) + 1);
    for (int trial = 0; trial < 8; ++trial) {
        std::uint64_t data = rng.next();
        std::uint8_t check = code.encode(data);
        EccDecodeResult result =
            code.decode(data ^ (1ULL << bit), check);
        EXPECT_EQ(result.status, EccDecodeStatus::CorrectedSingle);
        EXPECT_EQ(result.data, data);
        EXPECT_EQ(result.correctedBit, bit);
    }
}

INSTANTIATE_TEST_SUITE_P(AllDataBits, HammingSingleBit,
                         ::testing::Range(0, 64));

/** Property sweep: every single check-bit flip is absorbed. */
class HammingCheckBit : public ::testing::TestWithParam<int>
{
};

TEST_P(HammingCheckBit, CheckBitFlipAbsorbed)
{
    int bit = GetParam();
    std::uint64_t data = 0x0123456789abcdefULL;
    std::uint8_t check = code.encode(data);
    EccDecodeResult result = code.decode(
        data, static_cast<std::uint8_t>(check ^ (1u << bit)));
    EXPECT_EQ(result.status, EccDecodeStatus::CorrectedSingle);
    EXPECT_EQ(result.data, data);
    EXPECT_EQ(result.correctedBit, 64 + bit);
}

INSTANTIATE_TEST_SUITE_P(AllCheckBits, HammingCheckBit,
                         ::testing::Range(0, 8));

/** Property sweep: every double data-bit flip is detected, never
 *  miscorrected to clean status (the DED property). */
class HammingDoubleBit
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(HammingDoubleBit, DoubleFlipDetected)
{
    auto [a, b] = GetParam();
    std::uint64_t data = 0x5a5a5a5a5a5a5a5aULL;
    std::uint8_t check = code.encode(data);
    std::uint64_t corrupted = data ^ (1ULL << a) ^ (1ULL << b);
    EccDecodeResult result = code.decode(corrupted, check);
    EXPECT_EQ(result.status, EccDecodeStatus::Uncorrectable)
        << "bits " << a << "," << b;
}

std::vector<std::pair<int, int>>
allDataBitPairs()
{
    std::vector<std::pair<int, int>> pairs;
    for (int a = 0; a < 64; ++a)
        for (int b = a + 1; b < 64; ++b)
            pairs.emplace_back(a, b);
    return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, HammingDoubleBit,
                         ::testing::ValuesIn(allDataBitPairs()));

TEST(Hamming, DataPlusCheckFlipDetectedOrHarmless)
{
    // One data bit plus one check bit flipped: even total weight, so
    // the syndrome never looks like a correctable single data error in
    // a way that returns wrong data as "Ok".
    std::uint64_t data = 0xfedcba9876543210ULL;
    std::uint8_t check = code.encode(data);
    for (int d = 0; d < 64; ++d) {
        for (int c = 0; c < 8; ++c) {
            EccDecodeResult result = code.decode(
                data ^ (1ULL << d),
                static_cast<std::uint8_t>(check ^ (1u << c)));
            EXPECT_NE(result.status, EccDecodeStatus::Ok);
            if (result.status == EccDecodeStatus::CorrectedSingle) {
                // A miscorrection here would be silent data corruption.
                // Hsiao's odd-weight columns forbid it.
                ADD_FAILURE() << "miscorrected d=" << d << " c=" << c;
            }
        }
    }
}

} // namespace
} // namespace safemem
