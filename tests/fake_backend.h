/**
 * @file
 * In-memory WatchBackend fake for detector unit tests: records watches,
 * lets tests fire faults by hand, no machine required.
 */

#pragma once

#include <map>

#include "common/logging.h"
#include "safemem/watch_backend.h"

namespace safemem {

class FakeBackend : public WatchBackend
{
  public:
    struct Region
    {
        std::size_t size = 0;
        WatchKind kind = WatchKind::LeakSuspect;
        std::uint64_t cookie = 0;
    };

    std::size_t granule() const override { return kCacheLineSize; }

    void
    setFaultCallback(WatchFaultCallback callback) override
    {
        callback_ = std::move(callback);
    }

    void
    watch(VirtAddr base, std::size_t size, WatchKind kind,
          std::uint64_t cookie) override
    {
        if (regions_.count(base))
            panic("FakeBackend: double watch at ", base);
        regions_[base] = Region{size, kind, cookie};
        ++watchCount;
    }

    void
    unwatch(VirtAddr base) override
    {
        if (!regions_.erase(base))
            panic("FakeBackend: unwatch of unknown region ", base);
        ++unwatchCount;
    }

    bool isWatched(VirtAddr base) const override
    {
        return regions_.count(base) != 0;
    }

    std::size_t regionCount() const override { return regions_.size(); }

    std::uint64_t
    watchedBytes() const override
    {
        std::uint64_t total = 0;
        for (const auto &[base, region] : regions_)
            total += region.size;
        return total;
    }

    const StatSet &stats() const override { return stats_; }

    /** Simulate the first access to watched region @p base. */
    void
    fireAccess(VirtAddr base, bool is_write = false)
    {
        auto it = regions_.find(base);
        if (it == regions_.end())
            panic("FakeBackend: fireAccess on unwatched region ", base);
        Region region = it->second;
        regions_.erase(it);
        if (callback_)
            callback_(base, region.kind, region.cookie, base, is_write);
    }

    std::map<VirtAddr, Region> regions_;
    WatchFaultCallback callback_;
    int watchCount = 0;
    int unwatchCount = 0;
    StatSet stats_;
};

} // namespace safemem
