/**
 * @file
 * Flight-recorder tests: ring semantics, the binary section format and
 * its JSON-lines export, thread-local scope routing, SimCheck context
 * attachment, and the per-run recording contract under runMatrix().
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/simcheck.h"
#include "common/logging.h"
#include "os/machine.h"
#include "trace/trace.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

TEST(Trace, RingWrapKeepsNewestRecords)
{
    Trace trace(16);
    EXPECT_EQ(trace.capacity(), 16u);
    for (std::uint64_t i = 0; i < 40; ++i)
        trace.emit(TraceEvent::WatchEstablish, i, i * 10);

    EXPECT_EQ(trace.emitted(), 40u);
    EXPECT_EQ(trace.dropped(), 24u);
    EXPECT_EQ(trace.size(), 16u);

    std::vector<TraceRecord> records = trace.records();
    ASSERT_EQ(records.size(), 16u);
    // Oldest retained first: cycles 24..39.
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].cycle, 24 + i);
        EXPECT_EQ(records[i].a, (24 + i) * 10);
    }
}

TEST(Trace, PayloadWordsDefaultToZero)
{
    Trace trace(16);
    trace.emit(TraceEvent::ControllerFill, 7);
    trace.emit(TraceEvent::ControllerInterrupt, 8, 1, 2, 3);

    std::vector<TraceRecord> records = trace.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0],
              (TraceRecord{7, 0, 0, 0, 0, TraceEvent::ControllerFill}));
    EXPECT_EQ(records[1],
              (TraceRecord{8, 1, 2, 3, 0, TraceEvent::ControllerInterrupt}));
}

TEST(Trace, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(Trace(10).capacity(), 16u);
    EXPECT_EQ(Trace(0).capacity(), 16u);
    EXPECT_EQ(Trace(4096).capacity(), 4096u);
    EXPECT_EQ(Trace(4097).capacity(), 8192u);
}

TEST(Trace, LastRecordsReturnsNewestOldestFirst)
{
    Trace trace(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        trace.emit(TraceEvent::WatchDrop, i);

    std::vector<TraceRecord> last = trace.lastRecords(3);
    ASSERT_EQ(last.size(), 3u);
    EXPECT_EQ(last[0].cycle, 2u);
    EXPECT_EQ(last[2].cycle, 4u);
    EXPECT_EQ(trace.lastRecords(99).size(), 5u);
}

TEST(Trace, ClearForgetsEverything)
{
    Trace trace(16);
    trace.emit(TraceEvent::WatchDrop, 1);
    trace.clear();
    EXPECT_EQ(trace.emitted(), 0u);
    EXPECT_TRUE(trace.records().empty());
}

TEST(Trace, EventNamesCoverEveryEvent)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceEvent::NumEvents); ++i) {
        std::string name =
            traceEventName(static_cast<TraceEvent>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
    EXPECT_STREQ(traceEventName(TraceEvent::NumEvents), "?");
}

TEST(Trace, BinarySectionsRoundTrip)
{
    Trace first(16);
    for (std::uint64_t i = 0; i < 40; ++i)
        first.emit(TraceEvent::ControllerFill, i, i, i + 1, i + 2);
    Trace second(32);
    second.emit(TraceEvent::LeakReported, 99, 0xabc, 128, 7);

    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceSection(stream, first, "gzip/safemem+buggy");
    writeTraceSection(stream, second, "hotpath");

    std::vector<TraceSection> sections = readTraceSections(stream);
    ASSERT_EQ(sections.size(), 2u);

    EXPECT_EQ(sections[0].label, "gzip/safemem+buggy");
    EXPECT_EQ(sections[0].emitted, 40u);
    EXPECT_EQ(sections[0].capacity, 16u);
    EXPECT_EQ(sections[0].records, first.records());

    EXPECT_EQ(sections[1].label, "hotpath");
    EXPECT_EQ(sections[1].emitted, 1u);
    EXPECT_EQ(sections[1].records, second.records());
}

TEST(Trace, EmptyStreamYieldsNoSections)
{
    std::stringstream stream;
    EXPECT_TRUE(readTraceSections(stream).empty());
}

TEST(Trace, MalformedMagicThrows)
{
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    stream << "NOPE this is not a trace file";
    EXPECT_THROW(readTraceSections(stream), FatalError);
}

TEST(Trace, TruncatedSectionThrows)
{
    Trace trace(16);
    trace.emit(TraceEvent::WatchDrop, 1);
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceSection(stream, trace, "cut");
    std::string bytes = stream.str();
    bytes.resize(bytes.size() - 5);

    std::stringstream cut(bytes, std::ios::in | std::ios::binary);
    EXPECT_THROW(readTraceSections(cut), FatalError);
}

TEST(Trace, JsonLinesCarryAbsoluteSequenceNumbers)
{
    Trace trace(16);
    for (std::uint64_t i = 0; i < 20; ++i)
        trace.emit(TraceEvent::ControllerEvict, 100 + i, i);

    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceSection(stream, trace, "run \"x\"");
    std::vector<TraceSection> sections = readTraceSections(stream);
    ASSERT_EQ(sections.size(), 1u);
    ASSERT_EQ(sections[0].records.size(), 16u);

    // 20 emitted into a 16-ring: the first retained record is emit #4.
    std::string line = traceRecordJsonLine(sections[0], 0);
    EXPECT_NE(line.find("\"run\":\"run \\\"x\\\"\""), std::string::npos);
    EXPECT_NE(line.find("\"seq\":4"), std::string::npos);
    EXPECT_NE(line.find("\"cycle\":104"), std::string::npos);
    EXPECT_NE(line.find("\"event\":\"controller_evict\""),
              std::string::npos);
    EXPECT_NE(line.find("\"a\":4"), std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Trace, SectionSummaryCountsEventsAndCycleSpan)
{
    Trace trace(16);
    trace.emit(TraceEvent::ControllerFill, 100);
    trace.emit(TraceEvent::ControllerFill, 250);
    trace.emit(TraceEvent::ControllerEvict, 900);

    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceSection(stream, trace, "summary/run");
    std::vector<TraceSection> sections = readTraceSections(stream);
    ASSERT_EQ(sections.size(), 1u);

    std::string summary = traceSectionSummaryJson(sections[0]);
    EXPECT_NE(summary.find("\"run\":\"summary/run\""), std::string::npos);
    EXPECT_NE(summary.find("\"emitted\":3"), std::string::npos);
    EXPECT_NE(summary.find("\"retained\":3"), std::string::npos);
    EXPECT_NE(summary.find("\"cycle_first\":100"), std::string::npos);
    EXPECT_NE(summary.find("\"cycle_last\":900"), std::string::npos);
    EXPECT_NE(summary.find("\"controller_fill\":2"), std::string::npos);
    EXPECT_NE(summary.find("\"controller_evict\":1"), std::string::npos);
    // Events with zero occurrences are omitted, not listed as zero.
    EXPECT_EQ(summary.find("\"leak_reported\""), std::string::npos);
    EXPECT_EQ(summary.find('\n'), std::string::npos);
}

TEST(Trace, RecordsCarryTheEmittingPid)
{
    Trace trace(16);
    trace.emit(TraceEvent::ControllerFill, 10);
    trace.setPid(3);
    trace.emit(TraceEvent::ControllerFill, 20);
    ASSERT_EQ(trace.records().size(), 2u);
    EXPECT_EQ(trace.records()[0].pid, 0u);
    EXPECT_EQ(trace.records()[1].pid, 3u);

    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceSection(stream, trace, "pids");
    std::vector<TraceSection> sections = readTraceSections(stream);
    ASSERT_EQ(sections.size(), 1u);
    EXPECT_EQ(sections[0].records, trace.records());
    EXPECT_NE(traceRecordJsonLine(sections[0], 1).find("\"pid\":3"),
              std::string::npos);
}

TEST(Trace, ScopeRoutesAndNests)
{
    EXPECT_EQ(currentTrace(), nullptr);
    Trace outer(16);
    {
        TraceScope outer_scope(outer);
        EXPECT_EQ(currentTrace(), &outer);
        Trace inner(16);
        {
            TraceScope inner_scope(inner);
            EXPECT_EQ(currentTrace(), &inner);
        }
        EXPECT_EQ(currentTrace(), &outer);
    }
    EXPECT_EQ(currentTrace(), nullptr);
}

TEST(Trace, ContextSummaryShowsNewestEvents)
{
    EXPECT_TRUE(traceContextSummary(4).empty());

    Trace trace(16);
    TraceScope scope(trace);
    EXPECT_TRUE(traceContextSummary(4).empty()) << "empty ring";

    trace.emit(TraceEvent::WatchScrubPark, 123, 0x40, 64);
    trace.emit(TraceEvent::ControllerScrubBegin, 130, 0, 512);
    std::string summary = traceContextSummary(4);
    EXPECT_NE(summary.find("last trace events:"), std::string::npos);
    EXPECT_NE(summary.find("watch_scrub_park@123"), std::string::npos);
    EXPECT_NE(summary.find("controller_scrub_begin@130"),
              std::string::npos);
}

TEST(Trace, SimCheckViolationsCarryTraceContext)
{
    ASSERT_TRUE(SimCheck::instance().enabled());
    Trace trace(16);
    TraceScope scope(trace);
    trace.emit(TraceEvent::KernelScrubTickBegin, 555);

    try {
        SIMCHECK_AUDIT(AuditDomain::MemoryController, "self_test_trace",
                       false, "seeded violation with trace context");
        FAIL() << "audit failure did not throw";
    } catch (const PanicError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("SimCheck violation"), std::string::npos);
        EXPECT_NE(what.find("last trace events:"), std::string::npos);
        EXPECT_NE(what.find("kernel_scrub_tick_begin@555"),
                  std::string::npos);
    }
}

TEST(Trace, MachineRecordsControllerTraffic)
{
    if (!kTraceCompiledIn)
        GTEST_SKIP() << "emit sites compiled out";

    Trace trace;
    MachineConfig config{4u << 20, CacheConfig{16, 2}, 64};
    config.trace = &trace;
    Machine machine(config);

    VirtAddr region = machine.kernel().mapRegion(kPageSize);
    for (int i = 0; i < 64; ++i)
        machine.store<std::uint64_t>(region + i * 64, i);
    machine.cache().flushAll();

    std::uint64_t fills = 0;
    std::uint64_t evicts = 0;
    for (const TraceRecord &record : trace.records()) {
        if (record.event == TraceEvent::ControllerFill)
            ++fills;
        if (record.event == TraceEvent::ControllerEvict)
            ++evicts;
    }
    EXPECT_GT(fills, 0u);
    EXPECT_GT(evicts, 0u);
}

TEST(Trace, MatrixCellsRecordIdenticallySerialAndParallel)
{
    if (!kTraceCompiledIn)
        GTEST_SKIP() << "emit sites compiled out";

    auto make_specs = [](std::vector<Trace> &traces) {
        RunParams params;
        params.requests = 10;
        params.seed = 42;
        std::vector<RunSpec> specs;
        specs.push_back(RunSpec{"gzip", ToolKind::SafeMemBoth, params});
        params.buggy = true;
        specs.push_back(RunSpec{"tar", ToolKind::SafeMemBoth, params});
        for (std::size_t i = 0; i < specs.size(); ++i)
            specs[i].params.trace = &traces[i];
        return specs;
    };

    std::vector<Trace> serial_traces(2);
    std::vector<MatrixCell> serial =
        runMatrix(make_specs(serial_traces), 1);
    std::vector<Trace> parallel_traces(2);
    std::vector<MatrixCell> parallel =
        runMatrix(make_specs(parallel_traces), 2);

    for (std::size_t i = 0; i < 2; ++i) {
        ASSERT_TRUE(serial[i].ok());
        ASSERT_TRUE(parallel[i].ok());
        EXPECT_GT(serial_traces[i].emitted(), 0u);
        EXPECT_EQ(serial_traces[i].emitted(),
                  parallel_traces[i].emitted());
        EXPECT_EQ(serial_traces[i].records(),
                  parallel_traces[i].records());
    }
    EXPECT_NE(serial_traces[0].records(), serial_traces[1].records())
        << "distinct runs should record distinct streams";
}

} // namespace
} // namespace safemem
