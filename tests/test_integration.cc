/**
 * @file
 * End-to-end tests over the full stack: every paper bug is detected,
 * overheads are ordered the way Table 3 reports, pruning works, and
 * the two watch backends behave consistently.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

RunParams
paramsFor(const std::string &app, bool buggy)
{
    RunParams params;
    params.requests = defaultRequests(app);
    params.buggy = buggy;
    params.seed = 42;
    return params;
}

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
};

using IntegrationDetect = QuietLogs;

TEST_F(IntegrationDetect, SafeMemDetectsYpserv1ALeak)
{
    RunResult r = runWorkload("ypserv1", ToolKind::SafeMemBoth,
                              paramsFor("ypserv1", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.leakReportsTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsYpserv2SLeak)
{
    RunResult r = runWorkload("ypserv2", ToolKind::SafeMemBoth,
                              paramsFor("ypserv2", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.leakReportsTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsProftpdLeak)
{
    RunResult r = runWorkload("proftpd", ToolKind::SafeMemBoth,
                              paramsFor("proftpd", true));
    EXPECT_TRUE(r.bugDetected);
}

TEST_F(IntegrationDetect, SafeMemDetectsSquid1Leak)
{
    RunResult r = runWorkload("squid1", ToolKind::SafeMemBoth,
                              paramsFor("squid1", true));
    EXPECT_TRUE(r.bugDetected);
}

TEST_F(IntegrationDetect, SafeMemDetectsGzipOverflow)
{
    RunResult r = runWorkload("gzip", ToolKind::SafeMemBoth,
                              paramsFor("gzip", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.corruptionTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsTarOverflow)
{
    RunResult r = runWorkload("tar", ToolKind::SafeMemBoth,
                              paramsFor("tar", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.corruptionTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsSquid2UseAfterFree)
{
    RunResult r = runWorkload("squid2", ToolKind::SafeMemBoth,
                              paramsFor("squid2", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.corruptionTrue, 1u);
}

TEST_F(IntegrationDetect, NoCorruptionFalsePositives)
{
    // Paper §6.4: "SafeMem does not have any false positives in memory
    // corruption detection." Swept as a parallel matrix so the
    // multi-machine execution path is exercised in tier-1 ctest.
    std::vector<RunSpec> specs;
    for (const std::string &app : appNames())
        specs.push_back({app, ToolKind::SafeMemBoth,
                         paramsFor(app, false)});
    for (const MatrixCell &cell : runMatrix(specs, 2)) {
        ASSERT_TRUE(cell.ok()) << cell.spec.app << ": " << cell.error;
        EXPECT_EQ(cell.result.corruptionTrue, 0u) << cell.spec.app;
        EXPECT_EQ(cell.result.corruptionFalse, 0u) << cell.spec.app;
    }
}

TEST_F(IntegrationDetect, NormalRunsReportNoLeakAtBugSite)
{
    std::vector<RunSpec> specs;
    for (const std::string &app : appNames())
        specs.push_back({app, ToolKind::SafeMemBoth,
                         paramsFor(app, false)});
    for (const MatrixCell &cell : runMatrix(specs, 2)) {
        ASSERT_TRUE(cell.ok()) << cell.spec.app << ": " << cell.error;
        EXPECT_EQ(cell.result.leakReportsTrue, 0u) << cell.spec.app;
    }
}

using IntegrationOverhead = QuietLogs;

TEST_F(IntegrationOverhead, SafeMemIsCheapPurifyIsNot)
{
    // Table 3's shape: SafeMem single-digit-ish percent, Purify a
    // multiple of the baseline, with orders of magnitude between them.
    std::vector<RunSpec> specs;
    for (const std::string &app : {std::string("ypserv1"),
                                   std::string("gzip")}) {
        RunParams params = paramsFor(app, false);
        specs.push_back({app, ToolKind::None, params});
        specs.push_back({app, ToolKind::SafeMemBoth, params});
        specs.push_back({app, ToolKind::Purify, params});
    }
    std::vector<MatrixCell> cells = runMatrix(specs, 2);
    for (std::size_t i = 0; i < cells.size(); i += 3) {
        const std::string &app = cells[i].spec.app;
        ASSERT_TRUE(cells[i].ok() && cells[i + 1].ok() &&
                    cells[i + 2].ok())
            << app;
        const RunResult &base = cells[i].result;
        double sm_overhead = overheadPercent(cells[i + 1].result, base);
        double purify_overhead =
            overheadPercent(cells[i + 2].result, base);

        EXPECT_GT(sm_overhead, 0.0) << app;
        EXPECT_LT(sm_overhead, 25.0) << app;
        EXPECT_GT(purify_overhead, 300.0) << app;
        EXPECT_GT(purify_overhead / sm_overhead, 20.0) << app;
    }
}

TEST_F(IntegrationOverhead, MlOnlyIsCheaperThanMcOnly)
{
    RunParams params = paramsFor("ypserv1", false);
    RunResult base = runWorkload("ypserv1", ToolKind::None, params);
    RunResult ml = runWorkload("ypserv1", ToolKind::SafeMemML, params);
    RunResult mc = runWorkload("ypserv1", ToolKind::SafeMemMC, params);
    EXPECT_LT(overheadPercent(ml, base), overheadPercent(mc, base));
}

using IntegrationSpace = QuietLogs;

TEST_F(IntegrationSpace, EccWastesFarLessThanPageProtection)
{
    // Table 4's shape: page protection wastes ~64-74x more memory.
    RunParams params = paramsFor("ypserv1", false);
    RunResult ecc = runWorkload("ypserv1", ToolKind::SafeMemBoth, params);
    RunResult page =
        runWorkload("ypserv1", ToolKind::PageProtBoth, params);

    ASSERT_GT(ecc.userBytes, 0u);
    ASSERT_GT(page.userBytes, 0u);
    double ratio = page.wastePercent() / ecc.wastePercent();
    EXPECT_GT(ratio, 20.0);
}

using IntegrationPruning = QuietLogs;

TEST_F(IntegrationPruning, EccPruningRemovesFalsePositives)
{
    // Table 5's shape: several suspected groups, almost all pruned.
    RunResult r = runWorkload("ypserv1", ToolKind::SafeMemBoth,
                              paramsFor("ypserv1", true));
    EXPECT_GE(r.suspectedFalse, 2u);
    EXPECT_LE(r.leakReportsFalse, 1u);
    EXPECT_GT(r.prunedSuspects, 0u);
}

using IntegrationPurify = QuietLogs;

TEST_F(IntegrationPurify, PurifyAlsoDetectsCorruptionBugs)
{
    std::vector<RunSpec> specs;
    for (const std::string &app : {std::string("gzip"),
                                   std::string("tar"),
                                   std::string("squid2")})
        specs.push_back({app, ToolKind::Purify, paramsFor(app, true)});
    for (const MatrixCell &cell : runMatrix(specs, 3)) {
        ASSERT_TRUE(cell.ok()) << cell.spec.app << ": " << cell.error;
        EXPECT_GE(cell.result.corruptionTrue, 1u) << cell.spec.app;
    }
}

TEST_F(IntegrationPurify, PurifyFindsLeakedBlocks)
{
    RunResult r = runWorkload("ypserv1", ToolKind::Purify,
                              paramsFor("ypserv1", true));
    EXPECT_GE(r.leakReportsTrue, 1u);
}

} // namespace
} // namespace safemem
