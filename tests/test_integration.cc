/**
 * @file
 * End-to-end tests over the full stack: every paper bug is detected,
 * overheads are ordered the way Table 3 reports, pruning works, and
 * the two watch backends behave consistently.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

RunParams
paramsFor(const std::string &app, bool buggy)
{
    RunParams params;
    params.requests = defaultRequests(app);
    params.buggy = buggy;
    params.seed = 42;
    return params;
}

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
};

using IntegrationDetect = QuietLogs;

TEST_F(IntegrationDetect, SafeMemDetectsYpserv1ALeak)
{
    RunResult r = runWorkload("ypserv1", ToolKind::SafeMemBoth,
                              paramsFor("ypserv1", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.leakReportsTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsYpserv2SLeak)
{
    RunResult r = runWorkload("ypserv2", ToolKind::SafeMemBoth,
                              paramsFor("ypserv2", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.leakReportsTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsProftpdLeak)
{
    RunResult r = runWorkload("proftpd", ToolKind::SafeMemBoth,
                              paramsFor("proftpd", true));
    EXPECT_TRUE(r.bugDetected);
}

TEST_F(IntegrationDetect, SafeMemDetectsSquid1Leak)
{
    RunResult r = runWorkload("squid1", ToolKind::SafeMemBoth,
                              paramsFor("squid1", true));
    EXPECT_TRUE(r.bugDetected);
}

TEST_F(IntegrationDetect, SafeMemDetectsGzipOverflow)
{
    RunResult r = runWorkload("gzip", ToolKind::SafeMemBoth,
                              paramsFor("gzip", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.corruptionTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsTarOverflow)
{
    RunResult r = runWorkload("tar", ToolKind::SafeMemBoth,
                              paramsFor("tar", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.corruptionTrue, 1u);
}

TEST_F(IntegrationDetect, SafeMemDetectsSquid2UseAfterFree)
{
    RunResult r = runWorkload("squid2", ToolKind::SafeMemBoth,
                              paramsFor("squid2", true));
    EXPECT_TRUE(r.bugDetected);
    EXPECT_GE(r.corruptionTrue, 1u);
}

TEST_F(IntegrationDetect, NoCorruptionFalsePositives)
{
    // Paper §6.4: "SafeMem does not have any false positives in memory
    // corruption detection."
    for (const std::string &app : appNames()) {
        RunResult r = runWorkload(app, ToolKind::SafeMemBoth,
                                  paramsFor(app, false));
        EXPECT_EQ(r.corruptionTrue, 0u) << app;
        EXPECT_EQ(r.corruptionFalse, 0u) << app;
    }
}

TEST_F(IntegrationDetect, NormalRunsReportNoLeakAtBugSite)
{
    for (const std::string &app : appNames()) {
        RunResult r = runWorkload(app, ToolKind::SafeMemBoth,
                                  paramsFor(app, false));
        EXPECT_EQ(r.leakReportsTrue, 0u) << app;
    }
}

using IntegrationOverhead = QuietLogs;

TEST_F(IntegrationOverhead, SafeMemIsCheapPurifyIsNot)
{
    // Table 3's shape: SafeMem single-digit-ish percent, Purify a
    // multiple of the baseline, with orders of magnitude between them.
    for (const std::string &app : {std::string("ypserv1"),
                                   std::string("gzip")}) {
        RunParams params = paramsFor(app, false);
        RunResult base = runWorkload(app, ToolKind::None, params);
        RunResult sm = runWorkload(app, ToolKind::SafeMemBoth, params);
        RunResult purify = runWorkload(app, ToolKind::Purify, params);

        double sm_overhead = overheadPercent(sm, base);
        double purify_overhead = overheadPercent(purify, base);

        EXPECT_GT(sm_overhead, 0.0) << app;
        EXPECT_LT(sm_overhead, 25.0) << app;
        EXPECT_GT(purify_overhead, 300.0) << app;
        EXPECT_GT(purify_overhead / sm_overhead, 20.0) << app;
    }
}

TEST_F(IntegrationOverhead, MlOnlyIsCheaperThanMcOnly)
{
    RunParams params = paramsFor("ypserv1", false);
    RunResult base = runWorkload("ypserv1", ToolKind::None, params);
    RunResult ml = runWorkload("ypserv1", ToolKind::SafeMemML, params);
    RunResult mc = runWorkload("ypserv1", ToolKind::SafeMemMC, params);
    EXPECT_LT(overheadPercent(ml, base), overheadPercent(mc, base));
}

using IntegrationSpace = QuietLogs;

TEST_F(IntegrationSpace, EccWastesFarLessThanPageProtection)
{
    // Table 4's shape: page protection wastes ~64-74x more memory.
    RunParams params = paramsFor("ypserv1", false);
    RunResult ecc = runWorkload("ypserv1", ToolKind::SafeMemBoth, params);
    RunResult page =
        runWorkload("ypserv1", ToolKind::PageProtBoth, params);

    ASSERT_GT(ecc.userBytes, 0u);
    ASSERT_GT(page.userBytes, 0u);
    double ratio = page.wastePercent() / ecc.wastePercent();
    EXPECT_GT(ratio, 20.0);
}

using IntegrationPruning = QuietLogs;

TEST_F(IntegrationPruning, EccPruningRemovesFalsePositives)
{
    // Table 5's shape: several suspected groups, almost all pruned.
    RunResult r = runWorkload("ypserv1", ToolKind::SafeMemBoth,
                              paramsFor("ypserv1", true));
    EXPECT_GE(r.suspectedFalse, 2u);
    EXPECT_LE(r.leakReportsFalse, 1u);
    EXPECT_GT(r.prunedSuspects, 0u);
}

using IntegrationPurify = QuietLogs;

TEST_F(IntegrationPurify, PurifyAlsoDetectsCorruptionBugs)
{
    for (const std::string &app : {std::string("gzip"),
                                   std::string("tar"),
                                   std::string("squid2")}) {
        RunResult r = runWorkload(app, ToolKind::Purify,
                                  paramsFor(app, true));
        EXPECT_GE(r.corruptionTrue, 1u) << app;
    }
}

TEST_F(IntegrationPurify, PurifyFindsLeakedBlocks)
{
    RunResult r = runWorkload("ypserv1", ToolKind::Purify,
                              paramsFor("ypserv1", true));
    EXPECT_GE(r.leakReportsTrue, 1u);
}

} // namespace
} // namespace safemem
