/**
 * @file
 * Exhaustive SEC/SEC-DED property suite, parameterized over the codec
 * zoo.
 *
 * Single-error correction: for every codeword bit (data + check), a
 * flip must decode back to the original word — this holds for every
 * codec in the zoo. Double-error behaviour is where they split: the
 * Hsiao-family SEC-DED codes must flag every pair of flipped bits as
 * detected-but-uncorrectable, while classic Hamming 64/8 — a pure SEC
 * code with no detect-only outcome — must *silently miscorrect* a
 * nonzero share of them. The suite asserts the miscorrections are
 * present (not merely tolerated): they are the reason the paper's
 * mechanism demands a SEC-DED code.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "ecc/codec.h"

namespace safemem {
namespace {

/** Deterministic word sample: edge patterns plus PRNG fill. */
std::vector<std::uint64_t>
sampleWords(std::size_t count)
{
    std::vector<std::uint64_t> words = {
        0x0000000000000000ULL, 0xffffffffffffffffULL,
        0xaaaaaaaaaaaaaaaaULL, 0x5555555555555555ULL,
        0x0123456789abcdefULL,
    };
    Rng rng(0xecc7e57);
    while (words.size() < count)
        words.push_back(rng.next());
    return words;
}

/** Flip codeword bit @p bit (data bits first, then check bits). */
void
flipBit(const EccCodec &code, int bit, std::uint64_t &data,
        std::uint64_t &check)
{
    if (bit < code.dataBits())
        data ^= 1ULL << bit;
    else
        check ^= 1ULL << (bit - code.dataBits());
}

/** One zoo member plus its expected double-flip behaviour. */
struct ZooEntry
{
    EccCodecSpec spec;
    /** SEC-DED codes detect every double; pure SEC Hamming cannot. */
    bool secDed;
};

class CodecExhaustive : public ::testing::TestWithParam<ZooEntry>
{
  protected:
    std::unique_ptr<EccCodec> code_ = makeCodec(GetParam().spec);
};

TEST_P(CodecExhaustive, AllSingleBitFlipsCorrectToOriginal)
{
    const EccCodec &code = *code_;
    const int total = code.dataBits() + code.checkBits();
    for (std::uint64_t data : sampleWords(16)) {
        std::uint64_t check = code.encode(data);
        for (int bit = 0; bit < total; ++bit) {
            std::uint64_t bad_data = data;
            std::uint64_t bad_check = check;
            flipBit(code, bit, bad_data, bad_check);

            EccDecodeResult result = code.decode(bad_data, bad_check);
            ASSERT_EQ(result.status, EccDecodeStatus::CorrectedSingle)
                << "bit " << bit << " of word " << data;
            ASSERT_EQ(result.data, data)
                << "flip of bit " << bit
                << " did not correct back to the original word";
            ASSERT_EQ(result.correctedBit, bit);
        }
    }
}

TEST_P(CodecExhaustive, DoubleBitFlipsNeverReturnWrongDataAsClean)
{
    // Shared floor for every codec: whatever a double flip decodes to,
    // the decoder must never claim a clean (status Ok) word that is
    // wrong. SEC-DED vs SEC only changes *how* doubles surface.
    const EccCodec &code = *code_;
    const int total = code.dataBits() + code.checkBits();
    const std::uint64_t data = 0x0123456789abcdefULL;
    const std::uint64_t check = code.encode(data);
    for (int a = 0; a < total; ++a) {
        for (int b = a + 1; b < total; ++b) {
            std::uint64_t bad_data = data;
            std::uint64_t bad_check = check;
            flipBit(code, a, bad_data, bad_check);
            flipBit(code, b, bad_data, bad_check);
            EccDecodeResult result = code.decode(bad_data, bad_check);
            ASSERT_FALSE(result.status == EccDecodeStatus::Ok &&
                         result.data != data)
                << "bits " << a << "+" << b
                << " decoded as clean with wrong data";
        }
    }
}

TEST_P(CodecExhaustive, DoubleBitFlipBehaviourMatchesCodeClass)
{
    const EccCodec &code = *code_;
    const int total = code.dataBits() + code.checkBits();
    std::size_t cases = 0;
    std::size_t detected = 0;
    std::size_t miscorrected = 0;

    // Every bit pair — data+data, data+check, check+check — over two
    // contrasting words. For the 72-bit codecs that is 2 * C(72,2) =
    // 5112 deterministic double flips.
    for (std::uint64_t data :
         {0x0123456789abcdefULL, 0xfedcba9876543210ULL}) {
        std::uint64_t check = code.encode(data);
        for (int a = 0; a < total; ++a) {
            for (int b = a + 1; b < total; ++b) {
                std::uint64_t bad_data = data;
                std::uint64_t bad_check = check;
                flipBit(code, a, bad_data, bad_check);
                flipBit(code, b, bad_data, bad_check);

                EccDecodeResult result = code.decode(bad_data, bad_check);
                ++cases;
                if (result.status == EccDecodeStatus::Uncorrectable) {
                    ++detected;
                } else if (result.data != data) {
                    ++miscorrected;
                    ASSERT_FALSE(GetParam().secDed)
                        << "SEC-DED codec miscorrected bits " << a << "+"
                        << b << " of word " << data;
                }
            }
        }
    }

    // The issue's floor for the paper-geometry codecs: a deterministic
    // sample of at least 2000 pairs. (hsiao:32 has fewer pairs total.)
    if (code.dataBits() == 64) {
        EXPECT_GE(cases, 2000u);
    }
    if (GetParam().secDed) {
        // DED: every double flip detected, none slipped through.
        EXPECT_EQ(detected, cases);
        EXPECT_EQ(miscorrected, 0u);
    } else {
        // Pure SEC Hamming has no Uncorrectable outcome at all, and a
        // *nonzero* share of doubles lands on another column and
        // silently corrupts data — the campaign's headline number.
        EXPECT_EQ(detected, 0u);
        EXPECT_GT(miscorrected, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, CodecExhaustive,
    ::testing::Values(
        ZooEntry{{EccCodecKind::Hsiao72_64, 64, 0}, true},
        ZooEntry{{EccCodecKind::HsiaoParam, 64, 8}, true},
        ZooEntry{{EccCodecKind::HsiaoParam, 32, 0}, true},
        ZooEntry{{EccCodecKind::Hamming64_8, 64, 0}, false}),
    [](const ::testing::TestParamInfo<ZooEntry> &info) {
        std::string name = codecSpecName(info.param.spec);
        for (char &c : name)
            if (c == ':' || c == '/')
                c = '_';
        return name;
    });

} // namespace
} // namespace safemem
