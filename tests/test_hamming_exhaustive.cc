/**
 * @file
 * Exhaustive SEC-DED property test for the (72,64) Hsiao code.
 *
 * Single-error correction: for every one of the 72 codeword bits (64 data
 * + 8 check), a flip must decode back to the original word. Double-error
 * detection: every pair of flipped bits — data+data, data+check and
 * check+check, over 2500 deterministic cases — must decode as
 * detected-but-uncorrectable, never as a silent "correction" to the wrong
 * word. These are the two properties the whole SafeMem mechanism stands
 * on: single hardware faults heal transparently, and the 3-bit scramble
 * signature (or any real multi-bit fault) always raises an interrupt.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "ecc/hamming.h"

namespace safemem {
namespace {

/** Deterministic word sample: edge patterns plus PRNG fill. */
std::vector<std::uint64_t>
sampleWords(std::size_t count)
{
    std::vector<std::uint64_t> words = {
        0x0000000000000000ULL, 0xffffffffffffffffULL,
        0xaaaaaaaaaaaaaaaaULL, 0x5555555555555555ULL,
        0x0123456789abcdefULL,
    };
    Rng rng(0xecc7e57);
    while (words.size() < count)
        words.push_back(rng.next());
    return words;
}

TEST(HammingExhaustive, All72SingleBitFlipsCorrectToOriginal)
{
    const HsiaoCode &code = HsiaoCode::instance();
    for (std::uint64_t data : sampleWords(16)) {
        std::uint8_t check = code.encode(data);
        for (int bit = 0; bit < 72; ++bit) {
            std::uint64_t bad_data = data;
            std::uint8_t bad_check = check;
            if (bit < 64)
                bad_data ^= 1ULL << bit;
            else
                bad_check ^= static_cast<std::uint8_t>(1u << (bit - 64));

            EccDecodeResult result = code.decode(bad_data, bad_check);
            ASSERT_EQ(result.status, EccDecodeStatus::CorrectedSingle)
                << "bit " << bit << " of word " << data;
            ASSERT_EQ(result.data, data)
                << "flip of bit " << bit
                << " did not correct back to the original word";
            ASSERT_EQ(result.correctedBit, bit);
        }
    }
}

TEST(HammingExhaustive, DoubleBitFlipsDetectedButUncorrectable)
{
    const HsiaoCode &code = HsiaoCode::instance();
    std::size_t cases = 0;

    // All 2016 data+data pairs on two contrasting words, all 512
    // data+check pairs and all 28 check+check pairs on one: 4600+
    // deterministic double flips, every one of which must surface as
    // Uncorrectable.
    for (std::uint64_t data :
         {0x0123456789abcdefULL, 0xfedcba9876543210ULL}) {
        std::uint8_t check = code.encode(data);
        for (int a = 0; a < 64; ++a) {
            for (int b = a + 1; b < 64; ++b) {
                EccDecodeResult result = code.decode(
                    data ^ (1ULL << a) ^ (1ULL << b), check);
                ASSERT_EQ(result.status, EccDecodeStatus::Uncorrectable)
                    << "data bits " << a << "+" << b << " of word " << data;
                ++cases;
            }
        }
    }

    const std::uint64_t data = 0x0123456789abcdefULL;
    const std::uint8_t check = code.encode(data);
    for (int a = 0; a < 64; ++a) {
        for (int b = 0; b < 8; ++b) {
            EccDecodeResult result = code.decode(
                data ^ (1ULL << a),
                static_cast<std::uint8_t>(check ^ (1u << b)));
            ASSERT_EQ(result.status, EccDecodeStatus::Uncorrectable)
                << "data bit " << a << " + check bit " << b;
            ++cases;
        }
    }
    for (int a = 0; a < 8; ++a) {
        for (int b = a + 1; b < 8; ++b) {
            EccDecodeResult result = code.decode(
                data, static_cast<std::uint8_t>(check ^ (1u << a) ^
                                                (1u << b)));
            ASSERT_EQ(result.status, EccDecodeStatus::Uncorrectable)
                << "check bits " << a << "+" << b;
            ++cases;
        }
    }

    // The issue's floor: a deterministic sample of at least 2000 pairs.
    EXPECT_GE(cases, 2000u);
}

} // namespace
} // namespace safemem
