/**
 * @file
 * Tests for SampledSafeMem: the deterministic sampling function, the
 * rate-1.0 detection-equivalence contract against full SafeMem, the
 * sampled/unsampled realloc boundary (including the ML-only granule
 * alignment regression), and the fleet report/JSON shape.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "safemem/sampled.h"
#include "safemem/watch_manager.h"
#include "workloads/driver.h"
#include "workloads/fleet.h"
#include "workloads/report_writer.h"

namespace safemem {
namespace {

// ---------------------------------------------------------------------
// The sampling function: pure, deterministic, rate-faithful.

TEST(SampleDecision, ExtremeRatesAreCertain)
{
    for (std::uint64_t ordinal = 0; ordinal < 200; ++ordinal) {
        EXPECT_TRUE(
            SampledSafeMemTool::sampleDecision(7, 3, ordinal, 1.0));
        EXPECT_FALSE(
            SampledSafeMemTool::sampleDecision(7, 3, ordinal, 0.0));
        EXPECT_FALSE(
            SampledSafeMemTool::sampleDecision(7, 3, ordinal, -1.0));
    }
}

TEST(SampleDecision, DeterministicPerArgumentTuple)
{
    for (std::uint64_t ordinal = 0; ordinal < 500; ++ordinal) {
        bool first =
            SampledSafeMemTool::sampleDecision(42, 1, ordinal, 0.25);
        EXPECT_EQ(first, SampledSafeMemTool::sampleDecision(42, 1,
                                                            ordinal,
                                                            0.25));
    }
}

TEST(SampleDecision, RateMatchesEmpiricalFrequency)
{
    constexpr std::uint64_t kTrials = 20'000;
    for (double rate : {0.5, 1.0 / 16, 1.0 / 64}) {
        std::uint64_t hits = 0;
        for (std::uint64_t ordinal = 0; ordinal < kTrials; ++ordinal)
            hits += SampledSafeMemTool::sampleDecision(42, 1, ordinal,
                                                       rate);
        double empirical = static_cast<double>(hits) / kTrials;
        // Three-sigma binomial band around the requested rate.
        double sigma = std::sqrt(rate * (1.0 - rate) / kTrials);
        EXPECT_NEAR(empirical, rate, 3.0 * sigma) << "rate " << rate;
    }
}

TEST(SampleDecision, TenantsSampleIndependentStreams)
{
    // Different pids (and different seeds) must pick different subsets,
    // or every tenant in a fleet would monitor the same ordinals.
    int pid_diff = 0, seed_diff = 0;
    for (std::uint64_t ordinal = 0; ordinal < 2000; ++ordinal) {
        pid_diff +=
            SampledSafeMemTool::sampleDecision(42, 1, ordinal, 0.5) !=
            SampledSafeMemTool::sampleDecision(42, 2, ordinal, 0.5);
        seed_diff +=
            SampledSafeMemTool::sampleDecision(42, 1, ordinal, 0.5) !=
            SampledSafeMemTool::sampleDecision(43, 1, ordinal, 0.5);
    }
    EXPECT_GT(pid_diff, 500);
    EXPECT_GT(seed_diff, 500);
}

// ---------------------------------------------------------------------
// Rate 1.0 == full SafeMem: every interposition path delegates verbatim,
// so the whole run — detections, costs, space — must match exactly.

TEST(SampledEquivalence, RateOneMatchesFullSafeMemOnPaperSweep)
{
    const Log quiet = Log::quiet();
    for (const std::string &app : appNames()) {
        RunParams params = paperParams(app, true);
        params.requests = std::min<std::uint64_t>(params.requests, 150);
        params.log = &quiet;
        params.sampleRate = 1.0;

        RunResult full =
            runWorkload(app, ToolKind::SafeMemBoth, params);
        RunResult sampled =
            runWorkload(app, ToolKind::SafeMemSampled, params);

        EXPECT_EQ(sampled.bugDetected, full.bugDetected) << app;
        EXPECT_EQ(sampled.leakReportsTrue, full.leakReportsTrue) << app;
        EXPECT_EQ(sampled.leakReportsFalse, full.leakReportsFalse)
            << app;
        EXPECT_EQ(sampled.suspectedTrue, full.suspectedTrue) << app;
        EXPECT_EQ(sampled.suspectedFalse, full.suspectedFalse) << app;
        EXPECT_EQ(sampled.prunedSuspects, full.prunedSuspects) << app;
        EXPECT_EQ(sampled.corruptionTrue, full.corruptionTrue) << app;
        EXPECT_EQ(sampled.corruptionFalse, full.corruptionFalse) << app;
        EXPECT_EQ(sampled.wasteBytes, full.wasteBytes) << app;
        EXPECT_EQ(sampled.userBytes, full.userBytes) << app;
        EXPECT_EQ(sampled.totalCycles, full.totalCycles) << app;
        EXPECT_EQ(sampled.appCycles, full.appCycles) << app;
        EXPECT_EQ(sampled.stabilityWarmups, full.stabilityWarmups)
            << app;

        // And it monitored literally everything: the sampled counter is
        // live, the unsampled one never moved (zero counters are not
        // merged into the run's stat map).
        auto hit = sampled.stats.find("sampled.sampled_allocs");
        ASSERT_NE(hit, sampled.stats.end()) << app;
        EXPECT_GT(hit->second, 0u) << app;
        auto miss = sampled.stats.find("sampled.unsampled_allocs");
        EXPECT_TRUE(miss == sampled.stats.end() || miss->second == 0u)
            << app;
    }
}

TEST(SampledEquivalence, LowRateRunsCheaperThanFullSafeMem)
{
    const Log quiet = Log::quiet();
    RunParams params = paperParams("squid2", true);
    params.requests = 200;
    params.log = &quiet;

    RunResult full = runWorkload("squid2", ToolKind::SafeMemBoth, params);
    params.sampleRate = 1.0 / 64;
    RunResult sparse =
        runWorkload("squid2", ToolKind::SafeMemSampled, params);

    EXPECT_LT(sparse.totalCycles, full.totalCycles)
        << "sampling must shed monitoring cost";
    auto sampled = sparse.stats.find("sampled.sampled_allocs");
    auto unsampled = sparse.stats.find("sampled.unsampled_allocs");
    ASSERT_NE(sampled, sparse.stats.end());
    ASSERT_NE(unsampled, sparse.stats.end());
    EXPECT_LT(sampled->second, unsampled->second);
}

// ---------------------------------------------------------------------
// The sampled/unsampled realloc boundary over a real machine.

class SampledToolTest : public ::testing::Test
{
  protected:
    SampledToolTest()
        : machine(MachineConfig{32u << 20, CacheConfig{32, 4}, 64}),
          allocator(machine), backend(machine)
    {
        backend.installFaultHandler();
        backend.installScrubHooks();
    }

    std::unique_ptr<SampledSafeMemTool>
    makeTool(double rate, bool ml = true, bool mc = true)
    {
        SafeMemConfig config;
        config.detectLeaks = ml;
        config.detectCorruption = mc;
        config.sampleRate = rate;
        config.sampleSeed = 42;
        return std::make_unique<SampledSafeMemTool>(machine, allocator,
                                                    backend, config, 1);
    }

    Machine machine;
    HeapAllocator allocator;
    EccWatchManager backend;
    ShadowStack stack;
};

TEST_F(SampledToolTest, MlOnlyReallocMoveKeepsGranuleAlignment)
{
    // Regression: the ML-only realloc path used to move blocks with the
    // allocator's default 16-byte alignment, so a tracked object could
    // land astride a 64-byte ECC granule it shared with a neighbour.
    // Occupy slot 0 of the unaligned size class first so a misaligned
    // move would land at offset 112, not at a page start.
    auto tool = makeTool(1.0, /*ml=*/true, /*mc=*/false);
    allocator.allocate(100);

    VirtAddr addr = tool->toolAlloc(40, stack, 0);
    machine.store<std::uint64_t>(addr, 0xabcdULL);
    VirtAddr fresh = tool->toolRealloc(addr, 100, stack, 0);
    EXPECT_NE(fresh, addr) << "growth past the size class must move";
    EXPECT_TRUE(isAligned(fresh, backend.granule()))
        << "moved ML-only blocks must stay granule-aligned";
    EXPECT_EQ(machine.load<std::uint64_t>(fresh), 0xabcdULL);
    EXPECT_TRUE(tool->leakDetector().tracksObject(fresh));
    EXPECT_FALSE(tool->leakDetector().tracksObject(addr));
    tool->toolFree(fresh);
    tool->finish();
}

TEST_F(SampledToolTest, UnsampledTrafficNeverTouchesDetectors)
{
    auto tool = makeTool(0.0);
    VirtAddr addr = tool->toolAlloc(64, stack, 0);
    EXPECT_EQ(backend.regionCount(), 0u) << "no guards, no watches";
    EXPECT_FALSE(tool->leakDetector().tracksObject(addr));
    EXPECT_FALSE(tool->corruptionDetector().owns(addr));

    VirtAddr grown = tool->toolRealloc(addr, 4096, stack, 0);
    machine.store<std::uint64_t>(grown, 1);
    tool->toolFree(grown);
    EXPECT_TRUE(tool->corruptionDetector().reports().empty());
    EXPECT_EQ(tool->samplingStats().get("unsampled_allocs"), 1u);
    EXPECT_EQ(tool->samplingStats().get("realloc_stay_unsampled"), 1u);
    EXPECT_EQ(tool->samplingStats().get("sampled_allocs"), 0u);
    EXPECT_EQ(tool->samplingStats().get("unsampled_frees"), 1u);
    tool->finish();
    EXPECT_EQ(backend.regionCount(), 0u);
}

TEST_F(SampledToolTest, ReallocAcrossSampleBoundaryMovesWatches)
{
    // Alternate-rate trick: with rate 1.0 the object is guarded; force
    // the boundary by reconfiguring expectations through two tools is
    // not possible, so drive the drop/gain paths statistically: at rate
    // 0.5 enough reallocs cross the boundary in both directions.
    auto tool = makeTool(0.5);
    std::uint64_t drops = 0, gains = 0;
    for (int i = 0; i < 64; ++i) {
        VirtAddr addr = tool->toolAlloc(48, stack, 7);
        machine.store<std::uint64_t>(addr, 0x5a5a0000ULL + i);
        VirtAddr fresh = tool->toolRealloc(addr, 200, stack, 7);
        EXPECT_EQ(machine.load<std::uint64_t>(fresh),
                  0x5a5a0000ULL + i)
            << "contents must survive every boundary crossing";
        tool->toolFree(fresh);
    }
    drops = tool->samplingStats().get("realloc_drop_sample");
    gains = tool->samplingStats().get("realloc_gain_sample");
    EXPECT_GT(drops, 0u) << "sampled -> unsampled reallocs must occur";
    EXPECT_GT(gains, 0u) << "unsampled -> sampled reallocs must occur";
    EXPECT_TRUE(tool->corruptionDetector().reports().empty())
        << "boundary crossings must not trip stale watches";
    tool->finish();
    EXPECT_EQ(backend.regionCount(), 0u) << "no watch leaks";
}

// ---------------------------------------------------------------------
// Fleet report shape: keys present, rates guarded, no NaN anywhere.

TEST(FleetReport, JsonAndTableShapesArePinnedAndNanFree)
{
    const Log quiet = Log::quiet();
    FleetConfig config;
    config.app = "squid2";
    config.procs = 2;
    config.requests = 40; // tiny: nothing detects -> exercises guards
    config.seeds = 1;
    config.banks = 2;
    config.rates = {1.0 / 16};
    config.workers = 1;
    config.verifyWorkers = 2;
    config.log = &quiet;

    FleetResult result = runFleet(config);
    EXPECT_TRUE(result.identical);
    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.cells[0].tool, "none");
    EXPECT_EQ(result.cells[1].tool, "safemem");
    EXPECT_EQ(result.cells[2].tool, "purify");
    EXPECT_EQ(result.cells[3].tool, "sampled@0.0625");
    EXPECT_EQ(result.cells[3].kind, ToolKind::SafeMemSampled);

    const std::string json = fleetJson(result);
    for (const char *key :
         {"\"bench\": \"fleet\"", "\"app\": \"squid2\"", "\"procs\": 2",
          "\"requests\": 40", "\"seeds\": 1", "\"banks\": 2",
          "\"identical\": true", "\"cells\": [", "\"tool\": \"none\"",
          "\"tool\": \"sampled@0.0625\"", "\"rate\": ",
          "\"seeds_run\": ", "\"seeds_detected\": ",
          "\"detection_percent\": ", "\"mean_overhead_percent\": ",
          "\"mean_catch_seconds\": ", "\"mean_total_cycles\": ",
          "\"monitored_allocs\": ", "\"total_allocs\": ",
          "\"monitored_percent\": ", "\"zero_sample_tenants\": "})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // The zero-detection / zero-sample guards: no NaN or inf may ever
    // reach a report, in either rendering. "nan" needs care: the word
    // "tenant" contains it, so only flag occurrences not preceded by a
    // letter (printf renders NaN after a space, ':' or '-').
    auto rendersNan = [](const std::string &text) {
        for (std::size_t pos = text.find("nan"); pos != std::string::npos;
             pos = text.find("nan", pos + 1)) {
            if (pos == 0 || !std::isalpha(
                                static_cast<unsigned char>(text[pos - 1])))
                return true;
        }
        return false;
    };
    EXPECT_FALSE(rendersNan(json));
    EXPECT_EQ(json.find("inf"), std::string::npos);

    const std::string table = formatFleetReport(result);
    EXPECT_NE(table.find("detect%"), std::string::npos);
    EXPECT_NE(table.find("overhead%"), std::string::npos);
    EXPECT_NE(table.find("worker-count identity: PASS"),
              std::string::npos);
    EXPECT_FALSE(rendersNan(table));
    EXPECT_EQ(table.find("inf"), std::string::npos);
}

TEST(FleetReport, GuardedRatesReturnZeroNotNan)
{
    EXPECT_EQ(safeRatePercent(0, 0), 0.0);
    EXPECT_EQ(safeRatePercent(3, 4), 75.0);
    EXPECT_EQ(safeMean(0.0, 0), 0.0);
    EXPECT_EQ(safeMean(9.0, 3), 3.0);
}

} // namespace
} // namespace safemem
