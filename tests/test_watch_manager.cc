/**
 * @file
 * Tests for the ECC watch backend: region bookkeeping, fault dispatch,
 * hardware-error differentiation, and scrub coordination.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "ecc/scramble.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

class WatchManagerTest : public ::testing::Test
{
  protected:
    WatchManagerTest()
        : machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64}),
          manager(machine)
    {
        manager.installFaultHandler();
        manager.installScrubHooks();
        manager.setFaultCallback([this](VirtAddr base, WatchKind kind,
                                        std::uint64_t cookie,
                                        VirtAddr fault_addr, bool) {
            ++callbacks;
            lastBase = base;
            lastKind = kind;
            lastCookie = cookie;
            lastFault = fault_addr;
        });
        region = machine.kernel().mapRegion(2 * kPageSize);
    }

    Machine machine;
    EccWatchManager manager;
    VirtAddr region = 0;
    int callbacks = 0;
    VirtAddr lastBase = 0;
    WatchKind lastKind = WatchKind::LeakSuspect;
    std::uint64_t lastCookie = 0;
    VirtAddr lastFault = 0;
};

TEST_F(WatchManagerTest, WatchUnwatchBookkeeping)
{
    manager.watch(region, 128, WatchKind::FreedBuffer, 7);
    EXPECT_TRUE(manager.isWatched(region));
    EXPECT_EQ(manager.regionCount(), 1u);
    EXPECT_EQ(manager.watchedBytes(), 128u);

    manager.unwatch(region);
    EXPECT_FALSE(manager.isWatched(region));
    EXPECT_EQ(manager.watchedBytes(), 0u);
}

TEST_F(WatchManagerTest, AccessDispatchesCallbackWithMetadata)
{
    machine.store<std::uint64_t>(region + 64, 0x77ULL);
    manager.watch(region, 192, WatchKind::GuardRear, 0xc0de);

    EXPECT_EQ(machine.load<std::uint64_t>(region + 64), 0x77ULL);
    EXPECT_EQ(callbacks, 1);
    EXPECT_EQ(lastBase, region);
    EXPECT_EQ(lastKind, WatchKind::GuardRear);
    EXPECT_EQ(lastCookie, 0xc0deULL);
    EXPECT_EQ(lastFault, region + 64);
    // Only the first access matters: whole region unwatched.
    EXPECT_FALSE(manager.isWatched(region));
    machine.load<std::uint64_t>(region);
    EXPECT_EQ(callbacks, 1);
}

TEST_F(WatchManagerTest, DataPreservedThroughWatchCycle)
{
    for (int i = 0; i < 8; ++i)
        machine.store<std::uint64_t>(region + i * 8,
                                     0x1000ULL + static_cast<unsigned>(i));
    manager.watch(region, 64, WatchKind::LeakSuspect, 1);
    manager.unwatch(region);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(machine.load<std::uint64_t>(region + i * 8),
                  0x1000ULL + static_cast<unsigned>(i));
}

TEST_F(WatchManagerTest, OverlappingWatchPanics)
{
    manager.watch(region, 128, WatchKind::LeakSuspect, 1);
    EXPECT_THROW(manager.watch(region + 64, 64, WatchKind::LeakSuspect, 2),
                 PanicError);
}

TEST_F(WatchManagerTest, UnalignedRegionPanics)
{
    EXPECT_THROW(manager.watch(region + 4, 64, WatchKind::LeakSuspect, 1),
                 PanicError);
    EXPECT_THROW(manager.watch(region, 65, WatchKind::LeakSuspect, 1),
                 PanicError);
    EXPECT_THROW(manager.watch(region, 0, WatchKind::LeakSuspect, 1),
                 PanicError);
}

TEST_F(WatchManagerTest, UnwatchUnknownPanics)
{
    EXPECT_THROW(manager.unwatch(region), PanicError);
}

TEST_F(WatchManagerTest, HardwareErrorUnderWatchIsRepaired)
{
    machine.kernel().setPanicOnHardwareError(false);
    machine.store<std::uint64_t>(region, 0xabcdULL);
    manager.watch(region, 64, WatchKind::FreedBuffer, 1);

    // A real memory error strikes the watched (scrambled) line: the
    // stored data no longer matches the scramble signature.
    PhysAddr frame = machine.kernel().translate(region + kPageSize - 1) -
                     (kPageSize - 1);
    machine.physicalMemory().flipDataBit(frame, 60);

    // The access faults; the manager classifies it as a hardware error
    // and repairs the line from its private copy.
    EXPECT_EQ(machine.load<std::uint64_t>(region), 0xabcdULL);
    EXPECT_EQ(callbacks, 0) << "not dispatched as an access fault";
    EXPECT_EQ(manager.stats().get("hardware_errors_detected"), 1u);
    EXPECT_FALSE(manager.isWatched(region));
}

TEST_F(WatchManagerTest, ForeignMultiBitFaultIsHardwareError)
{
    machine.kernel().setPanicOnHardwareError(false);
    VirtAddr other = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(other, 5);
    machine.cache().flushAll();
    PhysAddr frame = machine.kernel().translate(other + kPageSize - 1) -
                     (kPageSize - 1);
    machine.physicalMemory().flipDataBit(frame, 1);
    machine.physicalMemory().flipDataBit(frame, 7);

    // Nobody repairs a foreign line, so the access faults on every
    // retry and the machine gives up.
    EXPECT_THROW(machine.load<std::uint64_t>(other), PanicError);
    EXPECT_GE(manager.stats().get("foreign_faults"), 1u);
    EXPECT_EQ(callbacks, 0);
}

TEST_F(WatchManagerTest, ScrubPassParksAndRestoresWatches)
{
    machine.store<std::uint64_t>(region, 0x1234ULL);
    manager.watch(region, 64, WatchKind::LeakSuspect, 11);
    manager.watch(region + kPageSize, 128, WatchKind::FreedBuffer, 22);

    machine.kernel().enableScrubbing(1000);
    machine.compute(2000);
    machine.kernel().tick(); // scrub fires: unwatch-all, scrub, rewatch

    EXPECT_EQ(manager.stats().get("scrub_unwatch_passes"), 1u);
    EXPECT_TRUE(manager.isWatched(region));
    EXPECT_TRUE(manager.isWatched(region + kPageSize));
    EXPECT_EQ(machine.controller().stats().get("multi_bit_detected"), 0u)
        << "scrubber never saw a scrambled line";

    // Watches still functional after the scrub cycle.
    machine.kernel().disableScrubbing();
    EXPECT_EQ(machine.load<std::uint64_t>(region), 0x1234ULL);
    EXPECT_EQ(callbacks, 1);
}

TEST_F(WatchManagerTest, ScrubParkedRegionsStayLogicallyWatched)
{
    manager.watch(region, 128, WatchKind::LeakSuspect, 1);
    manager.parkAllForScrub(0);

    // Parked for the duration of the scrub pass, but still logically
    // watched: visible to isWatched() and opaque to overlapping watches,
    // exactly like a swap-parked region.
    EXPECT_TRUE(manager.isWatched(region));
    EXPECT_THROW(manager.watch(region + 64, 64, WatchKind::FreedBuffer, 2),
                 PanicError);

    manager.restoreAfterScrub(0);
    EXPECT_TRUE(manager.isWatched(region));
    EXPECT_EQ(manager.regionCount(), 1u);
    EXPECT_EQ(manager.watchedBytes(), 128u);
}

TEST_F(WatchManagerTest, UnwatchWhileScrubParkedCancelsTheRestore)
{
    manager.watch(region, 64, WatchKind::FreedBuffer, 1);
    manager.watch(region + kPageSize, 64, WatchKind::LeakSuspect, 2);
    manager.parkAllForScrub(0);

    // A detector may legitimately drop a watch mid-scrub (e.g. a freed
    // block is recycled); the parked entry must be cancelled, not
    // resurrected by the post-scrub restore.
    manager.unwatch(region);
    EXPECT_FALSE(manager.isWatched(region));
    EXPECT_EQ(manager.stats().get("parked_regions_cancelled"), 1u);

    manager.restoreAfterScrub(0);
    EXPECT_FALSE(manager.isWatched(region));
    EXPECT_TRUE(manager.isWatched(region + kPageSize));
    EXPECT_EQ(manager.regionCount(), 1u);
}

TEST_F(WatchManagerTest, PeakWatchedBytesTracked)
{
    manager.watch(region, 256, WatchKind::FreedBuffer, 1);
    manager.watch(region + kPageSize, 64, WatchKind::GuardFront, 2);
    manager.unwatch(region);
    EXPECT_EQ(manager.stats().get("peak_watched_bytes"), 320u);
    EXPECT_EQ(manager.watchedBytes(), 64u);
}

} // namespace
} // namespace safemem
