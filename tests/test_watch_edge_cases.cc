/**
 * @file
 * Adversarial edge cases around the cache/watch interplay and detector
 * coexistence that the straight-line tests do not reach.
 */

#include <gtest/gtest.h>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

class WatchEdgeTest : public ::testing::Test
{
  protected:
    WatchEdgeTest()
        : machine(MachineConfig{8u << 20, CacheConfig{16, 2}, 64}),
          manager(machine)
    {
        manager.installFaultHandler();
        manager.setFaultCallback([this](VirtAddr base, WatchKind,
                                        std::uint64_t, VirtAddr, bool) {
            faults.push_back(base);
        });
        region = machine.kernel().mapRegion(2 * kPageSize);
    }

    Machine machine;
    EccWatchManager manager;
    VirtAddr region = 0;
    std::vector<VirtAddr> faults;
};

TEST_F(WatchEdgeTest, DirtyCachedDataSurvivesWatchCycle)
{
    // The line is dirty in the cache with data NEWER than memory when
    // the watch is placed: the flush-before-scramble ordering must
    // capture the new data, and the first access must return it.
    machine.store<std::uint64_t>(region, 0x1111ULL); // now cached dirty
    manager.watch(region, kCacheLineSize, WatchKind::FreedBuffer, 1);
    EXPECT_EQ(machine.load<std::uint64_t>(region), 0x1111ULL);
    EXPECT_EQ(faults.size(), 1u);
}

TEST_F(WatchEdgeTest, AdjacentRegionsFaultIndependently)
{
    manager.watch(region, kCacheLineSize, WatchKind::GuardFront, 1);
    manager.watch(region + kCacheLineSize, kCacheLineSize,
                  WatchKind::GuardRear, 2);

    machine.load<std::uint64_t>(region + kCacheLineSize);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0], region + kCacheLineSize);
    EXPECT_TRUE(manager.isWatched(region)) << "neighbour stays armed";

    machine.load<std::uint64_t>(region);
    EXPECT_EQ(faults.size(), 2u);
}

TEST_F(WatchEdgeTest, MultiLineRegionFaultsOnceAsAWhole)
{
    manager.watch(region, 4 * kCacheLineSize, WatchKind::FreedBuffer, 1);
    machine.load<std::uint64_t>(region + 2 * kCacheLineSize);
    EXPECT_EQ(faults.size(), 1u);
    // The whole region was released: other lines no longer fault.
    machine.load<std::uint64_t>(region);
    machine.load<std::uint64_t>(region + 3 * kCacheLineSize);
    EXPECT_EQ(faults.size(), 1u);
}

TEST_F(WatchEdgeTest, AccessSpanningIntoWatchedLineFaults)
{
    // A multi-line read that merely ENDS inside a watched line must
    // still fault and then complete.
    machine.store<std::uint64_t>(region + kCacheLineSize, 0x2222ULL);
    manager.watch(region + kCacheLineSize, kCacheLineSize,
                  WatchKind::FreedBuffer, 1);
    std::uint8_t buffer[80];
    machine.read(region + 32, buffer, 80); // 32 bytes reach the watch
    EXPECT_EQ(faults.size(), 1u);
    std::uint64_t word;
    std::memcpy(&word, buffer + 32, 8);
    EXPECT_EQ(word, 0x2222ULL);
}

TEST_F(WatchEdgeTest, RewatchAfterFaultWorks)
{
    machine.store<std::uint64_t>(region, 0x3333ULL);
    manager.watch(region, kCacheLineSize, WatchKind::LeakSuspect, 1);
    machine.load<std::uint64_t>(region);
    ASSERT_EQ(faults.size(), 1u);

    manager.watch(region, kCacheLineSize, WatchKind::LeakSuspect, 2);
    EXPECT_EQ(machine.load<std::uint64_t>(region), 0x3333ULL);
    EXPECT_EQ(faults.size(), 2u);
}

TEST_F(WatchEdgeTest, WatchRegionSpanningPageBoundary)
{
    VirtAddr straddle = region + kPageSize - kCacheLineSize;
    machine.store<std::uint64_t>(straddle, 0xaaULL);
    machine.store<std::uint64_t>(straddle + kCacheLineSize, 0xbbULL);
    manager.watch(straddle, 2 * kCacheLineSize, WatchKind::FreedBuffer,
                  1);
    // Both pages pinned.
    EXPECT_FALSE(machine.kernel().swapOutPage(region));
    EXPECT_FALSE(machine.kernel().swapOutPage(region + kPageSize));

    EXPECT_EQ(machine.load<std::uint64_t>(straddle + kCacheLineSize),
              0xbbULL);
    EXPECT_EQ(faults.size(), 1u);
    // Unpinned again after the fault released the region.
    EXPECT_TRUE(machine.kernel().swapOutPage(region + kPageSize));
}

TEST_F(WatchEdgeTest, FreeingSuspectHandsBodyToFreedWatchCleanly)
{
    // ML suspect watch on a buffer body, then the app frees it: the
    // leak detector unwatches, the corruption detector immediately
    // watches the same lines as a freed body. No overlap panic, and a
    // dangling access is classified as use-after-free.
    HeapAllocator allocator(machine);
    SafeMemConfig config;
    config.warmupTime = 1000;
    config.checkingPeriod = 500;
    config.minStableTime = 1000;
    config.aleakLiveThreshold = 2;
    config.aleakRecentWindow = 1'000'000;
    config.leakReportThreshold = 10'000'000;
    SafeMemTool tool(machine, allocator, *(&manager), config);
    ShadowStack stack;

    // Grow a never-freed group past the threshold so its oldest objects
    // become ALeak suspects.
    std::vector<VirtAddr> objects;
    for (int i = 0; i < 6; ++i) {
        FrameGuard frame(stack, 0x920000);
        objects.push_back(tool.toolAlloc(64, stack, 0));
        machine.compute(2'000);
    }
    ASSERT_GT(tool.leakDetector().stats().get("suspects_watched"), 0u);

    // Free the suspect itself.
    tool.toolFree(objects[0]);
    // Its body is now freed-watched; a dangling read reports UAF.
    machine.load<std::uint64_t>(objects[0]);
    ASSERT_EQ(tool.corruptionDetector().reports().size(), 1u);
    EXPECT_EQ(tool.corruptionDetector().reports()[0].kind,
              CorruptionKind::UseAfterFree);

    for (std::size_t i = 1; i < objects.size(); ++i)
        tool.toolFree(objects[i]);
    tool.finish();
}

} // namespace
} // namespace safemem
