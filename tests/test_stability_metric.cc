/**
 * @file
 * Tests for the Figure 3 warm-up metric: per-group maximal-lifetime
 * history, the tolerance-band definition of "stable", and the
 * teardown-only exclusion.
 */

#include <gtest/gtest.h>

#include "safemem/leak_detector.h"
#include "tests/fake_backend.h"

namespace safemem {
namespace {

class StabilityMetricTest : public ::testing::Test
{
  protected:
    StabilityMetricTest()
    {
        config.warmupTime = 1'000'000'000; // no detection interference
        config.lifetimeTolerance = 1.25;
        detector = std::make_unique<LeakDetector>(
            config, backend, [this] { return now; });
    }

    VirtAddr
    churn(std::uint64_t slot, Cycles lifetime, std::uint64_t sig = 1)
    {
        VirtAddr addr = 0x200000 + slot * 0x1000;
        detector->onAlloc(addr, 64, sig, 0);
        now += lifetime;
        detector->onFree(addr);
        return addr;
    }

    SafeMemConfig config;
    FakeBackend backend;
    std::unique_ptr<LeakDetector> detector;
    Cycles now = 0;
};

TEST_F(StabilityMetricTest, WarmUpIsFirstTimeMaxNearsFinalValue)
{
    // Lifetimes: 100, 100, 100, ..., then one 110 late in the run.
    // 110 <= 1.25 * 100, so the early maximum already "covers" the
    // final value: warm-up must be the FIRST max-setting free, not the
    // late wiggle.
    churn(0, 100);
    Cycles first_free = now;
    for (int i = 1; i < 10; ++i) {
        churn(static_cast<std::uint64_t>(i), 100);
        now += 50;
    }

    auto data = detector->stabilityData();
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].warmUpTime, first_free);
}

TEST_F(StabilityMetricTest, GenuineLateGrowthMovesWarmUp)
{
    // A late lifetime of 400 (4x the early max) redefines the group's
    // expected maximum: warm-up moves to that point.
    for (int i = 0; i < 5; ++i) {
        churn(static_cast<std::uint64_t>(i), 100);
        now += 50;
    }
    churn(10, 400);
    Cycles big_free = now;
    churn(11, 100);

    auto data = detector->stabilityData();
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].warmUpTime, big_free);
}

TEST_F(StabilityMetricTest, NeverFreedGroupsExcluded)
{
    detector->onAlloc(0x200000, 64, 1, 0);
    now += 1000;
    detector->onAlloc(0x201000, 64, 1, 0);
    EXPECT_TRUE(detector->stabilityData().empty());
}

TEST_F(StabilityMetricTest, TeardownOnlyGroupsExcluded)
{
    // Group A deallocates throughout the run; group B is freed only in
    // the final 10% (program teardown): only A appears.
    for (int i = 0; i < 20; ++i) {
        churn(static_cast<std::uint64_t>(i), 100, /*sig=*/1);
        now += 400;
    }
    // Group B allocated early, freed at the very end.
    detector->onAlloc(0x300000, 32, 2, 0);
    now += 100;
    detector->onFree(0x300000); // free lands in the last 10% of time

    auto data = detector->stabilityData();
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].key.signature, 1u);
}

TEST_F(StabilityMetricTest, WarmUpRelativeToFirstEvent)
{
    now = 500'000; // the clock did not start at zero
    Cycles start = now;
    churn(0, 100);
    // Keep the program running well past the first free so it is not
    // classified as teardown activity.
    for (int i = 1; i < 10; ++i) {
        now += 1000;
        churn(static_cast<std::uint64_t>(i), 100);
    }
    auto data = detector->stabilityData();
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].warmUpTime, (start + 100) - start)
        << "warm-up measured from the first event, not absolute time";
}

} // namespace
} // namespace safemem
