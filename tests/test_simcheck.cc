/**
 * @file
 * SimCheck auditor tests: reporting semantics, the audit hooks riding on
 * real machine traffic, and — most importantly — seeded violations proving
 * the auditor actually notices deliberate corruption (an auditor that
 * never fires is indistinguishable from one that never looks).
 */

#include <gtest/gtest.h>

#include <string>

#include "alloc/heap_allocator.h"
#include "check/simcheck.h"
#include "common/logging.h"
#include "os/machine.h"

namespace safemem {
namespace {

/**
 * Scoped collect mode: violations are recorded instead of thrown for the
 * duration of a test, and the record is wiped on both ends.
 */
class CollectViolations
{
  public:
    CollectViolations()
    {
        SimCheck::instance().setThrowOnViolation(false);
        SimCheck::instance().clearViolations();
    }

    ~CollectViolations()
    {
        SimCheck::instance().clearViolations();
        SimCheck::instance().setThrowOnViolation(true);
    }

    bool
    sawInvariant(const std::string &invariant) const
    {
        for (const AuditViolation &v : SimCheck::instance().violations()) {
            if (v.invariant == invariant)
                return true;
        }
        return false;
    }

    std::size_t count() const
    {
        return SimCheck::instance().violations().size();
    }
};

TEST(SimCheck, HooksAreSilentWhileDisabled)
{
    SimCheck &auditor = SimCheck::instance();
    ASSERT_TRUE(auditor.enabled()); // test_main switches it on
    std::uint64_t before = auditor.auditsRun();

    auditor.setEnabled(false);
    CollectViolations guard;
    SIMCHECK_AUDIT(AuditDomain::Cache, "always_false", false,
                   "must not be recorded while disabled");
    auditor.setEnabled(true);

    EXPECT_EQ(guard.count(), 0u);
    EXPECT_EQ(auditor.auditsRun(), before);
}

TEST(SimCheck, ViolationThrowsPanicByDefault)
{
    ASSERT_TRUE(SimCheck::instance().throwOnViolation());
    try {
        SIMCHECK_AUDIT(AuditDomain::Kernel, "self_test_throw", false,
                       "seeded violation");
        FAIL() << "audit failure did not throw";
    } catch (const PanicError &err) {
        EXPECT_NE(std::string(err.what()).find("SimCheck violation"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("self_test_throw"),
                  std::string::npos);
    }
}

TEST(SimCheck, CollectModeRecordsStructuredViolation)
{
    CollectViolations guard;
    SIMCHECK_AUDIT(AuditDomain::Allocator, "self_test_collect", false,
                   "detail ", 42);
    ASSERT_EQ(guard.count(), 1u);
    const AuditViolation v = SimCheck::instance().violations()[0];
    EXPECT_EQ(v.domain, AuditDomain::Allocator);
    EXPECT_EQ(v.invariant, "self_test_collect");
    EXPECT_EQ(v.detail, "detail 42");
}

TEST(SimCheck, AuditHooksRideRealTraffic)
{
    std::uint64_t before = SimCheck::instance().auditsRun();
    Machine machine;
    VirtAddr buf = machine.kernel().mapRegion(kPageSize);
    for (int i = 0; i < 64; ++i)
        machine.store<std::uint64_t>(buf + i * 8, i);
    machine.cache().flushAll(); // writebacks run the coherence audits
    machine.auditNow();
    EXPECT_GT(SimCheck::instance().auditsRun(), before);
}

TEST(SimCheck, CleanMachineStatePassesDeepAudits)
{
    Machine machine;
    VirtAddr buf = machine.kernel().mapRegion(4 * kPageSize);
    for (std::size_t i = 0; i < 4 * kPageSize / 8; ++i)
        machine.store<std::uint64_t>(buf + i * 8, i * 0x9e37);
    machine.kernel().watchMemory(buf, 2 * kCacheLineSize);

    CollectViolations guard;
    machine.auditNow();
    EXPECT_EQ(guard.count(), 0u);

    machine.kernel().disableWatchMemory(buf, 2 * kCacheLineSize);
    machine.auditNow();
    EXPECT_EQ(guard.count(), 0u);
}

TEST(SimCheck, SeededFreeListCorruptionIsReported)
{
    Machine machine;
    HeapAllocator heap(machine);
    VirtAddr a = heap.allocate(64);
    VirtAddr b = heap.allocate(64);
    heap.deallocate(a);
    (void)b;

    CollectViolations guard;
    heap.auditInvariants();
    ASSERT_EQ(guard.count(), 0u) << "healthy heap must audit clean";

    heap.testOnlyClobberFreeList();
    heap.auditInvariants();
    EXPECT_TRUE(guard.sawInvariant("free_chunk_aligned"))
        << "clobbered free-list link was not reported";
}

TEST(SimCheck, SeededCanaryClobberIsReported)
{
    Machine machine;
    HeapAllocator heap(machine);
    VirtAddr block = heap.allocate(128);

    CollectViolations guard;
    heap.testOnlyClobberCanary(block);
    heap.auditInvariants();
    EXPECT_TRUE(guard.sawInvariant("metadata_canary"));
}

TEST(SimCheck, BusLockPairingViolationIsReported)
{
    Machine machine;
    machine.controller().lockBus();

    CollectViolations guard;
    // In collect mode the audit records the violation, after which the
    // controller's own hard panic still fires.
    EXPECT_THROW(machine.controller().lockBus(), PanicError);
    EXPECT_TRUE(guard.sawInvariant("bus_lock_pairing"));

    machine.controller().unlockBus();
}

TEST(SimCheck, TrafficWhileBusLockedIsReported)
{
    Machine machine;
    machine.controller().lockBus();

    CollectViolations guard;
    LineData line{};
    EXPECT_THROW(machine.controller().fillLine(0, line), PanicError);
    EXPECT_TRUE(guard.sawInvariant("no_traffic_while_locked"));

    machine.controller().unlockBus();
}

} // namespace
} // namespace safemem
