/**
 * @file
 * Tests for the two paper-proposed extensions implemented beyond the
 * evaluated prototype: uninitialised-read detection via ECC watches
 * (sketched in §4) and the unwatch-on-swap / rewatch-on-swap-in policy
 * (proposed in §2.2.2 as the better alternative to pinning).
 */

#include <gtest/gtest.h>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

class UninitReadTest : public ::testing::Test
{
  protected:
    UninitReadTest()
        : machine(MachineConfig{16u << 20, CacheConfig{32, 4}, 64}),
          allocator(machine), backend(machine)
    {
        backend.installFaultHandler();
        SafeMemConfig config;
        config.detectLeaks = false;
        config.detectUninitializedReads = true;
        tool = std::make_unique<SafeMemTool>(machine, allocator, backend,
                                             config);
    }

    Machine machine;
    HeapAllocator allocator;
    EccWatchManager backend;
    std::unique_ptr<SafeMemTool> tool;
    ShadowStack stack;
};

TEST_F(UninitReadTest, ReadBeforeWriteIsReported)
{
    VirtAddr buffer = tool->toolAlloc(64, stack, 0x51);
    machine.load<std::uint64_t>(buffer + 8);
    const auto &reports = tool->corruptionDetector().reports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].kind, CorruptionKind::UninitializedRead);
    EXPECT_EQ(reports[0].siteTag, 0x51ULL);
    tool->toolFree(buffer);
    tool->finish();
}

TEST_F(UninitReadTest, WriteRetiresWatchSilently)
{
    VirtAddr buffer = tool->toolAlloc(64, stack, 0x52);
    machine.store<std::uint64_t>(buffer, 1);
    EXPECT_TRUE(tool->corruptionDetector().reports().empty());
    EXPECT_EQ(tool->corruptionDetector().stats().get(
                  "uninit_watches_retired"), 1u);
    // Reads after initialisation are clean.
    machine.load<std::uint64_t>(buffer);
    EXPECT_TRUE(tool->corruptionDetector().reports().empty());
    tool->toolFree(buffer);
    tool->finish();
}

TEST_F(UninitReadTest, CallocNeverLooksUninitialised)
{
    VirtAddr buffer = tool->toolCalloc(8, 8, stack, 0x53);
    machine.load<std::uint64_t>(buffer);
    EXPECT_TRUE(tool->corruptionDetector().reports().empty());
    tool->toolFree(buffer);
    tool->finish();
}

TEST_F(UninitReadTest, FreeOfNeverTouchedBufferIsClean)
{
    VirtAddr buffer = tool->toolAlloc(128, stack, 0x54);
    tool->toolFree(buffer);
    EXPECT_TRUE(tool->corruptionDetector().reports().empty());
    EXPECT_EQ(tool->corruptionDetector().stats().get(
                  "uninit_watches_expired"), 1u);
    // The freed-body watch took over: a dangling read still reports.
    machine.load<std::uint64_t>(buffer);
    ASSERT_EQ(tool->corruptionDetector().reports().size(), 1u);
    EXPECT_EQ(tool->corruptionDetector().reports()[0].kind,
              CorruptionKind::UseAfterFree);
    tool->finish();
}

TEST_F(UninitReadTest, GuardsStillWorkAlongside)
{
    VirtAddr buffer = tool->toolAlloc(64, stack, 0x55);
    machine.store<std::uint64_t>(buffer, 1); // retire uninit watch
    machine.store<std::uint64_t>(buffer + 64, 1); // overflow
    ASSERT_EQ(tool->corruptionDetector().reports().size(), 1u);
    EXPECT_EQ(tool->corruptionDetector().reports()[0].kind,
              CorruptionKind::OverflowPadding);
    tool->toolFree(buffer);
    tool->finish();
}

class SwapPolicyTest : public ::testing::Test
{
  protected:
    SwapPolicyTest()
        : machine(MachineConfig{8u << 20, CacheConfig{16, 2}, 64}),
          manager(machine)
    {
        manager.installFaultHandler();
        manager.installSwapHooks();
        machine.kernel().setSwapWatchPolicy(
            SwapWatchPolicy::UnwatchRewatch);
        manager.setFaultCallback([this](VirtAddr, WatchKind,
                                        std::uint64_t, VirtAddr, bool) {
            ++faults;
        });
        region = machine.kernel().mapRegion(2 * kPageSize);
    }

    Machine machine;
    EccWatchManager manager;
    VirtAddr region = 0;
    int faults = 0;
};

TEST_F(SwapPolicyTest, WatchedPageCanSwapUnderNewPolicy)
{
    machine.store<std::uint64_t>(region, 0x77ULL);
    manager.watch(region, kCacheLineSize, WatchKind::FreedBuffer, 1);
    EXPECT_TRUE(machine.kernel().swapOutPage(region))
        << "no pin under UnwatchRewatch";
    EXPECT_FALSE(machine.kernel().pageResident(region));
    // Parked regions stay logically watched (the owner can still
    // cancel them) even though no line is scrambled right now.
    EXPECT_TRUE(manager.isWatched(region));
    EXPECT_FALSE(machine.kernel().isWatched(region))
        << "no scrambled line while swapped out";
    manager.unwatch(region); // cancelling a parked watch must work
    EXPECT_FALSE(manager.isWatched(region));
    EXPECT_EQ(manager.stats().get("parked_regions_cancelled"), 1u);
}

TEST_F(SwapPolicyTest, WatchSurvivesSwapCycle)
{
    machine.store<std::uint64_t>(region, 0x1234ULL);
    manager.watch(region, kCacheLineSize, WatchKind::FreedBuffer, 1);
    ASSERT_TRUE(machine.kernel().swapOutPage(region));

    // The access pages the frame back in; the swap-in hook rewatches
    // the region *before* the access proceeds — so the very access
    // that brought the page back still faults.
    EXPECT_EQ(machine.load<std::uint64_t>(region), 0x1234ULL);
    EXPECT_EQ(faults, 1) << "watch survived the swap cycle";
    EXPECT_EQ(manager.stats().get("regions_swap_parked"), 1u);
    EXPECT_EQ(manager.stats().get("regions_swap_restored"), 1u);
}

TEST_F(SwapPolicyTest, UnwatchedPagesSwapNormally)
{
    machine.store<std::uint64_t>(region + kPageSize, 9);
    ASSERT_TRUE(machine.kernel().swapOutPage(region + kPageSize));
    EXPECT_EQ(machine.load<std::uint64_t>(region + kPageSize), 9u);
    EXPECT_EQ(faults, 0);
    EXPECT_EQ(manager.stats().get("regions_swap_parked"), 0u);
}

TEST_F(SwapPolicyTest, MultipleRegionsOnOnePageAllSurvive)
{
    manager.watch(region, kCacheLineSize, WatchKind::GuardFront, 1);
    manager.watch(region + 4 * kCacheLineSize, 2 * kCacheLineSize,
                  WatchKind::FreedBuffer, 2);
    ASSERT_TRUE(machine.kernel().swapOutPage(region));
    EXPECT_EQ(manager.stats().get("regions_swap_parked"), 2u);

    machine.load<std::uint64_t>(region + 4 * kCacheLineSize);
    EXPECT_EQ(faults, 1);
    EXPECT_TRUE(manager.isWatched(region))
        << "the untouched region is watched again";
}

TEST_F(SwapPolicyTest, PolicyChangeWithActiveWatchesPanics)
{
    manager.watch(region, kCacheLineSize, WatchKind::GuardFront, 1);
    EXPECT_THROW(machine.kernel().setSwapWatchPolicy(
                     SwapWatchPolicy::PinPages),
                 PanicError);
}

TEST(SwapPolicyDefault, PinPagesIsTheDefault)
{
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64});
    EXPECT_EQ(machine.kernel().swapWatchPolicy(),
              SwapWatchPolicy::PinPages);
}

} // namespace
} // namespace safemem
