/**
 * @file
 * Test entry point: silence inform/warn/panic logging so the many
 * negative-path tests (which intentionally trigger panics) keep the
 * output readable.
 */

#include <gtest/gtest.h>

#include "common/logging.h"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    safemem::setLogQuiet(true);
    return RUN_ALL_TESTS();
}
