/**
 * @file
 * Test entry point: silence inform/warn/panic logging so the many
 * negative-path tests (which intentionally trigger panics) keep the
 * output readable, and switch on the SimCheck invariant auditor so every
 * existing integration/stress test also exercises the audit hooks.
 */

#include <gtest/gtest.h>

#include "check/simcheck.h"
#include "common/logging.h"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    safemem::setLogQuiet(true);
    safemem::SimCheck::instance().setEnabled(true);
    return RUN_ALL_TESTS();
}
