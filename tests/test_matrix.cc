/**
 * @file
 * Tests for the parallel run-matrix harness: the thread pool, per-run
 * log routing, and the bit-identical-regardless-of-workers contract
 * that makes whole simulator runs safe to fan out across cores.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryJob)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
    } // destructor drains
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, DrainIsABarrier)
{
    std::atomic<int> ran{0};
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(ran.load(), 50);

    // The pool stays usable after a drain.
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPool, ZeroWorkersStillRuns)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.drain();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ClampWorkersSemantics)
{
    EXPECT_EQ(ThreadPool::clampWorkers(4, 100), 4u);
    EXPECT_EQ(ThreadPool::clampWorkers(8, 3), 3u);  // never more than jobs
    EXPECT_EQ(ThreadPool::clampWorkers(5, 0), 5u);  // no jobs: keep request
    EXPECT_GE(ThreadPool::clampWorkers(0, 100), 1u); // 0 = hardware, min 1
    EXPECT_EQ(ThreadPool::clampWorkers(0, 1), 1u);
}

// ------------------------------------------------------------- logging

TEST(LogRouting, SinkReceivesMessages)
{
    std::vector<std::string> seen;
    Log log([&seen](LogLevel level, const std::string &msg) {
        seen.push_back(std::string(logLevelTag(level)) + msg);
    });
    LogScope scope(log);
    warn("w1");
    inform("i1");
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], std::string(logLevelTag(LogLevel::Warn)) + "w1");
    EXPECT_EQ(seen[1], std::string(logLevelTag(LogLevel::Inform)) + "i1");
}

TEST(LogRouting, QuietLogSuppresses)
{
    // No crash, no sink call; nothing observable but the absence of
    // stderr noise under the scope.
    Log quiet = Log::quiet();
    LogScope scope(quiet);
    warn("suppressed");
    inform("suppressed");
}

TEST(LogRouting, ScopesNestAndRestore)
{
    std::vector<std::string> outer_seen;
    std::vector<std::string> inner_seen;
    Log outer([&outer_seen](LogLevel, const std::string &msg) {
        outer_seen.push_back(msg);
    });
    Log inner([&inner_seen](LogLevel, const std::string &msg) {
        inner_seen.push_back(msg);
    });

    LogScope outer_scope(outer);
    warn("a");
    {
        LogScope inner_scope(inner);
        warn("b");
    }
    warn("c");
    EXPECT_EQ(outer_seen, (std::vector<std::string>{"a", "c"}));
    EXPECT_EQ(inner_seen, (std::vector<std::string>{"b"}));
}

TEST(LogRouting, ThreadsKeepIndependentSinks)
{
    std::vector<std::string> seen1;
    std::vector<std::string> seen2;
    auto run = [](std::vector<std::string> &seen, const char *tag) {
        Log log([&seen](LogLevel, const std::string &msg) {
            seen.push_back(msg);
        });
        LogScope scope(log);
        for (int i = 0; i < 100; ++i)
            warn(tag, i);
    };
    std::thread t1(run, std::ref(seen1), "one");
    std::thread t2(run, std::ref(seen2), "two");
    t1.join();
    t2.join();
    ASSERT_EQ(seen1.size(), 100u);
    ASSERT_EQ(seen2.size(), 100u);
    EXPECT_EQ(seen1[99], "one99");
    EXPECT_EQ(seen2[99], "two99");
}

// ------------------------------------------------------------- matrix

RunParams
smallParams(const std::string &app, bool buggy)
{
    RunParams params;
    params.requests = 300;
    params.seed = 42;
    params.buggy = buggy;
    (void)app;
    return params;
}

std::vector<RunSpec>
sampleSpecs(const Log &quiet)
{
    std::vector<RunSpec> specs;
    for (const std::string &app :
         {std::string("ypserv1"), std::string("gzip"),
          std::string("squid2"), std::string("proftpd")}) {
        for (ToolKind tool :
             {ToolKind::SafeMemBoth, ToolKind::None, ToolKind::Purify}) {
            RunSpec spec{app, tool, smallParams(app, app == "ypserv1")};
            spec.params.log = &quiet;
            specs.push_back(spec);
        }
    }
    return specs;
}

TEST(RunMatrix, ParallelIsBitIdenticalToSerial)
{
    const Log quiet = Log::quiet();
    std::vector<RunSpec> specs = sampleSpecs(quiet);

    std::vector<MatrixCell> serial = runMatrix(specs, 1);
    std::vector<MatrixCell> parallel = runMatrix(specs, 4);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(serial[i].ok()) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
        // operator== is the field-for-field default: cycle counts, every
        // detector verdict, the full stats map and the stability CDF all
        // have to match bit for bit.
        EXPECT_TRUE(serial[i].result == parallel[i].result)
            << specs[i].app << "/" << toolKindName(specs[i].tool);
        EXPECT_EQ(serial[i].result.stats, parallel[i].result.stats);
        EXPECT_EQ(serial[i].result.stabilityWarmups,
                  parallel[i].result.stabilityWarmups);
    }
}

TEST(RunMatrix, SameSeedSameResultAcrossRepeats)
{
    const Log quiet = Log::quiet();
    RunSpec spec{"squid1", ToolKind::SafeMemBoth,
                 smallParams("squid1", true)};
    spec.params.log = &quiet;

    std::vector<MatrixCell> first = runMatrix({spec, spec}, 2);
    std::vector<MatrixCell> second = runMatrix({spec, spec}, 1);
    ASSERT_TRUE(first[0].ok() && first[1].ok() && second[0].ok());
    EXPECT_TRUE(first[0].result == first[1].result);
    EXPECT_TRUE(first[0].result == second[0].result);
}

TEST(RunMatrix, ResultsStayInSpecOrder)
{
    const Log quiet = Log::quiet();
    std::vector<RunSpec> specs;
    for (const std::string &app :
         {std::string("gzip"), std::string("tar"),
          std::string("ypserv1")}) {
        RunSpec spec{app, ToolKind::None, smallParams(app, false)};
        spec.params.log = &quiet;
        specs.push_back(spec);
    }
    std::vector<MatrixCell> cells = runMatrix(specs, 3);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].result.app, "gzip");
    EXPECT_EQ(cells[1].result.app, "tar");
    EXPECT_EQ(cells[2].result.app, "ypserv1");
}

TEST(RunMatrix, FailedCellDoesNotPoisonTheBatch)
{
    const Log quiet = Log::quiet();
    RunSpec good{"gzip", ToolKind::None, smallParams("gzip", false)};
    good.params.log = &quiet;
    RunSpec bad{"no-such-app", ToolKind::None,
                smallParams("gzip", false)};
    bad.params.log = &quiet;

    std::vector<MatrixCell> cells = runMatrix({good, bad, good}, 2);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_TRUE(cells[0].ok());
    EXPECT_FALSE(cells[1].ok());
    EXPECT_NE(cells[1].error.find("unknown application"),
              std::string::npos);
    EXPECT_TRUE(cells[2].ok());
    EXPECT_TRUE(cells[0].result == cells[2].result);
}

TEST(RunMatrix, EmptyMatrixIsFine)
{
    EXPECT_TRUE(runMatrix({}, 4).empty());
}

TEST(RunMatrix, TwoMachinesOnTwoThreadsMatchSequentialReference)
{
    // The rawest form of the instance-safety claim: two full machines
    // driven concurrently from plain std::threads behave exactly like
    // the same runs performed back to back.
    const Log quiet = Log::quiet();
    RunParams params = smallParams("squid2", true);
    params.log = &quiet;

    RunResult ref_a = runWorkload("squid2", ToolKind::SafeMemBoth, params);
    RunResult ref_b = runWorkload("tar", ToolKind::Purify, params);

    RunResult got_a;
    RunResult got_b;
    std::thread t1([&] {
        got_a = runWorkload("squid2", ToolKind::SafeMemBoth, params);
    });
    std::thread t2(
        [&] { got_b = runWorkload("tar", ToolKind::Purify, params); });
    t1.join();
    t2.join();

    EXPECT_TRUE(got_a == ref_a);
    EXPECT_TRUE(got_b == ref_b);
}

TEST(RunMatrix, PaperParamsMatchTheEvaluationSetup)
{
    RunParams params = paperParams("gzip", false);
    EXPECT_EQ(params.requests, defaultRequests("gzip"));
    EXPECT_EQ(params.seed, 42u);
    EXPECT_FALSE(params.buggy);
    EXPECT_TRUE(paperParams("ypserv1", true).buggy);
    EXPECT_EQ(paperParams("ypserv1", true).requests,
              defaultRequests("ypserv1"));
}

} // namespace
} // namespace safemem
