/**
 * @file
 * Tests of the codec-zoo plumbing: the parameterized Hsiao construction
 * reproducing the paper's fixed code, auto-sizing of check bits, spec
 * parsing/naming round-trips, and geometry validation panics.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "ecc/hamming.h"
#include "ecc/hamming_sec.h"
#include "ecc/hsiao_param.h"

namespace safemem {
namespace {

TEST(CodecZoo, ParamHsiaoReproducesThePaperCode)
{
    // The (64, auto) construction must be the fixed (72,64) code column
    // for column — same H matrix, same encoder, same decoder verdicts.
    const HsiaoCode fixed;
    const HsiaoParamCode param(64);
    EXPECT_EQ(param.dataBits(), 64);
    EXPECT_EQ(param.checkBits(), 8);
    for (int bit = 0; bit < 64; ++bit)
        EXPECT_EQ(param.column(bit), fixed.column(bit)) << bit;

    Rng rng(21);
    for (int trial = 0; trial < 200; ++trial) {
        std::uint64_t data = rng.next();
        EXPECT_EQ(param.encode(data), fixed.encode(data));
        // Same verdict on a corrupted word too.
        std::uint64_t bad = data ^ (1ULL << rng.range(0, 63));
        std::uint64_t check = fixed.encode(data);
        EccDecodeResult a = param.decode(bad, check);
        EccDecodeResult b = fixed.decode(bad, check);
        EXPECT_EQ(a.status, b.status);
        EXPECT_EQ(a.data, b.data);
        EXPECT_EQ(a.correctedBit, b.correctedBit);
    }
}

TEST(CodecZoo, AutoCheckBitsMatchesTheCombinatorics)
{
    // Smallest k with enough odd-weight >= 3 columns: C(6, 3+5) = 26
    // covers 16, C(7, odd >= 3) = 63 covers 32, C(8, odd >= 3) = 92
    // covers 64.
    EXPECT_EQ(HsiaoParamCode::autoCheckBits(64), 8);
    EXPECT_EQ(HsiaoParamCode::autoCheckBits(32), 7);
    EXPECT_EQ(HsiaoParamCode::autoCheckBits(16), 6);
    EXPECT_EQ(HsiaoParamCode::autoCheckBits(1), 3);
}

TEST(CodecZoo, BadGeometryPanics)
{
    // 64 data columns cannot fit in 4 check bits (only C(4,3) = 4
    // odd-weight >= 3 values exist below 2^4).
    EXPECT_THROW(HsiaoParamCode(64, 4), PanicError);
    EXPECT_THROW(HsiaoParamCode(0, 8), PanicError);
    EXPECT_THROW(HsiaoParamCode(65, 0), PanicError);
    EXPECT_THROW(makeCodec({EccCodecKind::HsiaoParam, 64, 4}), PanicError);
}

TEST(CodecZoo, MakeCodecBuildsEveryKind)
{
    auto hsiao = makeCodec({EccCodecKind::Hsiao72_64, 64, 0});
    auto hamming = makeCodec({EccCodecKind::Hamming64_8, 64, 0});
    auto param = makeCodec({EccCodecKind::HsiaoParam, 16, 0});
    EXPECT_STREQ(hsiao->name(), "hsiao-72-64");
    EXPECT_STREQ(hamming->name(), "hamming-64-8");
    EXPECT_STREQ(param->name(), "hsiao-22-16");
    EXPECT_EQ(param->checkBits(), 6);
}

TEST(CodecZoo, SpecParsingRoundTrips)
{
    for (const char *name :
         {"hsiao", "hamming64/8", "hsiao:32", "hsiao:64/8", "hsiao:16/6"}) {
        auto spec = parseCodecSpec(name);
        ASSERT_TRUE(spec.has_value()) << name;
        EXPECT_EQ(codecSpecName(*spec), name);
    }

    // Aliases normalize to the canonical name.
    EXPECT_EQ(codecSpecName(*parseCodecSpec("hamming")), "hamming64/8");
    EXPECT_EQ(codecSpecName(*parseCodecSpec("hsiao-72-64")), "hsiao");

    for (const char *bad : {"", "crc32", "hsiao:", "hsiao:x", "hsiao:65",
                            "hsiao:64/65", "hsiao:-1", "hamming64"})
        EXPECT_FALSE(parseCodecSpec(bad).has_value()) << bad;
}

TEST(CodecZoo, DefaultSpecNamesTheDefaultCodec)
{
    EccCodecSpec spec;
    auto built = makeCodec(spec);
    EXPECT_STREQ(built->name(), defaultCodec().name());
    Rng rng(5);
    for (int trial = 0; trial < 64; ++trial) {
        std::uint64_t data = rng.next();
        EXPECT_EQ(built->encode(data), defaultCodec().encode(data));
    }
}

TEST(CodecZoo, HammingDecoderNeverReportsUncorrectable)
{
    // The property the scramble result rests on: no syndrome at all
    // decodes Uncorrectable, so no bit pattern can host a signature.
    const HammingSecCode code;
    const std::uint64_t data = 0x123456789abcdef0ULL;
    const std::uint64_t check = code.encode(data);
    for (unsigned syndrome = 0; syndrome < 256; ++syndrome) {
        EccDecodeResult result = code.decode(data, check ^ syndrome);
        EXPECT_NE(result.status, EccDecodeStatus::Uncorrectable)
            << "syndrome " << syndrome;
    }
}

TEST(CodecZoo, HammingPhantomCorrectionKeepsDataAndFlagsNoBit)
{
    // A syndrome naming a shortened-away position must come back as a
    // "correction" that touches nothing: data unchanged, correctedBit
    // -1 (see the EccDecodeResult contract).
    const HammingSecCode code;
    const std::uint64_t data = 0x5a5a5a5a5a5a5a5aULL;
    const std::uint64_t check = code.encode(data);

    // Find a syndrome that is neither a unit vector nor a data column.
    for (unsigned syndrome = 3; syndrome < 256; ++syndrome) {
        if (__builtin_popcount(syndrome) < 2)
            continue;
        bool is_column = false;
        for (int bit = 0; bit < 64 && !is_column; ++bit)
            is_column = code.column(bit) == syndrome;
        if (is_column)
            continue;
        EccDecodeResult result = code.decode(data, check ^ syndrome);
        EXPECT_EQ(result.status, EccDecodeStatus::CorrectedSingle);
        EXPECT_EQ(result.data, data);
        EXPECT_EQ(result.correctedBit, -1);
        return;
    }
    FAIL() << "no phantom syndrome found in an 8-bit space";
}

} // namespace
} // namespace safemem
