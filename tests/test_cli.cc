/**
 * @file
 * Tests for the CLI parsing/reporting layer behind safemem_run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/trace.h"
#include "workloads/cli.h"
#include "workloads/report_writer.h"

namespace safemem {
namespace {

TEST(Cli, NoArgumentsShowsUsage)
{
    CliParse parse = parseCliArguments({});
    EXPECT_FALSE(parse.options.has_value());
    EXPECT_NE(parse.message.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownAppRejected)
{
    CliParse parse = parseCliArguments({"notepad"});
    EXPECT_FALSE(parse.options.has_value());
    EXPECT_NE(parse.message.find("unknown application"),
              std::string::npos);
}

TEST(Cli, DefaultsApplied)
{
    CliParse parse = parseCliArguments({"gzip"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(parse.options->app, "gzip");
    EXPECT_EQ(parse.options->tool, ToolKind::SafeMemBoth);
    EXPECT_FALSE(parse.options->params.buggy);
    EXPECT_EQ(parse.options->params.requests, defaultRequests("gzip"));
    EXPECT_EQ(parse.options->params.seed, 42u);
}

TEST(Cli, AllFlagsParsed)
{
    CliParse parse = parseCliArguments(
        {"squid1", "--tool", "purify", "--buggy", "--requests", "123",
         "--seed", "9", "--overhead", "--stats=leak"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(parse.options->tool, ToolKind::Purify);
    EXPECT_TRUE(parse.options->params.buggy);
    EXPECT_EQ(parse.options->params.requests, 123u);
    EXPECT_EQ(parse.options->params.seed, 9u);
    EXPECT_TRUE(parse.options->compareBaseline);
    EXPECT_TRUE(parse.options->dumpStats);
    EXPECT_EQ(parse.options->statsPrefix, "leak");
}

TEST(Cli, AllSweepParsed)
{
    CliParse parse = parseCliArguments({"all", "--workers", "3"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_TRUE(parse.options->allApps);
    EXPECT_EQ(parse.options->workers, 3u);
    // Each swept app resolves its own default request count later.
    EXPECT_EQ(parse.options->params.requests, 0u);
}

TEST(Cli, WorkersDefaultsToSequential)
{
    CliParse parse = parseCliArguments({"gzip"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_FALSE(parse.options->allApps);
    EXPECT_EQ(parse.options->workers, 1u);
}

TEST(Cli, ProcsFlagParsed)
{
    CliParse parse = parseCliArguments({"ypserv1", "--procs", "3"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(parse.options->procs, 3u);

    CliParse zero = parseCliArguments({"ypserv1", "--procs", "0"});
    EXPECT_FALSE(zero.options.has_value());
    EXPECT_NE(zero.message.find("at least 1"), std::string::npos);

    CliParse missing = parseCliArguments({"ypserv1", "--procs"});
    EXPECT_FALSE(missing.options.has_value());

    // Default stays on the classic single-process path.
    CliParse plain = parseCliArguments({"ypserv1"});
    ASSERT_TRUE(plain.options.has_value());
    EXPECT_EQ(plain.options->procs, 1u);
}

TEST(Cli, BadToolRejected)
{
    CliParse parse = parseCliArguments({"gzip", "--tool", "valgrind"});
    EXPECT_FALSE(parse.options.has_value());
    EXPECT_NE(parse.message.find("unknown tool"), std::string::npos);
}

TEST(Cli, MissingValueRejected)
{
    CliParse parse = parseCliArguments({"gzip", "--requests"});
    EXPECT_FALSE(parse.options.has_value());
}

TEST(Cli, TraceFlagParsed)
{
    CliParse parse =
        parseCliArguments({"gzip", "--trace", "out.trace"});
    ASSERT_TRUE(parse.options.has_value());
    EXPECT_EQ(parse.options->traceFile, "out.trace");

    CliParse missing = parseCliArguments({"gzip", "--trace"});
    EXPECT_FALSE(missing.options.has_value());
}

TEST(Cli, EndToEndTraceFileHoldsOneSectionPerRun)
{
    const std::string path = "cli_trace_test.bin";
    CliParse parse = parseCliArguments({"gzip", "--requests", "20",
                                        "--overhead", "--trace", path});
    ASSERT_TRUE(parse.options.has_value());
    std::string report = runCli(*parse.options);
    EXPECT_NE(report.find("trace: 2 run sections -> " + path),
              std::string::npos);

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::vector<TraceSection> sections = readTraceSections(is);
    ASSERT_EQ(sections.size(), 2u);
    EXPECT_EQ(sections[0].label, "gzip/safemem");
    EXPECT_EQ(sections[1].label, "gzip/none");
    if (kTraceCompiledIn) {
        // The instrumented run records plenty of watch traffic; the
        // baseline still records controller fills.
        EXPECT_GT(sections[0].emitted, 0u);
        EXPECT_GT(sections[1].emitted, 0u);
        EXPECT_FALSE(sections[0].records.empty());
    }
    std::remove(path.c_str());
}

TEST(Cli, UnknownFlagRejected)
{
    CliParse parse = parseCliArguments({"gzip", "--fast"});
    EXPECT_FALSE(parse.options.has_value());
}

TEST(Cli, ToolKindNamesRoundTrip)
{
    for (ToolKind kind : {ToolKind::None, ToolKind::SafeMemML,
                          ToolKind::SafeMemMC, ToolKind::SafeMemBoth,
                          ToolKind::PageProtBoth, ToolKind::Purify})
        EXPECT_EQ(toolKindFromName(toolKindName(kind)), kind);
    EXPECT_FALSE(toolKindFromName("gdb").has_value());
}

TEST(Cli, EndToEndBuggyRunReportsTheBug)
{
    CliParse parse = parseCliArguments(
        {"tar", "--buggy", "--requests", "120"});
    ASSERT_TRUE(parse.options.has_value());
    std::string report = runCli(*parse.options);
    EXPECT_NE(report.find("BUG DETECTED"), std::string::npos);
    EXPECT_NE(report.find("memory corruption"), std::string::npos);
}

TEST(Cli, EndToEndCleanRun)
{
    CliParse parse =
        parseCliArguments({"gzip", "--requests", "20", "--overhead"});
    ASSERT_TRUE(parse.options.has_value());
    std::string report = runCli(*parse.options);
    EXPECT_NE(report.find("clean run"), std::string::npos);
    EXPECT_NE(report.find("overhead"), std::string::npos);
}

TEST(Cli, EndToEndAllSweepCoversEveryApp)
{
    CliParse parse = parseCliArguments(
        {"all", "--requests", "40", "--workers", "2"});
    ASSERT_TRUE(parse.options.has_value());
    std::string report = runCli(*parse.options);
    for (const std::string &app : appNames())
        EXPECT_NE(report.find("=== " + app + " under"),
                  std::string::npos)
            << app;
}

TEST(ReportWriter, VerdictVariants)
{
    RunResult clean;
    clean.app = "x";
    EXPECT_NE(formatVerdict(clean).find("clean run"), std::string::npos);

    RunResult leak;
    leak.app = "x";
    leak.leakReportsTrue = 1;
    leak.bugDetected = true;
    EXPECT_NE(formatVerdict(leak).find("BUG DETECTED"),
              std::string::npos);

    RunResult fp;
    fp.app = "x";
    fp.leakReportsFalse = 2;
    EXPECT_NE(formatVerdict(fp).find("other finding"),
              std::string::npos);
}

TEST(ReportWriter, StatsFilteredByPrefix)
{
    RunResult result;
    result.stats["leak.a"] = 1;
    result.stats["cache.b"] = 2;
    std::string all = formatStats(result, "");
    EXPECT_NE(all.find("leak.a"), std::string::npos);
    EXPECT_NE(all.find("cache.b"), std::string::npos);
    std::string filtered = formatStats(result, "leak");
    EXPECT_NE(filtered.find("leak.a"), std::string::npos);
    EXPECT_EQ(filtered.find("cache.b"), std::string::npos);
}

} // namespace
} // namespace safemem
