/**
 * @file
 * Lock-discipline regression tests: the runtime side of the static
 * lock-discipline layer (common/thread_annotations.h).
 *
 * The headline regression here was found *by* the annotation sweep: the
 * kernel's DisableWatchMemory panics on an unwatched line after taking
 * the memory-bus lock, and before BusLockGuard existed the unwind left
 * the bus locked forever — every later WatchMemory call then died with
 * the misleading "bus already locked" panic instead of doing its job.
 * The rest of the file locks down the contracts of the annotated
 * concurrency primitives the refactor touched (ThreadPool, SimCheck).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "check/simcheck.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "os/machine.h"

namespace safemem {
namespace {

class LockDisciplineTest : public ::testing::Test
{
  protected:
    LockDisciplineTest() : machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64})
    {
    }

    Machine machine;
};

TEST_F(LockDisciplineTest, BusLockGuardPairsLockAndUnlock)
{
    MemoryController &controller = machine.controller();
    EXPECT_FALSE(controller.busLocked());
    {
        BusLockGuard bus(controller);
        EXPECT_TRUE(controller.busLocked());
    }
    EXPECT_FALSE(controller.busLocked());
}

TEST_F(LockDisciplineTest, BusLockGuardReleasesOnUnwind)
{
    MemoryController &controller = machine.controller();
    try {
        BusLockGuard bus(controller);
        panic("deliberate unwind with the bus locked");
    } catch (const PanicError &) {
    }
    EXPECT_FALSE(controller.busLocked());
}

/**
 * Regression (pre-BusLockGuard this failed): DisableWatchMemory panics
 * on a mapped-but-unwatched line *after* locking the bus; the unwind
 * must release the bus or the kernel is wedged for every later watch.
 */
TEST_F(LockDisciplineTest, DisableUnwatchedPanicReleasesBusLock)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    machine.store<std::uint64_t>(base, 7);

    EXPECT_THROW(kernel.disableWatchMemory(base, kCacheLineSize),
                 PanicError);
    EXPECT_FALSE(machine.controller().busLocked())
        << "panic unwound with the memory bus still locked";

    // The kernel must still be fully operational: a watch/unwatch round
    // trip would previously die with "bus already locked".
    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_TRUE(kernel.isWatched(base));
    kernel.disableWatchMemory(base, kCacheLineSize);
    EXPECT_FALSE(kernel.isWatched(base));
    EXPECT_EQ(machine.load<std::uint64_t>(base), 7u);
}

/**
 * Same unwind discipline for the partially-watched case: the panic
 * fires mid-loop (first line watched, second not) and must still
 * release the bus on the way out.
 */
TEST_F(LockDisciplineTest, PartiallyWatchedDisablePanicReleasesBusLock)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.watchMemory(base, kCacheLineSize);

    EXPECT_THROW(kernel.disableWatchMemory(base, 2 * kCacheLineSize),
                 PanicError);
    EXPECT_FALSE(machine.controller().busLocked());

    // The first line was unwatched before the panic; watching it again
    // must succeed now that the bus is free.
    kernel.watchMemory(base, kCacheLineSize);
    kernel.disableWatchMemory(base, kCacheLineSize);
}

TEST(ThreadPoolDiscipline, JobsSubmittingJobsAreDrained)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &ran] {
            ran.fetch_add(1);
            pool.submit([&pool, &ran] {
                ran.fetch_add(1);
                pool.submit([&ran] { ran.fetch_add(1); });
            });
        });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), 8 * 3);
}

TEST(ThreadPoolDiscipline, DrainIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 16; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        pool.drain();
        EXPECT_EQ(ran.load(), (batch + 1) * 16);
    }
}

TEST(SimCheckDiscipline, ConcurrentReportsAreAllRecorded)
{
    SimCheck &auditor = SimCheck::instance();
    auditor.setThrowOnViolation(false);
    auditor.clearViolations();

    const Log quiet = Log::quiet();
    constexpr int kThreads = 4;
    constexpr int kReports = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&quiet] {
            LogScope scope(quiet); // keep warn() spam out of test output
            for (int i = 0; i < kReports; ++i)
                SimCheck::instance().report(AuditDomain::Kernel,
                                            "discipline_smoke", "");
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(auditor.violations().size(),
              static_cast<std::size_t>(kThreads * kReports));
    auditor.clearViolations();
    auditor.setThrowOnViolation(true);
}

} // namespace
} // namespace safemem
