/**
 * @file
 * Regression locks on the reproduced headline numbers. These pin the
 * calibrated experiment outputs exactly (they are deterministic), so
 * any change to the cost model, detector thresholds or workloads that
 * silently shifts a table out of the paper's shape fails loudly here
 * rather than in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

RunParams
fullScale(const std::string &app, bool buggy)
{
    RunParams params;
    params.requests = defaultRequests(app);
    params.buggy = buggy;
    params.seed = 42;
    return params;
}

struct Table5Row
{
    const char *app;
    std::uint64_t before;
    std::uint64_t after;
};

class Table5Lock : public ::testing::TestWithParam<Table5Row>
{
  protected:
    void SetUp() override { setLogQuiet(true); }
};

TEST_P(Table5Lock, FalsePositiveCountsMatchThePaper)
{
    const Table5Row &row = GetParam();
    RunResult r = runWorkload(row.app, ToolKind::SafeMemBoth,
                              fullScale(row.app, true));
    EXPECT_EQ(r.suspectedFalse, row.before) << "before-pruning count";
    EXPECT_EQ(r.leakReportsFalse, row.after) << "after-pruning count";
    EXPECT_GE(r.leakReportsTrue, 1u) << "the real bug is still found";
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table5Lock,
    ::testing::Values(Table5Row{"ypserv1", 7, 0},
                      Table5Row{"proftpd", 9, 0},
                      Table5Row{"squid1", 13, 1},
                      Table5Row{"ypserv2", 2, 0}),
    [](const auto &info) { return std::string(info.param.app); });

class TableLocks : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
};

TEST_F(TableLocks, Table3OverheadsStayInThePaperBand)
{
    // Paper band: 1.6 % - 14.4 % for ML+MC across all seven apps. Runs
    // as a parallel matrix: the band must hold regardless of how the
    // cells were scheduled across threads.
    std::vector<RunSpec> specs;
    for (const std::string &app : appNames()) {
        RunParams params = fullScale(app, false);
        specs.push_back({app, ToolKind::None, params});
        specs.push_back({app, ToolKind::SafeMemBoth, params});
    }
    std::vector<MatrixCell> cells = runMatrix(specs, 0);
    for (std::size_t i = 0; i < cells.size(); i += 2) {
        const std::string &app = cells[i].spec.app;
        ASSERT_TRUE(cells[i].ok() && cells[i + 1].ok()) << app;
        double pct =
            overheadPercent(cells[i + 1].result, cells[i].result);
        EXPECT_GE(pct, 0.5) << app;
        EXPECT_LE(pct, 14.4) << app;
    }
}

TEST_F(TableLocks, Table2SyscallCostsStayCalibrated)
{
    Machine machine;
    VirtAddr region = machine.kernel().mapRegion(kPageSize);
    Cycles t0 = machine.clock().now();
    machine.kernel().watchMemory(region, kCacheLineSize);
    Cycles watch = machine.clock().now() - t0;
    t0 = machine.clock().now();
    machine.kernel().disableWatchMemory(region, kCacheLineSize);
    Cycles disable = machine.clock().now() - t0;

    // Paper: 2.0 us and 1.5 us at 2.4 GHz.
    EXPECT_NEAR(cyclesToMicros(watch), 2.0, 0.1);
    EXPECT_NEAR(cyclesToMicros(disable), 1.5, 0.1);
}

TEST_F(TableLocks, Table4ReductionFactorHolds)
{
    // Server apps must show tens-of-x less waste under ECC protection.
    RunParams params = fullScale("proftpd", false);
    RunResult ecc = runWorkload("proftpd", ToolKind::SafeMemBoth, params);
    RunResult page =
        runWorkload("proftpd", ToolKind::PageProtBoth, params);
    double reduction = page.wastePercent() / ecc.wastePercent();
    EXPECT_GT(reduction, 40.0);
    EXPECT_LT(reduction, 120.0);
}

TEST_F(TableLocks, PageProtectionBackendAlsoFindsTheLeak)
{
    // The identical detectors over mprotect still catch ypserv2's
    // SLeak — the mechanisms differ only in granularity and cost.
    RunParams params = fullScale("ypserv2", true);
    params.requests = 1200;
    RunResult r = runWorkload("ypserv2", ToolKind::PageProtBoth, params);
    EXPECT_GE(r.leakReportsTrue, 1u);
}

} // namespace
} // namespace safemem
