/**
 * @file
 * Tests for the page table, including the swap-transition bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "os/page_table.h"

namespace safemem {
namespace {

TEST(PageTable, MapFindUnmap)
{
    PageTable table;
    table.map(0x10000000, 0x4000);
    PageTableEntry *entry = table.find(0x10000000);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->frame, 0x4000u);
    EXPECT_TRUE(entry->present);
    EXPECT_TRUE(entry->accessible);
    EXPECT_EQ(entry->pinCount, 0u);

    table.unmap(0x10000000);
    EXPECT_EQ(table.find(0x10000000), nullptr);
}

TEST(PageTable, ReverseLookup)
{
    PageTable table;
    table.map(0x10000000, 0x4000);
    table.map(0x10001000, 0x8000);
    EXPECT_EQ(table.reverse(0x4000).value(), 0x10000000u);
    EXPECT_EQ(table.reverse(0x8000).value(), 0x10001000u);
    EXPECT_FALSE(table.reverse(0xc000).has_value());
}

TEST(PageTable, UnalignedMapPanics)
{
    PageTable table;
    EXPECT_THROW(table.map(0x10000100, 0x4000), PanicError);
    EXPECT_THROW(table.map(0x10000000, 0x4100), PanicError);
}

TEST(PageTable, DoubleMapPanics)
{
    PageTable table;
    table.map(0x10000000, 0x4000);
    EXPECT_THROW(table.map(0x10000000, 0x8000), PanicError);
}

TEST(PageTable, UnmapMissingPanics)
{
    PageTable table;
    EXPECT_THROW(table.unmap(0x10000000), PanicError);
}

TEST(PageTable, SwapTransitionsMaintainReverseMap)
{
    PageTable table;
    table.map(0x10000000, 0x4000);
    table.markSwappedOut(0x10000000);
    EXPECT_FALSE(table.find(0x10000000)->present);
    EXPECT_FALSE(table.reverse(0x4000).has_value());

    table.markSwappedIn(0x10000000, 0xc000);
    EXPECT_TRUE(table.find(0x10000000)->present);
    EXPECT_EQ(table.find(0x10000000)->frame, 0xc000u);
    EXPECT_EQ(table.reverse(0xc000).value(), 0x10000000u);
}

TEST(PageTable, CannotSwapOutPinnedPage)
{
    PageTable table;
    table.map(0x10000000, 0x4000);
    table.find(0x10000000)->pinCount = 1;
    EXPECT_THROW(table.markSwappedOut(0x10000000), PanicError);
}

TEST(PageTable, CannotSwapOutTwice)
{
    PageTable table;
    table.map(0x10000000, 0x4000);
    table.markSwappedOut(0x10000000);
    EXPECT_THROW(table.markSwappedOut(0x10000000), PanicError);
    table.markSwappedIn(0x10000000, 0x4000);
    EXPECT_THROW(table.markSwappedIn(0x10000000, 0x8000), PanicError);
}

TEST(PageTable, ForEachVisitsAllEntries)
{
    PageTable table;
    table.map(0x10000000, 0x4000);
    table.map(0x10001000, 0x8000);
    std::size_t count = 0;
    table.forEach([&](VirtAddr, const PageTableEntry &) { ++count; });
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(table.size(), 2u);
}

} // namespace
} // namespace safemem
