/**
 * @file
 * Tests for the Purify model: shadow states, per-access checking,
 * bounds/dangling detection, uninitialised reads, mark-and-sweep leak
 * scanning, and the cost model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "alloc/heap_allocator.h"
#include "common/costs.h"
#include "common/logging.h"
#include "purify/purify.h"
#include "purify/shadow_memory.h"

namespace safemem {
namespace {

constexpr std::uint64_t
kHighBit()
{
    return 1ULL << 63;
}

TEST(ShadowMemory, DefaultStateIsUnallocated)
{
    ShadowMemory shadow;
    EXPECT_EQ(shadow.get(0x1000), ByteState::Unallocated);
    EXPECT_FALSE(shadow.covered(0x1000));
}

TEST(ShadowMemory, SetRangeRoundTrip)
{
    ShadowMemory shadow;
    shadow.setRange(0x1000, 10, ByteState::AllocUninit);
    shadow.setRange(0x1005, 2, ByteState::AllocInit);
    EXPECT_EQ(shadow.get(0x1000), ByteState::AllocUninit);
    EXPECT_EQ(shadow.get(0x1005), ByteState::AllocInit);
    EXPECT_EQ(shadow.get(0x1006), ByteState::AllocInit);
    EXPECT_EQ(shadow.get(0x1007), ByteState::AllocUninit);
    EXPECT_EQ(shadow.get(0x100a), ByteState::Unallocated);
}

TEST(ShadowMemory, CrossPageRange)
{
    ShadowMemory shadow;
    shadow.setRange(kPageSize - 4, 8, ByteState::Freed);
    EXPECT_EQ(shadow.get(kPageSize - 1), ByteState::Freed);
    EXPECT_EQ(shadow.get(kPageSize), ByteState::Freed);
    EXPECT_EQ(shadow.get(kPageSize + 3), ByteState::Freed);
    EXPECT_EQ(shadow.get(kPageSize + 4), ByteState::Unallocated);
}

TEST(ShadowMemory, TwoBitsPerByteAccounting)
{
    ShadowMemory shadow;
    shadow.setRange(0, 1, ByteState::AllocInit);
    EXPECT_EQ(shadow.shadowBytes(), kPageSize / 4);
}

class PurifyTest : public ::testing::Test
{
  protected:
    PurifyTest()
        : machine(MachineConfig{16u << 20, CacheConfig{32, 4}, 64}),
          allocator(machine), purify(machine, allocator)
    {
        purify.install();
        purify.setRootProvider([this] { return roots; });
    }

    VirtAddr
    alloc(std::size_t size, std::uint64_t tag = 0)
    {
        VirtAddr addr = purify.toolAlloc(size, stack, tag);
        roots.push_back(addr);
        return addr;
    }

    void
    dropRoot(VirtAddr addr)
    {
        roots.erase(std::find(roots.begin(), roots.end(), addr));
    }

    Machine machine;
    HeapAllocator allocator;
    PurifyTool purify;
    ShadowStack stack;
    std::vector<VirtAddr> roots;
};

TEST_F(PurifyTest, CleanUsageReportsNothing)
{
    VirtAddr addr = alloc(100);
    std::vector<std::uint8_t> data(100, 1);
    machine.write(addr, data.data(), data.size());
    machine.read(addr, data.data(), data.size());
    purify.toolFree(addr);
    EXPECT_TRUE(purify.corruptionReports().empty());
    EXPECT_EQ(purify.uninitReads(), 0u);
}

TEST_F(PurifyTest, OverflowIntoRedZoneReported)
{
    VirtAddr addr = alloc(64, 0x31);
    std::uint64_t v = 1;
    machine.write(addr + 64, &v, 8);
    ASSERT_EQ(purify.corruptionReports().size(), 1u);
    EXPECT_EQ(purify.corruptionReports()[0].kind,
              CorruptionKind::OverflowPadding);
    EXPECT_EQ(purify.corruptionReports()[0].siteTag, 0x31ULL);
}

TEST_F(PurifyTest, AccessSpanningEndAttributedToBlock)
{
    // A write that starts inside the block and runs past its end must
    // be diagnosed from the first violating byte.
    VirtAddr addr = alloc(60, 0x32);
    std::uint8_t data[16] = {};
    machine.write(addr + 52, data, 16);
    ASSERT_EQ(purify.corruptionReports().size(), 1u);
    EXPECT_EQ(purify.corruptionReports()[0].siteTag, 0x32ULL);
    EXPECT_EQ(purify.corruptionReports()[0].faultAddr, addr + 60);
}

TEST_F(PurifyTest, UnderflowReported)
{
    VirtAddr addr = alloc(64, 0x33);
    std::uint64_t v;
    machine.read(addr - 8, &v, 8);
    ASSERT_EQ(purify.corruptionReports().size(), 1u);
    EXPECT_EQ(purify.corruptionReports()[0].kind,
              CorruptionKind::UnderflowPadding);
}

TEST_F(PurifyTest, UseAfterFreeReported)
{
    VirtAddr addr = alloc(128, 0x34);
    std::uint64_t v = 9;
    machine.write(addr, &v, 8);
    dropRoot(addr);
    purify.toolFree(addr);
    machine.read(addr, &v, 8);
    ASSERT_GE(purify.corruptionReports().size(), 1u);
    EXPECT_EQ(purify.corruptionReports()[0].kind,
              CorruptionKind::UseAfterFree);
    EXPECT_EQ(purify.corruptionReports()[0].siteTag, 0x34ULL);
}

TEST_F(PurifyTest, DuplicateReportsSuppressed)
{
    VirtAddr addr = alloc(64, 0x35);
    std::uint64_t v = 1;
    machine.write(addr + 64, &v, 8);
    machine.write(addr + 64, &v, 8);
    machine.write(addr + 72, &v, 8);
    EXPECT_EQ(purify.corruptionReports().size(), 1u);
}

TEST_F(PurifyTest, UninitializedReadCounted)
{
    VirtAddr addr = alloc(64);
    std::uint64_t v;
    machine.read(addr, &v, 8);
    EXPECT_EQ(purify.uninitReads(), 1u);
    machine.write(addr, &v, 8);
    machine.read(addr, &v, 8);
    EXPECT_EQ(purify.uninitReads(), 1u) << "initialised now";
}

TEST_F(PurifyTest, CallocCountsAsInitialised)
{
    VirtAddr addr = purify.toolCalloc(8, 8, stack, 0);
    roots.push_back(addr);
    std::uint64_t v;
    machine.read(addr, &v, 8);
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(purify.uninitReads(), 0u);
}

TEST_F(PurifyTest, ReallocPreservesDataAndStates)
{
    VirtAddr addr = alloc(32);
    std::uint64_t v = 0x4242;
    machine.write(addr, &v, 8);
    VirtAddr grown = purify.toolRealloc(addr, 128, stack, 0);
    roots.push_back(grown);
    dropRoot(addr);
    std::uint64_t out;
    machine.read(grown, &out, 8);
    EXPECT_EQ(out, 0x4242u);
    EXPECT_EQ(purify.uninitReads(), 0u) << "copied prefix initialised";
}

TEST_F(PurifyTest, MarkAndSweepFindsUnreachableBlock)
{
    VirtAddr reachable = alloc(64, 0x1);
    VirtAddr leaked = alloc(64, 0x2 | kHighBit());
    dropRoot(leaked); // the program forgot its last reference
    purify.finish();  // runs a final sweep

    ASSERT_EQ(purify.leakReports().size(), 1u);
    EXPECT_EQ(purify.leakReports()[0].siteTag, 0x2ULL | kHighBit());
    (void)reachable;
}

TEST_F(PurifyTest, MarkAndSweepFollowsHeapPointers)
{
    // root -> A, A contains a pointer to B: B is reachable.
    VirtAddr a = alloc(64);
    VirtAddr b = alloc(64);
    machine.store<std::uint64_t>(a, b);
    dropRoot(b); // only reachable through A's contents now
    purify.finish();
    EXPECT_TRUE(purify.leakReports().empty());
}

TEST_F(PurifyTest, ConservativeInteriorPointerKeepsBlockAlive)
{
    VirtAddr a = alloc(64);
    VirtAddr b = alloc(64);
    machine.store<std::uint64_t>(a, b + 32); // interior pointer
    dropRoot(b);
    purify.finish();
    EXPECT_TRUE(purify.leakReports().empty());
}

TEST_F(PurifyTest, PerAccessCheckingIsCharged)
{
    VirtAddr addr = alloc(64);
    std::uint64_t v = 0;
    Cycles before = machine.clock().charged(CostCenter::ToolAccess);
    machine.read(addr, &v, 8);
    Cycles delta =
        machine.clock().charged(CostCenter::ToolAccess) - before;
    EXPECT_GE(delta, kPurifyCheckCycles);
}

TEST_F(PurifyTest, ComputeMultiplierCharged)
{
    Cycles before = machine.clock().charged(CostCenter::ToolAccess);
    purify.onCompute(1000);
    Cycles delta =
        machine.clock().charged(CostCenter::ToolAccess) - before;
    EXPECT_EQ(delta, 7000u) << "8x total at the default factor";
}

TEST_F(PurifyTest, SweepCostScalesWithHeap)
{
    for (int i = 0; i < 50; ++i)
        alloc(1024);
    Cycles before = machine.clock().charged(CostCenter::ToolLeak);
    purify.finish();
    Cycles delta =
        machine.clock().charged(CostCenter::ToolLeak) - before;
    EXPECT_GE(delta, 50 * (1024 / 8) * kPurifySweepWordCycles);
}

} // namespace
} // namespace safemem
