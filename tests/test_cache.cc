/**
 * @file
 * Tests for the set-associative write-back data cache.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/costs.h"
#include "common/logging.h"
#include "common/random.h"
#include "mem/memory_controller.h"
#include "mem/physical_memory.h"

namespace safemem {
namespace {

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest()
        : memory(1 << 20), controller(memory, clock),
          cache(controller, clock, CacheConfig{4, 2})
    {
        controller.setInterruptHandler(
            [this](const EccFaultInfo &) { ++interrupts; });
    }

    CycleClock clock;
    PhysicalMemory memory;
    MemoryController controller;
    Cache cache; ///< tiny: 4 sets x 2 ways so eviction is easy to force
    int interrupts = 0;
};

TEST_F(CacheTest, ReadMissThenHit)
{
    std::uint8_t buffer[8] = {};
    EXPECT_TRUE(cache.read(0, buffer, 8));
    EXPECT_EQ(cache.stats().get("misses"), 1u);
    EXPECT_TRUE(cache.read(0, buffer, 8));
    EXPECT_EQ(cache.stats().get("hits"), 1u);
}

TEST_F(CacheTest, HitCostVsMissCost)
{
    std::uint8_t buffer[8] = {};
    Cycles t0 = clock.now();
    cache.read(0, buffer, 8);
    Cycles miss_cost = clock.now() - t0;
    t0 = clock.now();
    cache.read(0, buffer, 8);
    Cycles hit_cost = clock.now() - t0;
    EXPECT_EQ(hit_cost, kCacheHitCycles);
    EXPECT_EQ(miss_cost, kCacheMissMgmtCycles + kDramLineCycles);
}

TEST_F(CacheTest, WriteReadRoundTrip)
{
    std::uint32_t value = 0xfeedface;
    EXPECT_TRUE(cache.write(100, &value, sizeof(value)));
    std::uint32_t out = 0;
    EXPECT_TRUE(cache.read(100, &out, sizeof(out)));
    EXPECT_EQ(out, value);
    // Still only in the cache: memory holds the old word.
    EXPECT_EQ(memory.readWord(96), 0u);
}

TEST_F(CacheTest, DirtyEvictionWritesBack)
{
    std::uint64_t value = 0x1122334455667788ULL;
    cache.write(0, &value, 8);

    // Fill the same set with enough conflicting lines to evict line 0.
    // Set index = (addr/64) % 4, so addresses 0, 256, 512 share set 0.
    std::uint8_t buffer[8];
    cache.read(256, buffer, 8);
    cache.read(512, buffer, 8);

    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(memory.readWord(0), value) << "writeback happened";
    EXPECT_GE(cache.stats().get("writebacks"), 1u);
}

TEST_F(CacheTest, LruVictimSelection)
{
    std::uint8_t buffer[8];
    cache.read(0, buffer, 8);    // way A
    cache.read(256, buffer, 8);  // way B
    cache.read(0, buffer, 8);    // touch A: B is now LRU
    cache.read(512, buffer, 8);  // evicts B
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(256));
}

TEST_F(CacheTest, FlushLineWritesBackAndInvalidates)
{
    std::uint64_t value = 0xabcdULL;
    cache.write(64, &value, 8);
    cache.flushLine(64);
    EXPECT_FALSE(cache.contains(64));
    EXPECT_EQ(memory.readWord(64), value);
}

TEST_F(CacheTest, FlushCleanLineJustInvalidates)
{
    std::uint8_t buffer[8];
    cache.read(64, buffer, 8);
    std::uint64_t before = cache.stats().get("writebacks");
    cache.flushLine(64);
    EXPECT_FALSE(cache.contains(64));
    EXPECT_EQ(cache.stats().get("writebacks"), before);
}

TEST_F(CacheTest, FlushAbsentLineIsHarmless)
{
    cache.flushLine(4096);
    EXPECT_EQ(cache.stats().get("flushes"), 0u);
}

TEST_F(CacheTest, FlushAllDrainsEverything)
{
    std::uint64_t value = 7;
    cache.write(0, &value, 8);
    cache.write(64, &value, 8);
    cache.flushAll();
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.contains(64));
    EXPECT_EQ(memory.readWord(0), 7u);
    EXPECT_EQ(memory.readWord(64), 7u);
}

TEST_F(CacheTest, FlushAllAccountsLikePerLineFlushes)
{
    // flushAll() must charge the same cycles and counters as flushing
    // each resident line individually with flushLine().
    std::uint64_t value = 42;
    cache.write(0, &value, 8);    // dirty
    cache.write(64, &value, 8);   // dirty
    std::uint8_t buffer[8];
    cache.read(128, buffer, 8);   // clean

    // Replay the same residency in a twin cache and flush line by line.
    PhysicalMemory twin_memory(1 << 20);
    CycleClock twin_clock;
    MemoryController twin_controller(twin_memory, twin_clock);
    Cache twin(twin_controller, twin_clock, CacheConfig{4, 2});
    twin.write(0, &value, 8);
    twin.write(64, &value, 8);
    twin.read(128, buffer, 8);

    Cycles bulk_t0 = clock.now();
    cache.flushAll();
    Cycles bulk_cost = clock.now() - bulk_t0;

    Cycles line_t0 = twin_clock.now();
    twin.flushLine(0);
    twin.flushLine(64);
    twin.flushLine(128);
    Cycles line_cost = twin_clock.now() - line_t0;

    EXPECT_EQ(bulk_cost, line_cost);
    // 3 flushed lines, of which 2 are dirty and pay a DRAM writeback.
    EXPECT_EQ(bulk_cost, 3 * kCacheFlushLineCycles + 2 * kDramLineCycles);
    EXPECT_EQ(cache.stats().get("flushes"), twin.stats().get("flushes"));
    EXPECT_EQ(cache.stats().get("flushes"), 3u);
    EXPECT_EQ(cache.stats().get("writebacks"),
              twin.stats().get("writebacks"));
}

TEST_F(CacheTest, FlushAllOnEmptyCacheIsFree)
{
    Cycles t0 = clock.now();
    cache.flushAll();
    EXPECT_EQ(clock.now(), t0);
    EXPECT_EQ(cache.stats().get("flushes"), 0u);
}

TEST_F(CacheTest, FaultedFillIsNotCountedAsMiss)
{
    // An uncorrectable-ECC fill must count as a faulted fill only; the
    // access that retries after the handler repairs memory contributes
    // exactly one completed miss, never two.
    memory.flipDataBit(0, 1);
    memory.flipDataBit(0, 2);
    std::uint8_t buffer[8];
    EXPECT_FALSE(cache.read(0, buffer, 8));
    EXPECT_EQ(cache.stats().get("faulted_fills"), 1u);
    EXPECT_EQ(cache.stats().get("misses"), 0u);

    // Repair the line (flip the bits back) and retry the access.
    memory.flipDataBit(0, 1);
    memory.flipDataBit(0, 2);
    EXPECT_TRUE(cache.read(0, buffer, 8));
    EXPECT_EQ(cache.stats().get("faulted_fills"), 1u);
    EXPECT_EQ(cache.stats().get("misses"), 1u);
}

TEST_F(CacheTest, BlockReadWriteTouchEachLineOnce)
{
    std::uint8_t pattern[256];
    for (std::size_t i = 0; i < sizeof(pattern); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 7);

    // 256 bytes starting mid-line: spans lines 0..4 (5 fills).
    EXPECT_EQ(cache.writeBlock(32, pattern, sizeof(pattern)),
              sizeof(pattern));
    EXPECT_EQ(cache.stats().get("misses"), 5u);

    std::uint8_t out[256] = {};
    EXPECT_EQ(cache.readBlock(32, out, sizeof(out)), sizeof(out));
    EXPECT_EQ(std::memcmp(out, pattern, sizeof(out)), 0);
    EXPECT_EQ(cache.stats().get("misses"), 5u)
        << "readBlock after writeBlock hits every line";
    EXPECT_EQ(cache.stats().get("hits"), 5u);
}

TEST_F(CacheTest, BlockReadStopsAtFaultedLine)
{
    // Poison the third line of the span; readBlock must return the bytes
    // completed before the fault so the caller can retry from there.
    memory.flipDataBit(128, 1);
    memory.flipDataBit(128, 2);
    std::uint8_t out[256];
    EXPECT_EQ(cache.readBlock(0, out, sizeof(out)), 128u);
    EXPECT_EQ(interrupts, 1);

    memory.flipDataBit(128, 1);
    memory.flipDataBit(128, 2);
    EXPECT_EQ(cache.readBlock(128, out + 128, sizeof(out) - 128), 128u);
}

TEST_F(CacheTest, CrossLineAccessPanics)
{
    std::uint8_t buffer[16];
    EXPECT_THROW(cache.read(60, buffer, 16), PanicError);
    EXPECT_THROW(cache.write(60, buffer, 16), PanicError);
}

TEST_F(CacheTest, FaultedFillNotInstalled)
{
    memory.flipDataBit(0, 1);
    memory.flipDataBit(0, 2);
    std::uint8_t buffer[8];
    EXPECT_FALSE(cache.read(0, buffer, 8));
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.stats().get("faulted_fills"), 1u);
    EXPECT_EQ(interrupts, 1);
}

TEST_F(CacheTest, WriteMissDoesReadForOwnership)
{
    // Write-allocate: a write to an uncached line fills first — this is
    // why stores to watched lines still trigger ECC faults (paper
    // §2.2.2 "Dealing with Cache Effects").
    memory.flipDataBit(128, 1);
    memory.flipDataBit(128, 2);
    std::uint64_t value = 1;
    EXPECT_FALSE(cache.write(128, &value, 8));
    EXPECT_EQ(interrupts, 1);
}

TEST_F(CacheTest, CachedLineNeverRechecksEcc)
{
    // The cache filtering effect: once resident, accesses bypass the
    // controller entirely.
    std::uint8_t buffer[8];
    cache.read(0, buffer, 8);
    std::uint64_t fills = controller.stats().get("line_fills");
    for (int i = 0; i < 10; ++i)
        cache.read(0, buffer, 8);
    EXPECT_EQ(controller.stats().get("line_fills"), fills);
}

TEST(CacheConfigTest, ZeroGeometryIsFatal)
{
    CycleClock clock;
    PhysicalMemory memory(4096);
    MemoryController controller(memory, clock);
    EXPECT_THROW(Cache(controller, clock, CacheConfig{0, 2}), FatalError);
    EXPECT_THROW(Cache(controller, clock, CacheConfig{4, 0}), FatalError);
}

/** Parameterized sweep over cache geometries: data integrity holds. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(CacheGeometry, RandomAccessPatternKeepsDataConsistent)
{
    auto [sets, ways] = GetParam();
    CycleClock clock;
    PhysicalMemory memory(1 << 20);
    MemoryController controller(memory, clock);
    Cache cache(controller, clock, CacheConfig{sets, ways});

    // Mirror model in host memory.
    std::vector<std::uint64_t> mirror(512, 0);
    Rng rng(sets * 131 + ways);
    for (int op = 0; op < 4000; ++op) {
        std::size_t idx = rng.range(0, mirror.size() - 1);
        PhysAddr addr = idx * 8;
        if (rng.chance(0.5)) {
            std::uint64_t value = rng.next();
            ASSERT_TRUE(cache.write(addr, &value, 8));
            mirror[idx] = value;
        } else {
            std::uint64_t out = 0;
            ASSERT_TRUE(cache.read(addr, &out, 8));
            ASSERT_EQ(out, mirror[idx]) << "idx " << idx;
        }
    }
    // Flush and verify memory agrees with the mirror.
    cache.flushAll();
    for (std::size_t idx = 0; idx < mirror.size(); ++idx)
        ASSERT_EQ(memory.readWord(idx * 8), mirror[idx]);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(1, 8),
                      std::make_pair<std::size_t, std::size_t>(4, 2),
                      std::make_pair<std::size_t, std::size_t>(64, 4),
                      std::make_pair<std::size_t, std::size_t>(256, 8)));

} // namespace
} // namespace safemem
