/**
 * @file
 * Tests for the Machine facade: the CPU access path, chunking across
 * cache lines, the access hook, fault-restart semantics, and cycle
 * attribution.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/costs.h"
#include "common/logging.h"
#include "os/machine.h"

namespace safemem {
namespace {

class MachineTest : public ::testing::Test
{
  protected:
    MachineTest() : machine(MachineConfig{8u << 20, CacheConfig{16, 2}, 8})
    {
        base = machine.kernel().mapRegion(4 * kPageSize);
    }

    Machine machine;
    VirtAddr base = 0;
};

TEST_F(MachineTest, TypedLoadStoreRoundTrip)
{
    machine.store<std::uint32_t>(base + 12, 0xa5a5a5a5u);
    EXPECT_EQ(machine.load<std::uint32_t>(base + 12), 0xa5a5a5a5u);
}

TEST_F(MachineTest, LargeAccessSpansLinesAndPages)
{
    std::vector<std::uint8_t> data(2 * kPageSize + 100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    machine.write(base + 30, data.data(), data.size());

    std::vector<std::uint8_t> out(data.size());
    machine.read(base + 30, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(MachineTest, ZeroSizeAccessIsANoOp)
{
    Cycles before = machine.clock().now();
    machine.read(base, nullptr, 0);
    machine.write(base, nullptr, 0);
    EXPECT_EQ(machine.clock().now(), before);
}

TEST_F(MachineTest, AccessHookSeesEveryAccess)
{
    struct Event
    {
        VirtAddr addr;
        std::size_t size;
        bool write;
    };
    std::vector<Event> events;
    machine.setAccessHook(
        [&](VirtAddr addr, std::size_t size, bool is_write) {
            events.push_back({addr, size, is_write});
        });

    std::uint64_t value = 5;
    machine.write(base, &value, 8);
    machine.read(base + 100, &value, 8);

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].addr, base);
    EXPECT_TRUE(events[0].write);
    EXPECT_EQ(events[1].addr, base + 100);
    EXPECT_FALSE(events[1].write);
}

TEST_F(MachineTest, AccessTypeVisibleToKernel)
{
    std::uint64_t value = 0;
    machine.read(base, &value, 8);
    EXPECT_FALSE(machine.kernel().lastAccessWasWrite());
    machine.write(base, &value, 8);
    EXPECT_TRUE(machine.kernel().lastAccessWasWrite());
}

TEST_F(MachineTest, ComputeChargesApplicationCycles)
{
    Cycles app0 = machine.clock().charged(CostCenter::Application);
    Cycles overhead0 = machine.clock().overheadCycles();
    machine.compute(12345);
    EXPECT_EQ(machine.clock().charged(CostCenter::Application) - app0,
              12345u);
    EXPECT_EQ(machine.clock().overheadCycles(), overhead0);
}

TEST_F(MachineTest, CostScopeReattributesCharges)
{
    Cycles app0 = machine.clock().charged(CostCenter::Application);
    Cycles now0 = machine.clock().now();
    {
        CostScope scope(machine.clock(), CostCenter::ToolLeak);
        machine.compute(100);
    }
    machine.compute(50);
    EXPECT_EQ(machine.clock().charged(CostCenter::ToolLeak), 100u);
    EXPECT_EQ(machine.clock().charged(CostCenter::Application) - app0,
              50u);
    EXPECT_EQ(machine.clock().now() - now0, 150u);
}

TEST_F(MachineTest, FaultedAccessRestartsTransparently)
{
    Kernel &kernel = machine.kernel();
    machine.store<std::uint64_t>(base, 0x9999ULL);
    int faults = 0;
    kernel.registerEccFaultHandler([&](const UserEccFault &fault) {
        ++faults;
        kernel.disableWatchMemory(alignDown(fault.vaddr, kCacheLineSize),
                                  kCacheLineSize);
        return FaultDecision::Handled;
    });
    kernel.watchMemory(base, kCacheLineSize);

    // A multi-line read whose *middle* line is watched: the access
    // restarts and completes with correct data.
    std::vector<std::uint8_t> out(192);
    machine.read(base, out.data(), out.size());
    EXPECT_EQ(faults, 1);
    std::uint64_t first;
    std::memcpy(&first, out.data(), 8);
    EXPECT_EQ(first, 0x9999ULL);
}

TEST_F(MachineTest, HandlerThatNeverClearsGivesUp)
{
    Kernel &kernel = machine.kernel();
    kernel.registerEccFaultHandler(
        [](const UserEccFault &) { return FaultDecision::Handled; });
    kernel.watchMemory(base, kCacheLineSize);
    std::uint64_t value;
    EXPECT_THROW(machine.read(base, &value, 8), PanicError);
}

TEST_F(MachineTest, TickIntervalDrivesScrubber)
{
    machine.kernel().enableScrubbing(1);
    int pre = 0;
    machine.kernel().setScrubHooks([&](unsigned) { ++pre; }, nullptr);
    machine.compute(10);
    // tickInterval is 8 accesses in this fixture.
    std::uint64_t value = 0;
    for (int i = 0; i < 20; ++i)
        machine.write(base + i * 8, &value, 8);
    EXPECT_GE(pre, 1);
}

TEST(MachineConfigTest, MemoryIsFrameLimited)
{
    Machine machine(MachineConfig{1u << 20, CacheConfig{4, 2}, 64});
    // 1 MiB of DRAM = 256 frames; mapping more must fail cleanly.
    EXPECT_THROW(machine.kernel().mapRegion(2u << 20), FatalError);
}

} // namespace
} // namespace safemem
