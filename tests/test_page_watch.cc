/**
 * @file
 * Tests for the page-protection watch backend.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "pageprot/page_watch.h"

namespace safemem {
namespace {

class PageWatchTest : public ::testing::Test
{
  protected:
    PageWatchTest()
        : machine(MachineConfig{8u << 20, CacheConfig{16, 2}, 64}),
          backend(machine)
    {
        backend.install();
        backend.setFaultCallback([this](VirtAddr base, WatchKind kind,
                                        std::uint64_t cookie, VirtAddr,
                                        bool) {
            ++callbacks;
            lastBase = base;
            lastKind = kind;
            lastCookie = cookie;
        });
        region = machine.kernel().mapRegion(4 * kPageSize);
    }

    Machine machine;
    PageWatchBackend backend;
    VirtAddr region = 0;
    int callbacks = 0;
    VirtAddr lastBase = 0;
    WatchKind lastKind = WatchKind::LeakSuspect;
    std::uint64_t lastCookie = 0;
};

TEST_F(PageWatchTest, GranuleIsAPage)
{
    EXPECT_EQ(backend.granule(), kPageSize);
}

TEST_F(PageWatchTest, FirstAccessDispatchesAndUnprotects)
{
    machine.store<std::uint64_t>(region, 0x42ULL);
    backend.watch(region, kPageSize, WatchKind::FreedBuffer, 99);
    EXPECT_TRUE(backend.isWatched(region));

    EXPECT_EQ(machine.load<std::uint64_t>(region), 0x42ULL);
    EXPECT_EQ(callbacks, 1);
    EXPECT_EQ(lastBase, region);
    EXPECT_EQ(lastKind, WatchKind::FreedBuffer);
    EXPECT_EQ(lastCookie, 99u);
    EXPECT_FALSE(backend.isWatched(region));

    machine.load<std::uint64_t>(region);
    EXPECT_EQ(callbacks, 1) << "only the first access faults";
}

TEST_F(PageWatchTest, MultiPageRegionLiftsAsAWhole)
{
    backend.watch(region, 2 * kPageSize, WatchKind::LeakSuspect, 5);
    EXPECT_EQ(backend.watchedBytes(), 2 * kPageSize);
    machine.load<std::uint64_t>(region + kPageSize + 8);
    EXPECT_EQ(callbacks, 1);
    // Both pages accessible again.
    machine.load<std::uint64_t>(region);
    EXPECT_EQ(callbacks, 1);
}

TEST_F(PageWatchTest, UnalignedRegionPanics)
{
    EXPECT_THROW(
        backend.watch(region + 64, kPageSize, WatchKind::LeakSuspect, 1),
        PanicError);
    EXPECT_THROW(backend.watch(region, 100, WatchKind::LeakSuspect, 1),
                 PanicError);
}

TEST_F(PageWatchTest, OverlapPanics)
{
    backend.watch(region, 2 * kPageSize, WatchKind::LeakSuspect, 1);
    EXPECT_THROW(backend.watch(region + kPageSize, kPageSize,
                               WatchKind::LeakSuspect, 2),
                 PanicError);
}

TEST_F(PageWatchTest, UnwatchRestoresAccess)
{
    machine.store<std::uint64_t>(region, 3);
    backend.watch(region, kPageSize, WatchKind::GuardFront, 1);
    backend.unwatch(region);
    EXPECT_EQ(machine.load<std::uint64_t>(region), 3u);
    EXPECT_EQ(callbacks, 0);
}

TEST_F(PageWatchTest, ForeignSegvStillPanics)
{
    // A protection fault on a page this backend does not own is not
    // swallowed: the kernel panics as it would for a real SIGSEGV.
    machine.kernel().mprotectRange(region + 2 * kPageSize, kPageSize,
                                   false);
    EXPECT_THROW(machine.load<std::uint64_t>(region + 2 * kPageSize),
                 PanicError);
    EXPECT_EQ(backend.stats().get("foreign_segvs"), 1u);
}

TEST_F(PageWatchTest, WatchIsPageGranularityWasteful)
{
    // The point of Table 4: watching 64 bytes costs a whole page here.
    backend.watch(region, kPageSize, WatchKind::GuardFront, 1);
    EXPECT_EQ(backend.watchedBytes(), kPageSize);
}

} // namespace
} // namespace safemem
