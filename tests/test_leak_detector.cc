/**
 * @file
 * Unit tests for the leak detector's §3 logic, driven with a fake
 * backend and a hand-controlled clock so every threshold is exercised
 * deterministically.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "safemem/leak_detector.h"
#include "tests/fake_backend.h"

namespace safemem {
namespace {

class LeakDetectorTest : public ::testing::Test
{
  protected:
    LeakDetectorTest()
    {
        config.warmupTime = 1000;
        config.checkingPeriod = 100;
        config.minStableTime = 500;
        config.aleakRecentWindow = 2000;
        config.aleakLiveThreshold = 4;
        config.aleakWatchCount = 2;
        config.sleakTopK = 4;
        config.sleakLifetimeMultiplier = 2.0;
        config.lifetimeTolerance = 1.25;
        config.leakReportThreshold = 5000;
        config.suspectCooldown = 1000;
        detector = std::make_unique<LeakDetector>(
            config, backend, [this] { return now; });
        backend.setFaultCallback(
            [this](VirtAddr base, WatchKind kind, std::uint64_t,
                   VirtAddr, bool) {
                ASSERT_EQ(kind, WatchKind::LeakSuspect);
                detector->onSuspectAccessed(base);
            });
    }

    /** Allocate an object with a distinct 64-aligned address. */
    VirtAddr
    allocAt(std::uint64_t slot, std::size_t size = 64,
            std::uint64_t sig = 1, std::uint64_t tag = 0)
    {
        VirtAddr addr = 0x100000 + slot * 0x1000;
        detector->onAlloc(addr, size, sig, tag);
        return addr;
    }

    SafeMemConfig config;
    FakeBackend backend;
    std::unique_ptr<LeakDetector> detector;
    Cycles now = 0;
};

TEST_F(LeakDetectorTest, NoDetectionBeforeWarmup)
{
    // A never-freed group far over the live threshold, but still in
    // warm-up: no suspicion.
    for (std::uint64_t i = 0; i < 10; ++i) {
        now += 10;
        allocAt(i);
    }
    EXPECT_EQ(backend.watchCount, 0);
}

TEST_F(LeakDetectorTest, ALeakSuspectsOldestOfGrowingGroup)
{
    now = 2000;
    std::vector<VirtAddr> addrs;
    for (std::uint64_t i = 0; i < 8; ++i) {
        addrs.push_back(allocAt(i));
        now += 200;
    }
    // Growing, never freed, above threshold: the two oldest watched.
    EXPECT_EQ(backend.watchCount, 2);
    EXPECT_TRUE(backend.isWatched(addrs[0]));
    EXPECT_TRUE(backend.isWatched(addrs[1]));
}

TEST_F(LeakDetectorTest, StaleGroupIsNotSuspected)
{
    now = 2000;
    for (std::uint64_t i = 0; i < 8; ++i)
        allocAt(i);
    // Long silence: group stopped growing before detection could run.
    now += 50'000;
    allocAt(100, 32, 2); // different group triggers a pass
    EXPECT_EQ(backend.watchCount, 0)
        << "init-time pool must not be suspected";
}

TEST_F(LeakDetectorTest, ALeakReportedAfterSilentThreshold)
{
    now = 2000;
    std::vector<VirtAddr> addrs;
    for (std::uint64_t i = 0; i < 8; ++i) {
        addrs.push_back(allocAt(i, 64, 1, 0xbad));
        now += 200;
    }
    ASSERT_EQ(backend.watchCount, 2);
    now += config.leakReportThreshold + 100;
    allocAt(50); // allocation drives the periodic check
    ASSERT_EQ(detector->reports().size(), 1u);
    EXPECT_EQ(detector->reports()[0].kind, LeakKind::Always);
    EXPECT_EQ(detector->reports()[0].siteTag, 0xbadULL);
    // One report per group, ever.
    now += config.leakReportThreshold + 100;
    allocAt(51);
    EXPECT_EQ(detector->reports().size(), 1u);
}

TEST_F(LeakDetectorTest, AccessPrunesSuspectAndSetsCooldown)
{
    now = 2000;
    std::vector<VirtAddr> addrs;
    for (std::uint64_t i = 0; i < 8; ++i) {
        addrs.push_back(allocAt(i));
        now += 200;
    }
    ASSERT_TRUE(backend.isWatched(addrs[0]));
    backend.fireAccess(addrs[0]);
    EXPECT_EQ(detector->prunedSuspects(), 1u);

    // During the cooldown no fresh suspicion is placed.
    int watches = backend.watchCount;
    now += 100;
    allocAt(60);
    EXPECT_EQ(backend.watchCount, watches);

    // After the cooldown the group may be suspected again.
    now += config.suspectCooldown + 200;
    allocAt(61);
    EXPECT_GT(backend.watchCount, watches);
}

TEST_F(LeakDetectorTest, FreeingASuspectPrunesIt)
{
    now = 2000;
    std::vector<VirtAddr> addrs;
    for (std::uint64_t i = 0; i < 8; ++i) {
        addrs.push_back(allocAt(i));
        now += 200;
    }
    ASSERT_TRUE(backend.isWatched(addrs[0]));
    detector->onFree(addrs[0]);
    EXPECT_FALSE(backend.isWatched(addrs[0]));
    EXPECT_EQ(detector->prunedSuspects(), 1u);
}

TEST_F(LeakDetectorTest, SLeakOutlierSuspectedOnceStable)
{
    // Build a group with a stable max lifetime of ~300 cycles.
    now = 2000;
    for (std::uint64_t i = 0; i < 6; ++i) {
        VirtAddr addr = allocAt(i, 128, 7);
        now += 300;
        detector->onFree(addr);
    }
    // One object that lives on.
    VirtAddr straggler = allocAt(40, 128, 7);
    // Keep the group deallocating so stability accumulates.
    for (std::uint64_t i = 0; i < 6; ++i) {
        VirtAddr addr = allocAt(50 + i, 128, 7);
        now += 300;
        detector->onFree(addr);
    }
    // Straggler is now far past 2x the stable maximum.
    EXPECT_TRUE(backend.isWatched(straggler));
    EXPECT_EQ(detector->stats().get("sleak_suspicions"), 1u);
}

TEST_F(LeakDetectorTest, SLeakNeedsStability)
{
    config.minStableTime = 1'000'000; // never satisfiable in this test
    now = 2000;
    for (std::uint64_t i = 0; i < 6; ++i) {
        VirtAddr addr = allocAt(i, 128, 7);
        now += 300;
        detector->onFree(addr);
    }
    VirtAddr straggler = allocAt(40, 128, 7);
    for (std::uint64_t i = 0; i < 6; ++i) {
        VirtAddr addr = allocAt(50 + i, 128, 7);
        now += 300;
        detector->onFree(addr);
    }
    EXPECT_FALSE(backend.isWatched(straggler))
        << "condition 2 (stable max) must gate SLeak suspicion";
}

TEST_F(LeakDetectorTest, PrunedSLeakSuspectGetsClockReset)
{
    now = 2000;
    for (std::uint64_t i = 0; i < 6; ++i) {
        VirtAddr addr = allocAt(i, 128, 7);
        now += 300;
        detector->onFree(addr);
    }
    VirtAddr straggler = allocAt(40, 128, 7);
    for (std::uint64_t i = 0; i < 6; ++i) {
        VirtAddr addr = allocAt(50 + i, 128, 7);
        now += 300;
        detector->onFree(addr);
    }
    ASSERT_TRUE(backend.isWatched(straggler));

    Cycles living = now - 2000; // roughly the straggler's age
    backend.fireAccess(straggler);
    // §3.2.3: allocation time reset and group max raised to the
    // suspect's living time, so similar long-lived objects stop being
    // flagged.
    auto stability = detector->stabilityData();
    bool found = false;
    for (const auto &entry : stability) {
        if (entry.key.signature == 7) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    (void)living;
    // Immediately after the prune the straggler is not re-suspected.
    now += config.suspectCooldown + 1000;
    allocAt(90, 128, 7);
    EXPECT_FALSE(backend.isWatched(straggler));
}

TEST_F(LeakDetectorTest, SuspectedGroupsCountedOnceForTable5)
{
    now = 2000;
    for (std::uint64_t i = 0; i < 8; ++i) {
        allocAt(i, 64, 1, 0x11);
        now += 200;
    }
    // Multiple suspicion rounds on the same group.
    backend.fireAccess(0x100000);
    now += config.suspectCooldown + 500;
    allocAt(70, 64, 1, 0x11);
    EXPECT_EQ(detector->suspectedGroupReports().size(), 1u);
}

TEST_F(LeakDetectorTest, FinishReportsOverdueSuspects)
{
    now = 2000;
    for (std::uint64_t i = 0; i < 8; ++i) {
        allocAt(i, 64, 1, 0xbad);
        now += 200;
    }
    ASSERT_EQ(backend.watchCount, 2);
    now += config.leakReportThreshold + 1;
    detector->finish();
    EXPECT_EQ(detector->reports().size(), 1u);
    EXPECT_EQ(backend.regionCount(), 0u) << "finish drops all watches";
}

TEST_F(LeakDetectorTest, FreeOfUntrackedObjectIsCheapNoOp)
{
    // Sampled tools free objects the detector never saw; that must be
    // a no-op that moves no stats and perturbs no group state.
    auto before = detector->stats().all();
    EXPECT_FALSE(detector->onFree(0xdead000));
    EXPECT_EQ(detector->stats().all(), before);
    EXPECT_TRUE(detector->reports().empty());

    // A tracked object still unregisters normally afterwards.
    VirtAddr addr = allocAt(0);
    EXPECT_TRUE(detector->onFree(addr));
    EXPECT_FALSE(detector->tracksObject(addr));
}

TEST_F(LeakDetectorTest, TracksObjectLifecycle)
{
    VirtAddr addr = allocAt(0);
    EXPECT_TRUE(detector->tracksObject(addr));
    detector->onFree(addr);
    EXPECT_FALSE(detector->tracksObject(addr));
}

TEST_F(LeakDetectorTest, GroupsSplitBySizeAndSignature)
{
    allocAt(0, 64, 1);
    allocAt(1, 64, 2);
    allocAt(2, 128, 1);
    EXPECT_EQ(detector->stats().get("groups_created"), 3u);
    allocAt(3, 64, 1);
    EXPECT_EQ(detector->stats().get("groups_created"), 3u);
}

} // namespace
} // namespace safemem
