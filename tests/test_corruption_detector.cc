/**
 * @file
 * Tests for the §4 corruption detector over the real ECC backend and
 * machine: guard placement, overflow/underflow/use-after-free
 * detection, reallocation of watched freed blocks, and the Table 4
 * waste accounting.
 */

#include <gtest/gtest.h>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "safemem/corruption_detector.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

class CorruptionTest : public ::testing::Test
{
  protected:
    CorruptionTest()
        : machine(MachineConfig{16u << 20, CacheConfig{32, 4}, 64}),
          allocator(machine), backend(machine),
          detector(config, backend, allocator, machine,
                   [this] { return machine.clock().now(); })
    {
        backend.installFaultHandler();
        backend.setFaultCallback([this](VirtAddr base, WatchKind kind,
                                        std::uint64_t cookie,
                                        VirtAddr fault_addr,
                                        bool is_write) {
            detector.onWatchFault(base, kind, cookie, fault_addr,
                                  is_write);
        });
    }

    SafeMemConfig config;
    Machine machine;
    HeapAllocator allocator;
    EccWatchManager backend;
    CorruptionDetector detector;
};

TEST_F(CorruptionTest, AllocationIsAlignedGuardedAndUsable)
{
    VirtAddr user = detector.allocate(100, 1);
    EXPECT_TRUE(isAligned(user, kCacheLineSize));
    EXPECT_TRUE(detector.owns(user));
    EXPECT_EQ(detector.userSize(user), 100u);
    EXPECT_EQ(backend.regionCount(), 2u) << "front and rear guards";

    // The user range itself is freely accessible.
    for (std::size_t off = 0; off < 100; off += 4)
        machine.store<std::uint32_t>(user + off, 0xabcd);
    EXPECT_TRUE(detector.reports().empty());
}

TEST_F(CorruptionTest, OverflowIntoRearGuardReported)
{
    VirtAddr user = detector.allocate(128, 0x77);
    machine.store<std::uint64_t>(user + 128, 1); // first byte past end
    ASSERT_EQ(detector.reports().size(), 1u);
    const CorruptionReport &report = detector.reports()[0];
    EXPECT_EQ(report.kind, CorruptionKind::OverflowPadding);
    EXPECT_EQ(report.userAddr, user);
    EXPECT_EQ(report.siteTag, 0x77ULL);
}

TEST_F(CorruptionTest, UnderflowIntoFrontGuardReported)
{
    VirtAddr user = detector.allocate(128, 0x78);
    machine.load<std::uint64_t>(user - 8);
    ASSERT_EQ(detector.reports().size(), 1u);
    EXPECT_EQ(detector.reports()[0].kind,
              CorruptionKind::UnderflowPadding);
}

TEST_F(CorruptionTest, SubLineOverflowIntoRoundingSlackIsMissed)
{
    // Honest limitation (paper §2.2.3): padding is line-granularity, so
    // an overflow that stays inside the body's rounding slack escapes.
    VirtAddr user = detector.allocate(100, 1);
    machine.store<std::uint64_t>(user + 104, 1); // inside alignUp(100,64)
    EXPECT_TRUE(detector.reports().empty());
}

TEST_F(CorruptionTest, UseAfterFreeReported)
{
    VirtAddr user = detector.allocate(256, 0x99);
    machine.store<std::uint64_t>(user, 5);
    detector.deallocate(user);
    EXPECT_FALSE(detector.owns(user));

    machine.load<std::uint64_t>(user + 64);
    ASSERT_EQ(detector.reports().size(), 1u);
    EXPECT_EQ(detector.reports()[0].kind, CorruptionKind::UseAfterFree);
    EXPECT_EQ(detector.reports()[0].siteTag, 0x99ULL);
}

TEST_F(CorruptionTest, GuardsReleasedOnFree)
{
    VirtAddr user = detector.allocate(64, 1);
    EXPECT_EQ(backend.regionCount(), 2u);
    detector.deallocate(user);
    // Guards gone, freed body watched instead.
    EXPECT_EQ(backend.regionCount(), 1u);
    EXPECT_TRUE(backend.isWatched(user));
}

TEST_F(CorruptionTest, ReallocationDisablesFreedWatch)
{
    VirtAddr user = detector.allocate(64, 1);
    detector.deallocate(user);
    ASSERT_TRUE(backend.isWatched(user));

    // Same size class: the allocator recycles the same block; the
    // freed-body watch must be lifted before the new owner touches it.
    VirtAddr fresh = detector.allocate(64, 2);
    EXPECT_EQ(fresh, user);
    machine.store<std::uint64_t>(fresh, 1);
    EXPECT_TRUE(detector.reports().empty());
    EXPECT_EQ(detector.stats().get("freed_watches_recycled"), 1u);
}

TEST_F(CorruptionTest, ReallocPreservesPrefixAndGuardsNewBlock)
{
    VirtAddr user = detector.allocate(64, 1);
    machine.store<std::uint64_t>(user, 0xfeedULL);
    VirtAddr grown = detector.reallocate(user, 200, 1);
    EXPECT_EQ(machine.load<std::uint64_t>(grown), 0xfeedULL);
    EXPECT_TRUE(detector.owns(grown));
    EXPECT_FALSE(detector.owns(user));

    machine.store<std::uint64_t>(grown + alignUp(200, kCacheLineSize), 1);
    EXPECT_EQ(detector.reports().size(), 1u);
    EXPECT_EQ(detector.reports()[0].kind,
              CorruptionKind::OverflowPadding);
}

TEST_F(CorruptionTest, LargeBufferQuarantinedUntilFinish)
{
    VirtAddr user = detector.allocate(40'000, 5);
    machine.store<std::uint64_t>(user, 1);
    detector.deallocate(user);
    // The pages were NOT returned to the kernel: a dangling access is
    // still detectable.
    machine.load<std::uint64_t>(user + 8 * kCacheLineSize);
    ASSERT_EQ(detector.reports().size(), 1u);
    EXPECT_EQ(detector.reports()[0].kind, CorruptionKind::UseAfterFree);
    EXPECT_EQ(detector.stats().get("large_blocks_quarantined"), 1u);
    detector.finish();
}

TEST_F(CorruptionTest, FinishLeavesNoWatches)
{
    VirtAddr a = detector.allocate(64, 1);
    detector.allocate(128, 2);
    detector.deallocate(a);
    detector.finish();
    EXPECT_EQ(backend.regionCount(), 0u);
}

TEST_F(CorruptionTest, WasteAccountingCoversGuardsAndAlignment)
{
    detector.allocate(100, 1);
    // capacity = 2 guards + alignUp(100, 64) = 64 + 128 + 64 = 256.
    EXPECT_EQ(detector.cumulativeUserBytes(), 100u);
    EXPECT_EQ(detector.cumulativeWasteBytes(), 156u);
}

TEST_F(CorruptionTest, FreeOfUnknownBufferIsCheapNoOp)
{
    // Sampled tools free buffers the detector never guarded; that must
    // decline without panicking, watching anything or moving a stat.
    auto before = detector.stats().all();
    EXPECT_FALSE(detector.deallocate(0x123456));
    EXPECT_EQ(detector.stats().all(), before);
    EXPECT_TRUE(detector.reports().empty());

    // A guarded buffer still releases normally afterwards.
    VirtAddr user = detector.allocate(64, 1);
    EXPECT_TRUE(detector.deallocate(user));
}

TEST_F(CorruptionTest, ManyBuffersNoFalsePositives)
{
    // Normal usage never touches a watch.
    std::vector<VirtAddr> buffers;
    for (int i = 0; i < 50; ++i) {
        VirtAddr user = detector.allocate(64 + i * 8, 1);
        std::vector<std::uint8_t> data(64 + i * 8, 0x5a);
        machine.write(user, data.data(), data.size());
        machine.read(user, data.data(), data.size());
        buffers.push_back(user);
    }
    for (VirtAddr user : buffers)
        detector.deallocate(user);
    EXPECT_TRUE(detector.reports().empty());
}

} // namespace
} // namespace safemem
