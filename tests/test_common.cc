/**
 * @file
 * Tests for the common substrate: clock, stats, histogram, RNG, types.
 */

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/types.h"

namespace safemem {
namespace {

TEST(Types, AlignmentHelpers)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_TRUE(isAligned(4096, 4096));
    EXPECT_FALSE(isAligned(4097, 4096));
    EXPECT_TRUE(isAligned(0, 64));
}

TEST(Types, CyclesToMicrosAt2p4GHz)
{
    EXPECT_DOUBLE_EQ(cyclesToMicros(2400), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMicros(4800), 2.0);
}

TEST(Clock, AdvancesAndAttributes)
{
    CycleClock clock;
    clock.advance(10, CostCenter::Application);
    clock.advance(5, CostCenter::ToolLeak);
    clock.advance(3, CostCenter::ToolAccess);
    EXPECT_EQ(clock.now(), 18u);
    EXPECT_EQ(clock.charged(CostCenter::Application), 10u);
    EXPECT_EQ(clock.overheadCycles(), 8u);
}

TEST(Clock, DefaultCenterFollowsScope)
{
    CycleClock clock;
    clock.advance(1);
    EXPECT_EQ(clock.charged(CostCenter::Application), 1u);
    {
        CostScope outer(clock, CostCenter::ToolCorruption);
        clock.advance(2);
        {
            CostScope inner(clock, CostCenter::Kernel);
            clock.advance(4);
        }
        clock.advance(8);
    }
    clock.advance(16);
    EXPECT_EQ(clock.charged(CostCenter::Application), 17u);
    EXPECT_EQ(clock.charged(CostCenter::ToolCorruption), 10u);
    EXPECT_EQ(clock.charged(CostCenter::Kernel), 4u);
}

TEST(Clock, ResetClearsEverything)
{
    CycleClock clock;
    clock.setCurrentCenter(CostCenter::ToolLeak);
    clock.advance(100);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
    EXPECT_EQ(clock.charged(CostCenter::ToolLeak), 0u);
    EXPECT_EQ(clock.currentCenter(), CostCenter::Application);
}

TEST(Stats, CountersAccumulate)
{
    StatSet stats;
    EXPECT_EQ(stats.get("missing"), 0u);
    stats.add("hits");
    stats.add("hits", 4);
    EXPECT_EQ(stats.get("hits"), 5u);
    stats.set("hits", 2);
    EXPECT_EQ(stats.get("hits"), 2u);
}

TEST(Stats, MaxOfTracksMaximum)
{
    StatSet stats;
    stats.maxOf("peak", 10);
    stats.maxOf("peak", 5);
    stats.maxOf("peak", 20);
    EXPECT_EQ(stats.get("peak"), 20u);
}

TEST(Stats, AllIsSortedByName)
{
    StatSet stats;
    stats.add("zebra");
    stats.add("apple");
    auto it = stats.all().begin();
    EXPECT_EQ(it->first, "apple");
}

TEST(Histogram, CumulativeDistribution)
{
    Histogram hist(10);
    for (std::uint64_t v : {1, 5, 15, 25, 95})
        hist.record(v);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(9), 0.4);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(19), 0.6);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(1000), 1.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram hist(10);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(100), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    Rng a2(42);
    EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.range(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
    EXPECT_EQ(rng.range(5, 5), 5u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(7);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

} // namespace
} // namespace safemem
