/**
 * @file
 * Tests for the common substrate: clock, stats, histogram, RNG, types.
 */

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/types.h"

namespace safemem {
namespace {

TEST(Types, AlignmentHelpers)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_TRUE(isAligned(4096, 4096));
    EXPECT_FALSE(isAligned(4097, 4096));
    EXPECT_TRUE(isAligned(0, 64));
}

TEST(Types, CyclesToMicrosAt2p4GHz)
{
    EXPECT_DOUBLE_EQ(cyclesToMicros(2400), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMicros(4800), 2.0);
}

TEST(Clock, AdvancesAndAttributes)
{
    CycleClock clock;
    clock.advance(10, CostCenter::Application);
    clock.advance(5, CostCenter::ToolLeak);
    clock.advance(3, CostCenter::ToolAccess);
    EXPECT_EQ(clock.now(), 18u);
    EXPECT_EQ(clock.charged(CostCenter::Application), 10u);
    EXPECT_EQ(clock.overheadCycles(), 8u);
}

TEST(Clock, DefaultCenterFollowsScope)
{
    CycleClock clock;
    clock.advance(1);
    EXPECT_EQ(clock.charged(CostCenter::Application), 1u);
    {
        CostScope outer(clock, CostCenter::ToolCorruption);
        clock.advance(2);
        {
            CostScope inner(clock, CostCenter::Kernel);
            clock.advance(4);
        }
        clock.advance(8);
    }
    clock.advance(16);
    EXPECT_EQ(clock.charged(CostCenter::Application), 17u);
    EXPECT_EQ(clock.charged(CostCenter::ToolCorruption), 10u);
    EXPECT_EQ(clock.charged(CostCenter::Kernel), 4u);
}

TEST(Clock, ResetClearsEverything)
{
    CycleClock clock;
    clock.setCurrentCenter(CostCenter::ToolLeak);
    clock.advance(100);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
    EXPECT_EQ(clock.charged(CostCenter::ToolLeak), 0u);
    EXPECT_EQ(clock.currentCenter(), CostCenter::Application);
}

TEST(Stats, CountersAccumulate)
{
    StatSet stats;
    EXPECT_EQ(stats.get("missing"), 0u);
    stats.add("hits");
    stats.add("hits", 4);
    EXPECT_EQ(stats.get("hits"), 5u);
    stats.set("hits", 2);
    EXPECT_EQ(stats.get("hits"), 2u);
}

TEST(Stats, MaxOfTracksMaximum)
{
    StatSet stats;
    stats.maxOf("peak", 10);
    stats.maxOf("peak", 5);
    stats.maxOf("peak", 20);
    EXPECT_EQ(stats.get("peak"), 20u);
}

TEST(Stats, AllIsSortedByName)
{
    StatSet stats;
    stats.add("zebra");
    stats.add("apple");
    auto snapshot = stats.all();
    EXPECT_EQ(snapshot.begin()->first, "apple");
}

namespace {
enum class TestStat : std::size_t { Reads, Writes, Peak };
constexpr const char *kTestStatNames[] = {"reads", "writes", "peak"};
} // namespace

TEST(Stats, EnumAndStringViewsShareSlots)
{
    StatSet stats(kTestStatNames);
    stats.add(TestStat::Reads);
    stats.add("reads", 4);
    EXPECT_EQ(stats.get(TestStat::Reads), 5u);
    EXPECT_EQ(stats.get("reads"), 5u);

    stats.set("writes", 7);
    EXPECT_EQ(stats.get(TestStat::Writes), 7u);
    stats.maxOf(TestStat::Peak, 10);
    stats.maxOf("peak", 3);
    stats.maxOf("peak", 20);
    EXPECT_EQ(stats.get("peak"), 20u);
}

TEST(Stats, SlotsAndFallbackMergeInSnapshots)
{
    StatSet stats(kTestStatNames);
    stats.add(TestStat::Writes, 2);
    stats.add("ad_hoc", 9); // unregistered name -> fallback map
    auto snapshot = stats.all();
    EXPECT_EQ(snapshot.size(), 2u); // untouched slots are omitted
    EXPECT_EQ(snapshot.at("writes"), 2u);
    EXPECT_EQ(snapshot.at("ad_hoc"), 9u);
    EXPECT_EQ(snapshot.count("reads"), 0u);

    // A touched slot appears even when its value is zero, exactly like a
    // created-on-first-use map entry did.
    stats.set(TestStat::Reads, 0);
    EXPECT_EQ(stats.all().count("reads"), 1u);

    stats.clear();
    EXPECT_TRUE(stats.all().empty());
    EXPECT_EQ(stats.get(TestStat::Writes), 0u);
}

TEST(Stats, EnumOpsMatchStringKeyedReference)
{
    // Mirror a mixed op sequence into a plain map (the old implementation)
    // and require identical snapshots.
    StatSet stats(kTestStatNames);
    std::map<std::string, std::uint64_t> reference;
    auto ref_max = [&reference](const std::string &name, std::uint64_t v) {
        auto it = reference.find(name);
        if (it == reference.end() || it->second < v)
            reference[name] = v;
    };

    for (std::uint64_t i = 0; i < 100; ++i) {
        stats.add(TestStat::Reads);
        reference["reads"] += 1;
        if (i % 3 == 0) {
            stats.add("writes", i);
            reference["writes"] += i;
        }
        if (i % 7 == 0) {
            stats.maxOf(TestStat::Peak, i * 11);
            ref_max("peak", i * 11);
        }
        if (i % 13 == 0) {
            stats.add("fallback_counter", 2);
            reference["fallback_counter"] += 2;
        }
    }
    EXPECT_EQ(stats.all(), reference);
}

TEST(Histogram, CumulativeDistribution)
{
    Histogram hist(10);
    for (std::uint64_t v : {1, 5, 15, 25, 95})
        hist.record(v);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(9), 0.4);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(19), 0.6);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(1000), 1.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram hist(10);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(100), 0.0);
}

TEST(Histogram, MidBucketQueriesInterpolate)
{
    // Four samples in [0, 10), four in [10, 20). A query in the middle of
    // a bucket must not claim the whole bucket's mass: cumulativeAt(4)
    // covers half of the first bucket, not all of it.
    Histogram hist(10);
    for (std::uint64_t v : {0, 2, 5, 8, 11, 13, 16, 19})
        hist.record(v);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(4), 0.25);  // 4/8 * 5/10
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(9), 0.5);   // first bucket exactly
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(14), 0.75); // 0.5 + 4/8 * 5/10
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(19), 1.0);
    EXPECT_DOUBLE_EQ(hist.cumulativeAt(500), 1.0); // past the last bucket
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    Rng a2(42);
    EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.range(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
    EXPECT_EQ(rng.range(5, 5), 5u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(7);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

} // namespace
} // namespace safemem
