/**
 * @file
 * Tests for the workload framework: Env (interposition, roots, copy
 * helpers) and the shared components (SimPointerTable, ChurnPoolSite,
 * GrowingPoolSite).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.h"
#include "workloads/components.h"
#include "workloads/env.h"
#include "workloads/null_tool.h"

namespace safemem {
namespace {

class EnvTest : public ::testing::Test
{
  protected:
    EnvTest()
        : machine(MachineConfig{16u << 20}), allocator(machine),
          tool(machine, allocator), env(machine, allocator, tool)
    {
    }

    Machine machine;
    HeapAllocator allocator;
    NullTool tool;
    Env env;
};

TEST_F(EnvTest, AllocTracksRoot)
{
    VirtAddr a = env.alloc(100);
    VirtAddr b = env.alloc(50);
    auto roots = env.roots();
    EXPECT_EQ(roots.size(), 2u);
    EXPECT_NE(std::find(roots.begin(), roots.end(), a), roots.end());
    EXPECT_NE(std::find(roots.begin(), roots.end(), b), roots.end());
}

TEST_F(EnvTest, FreeRemovesRoot)
{
    VirtAddr a = env.alloc(100);
    env.free(a);
    EXPECT_TRUE(env.roots().empty());
}

TEST_F(EnvTest, DropRefLeaksButForgets)
{
    VirtAddr a = env.alloc(100);
    env.dropRef(a);
    EXPECT_TRUE(env.roots().empty());
    EXPECT_TRUE(allocator.isLive(a)) << "memory still allocated: a leak";
}

TEST_F(EnvTest, DropRefOfUnknownPanics)
{
    EXPECT_THROW(env.dropRef(0x1234), PanicError);
}

TEST_F(EnvTest, ReallocSwapsRoot)
{
    VirtAddr a = env.alloc(16);
    VirtAddr b = env.reallocBytes(a, 5000);
    auto roots = env.roots();
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0], b);
}

TEST_F(EnvTest, CallocZeroes)
{
    VirtAddr a = env.callocBytes(4, 8);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(env.load<std::uint64_t>(a + i * 8), 0u);
}

TEST_F(EnvTest, FillAndCopy)
{
    VirtAddr src = env.alloc(300);
    VirtAddr dst = env.alloc(300);
    env.fill(src, 0x7e, 300);
    env.copy(dst, src, 300);
    std::uint8_t byte;
    env.read(dst + 299, &byte, 1);
    EXPECT_EQ(byte, 0x7e);
}

TEST_F(EnvTest, AppNowExcludesToolTime)
{
    Cycles before = env.appNow();
    env.compute(1000);
    EXPECT_EQ(env.appNow() - before, 1000u);
}

TEST_F(EnvTest, StackIsUsable)
{
    FrameGuard frame(env.stack(), 0x400100);
    EXPECT_EQ(env.stack().depth(), 1u);
}

TEST_F(EnvTest, SimPointerTableRoundTrip)
{
    SimPointerTable table(env, 16, 0);
    EXPECT_EQ(table.get(env, 3), 0u) << "calloc-zeroed";
    table.set(env, 3, 0xdeadbeef);
    EXPECT_EQ(table.get(env, 3), 0xdeadbeefULL);
    EXPECT_THROW(table.get(env, 16), PanicError);
    table.destroy(env);
}

TEST_F(EnvTest, ChurnPoolRetiresOnSchedule)
{
    ChurnPoolSite::Params params;
    params.functionId = 0x400500;
    params.allocEvery = 2;
    params.shortHold = 3;
    params.longEvery = 4;
    params.longHold = 10;
    ChurnPoolSite site(params);

    for (std::uint64_t r = 0; r < 60; ++r)
        site.tick(env, r);
    site.drain(env);
    // Everything allocated was eventually freed: no live heap left.
    EXPECT_EQ(allocator.liveBytes(), 0u);
    EXPECT_TRUE(env.roots().empty());
}

TEST_F(EnvTest, GrowingPoolOnlyGrows)
{
    GrowingPoolSite::Params params;
    params.functionId = 0x400600;
    params.growEvery = 2;
    params.touchEvery = 4;
    GrowingPoolSite site(params);

    for (std::uint64_t r = 0; r < 20; ++r)
        site.tick(env, r);
    EXPECT_EQ(allocator.stats().get("allocs"), 10u);
    EXPECT_EQ(allocator.stats().get("frees"), 0u);
    site.drain(env);
    EXPECT_EQ(allocator.liveBytes(), 0u);
}

} // namespace
} // namespace safemem
